//! Property-based tests of TDMA reservation machinery.

use noc_tdma::{ConnId, NetworkSlots, SlotError, SlotPolicy, SlotTable, TdmaSpec};
use noc_topology::units::{Bandwidth, Frequency, LinkWidth};
use noc_topology::{LinkId, MeshBuilder, Topology};
use proptest::prelude::*;

fn fixture(slots: usize) -> (Topology, Vec<LinkId>, TdmaSpec) {
    let mesh = MeshBuilder::new(1, 3).nis_per_switch(1).build().unwrap();
    let topo = mesh.into_topology();
    let nis = topo.nis().to_vec();
    let s: Vec<_> = nis.iter().map(|&n| topo.ni_switch(n).unwrap()).collect();
    let path = vec![
        topo.link_between(nis[0], s[0]).unwrap(),
        topo.link_between(s[0], s[1]).unwrap(),
        topo.link_between(s[1], s[2]).unwrap(),
        topo.link_between(s[2], nis[2]).unwrap(),
    ];
    let spec = TdmaSpec::new(slots, Frequency::from_mhz(500), LinkWidth::BITS_32);
    (topo, path, spec)
}

proptest! {
    /// slots_for_bandwidth is the exact ceiling: k slots cover bw, k-1
    /// slots do not.
    #[test]
    fn slot_demand_is_tight(bw_mbps in 1u64..2000, slots in 2usize..256) {
        let spec = TdmaSpec::new(slots, Frequency::from_mhz(500), LinkWidth::BITS_32);
        let bw = Bandwidth::from_mbps(bw_mbps);
        let k = spec.slots_for_bandwidth(bw);
        prop_assert!(k >= 1);
        let covered = spec.slot_bandwidth().saturating_mul(k as u64);
        prop_assert!(covered >= bw, "{k} slots cover {covered} < {bw}");
        if k > 1 {
            let under = spec.slot_bandwidth().saturating_mul((k - 1) as u64);
            prop_assert!(under < bw, "{} slots already cover {bw}", k - 1);
        }
    }

    /// Worst-case latency: single reserved slot costs a full table turn;
    /// a full table costs one slot of wait; more slots never hurt.
    #[test]
    fn latency_bounds(slots in 2usize..64, hops in 1usize..8, k in 1usize..16) {
        let spec = TdmaSpec::new(slots, Frequency::from_mhz(500), LinkWidth::BITS_32);
        let k = k.min(slots);
        // Evenly spread k slots.
        let base: Vec<usize> = (0..k).map(|i| i * slots / k).collect();
        let wc = spec.worst_case_latency_cycles(&base, hops);
        prop_assert!(wc >= (hops + 1) as u64, "at least one wait cycle + hops");
        prop_assert!(wc <= (slots + hops) as u64, "never worse than a full turn");
        // The full table gives the best possible worst case.
        let all: Vec<usize> = (0..slots).collect();
        prop_assert_eq!(spec.worst_case_latency_cycles(&all, hops), (1 + hops) as u64);
    }

    /// Spread never yields a worse worst-case gap than first-fit.
    #[test]
    fn spread_beats_first_fit(k in 1usize..16) {
        let (topo, path, spec) = fixture(32);
        let ns = NetworkSlots::new(&topo, &spec);
        let spread = ns.find_base_slots(&path, k, SlotPolicy::Spread).unwrap();
        let ff = ns.find_base_slots(&path, k, SlotPolicy::FirstFit).unwrap();
        prop_assert_eq!(spread.len(), k);
        prop_assert_eq!(ff.len(), k);
        let wc_spread = spec.worst_case_latency_cycles(&spread, path.len());
        let wc_ff = spec.worst_case_latency_cycles(&ff, path.len());
        prop_assert!(wc_spread <= wc_ff);
    }

    /// Random interleavings of reservations and releases keep the network
    /// consistent and fully reversible.
    #[test]
    fn reserve_release_fuzz(ops in proptest::collection::vec((0usize..3, 1usize..5), 1..24)) {
        let (topo, path, spec) = fixture(16);
        let mut ns = NetworkSlots::new(&topo, &spec);
        let pristine = ns.clone();
        let mut live: Vec<(Vec<usize>, ConnId)> = Vec::new();
        let mut seq = 0u64;
        for (op, k) in ops {
            match op {
                // Reserve on the shared path.
                0 | 1 => {
                    if let Some(base) = ns.find_base_slots(&path, k, SlotPolicy::Spread) {
                        let conn = ConnId::new(seq);
                        seq += 1;
                        ns.reserve(&path, &base, conn).unwrap();
                        live.push((base, conn));
                    } else {
                        // Not enough room: the bottleneck link's free count
                        // must actually be below k.
                        prop_assert!(ns.min_free_along(&path) < k || k > 16);
                    }
                }
                // Release the oldest live reservation.
                _ => {
                    if !live.is_empty() {
                        let (base, conn) = live.remove(0);
                        ns.release(&path, &base, conn).unwrap();
                    }
                }
            }
            // Invariant: every link's used count equals the sum of live
            // reservations that cross it (all of them, here).
            let live_slots: usize = live.iter().map(|(b, _)| b.len()).sum();
            for &l in &path {
                prop_assert_eq!(16 - ns.free_slot_count(l), live_slots);
            }
        }
        for (base, conn) in live {
            ns.release(&path, &base, conn).unwrap();
        }
        prop_assert_eq!(ns, pristine);
    }

    /// find_base_slots only ever returns base slots that are genuinely
    /// free along the whole pipeline.
    #[test]
    fn found_slots_are_free(prefill in proptest::collection::vec(0usize..16, 0..12), k in 1usize..8) {
        let (topo, path, spec) = fixture(16);
        let mut ns = NetworkSlots::new(&topo, &spec);
        // Pre-occupy some base slots.
        let mut occupied = std::collections::BTreeSet::new();
        for (i, s) in prefill.into_iter().enumerate() {
            if occupied.insert(s) {
                ns.reserve(&path, &[s], ConnId::new(1000 + i as u64)).unwrap();
            }
        }
        if let Some(base) = ns.find_base_slots(&path, k, SlotPolicy::Spread) {
            prop_assert_eq!(base.len(), k);
            for &s in &base {
                prop_assert!(ns.base_slot_free(&path, s));
                prop_assert!(!occupied.contains(&s));
            }
            // And they must be reservable as a whole.
            ns.reserve(&path, &base, ConnId::new(7)).unwrap();
        } else {
            prop_assert!(16 - occupied.len() < k, "refused although {k} free base slots exist");
        }
    }

    /// The mask-backed table is bit-for-bit equivalent to the legacy
    /// `Vec<Option<ConnId>>` representation it replaced: identical
    /// occupy/release outcomes, free counts, point queries and
    /// reservation order under random churn (sizes chosen to cross the
    /// 64-bit word boundary), with the one deliberate divergence —
    /// out-of-range mutations now report a typed error instead of
    /// panicking — pinned explicitly.
    #[test]
    fn table_matches_legacy_shadow(
        size in 2usize..130,
        ops in proptest::collection::vec((0usize..140, 0u64..6, 0usize..3), 1..64),
    ) {
        let mut t = SlotTable::new(size);
        let mut shadow: Vec<Option<ConnId>> = vec![None; size];
        for (raw, c, action) in ops {
            let i = raw % (size + 2); // occasionally out of range
            let conn = ConnId::new(c);
            match action {
                0 => {
                    let got = t.occupy(i, conn);
                    if i >= size {
                        prop_assert_eq!(got, Err(SlotError::OutOfRange { slot: i, size }));
                    } else {
                        match shadow[i] {
                            Some(owner) => {
                                prop_assert_eq!(got, Err(SlotError::Occupied { owner }));
                            }
                            None => {
                                prop_assert_eq!(got, Ok(()));
                                shadow[i] = Some(conn);
                            }
                        }
                    }
                }
                1 => {
                    let got = t.release(i, conn);
                    if i >= size {
                        prop_assert_eq!(got, Err(SlotError::OutOfRange { slot: i, size }));
                    } else {
                        match shadow[i] {
                            Some(owner) if owner == conn => {
                                prop_assert_eq!(got, Ok(()));
                                shadow[i] = None;
                            }
                            other => {
                                prop_assert_eq!(got, Err(SlotError::NotOwner { owner: other }));
                            }
                        }
                    }
                }
                _ => {
                    if i < size {
                        prop_assert_eq!(t.is_free(i), shadow[i].is_none());
                        prop_assert_eq!(t.owner(i), shadow[i]);
                    }
                }
            }
            prop_assert_eq!(
                t.free_count(),
                shadow.iter().filter(|s| s.is_none()).count()
            );
            let want: Vec<(usize, ConnId)> = shadow
                .iter()
                .enumerate()
                .filter_map(|(s, o)| o.map(|c| (s, c)))
                .collect();
            prop_assert_eq!(t.reservations().collect::<Vec<_>>(), want);
        }
    }

    /// The rotated-mask conflict probes agree with the per-slot
    /// `(s + i) % S` scan of the legacy representation on random slot
    /// states, over full paths and suffixes (table sizes small enough
    /// that a 4-hop path wraps the ring several times).
    #[test]
    fn network_probes_match_legacy_scan(
        slots in 2usize..70,
        picks in proptest::collection::vec((0usize..70, 0usize..4), 0..24),
    ) {
        let (topo, path, spec) = fixture(slots);
        let mut ns = NetworkSlots::new(&topo, &spec);
        let mut seq = 0u64;
        for (raw, cut) in picks {
            let sub = &path[..path.len() - cut.min(path.len() - 1)];
            let s = raw % slots;
            if ns.base_slot_free(sub, s) {
                ns.reserve(sub, &[s], ConnId::new(seq)).unwrap();
                seq += 1;
            }
        }
        for cut in 0..path.len() {
            let sub = &path[cut..];
            let naive: Vec<usize> = (0..slots)
                .filter(|&s| {
                    sub.iter()
                        .enumerate()
                        .all(|(i, &l)| ns.table(l).is_free((s + i) % slots))
                })
                .collect();
            prop_assert_eq!(ns.free_base_slots(sub), naive.clone());
            for s in 0..slots {
                prop_assert_eq!(ns.base_slot_free(sub, s), naive.contains(&s));
            }
        }
    }

    /// release_connection is equivalent to releasing each reservation.
    #[test]
    fn release_connection_sweeps(k in 1usize..6, extra in 1usize..6) {
        let (topo, path, spec) = fixture(16);
        let mut ns = NetworkSlots::new(&topo, &spec);
        let a = ConnId::new(1);
        let b = ConnId::new(2);
        let base_a = ns.find_base_slots(&path, k, SlotPolicy::Spread).unwrap();
        ns.reserve(&path, &base_a, a).unwrap();
        let base_b = ns.find_base_slots(&path, extra.min(16 - k), SlotPolicy::Spread);
        if let Some(base_b) = base_b {
            ns.reserve(&path, &base_b, b).unwrap();
            let released = ns.release_connection(a);
            prop_assert_eq!(released, k * path.len());
            // b's reservation is untouched.
            for (i, &l) in path.iter().enumerate() {
                for &s in &base_b {
                    prop_assert_eq!(ns.table(l).owner((s + i) % 16), Some(b));
                }
            }
        }
    }
}
