//! TDMA slot tables and contention-free reservation for Æthereal-style
//! NoCs.
//!
//! Æthereal provides guaranteed-throughput (GT) connections via slotted
//! time-division multiplexing: every link has a slot table of `S` slots; a
//! connection that owns slot `s` on the first link of its path owns slot
//! `(s + 1) mod S` on the second, `(s + 2) mod S` on the third and so on —
//! data advances one link per slot, so two GT connections can never collide
//! (contention-free routing). Reserving `k` of the `S` base slots gives a
//! connection `k/S` of the raw link bandwidth.
//!
//! This crate supplies:
//!
//! * [`SlotMask`] / [`OccupancyMask`] — bit-packed slot sets (`u64`-word
//!   conflict tests, rotate-by-offset wraparound probes, popcount free
//!   counts),
//! * [`SlotTable`] — one link's slot table: mask-backed occupancy plus a
//!   slot-sorted ownership side index,
//! * [`NetworkSlots`] — the per-use-case resource state over all links of a
//!   topology (Algorithm 2 of the paper keeps one of these per use-case),
//! * slot search over a path with [`NetworkSlots::find_base_slots`] and the
//!   reservation/release pair,
//! * bandwidth⇄slot conversions and worst-case latency bounds for GT
//!   connections,
//! * [`stats`] — process-global counters for the word-wise conflict folds,
//!   folded into `nocmap`'s perf snapshots.
//!
//! # Example
//!
//! ```
//! use noc_topology::{MeshBuilder, units::{Bandwidth, Frequency, LinkWidth}};
//! use noc_tdma::{ConnId, NetworkSlots, SlotPolicy, TdmaSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mesh = MeshBuilder::new(1, 2).nis_per_switch(1).build()?;
//! let topo = mesh.topology();
//! let spec = TdmaSpec::new(8, Frequency::from_mhz(500), LinkWidth::BITS_32);
//!
//! // Route from NI0 through both switches to NI1.
//! let ni0 = topo.nis()[0];
//! let ni1 = topo.nis()[1];
//! let s0 = topo.ni_switch(ni0).unwrap();
//! let s1 = topo.ni_switch(ni1).unwrap();
//! let path = vec![
//!     topo.link_between(ni0, s0).unwrap(),
//!     topo.link_between(s0, s1).unwrap(),
//!     topo.link_between(s1, ni1).unwrap(),
//! ];
//!
//! let mut slots = NetworkSlots::new(topo, &spec);
//! let need = spec.slots_for_bandwidth(Bandwidth::from_mbps(500)); // 2 of 8 slots
//! assert_eq!(need, 2);
//! let base = slots
//!     .find_base_slots(&path, need, SlotPolicy::Spread)
//!     .expect("empty network has room");
//! slots.reserve(&path, &base, ConnId::new(7))?;
//! assert_eq!(slots.free_slot_count(path[1]), 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod mask;
mod network;
mod spec;
pub mod stats;
mod table;

pub use error::TdmaError;
pub use mask::{OccupancyMask, SlotMask};
pub use network::{NetworkSlots, SlotPolicy};
pub use spec::TdmaSpec;
pub use table::{ConnId, SlotError, SlotTable};
