//! Global TDMA parameters of a NoC instance.

use noc_topology::units::{Bandwidth, Frequency, Latency, LinkWidth};
use serde::{Deserialize, Serialize};

/// The TDMA configuration shared by every link of a NoC: table size, clock
/// frequency and link width.
///
/// A slot lasts one clock cycle and carries one link word, so a single slot
/// of an `S`-slot table is worth `capacity / S` bandwidth.
///
/// ```
/// use noc_topology::units::{Bandwidth, Frequency, LinkWidth};
/// use noc_tdma::TdmaSpec;
///
/// let spec = TdmaSpec::new(16, Frequency::from_mhz(500), LinkWidth::BITS_32);
/// assert_eq!(spec.link_capacity(), Bandwidth::from_mbps(2000));
/// assert_eq!(spec.slot_bandwidth(), Bandwidth::from_mbps(125));
/// assert_eq!(spec.slots_for_bandwidth(Bandwidth::from_mbps(200)), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TdmaSpec {
    slots: usize,
    frequency: Frequency,
    width: LinkWidth,
}

impl TdmaSpec {
    /// Creates a TDMA spec.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or `frequency` is zero.
    pub fn new(slots: usize, frequency: Frequency, width: LinkWidth) -> Self {
        assert!(slots > 0, "slot table must have at least one slot");
        assert!(!frequency.is_zero(), "TDMA frequency must be non-zero");
        TdmaSpec {
            slots,
            frequency,
            width,
        }
    }

    /// The paper's evaluation setup: 500 MHz, 32-bit links, 128-slot
    /// tables. Æthereal slot tables range up to 256 entries; 128 gives a
    /// 15.6 MB/s slot granularity, fine enough that an NI link can carry
    /// the several dozen flows a shared-memory hub sees per use-case.
    pub fn paper_default() -> Self {
        TdmaSpec::new(128, Frequency::from_mhz(500), LinkWidth::BITS_32)
    }

    /// Returns a copy of this spec at a different clock frequency (the
    /// frequency sweeps of Figures 7(a) and 7(c)).
    #[must_use]
    pub fn at_frequency(self, frequency: Frequency) -> Self {
        TdmaSpec::new(self.slots, frequency, self.width)
    }

    /// Number of slots per table.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// NoC clock frequency.
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// Link data width.
    pub fn width(&self) -> LinkWidth {
        self.width
    }

    /// Raw link capacity (`frequency × width`).
    pub fn link_capacity(&self) -> Bandwidth {
        self.width.capacity(self.frequency)
    }

    /// Bandwidth of a single slot (`capacity / slots`).
    pub fn slot_bandwidth(&self) -> Bandwidth {
        self.link_capacity().div(self.slots as u64)
    }

    /// Minimum number of slots whose combined bandwidth covers `bw`
    /// (`ceil(bw / slot_bandwidth)`); zero for a zero-bandwidth flow.
    pub fn slots_for_bandwidth(&self, bw: Bandwidth) -> usize {
        if bw.is_zero() {
            return 0;
        }
        let slot_bw = self.slot_bandwidth().as_bytes_per_sec();
        assert!(slot_bw > 0, "slot bandwidth underflowed to zero");
        bw.as_bytes_per_sec().div_ceil(slot_bw) as usize
    }

    /// Duration of `cycles` clock cycles as a latency.
    pub fn cycles_to_latency(&self, cycles: u64) -> Latency {
        // ceil(cycles * 1e9 / f) in ns.
        let ns = (cycles as u128 * 1_000_000_000u128).div_ceil(self.frequency.as_hz() as u128);
        Latency::from_ns(ns as u64)
    }

    /// Worst-case GT latency (in cycles) for a connection with reserved
    /// base slots `base_slots` over a path of `hops` links: the packet
    /// waits at most the largest cyclic gap between consecutive reserved
    /// slots, then pipelines one link per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `base_slots` is empty or contains a slot `>= slots()`.
    pub fn worst_case_latency_cycles(&self, base_slots: &[usize], hops: usize) -> u64 {
        assert!(
            !base_slots.is_empty(),
            "a GT connection needs at least one slot"
        );
        let mut sorted: Vec<usize> = base_slots.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &s in &sorted {
            assert!(
                s < self.slots,
                "slot index {s} out of range (S = {})",
                self.slots
            );
        }
        let mut max_gap = 0usize;
        for (i, &s) in sorted.iter().enumerate() {
            let next = sorted[(i + 1) % sorted.len()];
            let gap = if i + 1 == sorted.len() {
                next + self.slots - s
            } else {
                next - s
            };
            max_gap = max_gap.max(gap);
        }
        // Wait for the next owned slot (≤ max_gap - 1 cycles after arrival,
        // bounded by max_gap) then traverse `hops` links, one per cycle.
        max_gap as u64 + hops as u64
    }

    /// Worst-case GT latency as wall-clock time.
    pub fn worst_case_latency(&self, base_slots: &[usize], hops: usize) -> Latency {
        self.cycles_to_latency(self.worst_case_latency_cycles(base_slots, hops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TdmaSpec {
        TdmaSpec::new(16, Frequency::from_mhz(500), LinkWidth::BITS_32)
    }

    #[test]
    fn capacities() {
        let s = spec();
        assert_eq!(s.link_capacity(), Bandwidth::from_mbps(2000));
        assert_eq!(s.slot_bandwidth(), Bandwidth::from_mbps(125));
    }

    #[test]
    fn slots_for_bandwidth_rounds_up() {
        let s = spec();
        assert_eq!(s.slots_for_bandwidth(Bandwidth::ZERO), 0);
        assert_eq!(s.slots_for_bandwidth(Bandwidth::from_mbps(1)), 1);
        assert_eq!(s.slots_for_bandwidth(Bandwidth::from_mbps(125)), 1);
        assert_eq!(
            s.slots_for_bandwidth(Bandwidth::from_bytes_per_sec(125_000_001)),
            2
        );
        assert_eq!(s.slots_for_bandwidth(Bandwidth::from_mbps(2000)), 16);
        // Over-capacity demand needs more slots than exist; caller rejects.
        assert_eq!(s.slots_for_bandwidth(Bandwidth::from_mbps(2100)), 17);
    }

    #[test]
    fn at_frequency_rescales() {
        let s = spec().at_frequency(Frequency::from_ghz(1));
        assert_eq!(s.link_capacity(), Bandwidth::from_mbps(4000));
        assert_eq!(s.slots(), 16);
    }

    #[test]
    fn worst_case_latency_single_slot() {
        let s = spec();
        // One slot: max gap is the whole table.
        assert_eq!(s.worst_case_latency_cycles(&[0], 3), 16 + 3);
    }

    #[test]
    fn worst_case_latency_spread_slots() {
        let s = spec();
        // Evenly spread 4 slots: max gap 4.
        assert_eq!(s.worst_case_latency_cycles(&[0, 4, 8, 12], 2), 4 + 2);
        // Clustered 4 slots: max gap 13 (from 3 around to 0).
        assert_eq!(s.worst_case_latency_cycles(&[0, 1, 2, 3], 2), 13 + 2);
    }

    #[test]
    fn worst_case_latency_wraparound_gap() {
        let s = spec();
        // Slots 14 and 15: gap 15 -> 14 wraps: 14 + 16 - 15 = 15.
        assert_eq!(s.worst_case_latency_cycles(&[14, 15], 1), 15 + 1);
    }

    #[test]
    fn cycles_to_latency_rounds_up() {
        let s = spec(); // 2 ns period
        assert_eq!(s.cycles_to_latency(10), Latency::from_ns(20));
        let s3 = TdmaSpec::new(16, Frequency::from_hz(3), LinkWidth::BITS_32);
        // 1 cycle at 3 Hz = 333333333.33 ns, rounded up.
        assert_eq!(s3.cycles_to_latency(1), Latency::from_ns(333_333_334));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn empty_table_rejected() {
        let _ = TdmaSpec::new(0, Frequency::from_mhz(500), LinkWidth::BITS_32);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn latency_needs_a_slot() {
        let _ = spec().worst_case_latency_cycles(&[], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn latency_rejects_out_of_range_slot() {
        let _ = spec().worst_case_latency_cycles(&[16], 1);
    }
}
