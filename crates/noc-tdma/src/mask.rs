//! Bit-packed slot masks — the word-at-a-time core of the TDMA layer.
//!
//! Modeled on the `BoundedBitset` idea of PDCCH shuffling allocators:
//! a slot table's occupancy is a fixed-size bitset of `S` bits packed
//! into `⌈S/64⌉` machine words, so the questions the mapper's inner
//! loop asks — *is this slot taken? how many are free? which base
//! slots are free along this whole path?* — become single-word AND/OR
//! tests, popcounts, and rotate-by-offset merges instead of per-slot
//! scans with a modulo per probe.
//!
//! Two types:
//!
//! * [`SlotMask`] — the general fixed-size bitset (`len` bits over
//!   `u64` words) with the rotate-by-offset OR that folds a path's
//!   per-link tables into one conflict mask,
//! * [`OccupancyMask`] — a [`SlotMask`] carrying the occupied-slot
//!   invariant of one link's table (set bit = reserved slot).
//!
//! Connection *ownership* deliberately lives outside these types (a
//! side index in [`crate::SlotTable`]): masks answer the hot yes/no
//! conflict questions, the side index answers the cold who-owns-it
//! audits, and per-group cloned state shrinks from `S × Option<ConnId>`
//! words to `S` bits plus the live reservations.

use serde::{Deserialize, Serialize};

/// A fixed-size bitset of `len` bits packed into `u64` words.
///
/// Bit indices run `0..len`. All operations stay within `len` bits;
/// the unused high bits of the last word are kept zero, so popcounts
/// and word-wise merges never see garbage.
///
/// ```
/// use noc_tdma::SlotMask;
///
/// let mut m = SlotMask::new(128);
/// m.set(0);
/// m.set(127);
/// assert!(m.test(127) && !m.test(64));
/// assert_eq!(m.count_ones(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SlotMask {
    words: Vec<u64>,
    len: usize,
}

impl SlotMask {
    /// An all-zero mask of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "a slot mask needs at least one bit");
        SlotMask {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the mask has zero bits — never, by construction, but
    /// conventional alongside [`SlotMask::len`].
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of backing `u64` words (`⌈len/64⌉`).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Whether bit `index` is set.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn test(&self, index: usize) -> bool {
        assert!(index < self.len, "bit {index} out of range ({})", self.len);
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Sets bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize) {
        assert!(index < self.len, "bit {index} out of range ({})", self.len);
        self.words[index / 64] |= 1u64 << (index % 64);
    }

    /// Clears bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn clear(&mut self, index: usize) {
        assert!(index < self.len, "bit {index} out of range ({})", self.len);
        self.words[index / 64] &= !(1u64 << (index % 64));
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits (one popcount per word).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when any bit of `self & other` is set — the single-pass
    /// word-wise conflict test.
    ///
    /// # Panics
    ///
    /// Panics if the masks differ in length.
    pub fn intersects(&self, other: &SlotMask) -> bool {
        assert_eq!(self.len, other.len, "mask length mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// `self |= other`, word-wise.
    ///
    /// # Panics
    ///
    /// Panics if the masks differ in length.
    pub fn or_assign(&mut self, other: &SlotMask) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Reads `n <= 64` bits starting at bit `start` (no wraparound:
    /// `start + n` must stay within `len`), packed into the low bits of
    /// the returned word.
    fn range_bits(&self, start: usize, n: usize) -> u64 {
        debug_assert!(n <= 64 && start + n <= self.len);
        if n == 0 {
            return 0;
        }
        let w = start / 64;
        let b = start % 64;
        let mut v = self.words[w] >> b;
        if b + n > 64 {
            v |= self.words[w + 1] << (64 - b);
        }
        if n < 64 {
            v &= (1u64 << n) - 1;
        }
        v
    }

    /// `self |= rotate(src, offset)` where bit `i` of the rotation is
    /// bit `(i + offset) % len` of `src` — the pipelined slot-advance
    /// merge: OR-ing link `i`'s occupancy rotated by `i` over a path
    /// yields the mask of *base* slots that conflict anywhere along it,
    /// with the `(s + i) % S` wraparound folded into a handful of word
    /// reads instead of a modulo per probed slot.
    ///
    /// # Panics
    ///
    /// Panics if the masks differ in length.
    pub fn or_rotated(&mut self, src: &SlotMask, offset: usize) {
        assert_eq!(self.len, src.len, "mask length mismatch");
        let len = self.len;
        let k = offset % len;
        if k == 0 {
            return self.or_assign(src);
        }
        let mut bit = 0usize;
        for j in 0..self.words.len() {
            // Destination word j holds bits [bit, bit + n); its source
            // window starts at (bit + k) % len and may wrap the ring's
            // end at most once (n <= len).
            let n = (len - bit).min(64);
            let p = (bit + k) % len;
            let first = n.min(len - p);
            let mut v = src.range_bits(p, first);
            if first < n {
                v |= src.range_bits(0, n - first) << first;
            }
            self.words[j] |= v;
            bit += n;
        }
    }

    /// Indices of set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.iter_bits(false)
    }

    /// Indices of clear bits, ascending — the free-candidate scan, one
    /// `trailing_zeros` chase per word instead of a per-slot probe.
    pub fn zeros(&self) -> impl Iterator<Item = usize> + '_ {
        self.iter_bits(true)
    }

    fn iter_bits(&self, invert: bool) -> impl Iterator<Item = usize> + '_ {
        let len = self.len;
        self.words.iter().enumerate().flat_map(move |(j, &w)| {
            let mut w = if invert { !w } else { w };
            // Mask off the unused tail of the last word.
            if (j + 1) * 64 > len {
                w &= (1u64 << (len % 64)) - 1;
            }
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(j * 64 + b)
            })
        })
    }
}

/// The occupied-slot bits of one link's slot table: set bit = reserved.
///
/// A thin wrapper over [`SlotMask`] keeping the table-side invariants
/// (occupy only free slots, release only taken ones) `debug_assert`ed
/// in one place, with the underlying mask exposed for the word-wise
/// path merges of `NetworkSlots`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OccupancyMask {
    mask: SlotMask,
}

impl OccupancyMask {
    /// An all-free occupancy of `size` slots.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        OccupancyMask {
            mask: SlotMask::new(size),
        }
    }

    /// Number of slots tracked.
    pub fn size(&self) -> usize {
        self.mask.len()
    }

    /// Whether slot `index` is reserved.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn is_occupied(&self, index: usize) -> bool {
        self.mask.test(index)
    }

    /// Number of free slots (`size − popcount`).
    pub fn free_count(&self) -> usize {
        self.mask.len() - self.mask.count_ones()
    }

    /// Marks slot `index` reserved.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range; `debug_assert`s the slot was
    /// free (callers check ownership through the table's side index).
    pub fn occupy(&mut self, index: usize) {
        debug_assert!(!self.mask.test(index), "slot {index} double-occupied");
        self.mask.set(index);
    }

    /// Marks slot `index` free again.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range; `debug_assert`s the slot was
    /// reserved.
    pub fn release(&mut self, index: usize) {
        debug_assert!(self.mask.test(index), "slot {index} released while free");
        self.mask.clear(index);
    }

    /// The raw bit mask, for word-wise merges.
    pub fn mask(&self) -> &SlotMask {
        &self.mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_test_clear_roundtrip() {
        let mut m = SlotMask::new(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!m.test(i));
            m.set(i);
            assert!(m.test(i));
        }
        assert_eq!(m.count_ones(), 8);
        m.clear(64);
        assert!(!m.test(64));
        assert_eq!(m.count_ones(), 7);
        m.clear_all();
        assert_eq!(m.count_ones(), 0);
    }

    #[test]
    fn ones_and_zeros_scan_in_order() {
        let mut m = SlotMask::new(70);
        for i in [3, 64, 69] {
            m.set(i);
        }
        assert_eq!(m.ones().collect::<Vec<_>>(), vec![3, 64, 69]);
        let zeros: Vec<usize> = m.zeros().collect();
        assert_eq!(zeros.len(), 67);
        assert_eq!(zeros[0], 0);
        assert!(!zeros.contains(&64));
        assert_eq!(*zeros.last().unwrap(), 68);
    }

    #[test]
    fn intersects_and_or_assign() {
        let mut a = SlotMask::new(128);
        let mut b = SlotMask::new(128);
        a.set(5);
        b.set(100);
        assert!(!a.intersects(&b));
        b.set(5);
        assert!(a.intersects(&b));
        a.or_assign(&b);
        assert!(a.test(100));
        assert_eq!(a.count_ones(), 2);
    }

    /// `or_rotated` against the naive per-bit modulo definition, across
    /// word-aligned, sub-word and ragged lengths.
    #[test]
    fn rotation_matches_modulo_definition() {
        for &len in &[3usize, 8, 16, 63, 64, 65, 100, 128, 130, 192] {
            let mut src = SlotMask::new(len);
            // A deterministic scatter of bits.
            let mut x = 0x9e37_79b9_7f4a_7c15u64;
            for i in 0..len {
                x = x.wrapping_mul(0xd129_8a2e_03707_345).wrapping_add(1);
                if x & 3 == 0 {
                    src.set(i);
                }
            }
            for k in [0, 1, 2, len / 2, len.saturating_sub(1), len, len + 3] {
                let mut rot = SlotMask::new(len);
                rot.or_rotated(&src, k);
                for i in 0..len {
                    assert_eq!(
                        rot.test(i),
                        src.test((i + k) % len),
                        "len={len} k={k} bit={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn or_rotated_accumulates() {
        let mut a = SlotMask::new(8);
        let mut b = SlotMask::new(8);
        a.set(7); // slot 7 occupied on link with offset 1: base slot 6
        b.set(0); // slot 0 occupied on link with offset 2: base slot 6
        let mut acc = SlotMask::new(8);
        acc.or_rotated(&a, 1);
        acc.or_rotated(&b, 2);
        assert!(acc.test(6));
        assert_eq!(acc.count_ones(), 1);
    }

    #[test]
    fn occupancy_tracks_free_count() {
        let mut o = OccupancyMask::new(16);
        assert_eq!(o.free_count(), 16);
        o.occupy(3);
        o.occupy(15);
        assert!(o.is_occupied(3) && !o.is_occupied(4));
        assert_eq!(o.free_count(), 14);
        o.release(3);
        assert_eq!(o.free_count(), 15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_test_panics() {
        let m = SlotMask::new(8);
        let _ = m.test(8);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_length_rejected() {
        let _ = SlotMask::new(0);
    }
}
