//! Per-use-case slot state over all links of a topology.

use noc_topology::{LinkId, Topology};
use serde::{Deserialize, Serialize};

use crate::error::TdmaError;
use crate::mask::SlotMask;
use crate::spec::TdmaSpec;
use crate::stats;
use crate::table::{ConnId, SlotTable};

/// How to pick base slots among the feasible candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SlotPolicy {
    /// Take the lowest-numbered candidates. Fast, but clusters slots and so
    /// produces poor worst-case latencies.
    FirstFit,
    /// Pick candidates spread evenly around the table, minimizing the
    /// largest cyclic gap and hence the worst-case header latency. This is
    /// the slot-allocation optimization of the paper's companion work
    /// (Hansson et al., ISSS 2005).
    #[default]
    Spread,
}

/// The TDMA state of every link in the NoC for **one use-case**.
///
/// Algorithm 2 keeps one `NetworkSlots` (plus implied residual bandwidth)
/// per use-case: "Each use-case maintains separate data structures that
/// represent the available bandwidth and TDMA slots in the NoC for that
/// use-case."
///
/// Slot accounting subsumes bandwidth accounting: a link with `k` free
/// slots has `k × slot_bandwidth` residual capacity.
///
/// The conflict probes (`base_slot_free`, `free_base_slots`) work on a
/// *combined occupancy*: each link's bit mask rotated right by its path
/// position and OR-ed together, so bit `s` of the result is set exactly
/// when base slot `s` collides somewhere along the path. The
/// `(s + i) % S` wraparound of the pipelined slot-advance rule is folded
/// into the rotation — a handful of `u64` word ops per link instead of a
/// modulo per probed slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSlots {
    tables: Vec<SlotTable>,
    slots_per_table: usize,
}

impl NetworkSlots {
    /// Creates all-free slot state for every link of `topo`.
    pub fn new(topo: &Topology, spec: &TdmaSpec) -> Self {
        NetworkSlots {
            tables: (0..topo.link_count())
                .map(|_| SlotTable::new(spec.slots()))
                .collect(),
            slots_per_table: spec.slots(),
        }
    }

    /// Number of links tracked.
    pub fn link_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of slots per link table.
    pub fn slots_per_table(&self) -> usize {
        self.slots_per_table
    }

    /// The slot table of one link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn table(&self, link: LinkId) -> &SlotTable {
        &self.tables[link.index()]
    }

    /// Free slots on `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn free_slot_count(&self, link: LinkId) -> usize {
        self.tables[link.index()].free_count()
    }

    /// The smallest free-slot count along a path (the path's bottleneck).
    pub fn min_free_along(&self, path: &[LinkId]) -> usize {
        path.iter()
            .map(|&l| self.free_slot_count(l))
            .min()
            .unwrap_or(self.slots_per_table)
    }

    /// The mask of base slots that conflict anywhere along `path`: link
    /// `i`'s occupancy rotated by `i` (bit `s` ← bit `(s + i) % S`),
    /// OR-ed over the path. Bit `s` clear ⇔ base slot `s` is free on
    /// every link under the pipelined slot-advance rule.
    pub fn combined_occupancy(&self, path: &[LinkId]) -> SlotMask {
        let mut acc = SlotMask::new(self.slots_per_table);
        for (i, &l) in path.iter().enumerate() {
            acc.or_rotated(self.tables[l.index()].occupancy().mask(), i);
        }
        stats::record_fold(path.len(), acc.word_count(), self.slots_per_table);
        acc
    }

    /// Whether base slot `s` is free along the whole of `path` under the
    /// pipelined slot-advance rule (slot `s + i` on the `i`-th link).
    pub fn base_slot_free(&self, path: &[LinkId], s: usize) -> bool {
        !self.combined_occupancy(path).test(s)
    }

    /// All base slots that are free along `path`, ascending — the zero
    /// bits of one combined-occupancy fold.
    pub fn free_base_slots(&self, path: &[LinkId]) -> Vec<usize> {
        self.combined_occupancy(path).zeros().collect()
    }

    /// Finds `needed` base slots free along `path`, or `None` if fewer than
    /// `needed` candidates exist. `needed == 0` yields an empty reservation.
    pub fn find_base_slots(
        &self,
        path: &[LinkId],
        needed: usize,
        policy: SlotPolicy,
    ) -> Option<Vec<usize>> {
        if needed == 0 {
            return Some(Vec::new());
        }
        if needed > self.slots_per_table {
            return None;
        }
        let candidates = self.free_base_slots(path);
        if candidates.len() < needed {
            return None;
        }
        Some(match policy {
            SlotPolicy::FirstFit => candidates[..needed].to_vec(),
            SlotPolicy::Spread => {
                // Pick candidates at even strides through the (sorted)
                // candidate list — a cheap approximation of minimizing the
                // maximum cyclic gap.
                let n = candidates.len();
                let mut picked = Vec::with_capacity(needed);
                for j in 0..needed {
                    picked.push(candidates[j * n / needed]);
                }
                picked.dedup();
                // Strides can collide only if needed > n, excluded above —
                // but guard anyway by topping up from unused candidates.
                if picked.len() < needed {
                    let extra: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|c| !picked.contains(c))
                        .take(needed - picked.len())
                        .collect();
                    picked.extend(extra);
                }
                picked.sort_unstable();
                picked
            }
        })
    }

    /// Reserves `base_slots` for `conn` along `path` (slot `s + i` on the
    /// `i`-th link). The reservation is atomic: on failure nothing is
    /// changed.
    ///
    /// # Errors
    ///
    /// [`TdmaError::SlotOccupied`] if any required slot is taken,
    /// [`TdmaError::SlotOutOfRange`] for bad slot indices.
    pub fn reserve(
        &mut self,
        path: &[LinkId],
        base_slots: &[usize],
        conn: ConnId,
    ) -> Result<(), TdmaError> {
        for &s in base_slots {
            if s >= self.slots_per_table {
                return Err(TdmaError::SlotOutOfRange {
                    slot: s,
                    size: self.slots_per_table,
                });
            }
            for (i, &l) in path.iter().enumerate() {
                let idx = (s + i) % self.slots_per_table;
                if let Some(owner) = self.tables[l.index()].owner(idx) {
                    return Err(TdmaError::SlotOccupied {
                        link: l,
                        slot: idx,
                        owner,
                    });
                }
            }
        }
        for &s in base_slots {
            for (i, &l) in path.iter().enumerate() {
                let idx = (s + i) % self.slots_per_table;
                self.tables[l.index()]
                    .occupy(idx, conn)
                    .expect("checked free above");
            }
        }
        Ok(())
    }

    /// Releases a reservation made by [`NetworkSlots::reserve`] with the
    /// same arguments.
    ///
    /// # Errors
    ///
    /// [`TdmaError::NotOwner`] if any slot is not owned by `conn` (state is
    /// left unchanged in that case).
    pub fn release(
        &mut self,
        path: &[LinkId],
        base_slots: &[usize],
        conn: ConnId,
    ) -> Result<(), TdmaError> {
        for &s in base_slots {
            if s >= self.slots_per_table {
                return Err(TdmaError::SlotOutOfRange {
                    slot: s,
                    size: self.slots_per_table,
                });
            }
            for (i, &l) in path.iter().enumerate() {
                let idx = (s + i) % self.slots_per_table;
                if self.tables[l.index()].owner(idx) != Some(conn) {
                    return Err(TdmaError::NotOwner {
                        link: l,
                        slot: idx,
                        owner: self.tables[l.index()].owner(idx),
                    });
                }
            }
        }
        for &s in base_slots {
            for (i, &l) in path.iter().enumerate() {
                let idx = (s + i) % self.slots_per_table;
                self.tables[l.index()]
                    .release(idx, conn)
                    .expect("checked owner above");
            }
        }
        Ok(())
    }

    /// Frees every slot owned by `conn` anywhere in the network, returning
    /// how many slots were released. Used to undo a connection wholesale
    /// (e.g. during annealing moves).
    pub fn release_connection(&mut self, conn: ConnId) -> usize {
        let mut released = 0;
        for table in &mut self.tables {
            let owned: Vec<usize> = table
                .reservations()
                .filter(|&(_, c)| c == conn)
                .map(|(i, _)| i)
                .collect();
            for i in owned {
                table.release(i, conn).expect("listed as owner");
                released += 1;
            }
        }
        released
    }

    /// Fraction of all slots that are reserved, over the whole network.
    pub fn utilization(&self) -> f64 {
        let total = self.tables.len() * self.slots_per_table;
        if total == 0 {
            return 0.0;
        }
        let used: usize = self.tables.iter().map(|t| t.size() - t.free_count()).sum();
        used as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::units::{Frequency, LinkWidth};
    use noc_topology::MeshBuilder;

    fn setup() -> (Topology, Vec<LinkId>, TdmaSpec) {
        let mesh = MeshBuilder::new(1, 2).nis_per_switch(1).build().unwrap();
        let topo = mesh.into_topology();
        let ni0 = topo.nis()[0];
        let ni1 = topo.nis()[1];
        let s0 = topo.ni_switch(ni0).unwrap();
        let s1 = topo.ni_switch(ni1).unwrap();
        let path = vec![
            topo.link_between(ni0, s0).unwrap(),
            topo.link_between(s0, s1).unwrap(),
            topo.link_between(s1, ni1).unwrap(),
        ];
        let spec = TdmaSpec::new(8, Frequency::from_mhz(500), LinkWidth::BITS_32);
        (topo, path, spec)
    }

    #[test]
    fn pipelined_reservation_offsets_slots() {
        let (topo, path, spec) = setup();
        let mut ns = NetworkSlots::new(&topo, &spec);
        let conn = ConnId::new(1);
        ns.reserve(&path, &[2], conn).unwrap();
        assert_eq!(ns.table(path[0]).owner(2), Some(conn));
        assert_eq!(ns.table(path[1]).owner(3), Some(conn));
        assert_eq!(ns.table(path[2]).owner(4), Some(conn));
        assert!(ns.table(path[1]).is_free(2));
    }

    #[test]
    fn wraparound_offsets() {
        let (topo, path, spec) = setup();
        let mut ns = NetworkSlots::new(&topo, &spec);
        ns.reserve(&path, &[7], ConnId::new(1)).unwrap();
        assert_eq!(ns.table(path[1]).owner(0), Some(ConnId::new(1)));
        assert_eq!(ns.table(path[2]).owner(1), Some(ConnId::new(1)));
    }

    /// Regression for the rotate-based probe at the table boundary: a
    /// reservation near slot `S - 1` wraps onto the low slots of later
    /// links, and the combined-occupancy fold must report exactly the
    /// same conflicts as the per-slot `(s + i) % S` scan it replaced.
    #[test]
    fn probe_wraps_at_table_boundary() {
        let (topo, path, spec) = setup();
        let mut ns = NetworkSlots::new(&topo, &spec);
        // Slot 0 taken on the *third* link only: under the slot-advance
        // rule that blocks base slot S - 2 = 6 (6 + 2 ≡ 0 mod 8).
        ns.reserve(&path[2..], &[0], ConnId::new(1)).unwrap();
        assert!(!ns.base_slot_free(&path, 6));
        assert!(ns.base_slot_free(&path, 0));
        assert_eq!(ns.free_base_slots(&path), vec![0, 1, 2, 3, 4, 5, 7]);

        // Pile on a wrap from the other side: base 7 on the full path
        // occupies slots 7, 0, 1 across the links.
        ns.reserve(&path, &[7], ConnId::new(2)).unwrap();
        let naive: Vec<usize> = (0..8)
            .filter(|&s| {
                path.iter()
                    .enumerate()
                    .all(|(i, &l)| ns.table(l).is_free((s + i) % 8))
            })
            .collect();
        assert_eq!(ns.free_base_slots(&path), naive);
    }

    #[test]
    fn conflicting_reservations_rejected_atomically() {
        let (topo, path, spec) = setup();
        let mut ns = NetworkSlots::new(&topo, &spec);
        ns.reserve(&path, &[0, 1], ConnId::new(1)).unwrap();
        // Base slot 1 collides on every link; 5 is fine. Failure must not
        // leave slot 5 reserved.
        let err = ns.reserve(&path, &[5, 1], ConnId::new(2)).unwrap_err();
        assert!(matches!(err, TdmaError::SlotOccupied { .. }));
        assert!(ns.base_slot_free(&path, 5));
        ns.reserve(&path, &[5], ConnId::new(2)).unwrap();
    }

    #[test]
    fn find_base_slots_excludes_taken() {
        let (topo, path, spec) = setup();
        let mut ns = NetworkSlots::new(&topo, &spec);
        ns.reserve(&path, &[0, 3], ConnId::new(1)).unwrap();
        let free = ns.free_base_slots(&path);
        assert_eq!(free, vec![1, 2, 4, 5, 6, 7]);
        assert_eq!(
            ns.find_base_slots(&path, 6, SlotPolicy::FirstFit)
                .unwrap()
                .len(),
            6
        );
        assert!(ns.find_base_slots(&path, 7, SlotPolicy::FirstFit).is_none());
    }

    #[test]
    fn spread_policy_spaces_slots() {
        let (topo, path, spec) = setup();
        let ns = NetworkSlots::new(&topo, &spec);
        let picked = ns.find_base_slots(&path, 2, SlotPolicy::Spread).unwrap();
        assert_eq!(
            picked,
            vec![0, 4],
            "2 of 8 free slots should sit half a table apart"
        );
        let ff = ns.find_base_slots(&path, 2, SlotPolicy::FirstFit).unwrap();
        assert_eq!(ff, vec![0, 1]);
        // Spread yields a strictly better worst-case latency here.
        assert!(
            spec.worst_case_latency_cycles(&picked, path.len())
                < spec.worst_case_latency_cycles(&ff, path.len())
        );
    }

    #[test]
    fn zero_needed_is_empty() {
        let (topo, path, spec) = setup();
        let ns = NetworkSlots::new(&topo, &spec);
        assert_eq!(
            ns.find_base_slots(&path, 0, SlotPolicy::Spread),
            Some(vec![])
        );
        assert!(ns.find_base_slots(&path, 9, SlotPolicy::Spread).is_none());
    }

    #[test]
    fn release_restores_state() {
        let (topo, path, spec) = setup();
        let mut ns = NetworkSlots::new(&topo, &spec);
        let before = ns.clone();
        ns.reserve(&path, &[1, 5], ConnId::new(1)).unwrap();
        assert_ne!(ns, before);
        ns.release(&path, &[1, 5], ConnId::new(1)).unwrap();
        assert_eq!(ns, before);
    }

    #[test]
    fn release_checks_ownership() {
        let (topo, path, spec) = setup();
        let mut ns = NetworkSlots::new(&topo, &spec);
        ns.reserve(&path, &[1], ConnId::new(1)).unwrap();
        let err = ns.release(&path, &[1], ConnId::new(2)).unwrap_err();
        assert!(matches!(err, TdmaError::NotOwner { .. }));
        // State unchanged: still owned by conn 1.
        assert_eq!(ns.table(path[0]).owner(1), Some(ConnId::new(1)));
    }

    #[test]
    fn release_connection_sweeps_everything() {
        let (topo, path, spec) = setup();
        let mut ns = NetworkSlots::new(&topo, &spec);
        ns.reserve(&path, &[0, 2, 4], ConnId::new(9)).unwrap();
        ns.reserve(&path[..1], &[6], ConnId::new(5)).unwrap();
        let released = ns.release_connection(ConnId::new(9));
        assert_eq!(released, 9); // 3 base slots x 3 links
        assert_eq!(ns.table(path[0]).free_count(), 7); // only conn 5 remains
        assert_eq!(ns.release_connection(ConnId::new(9)), 0);
    }

    #[test]
    fn utilization_tracks_usage() {
        let (topo, path, spec) = setup();
        let mut ns = NetworkSlots::new(&topo, &spec);
        assert_eq!(ns.utilization(), 0.0);
        ns.reserve(&path, &[0], ConnId::new(1)).unwrap();
        let total = (topo.link_count() * 8) as f64;
        assert!((ns.utilization() - 3.0 / total).abs() < 1e-12);
    }

    #[test]
    fn min_free_along_is_bottleneck() {
        let (topo, path, spec) = setup();
        let mut ns = NetworkSlots::new(&topo, &spec);
        ns.reserve(&path[1..2], &[0, 1, 2], ConnId::new(1)).unwrap();
        assert_eq!(ns.min_free_along(&path), 5);
        assert_eq!(ns.min_free_along(&[]), 8);
    }

    #[test]
    fn fold_counters_advance() {
        let (topo, path, spec) = setup();
        let ns = NetworkSlots::new(&topo, &spec);
        let (w0, p0) = (
            crate::stats::conflict_word_tests(),
            crate::stats::legacy_slot_probes(),
        );
        let _ = ns.free_base_slots(&path);
        // 3 links, 8 slots: one word each, 8 legacy probes each. Other
        // tests in this binary fold concurrently (the counters are
        // process-global), so assert lower bounds, not exact deltas.
        assert!(crate::stats::conflict_word_tests() - w0 >= 3);
        assert!(crate::stats::legacy_slot_probes() - p0 >= 24);
    }
}
