//! Process-global counters for the word-wise conflict probes.
//!
//! `noc-tdma` sits below the `nocmap` perf telemetry in the crate DAG,
//! so the mask-layer counters live here and `nocmap::perf` folds them
//! into its snapshots. Two counters, both pure functions of the call
//! sequence (no early exits), so they are identical at any worker
//! count — the same schedule-independence contract as the rest of the
//! telemetry:
//!
//! * [`conflict_word_tests`] — `u64`-word operations actually performed
//!   while folding per-link occupancies into a path's combined conflict
//!   mask (`links × ⌈S/64⌉` per fold);
//! * [`legacy_slot_probes`] — the per-slot probes the pre-mask
//!   representation would have needed for the same answers
//!   (`links × S` per fold, no early exit), kept as the denominator
//!   that shows the word-for-slot replacement rate (~64× at `S = 128`).

use std::sync::atomic::{AtomicU64, Ordering};

static CONFLICT_WORD_TESTS: AtomicU64 = AtomicU64::new(0);
static LEGACY_SLOT_PROBES: AtomicU64 = AtomicU64::new(0);

/// Records one combined-occupancy fold over `links` tables of
/// `words` words covering `slots` slots each.
pub(crate) fn record_fold(links: usize, words: usize, slots: usize) {
    CONFLICT_WORD_TESTS.fetch_add((links * words) as u64, Ordering::Relaxed);
    LEGACY_SLOT_PROBES.fetch_add((links * slots) as u64, Ordering::Relaxed);
}

/// Total `u64`-word conflict operations performed so far.
pub fn conflict_word_tests() -> u64 {
    CONFLICT_WORD_TESTS.load(Ordering::Relaxed)
}

/// Total per-slot probes the legacy representation would have needed.
pub fn legacy_slot_probes() -> u64 {
    LEGACY_SLOT_PROBES.load(Ordering::Relaxed)
}

/// Resets both counters to zero.
pub fn reset() {
    CONFLICT_WORD_TESTS.store(0, Ordering::Relaxed);
    LEGACY_SLOT_PROBES.store(0, Ordering::Relaxed);
}
