use std::error::Error;
use std::fmt;

use noc_topology::LinkId;

use crate::table::ConnId;

/// Errors raised by TDMA slot reservation and release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TdmaError {
    /// A required slot is already owned by another connection.
    SlotOccupied {
        /// Link whose table has the conflict.
        link: LinkId,
        /// Conflicting slot index on that link.
        slot: usize,
        /// Current owner.
        owner: ConnId,
    },
    /// A slot index exceeded the table size.
    SlotOutOfRange {
        /// Offending slot index.
        slot: usize,
        /// Table size.
        size: usize,
    },
    /// A release targeted a slot the connection does not own.
    NotOwner {
        /// Link whose table was inspected.
        link: LinkId,
        /// Slot index on that link.
        slot: usize,
        /// Actual owner (`None` if the slot is free).
        owner: Option<ConnId>,
    },
}

impl fmt::Display for TdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdmaError::SlotOccupied { link, slot, owner } => {
                write!(f, "slot {slot} on link {link} is already owned by {owner}")
            }
            TdmaError::SlotOutOfRange { slot, size } => {
                write!(f, "slot index {slot} out of range for a {size}-slot table")
            }
            TdmaError::NotOwner { link, slot, owner } => match owner {
                Some(o) => write!(
                    f,
                    "slot {slot} on link {link} is owned by {o}, not the releaser"
                ),
                None => write!(f, "slot {slot} on link {link} is free, nothing to release"),
            },
        }
    }
}

impl Error for TdmaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_trait_bounds() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<TdmaError>();
    }

    #[test]
    fn display_messages() {
        let e = TdmaError::SlotOutOfRange { slot: 20, size: 16 };
        assert_eq!(
            e.to_string(),
            "slot index 20 out of range for a 16-slot table"
        );
    }
}
