//! A single link's TDMA slot table.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::mask::OccupancyMask;

/// Identifier of a GT connection, chosen by the caller (the mapper packs a
/// use-case index and flow index into one id). Slot tables record the owner
/// of every reserved slot so configurations can be audited and released.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConnId(u64);

impl ConnId {
    /// Creates a connection id from a raw value.
    pub const fn new(raw: u64) -> Self {
        ConnId(raw)
    }

    /// Packs a (use-case, flow) pair into a connection id.
    pub const fn from_usecase_flow(usecase: u32, flow: u32) -> Self {
        ConnId(((usecase as u64) << 32) | flow as u64)
    }

    /// The raw id value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The use-case half of an id created by [`ConnId::from_usecase_flow`].
    pub const fn usecase(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The flow half of an id created by [`ConnId::from_usecase_flow`].
    pub const fn flow(self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}:{}", self.usecase(), self.flow())
    }
}

/// Why a [`SlotTable`] mutation was refused.
///
/// The table's contract: **mutators** ([`SlotTable::occupy`],
/// [`SlotTable::release`]) report *every* failure — including an
/// out-of-range index — through this type and never panic; **read-only
/// accessors** ([`SlotTable::is_free`], [`SlotTable::owner`]) panic on
/// out-of-range indices, uniformly documented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlotError {
    /// The slot index does not exist in a table of `size` slots.
    OutOfRange {
        /// The offending index.
        slot: usize,
        /// The table size.
        size: usize,
    },
    /// The slot is already reserved by `owner`.
    Occupied {
        /// Current owner of the slot.
        owner: ConnId,
    },
    /// The slot is not owned by the releasing connection.
    NotOwner {
        /// Actual owner, or `None` if the slot is free.
        owner: Option<ConnId>,
    },
}

impl fmt::Display for SlotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotError::OutOfRange { slot, size } => {
                write!(f, "slot {slot} out of range for table of {size} slots")
            }
            SlotError::Occupied { owner } => write!(f, "slot already owned by {owner}"),
            SlotError::NotOwner { owner: Some(c) } => write!(f, "slot owned by {c}, not caller"),
            SlotError::NotOwner { owner: None } => write!(f, "slot is free, nothing to release"),
        }
    }
}

impl std::error::Error for SlotError {}

/// One link's slot table: `S` slots, each free or owned by a connection.
///
/// Occupancy lives in a bit-packed [`OccupancyMask`] (one bit per slot,
/// popcount for [`SlotTable::free_count`], word-wise merges for the
/// network-level conflict probes); connection *ownership* lives in a
/// slot-sorted side index consulted only by the cold audit paths
/// ([`SlotTable::owner`], [`SlotTable::reservations`], release checks).
/// Cloning a table — the parallel mapper clones per-group slot state
/// wholesale — therefore copies `S` bits plus the live reservations
/// instead of `S` `Option<ConnId>` words.
///
/// ```
/// use noc_tdma::{ConnId, SlotTable};
///
/// let mut t = SlotTable::new(8);
/// assert_eq!(t.free_count(), 8);
/// t.occupy(3, ConnId::new(1)).unwrap();
/// assert!(!t.is_free(3));
/// assert_eq!(t.owner(3), Some(ConnId::new(1)));
/// t.release(3, ConnId::new(1)).unwrap();
/// assert_eq!(t.free_count(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotTable {
    occupancy: OccupancyMask,
    /// `(slot, owner)` pairs sorted by slot — the side index backing
    /// [`SlotTable::owner`] and [`SlotTable::reservations`].
    owners: Vec<(usize, ConnId)>,
}

impl SlotTable {
    /// Creates an all-free table of `size` slots.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "slot table must have at least one slot");
        SlotTable {
            occupancy: OccupancyMask::new(size),
            owners: Vec::new(),
        }
    }

    /// Number of slots.
    pub fn size(&self) -> usize {
        self.occupancy.size()
    }

    /// Number of free slots (a popcount over the occupancy words).
    pub fn free_count(&self) -> usize {
        self.occupancy.free_count()
    }

    /// The bit-packed occupancy of this table (set bit = reserved slot),
    /// for word-wise conflict merges at the network level.
    pub fn occupancy(&self) -> &OccupancyMask {
        &self.occupancy
    }

    /// Returns `true` if slot `index` is free.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn is_free(&self, index: usize) -> bool {
        !self.occupancy.is_occupied(index)
    }

    /// The owner of slot `index`, if reserved.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn owner(&self, index: usize) -> Option<ConnId> {
        assert!(
            index < self.size(),
            "slot {index} out of range ({})",
            self.size()
        );
        self.owners
            .binary_search_by_key(&index, |&(s, _)| s)
            .ok()
            .map(|i| self.owners[i].1)
    }

    /// Marks slot `index` as owned by `conn`.
    ///
    /// # Errors
    ///
    /// [`SlotError::OutOfRange`] if `index` does not exist,
    /// [`SlotError::Occupied`] if the slot is already reserved.
    pub fn occupy(&mut self, index: usize, conn: ConnId) -> Result<(), SlotError> {
        if index >= self.size() {
            return Err(SlotError::OutOfRange {
                slot: index,
                size: self.size(),
            });
        }
        match self.owners.binary_search_by_key(&index, |&(s, _)| s) {
            Ok(i) => Err(SlotError::Occupied {
                owner: self.owners[i].1,
            }),
            Err(i) => {
                self.occupancy.occupy(index);
                self.owners.insert(i, (index, conn));
                Ok(())
            }
        }
    }

    /// Frees slot `index`, checking it is owned by `conn`.
    ///
    /// # Errors
    ///
    /// [`SlotError::OutOfRange`] if `index` does not exist,
    /// [`SlotError::NotOwner`] when the slot is free or owned by another
    /// connection (carrying the actual owner, if any).
    pub fn release(&mut self, index: usize, conn: ConnId) -> Result<(), SlotError> {
        if index >= self.size() {
            return Err(SlotError::OutOfRange {
                slot: index,
                size: self.size(),
            });
        }
        match self.owners.binary_search_by_key(&index, |&(s, _)| s) {
            Ok(i) if self.owners[i].1 == conn => {
                self.occupancy.release(index);
                self.owners.remove(i);
                Ok(())
            }
            Ok(i) => Err(SlotError::NotOwner {
                owner: Some(self.owners[i].1),
            }),
            Err(_) => Err(SlotError::NotOwner { owner: None }),
        }
    }

    /// Iterates over `(slot_index, owner)` pairs of reserved slots, in
    /// ascending slot order.
    pub fn reservations(&self) -> impl Iterator<Item = (usize, ConnId)> + '_ {
        self.owners.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conn_id_packing_roundtrips() {
        let c = ConnId::from_usecase_flow(7, 42);
        assert_eq!(c.usecase(), 7);
        assert_eq!(c.flow(), 42);
        assert_eq!(format!("{c}"), "c7:42");
        assert_eq!(ConnId::new(c.raw()), c);
    }

    #[test]
    fn occupy_and_release() {
        let mut t = SlotTable::new(4);
        let a = ConnId::new(1);
        let b = ConnId::new(2);
        t.occupy(0, a).unwrap();
        t.occupy(1, b).unwrap();
        assert_eq!(t.free_count(), 2);
        assert_eq!(t.occupy(0, b), Err(SlotError::Occupied { owner: a }));
        assert_eq!(t.release(0, b), Err(SlotError::NotOwner { owner: Some(a) }));
        assert_eq!(t.release(2, a), Err(SlotError::NotOwner { owner: None }));
        t.release(0, a).unwrap();
        assert_eq!(t.free_count(), 3);
        assert!(t.is_free(0));
    }

    #[test]
    fn mutators_report_out_of_range_as_errors() {
        let mut t = SlotTable::new(4);
        let a = ConnId::new(1);
        assert_eq!(
            t.occupy(4, a),
            Err(SlotError::OutOfRange { slot: 4, size: 4 })
        );
        assert_eq!(
            t.release(9, a),
            Err(SlotError::OutOfRange { slot: 9, size: 4 })
        );
        // The failed mutations changed nothing.
        assert_eq!(t.free_count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_panics_out_of_range() {
        let t = SlotTable::new(4);
        let _ = t.owner(4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn is_free_panics_out_of_range() {
        let t = SlotTable::new(4);
        let _ = t.is_free(4);
    }

    #[test]
    fn reservations_iterator() {
        let mut t = SlotTable::new(8);
        t.occupy(5, ConnId::new(9)).unwrap();
        t.occupy(2, ConnId::new(3)).unwrap();
        let res: Vec<_> = t.reservations().collect();
        assert_eq!(res, vec![(2, ConnId::new(3)), (5, ConnId::new(9))]);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_size_rejected() {
        let _ = SlotTable::new(0);
    }

    #[test]
    fn free_count_invariant_under_churn() {
        let mut t = SlotTable::new(16);
        for i in 0..16 {
            t.occupy(i, ConnId::new(i as u64)).unwrap();
        }
        assert_eq!(t.free_count(), 0);
        for i in (0..16).step_by(2) {
            t.release(i, ConnId::new(i as u64)).unwrap();
        }
        assert_eq!(t.free_count(), 8);
        assert_eq!(t.reservations().count(), 8);
    }

    #[test]
    fn occupancy_mask_mirrors_table() {
        let mut t = SlotTable::new(70);
        t.occupy(0, ConnId::new(1)).unwrap();
        t.occupy(69, ConnId::new(2)).unwrap();
        assert_eq!(t.occupancy().mask().ones().collect::<Vec<_>>(), vec![0, 69]);
        assert_eq!(t.occupancy().free_count(), 68);
    }
}
