//! A single link's TDMA slot table.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a GT connection, chosen by the caller (the mapper packs a
/// use-case index and flow index into one id). Slot tables record the owner
/// of every reserved slot so configurations can be audited and released.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConnId(u64);

impl ConnId {
    /// Creates a connection id from a raw value.
    pub const fn new(raw: u64) -> Self {
        ConnId(raw)
    }

    /// Packs a (use-case, flow) pair into a connection id.
    pub const fn from_usecase_flow(usecase: u32, flow: u32) -> Self {
        ConnId(((usecase as u64) << 32) | flow as u64)
    }

    /// The raw id value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The use-case half of an id created by [`ConnId::from_usecase_flow`].
    pub const fn usecase(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The flow half of an id created by [`ConnId::from_usecase_flow`].
    pub const fn flow(self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}:{}", self.usecase(), self.flow())
    }
}

/// One link's slot table: `S` slots, each free or owned by a connection.
///
/// ```
/// use noc_tdma::{ConnId, SlotTable};
///
/// let mut t = SlotTable::new(8);
/// assert_eq!(t.free_count(), 8);
/// t.occupy(3, ConnId::new(1)).unwrap();
/// assert!(!t.is_free(3));
/// assert_eq!(t.owner(3), Some(ConnId::new(1)));
/// t.release(3, ConnId::new(1)).unwrap();
/// assert_eq!(t.free_count(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotTable {
    slots: Vec<Option<ConnId>>,
    free: usize,
}

impl SlotTable {
    /// Creates an all-free table of `size` slots.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "slot table must have at least one slot");
        SlotTable {
            slots: vec![None; size],
            free: size,
        }
    }

    /// Number of slots.
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// Number of free slots.
    pub fn free_count(&self) -> usize {
        self.free
    }

    /// Returns `true` if slot `index` is free.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn is_free(&self, index: usize) -> bool {
        self.slots[index].is_none()
    }

    /// The owner of slot `index`, if reserved.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn owner(&self, index: usize) -> Option<ConnId> {
        self.slots[index]
    }

    /// Marks slot `index` as owned by `conn`.
    ///
    /// # Errors
    ///
    /// Returns the current owner if the slot is already reserved.
    pub fn occupy(&mut self, index: usize, conn: ConnId) -> Result<(), ConnId> {
        match self.slots[index] {
            Some(owner) => Err(owner),
            None => {
                self.slots[index] = Some(conn);
                self.free -= 1;
                Ok(())
            }
        }
    }

    /// Frees slot `index`, checking it is owned by `conn`.
    ///
    /// # Errors
    ///
    /// Returns the actual owner (or `None` if the slot was free) when the
    /// expected owner does not match.
    pub fn release(&mut self, index: usize, conn: ConnId) -> Result<(), Option<ConnId>> {
        match self.slots[index] {
            Some(owner) if owner == conn => {
                self.slots[index] = None;
                self.free += 1;
                Ok(())
            }
            other => Err(other),
        }
    }

    /// Iterates over `(slot_index, owner)` pairs of reserved slots.
    pub fn reservations(&self) -> impl Iterator<Item = (usize, ConnId)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.map(|c| (i, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conn_id_packing_roundtrips() {
        let c = ConnId::from_usecase_flow(7, 42);
        assert_eq!(c.usecase(), 7);
        assert_eq!(c.flow(), 42);
        assert_eq!(format!("{c}"), "c7:42");
        assert_eq!(ConnId::new(c.raw()), c);
    }

    #[test]
    fn occupy_and_release() {
        let mut t = SlotTable::new(4);
        let a = ConnId::new(1);
        let b = ConnId::new(2);
        t.occupy(0, a).unwrap();
        t.occupy(1, b).unwrap();
        assert_eq!(t.free_count(), 2);
        assert_eq!(t.occupy(0, b), Err(a));
        assert_eq!(t.release(0, b), Err(Some(a)));
        assert_eq!(t.release(2, a), Err(None));
        t.release(0, a).unwrap();
        assert_eq!(t.free_count(), 3);
        assert!(t.is_free(0));
    }

    #[test]
    fn reservations_iterator() {
        let mut t = SlotTable::new(8);
        t.occupy(5, ConnId::new(9)).unwrap();
        t.occupy(2, ConnId::new(3)).unwrap();
        let res: Vec<_> = t.reservations().collect();
        assert_eq!(res, vec![(2, ConnId::new(3)), (5, ConnId::new(9))]);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_size_rejected() {
        let _ = SlotTable::new(0);
    }

    #[test]
    fn free_count_invariant_under_churn() {
        let mut t = SlotTable::new(16);
        for i in 0..16 {
            t.occupy(i, ConnId::new(i as u64)).unwrap();
        }
        assert_eq!(t.free_count(), 0);
        for i in (0..16).step_by(2) {
            t.release(i, ConnId::new(i as u64)).unwrap();
        }
        assert_eq!(t.free_count(), 8);
        assert_eq!(t.reservations().count(), 8);
    }
}
