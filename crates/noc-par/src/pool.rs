//! The persistent work-stealing pool behind the fork-join primitives.
//!
//! Before this module existed every parallel region spawned (and joined)
//! its own team of scoped threads. Regions in this workspace are coarse,
//! but the mapper, annealer and suite runners enter thousands of them per
//! design sweep, and on hot paths the spawn/join pair dominated the
//! per-region overhead. The pool amortises that cost: worker threads are
//! spawned **lazily, once per process**, parked on a condvar between
//! regions, and re-used by every subsequent region.
//!
//! # How a region runs
//!
//! A region (one `par_map`, `join` or `scope` call) wanting `w` workers
//! enqueues `w - 1` *tickets* — claims on helper participation — and then
//! runs its own share of the work on the calling thread. A pool worker
//! that pops a ticket runs the region's worker closure to completion.
//! When the caller finishes its share it **cancels** every ticket of its
//! region that is still unclaimed (their work has already been absorbed
//! by the work-stealing deques) and blocks only for the claimed ones.
//! Helpers are therefore pure acceleration: with a busy pool the caller
//! simply does all the work itself — work-conserving, never blocking on
//! an unavailable worker, and trivially deadlock-free (a waiting
//! submitter never claims tickets, so wait-for edges only point at
//! workers actively finishing a closure).
//!
//! # Why the one `unsafe` block is sound
//!
//! Pool workers are `'static` threads, but region closures borrow the
//! caller's stack. The lifetime is erased when a ticket is enqueued; the
//! borrow is protected by the region protocol above, enforced by a drop
//! guard ([`run_region`]): **no path returns (or unwinds) past the
//! borrowed closure while a ticket referencing it is unclaimed or
//! running.** This is exactly the argument `std::thread::scope` makes,
//! minus the thread spawn.

#![allow(unsafe_code)]

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Pool involvement of one completed parallel region, as reported by
/// [`crate::last_region_stats`]. A region that ran sequentially (width
/// 1, or a single-item map) never touches the pool and reports all
/// zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionStats {
    /// Helper tickets enqueued for the region (`width - 1`).
    pub tickets_submitted: usize,
    /// Tickets a pool worker actually picked up.
    pub tickets_claimed: usize,
    /// Tickets cancelled unclaimed when the caller finished first.
    pub tickets_cancelled: usize,
    /// Total time claimed tickets spent queued before a worker picked
    /// them up, summed across helpers.
    pub queue_wait_ns: u64,
}

impl RegionStats {
    /// The all-zero value (`const`, unlike `Default::default()`).
    pub const ZERO: RegionStats = RegionStats {
        tickets_submitted: 0,
        tickets_claimed: 0,
        tickets_cancelled: 0,
        queue_wait_ns: 0,
    };
}

/// Hard cap on pool threads: far above any sane `NOC_PAR_THREADS`, low
/// enough that a typo cannot exhaust process limits.
const MAX_POOL_WORKERS: usize = 256;

/// Shared state of one region: how many claimed tickets have finished,
/// and the first panic any helper produced.
struct RegionState {
    finished: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Queue wait of claimed tickets, accumulated at claim time — every
    /// claim happens before the corresponding finish, so the sum is
    /// complete once the region's claimed tickets are awaited.
    queue_wait_ns: AtomicU64,
}

impl RegionState {
    fn new() -> Self {
        RegionState {
            finished: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
            queue_wait_ns: AtomicU64::new(0),
        }
    }

    fn finish_one(&self) {
        let mut finished = self.finished.lock().unwrap();
        *finished += 1;
        self.done.notify_all();
    }

    fn wait_finished(&self, expected: usize) {
        let mut finished = self.finished.lock().unwrap();
        while *finished < expected {
            finished = self.done.wait(finished).unwrap();
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap().take()
    }
}

/// One helper-participation claim on a region. `work` points at the
/// region's worker closure on the submitting thread's stack; see the
/// module docs for why the erased lifetime is sound.
struct Ticket {
    work: *const (dyn Fn() + Sync),
    region: Arc<RegionState>,
    region_id: u64,
    enqueued: Instant,
}

// SAFETY: `work` is only dereferenced while the submitting region is
// blocked in `run_region` (tickets are cancelled or awaited before it
// returns), so sending the pointer to a pool worker cannot outlive the
// closure it points at. `region` is an `Arc` and `region_id` is plain
// data.
unsafe impl Send for Ticket {}

struct Inner {
    queue: VecDeque<Ticket>,
    workers: usize,
}

/// The process-global worker pool.
pub(crate) struct Pool {
    inner: Mutex<Inner>,
    work_ready: Condvar,
    next_region: AtomicU64,
    spawned: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    pub(crate) fn global() -> &'static Pool {
        POOL.get_or_init(|| Pool {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                workers: 0,
            }),
            work_ready: Condvar::new(),
            next_region: AtomicU64::new(0),
            spawned: AtomicUsize::new(0),
        })
    }

    /// Total OS threads this pool has ever spawned (they are never torn
    /// down, so this is also the current worker count). Exposed for the
    /// pool-reuse regression tests.
    pub(crate) fn threads_spawned(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Enqueues `helpers` tickets for `work`, growing the worker team if
    /// the pool is smaller than the region wants (capped). Returns the
    /// region id used to cancel unclaimed tickets later.
    fn submit(
        &'static self,
        helpers: usize,
        work: *const (dyn Fn() + Sync),
        region: &Arc<RegionState>,
    ) -> u64 {
        let region_id = self.next_region.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap();
        let want = helpers.min(MAX_POOL_WORKERS);
        while inner.workers < want {
            inner.workers += 1;
            self.spawned.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name("noc-par-worker".into())
                .spawn(move || self.worker_main())
                .expect("cannot spawn noc-par pool worker");
        }
        let enqueued = Instant::now();
        for _ in 0..helpers {
            inner.queue.push_back(Ticket {
                work,
                region: Arc::clone(region),
                region_id,
                enqueued,
            });
        }
        drop(inner);
        self.work_ready.notify_all();
        region_id
    }

    /// Removes every still-unclaimed ticket of `region_id`, returning how
    /// many were cancelled.
    fn cancel(&self, region_id: u64) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let before = inner.queue.len();
        inner.queue.retain(|t| t.region_id != region_id);
        before - inner.queue.len()
    }

    fn worker_main(&'static self) {
        loop {
            let ticket = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if let Some(t) = inner.queue.pop_front() {
                        break t;
                    }
                    inner = self.work_ready.wait(inner).unwrap();
                }
            };
            let region = Arc::clone(&ticket.region);
            region.queue_wait_ns.fetch_add(
                ticket.enqueued.elapsed().as_nanos() as u64,
                Ordering::Relaxed,
            );
            let result = {
                // SAFETY: the ticket was claimed (removed from the
                // queue), so the submitting region waits for
                // `finish_one` below before releasing the borrow.
                let work = unsafe { &*ticket.work };
                catch_unwind(AssertUnwindSafe(work))
            };
            drop(ticket);
            if let Err(payload) = result {
                region.record_panic(payload);
            }
            region.finish_one();
        }
    }
}

/// Cancels unclaimed tickets and waits out claimed ones — including when
/// the caller's own share of the work unwinds, which is what keeps the
/// lifetime erasure sound on the panic path.
struct RegionGuard<'a> {
    pool: &'static Pool,
    region: &'a RegionState,
    region_id: u64,
    submitted: usize,
    cancelled: &'a Cell<usize>,
}

impl Drop for RegionGuard<'_> {
    fn drop(&mut self) {
        let cancelled = self.pool.cancel(self.region_id);
        self.cancelled.set(cancelled);
        self.region.wait_finished(self.submitted - cancelled);
    }
}

/// Runs one parallel region: `caller` executes on the current thread
/// while up to `helpers` pool workers run `work` (once each). Returns
/// the region's pool involvement after every claimed helper finished;
/// re-raises the first helper panic.
pub(crate) fn run_region(
    helpers: usize,
    work: &(dyn Fn() + Sync),
    caller: impl FnOnce(),
) -> RegionStats {
    if helpers == 0 {
        caller();
        return RegionStats::ZERO;
    }
    let pool = Pool::global();
    let region = Arc::new(RegionState::new());
    // SAFETY: erasing the closure's lifetime to enqueue it; the guard
    // below guarantees no ticket survives this function (cancelled or
    // finished), on both the return and unwind paths.
    let work: *const (dyn Fn() + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(work) };
    let region_id = pool.submit(helpers, work, &region);
    let cancelled = Cell::new(0);
    let guard = RegionGuard {
        pool,
        region: &region,
        region_id,
        submitted: helpers,
        cancelled: &cancelled,
    };
    caller();
    drop(guard);
    if let Some(payload) = region.take_panic() {
        resume_unwind(payload);
    }
    let cancelled = cancelled.get();
    RegionStats {
        tickets_submitted: helpers,
        tickets_claimed: helpers - cancelled,
        tickets_cancelled: cancelled,
        queue_wait_ns: region.queue_wait_ns.load(Ordering::Relaxed),
    }
}
