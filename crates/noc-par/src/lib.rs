//! `noc-par` — deterministic fork-join parallelism for the NoC mapping
//! stack.
//!
//! The container this workspace builds in has no crates.io access, so
//! `rayon` is unavailable; this crate hand-rolls the small subset the
//! stack needs: [`join`], scoped [`spawn`](Scope::spawn), and an indexed
//! [`par_map`] whose results are always reduced **in input order**, so
//! output is bit-identical regardless of thread count.
//!
//! # Execution model
//!
//! Parallel regions execute on a **lazily initialised persistent pool**
//! (`pool.rs`): worker threads are spawned once per process (on the first
//! region that wants them), parked between regions, and re-used by every
//! later region — entering a region costs a queue push and a condvar
//! notify, not a thread spawn/join pair. The calling thread always
//! participates in its own region's work; pool workers are pure
//! acceleration, and a region whose helpers are all busy simply runs
//! everything on the caller (work-conserving, deadlock-free).
//!
//! Within a region, tasks are dealt into per-worker deques in contiguous
//! index blocks; a worker pops from the front of its own deque and, when
//! empty, **steals from the back** of its neighbours' deques.
//! [`pool_threads_spawned`] exposes the pool's lifetime thread count so
//! tests can prove regions re-use workers instead of spawning.
//!
//! # Determinism contract
//!
//! * [`par_map`] writes each result into the slot of its input index and
//!   returns the slots in input order — the *schedule* is racy, the
//!   *reduction* is not.
//! * [`try_par_map`] reports the error of the **smallest failing index**,
//!   matching what a sequential left-to-right loop would return.
//! * With an effective thread count of 1 every primitive degenerates to
//!   plain sequential execution on the calling thread (no threads are
//!   spawned at all).
//!
//! Callers remain responsible for making each *task* a pure function of
//! its inputs (per-task RNG seeds derived from `(base_seed, index)`, no
//! shared accumulators with order-sensitive arithmetic).
//!
//! # Choosing the thread count
//!
//! Resolution order, first match wins:
//!
//! 1. an active [`with_threads`] override on the calling thread (regions
//!    propagate it to their workers, so nesting inherits it),
//! 2. the `NOC_PAR_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod pool;

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use pool::run_region;
pub use pool::RegionStats;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "NOC_PAR_THREADS";

/// Total OS threads the persistent pool has spawned in this process so
/// far. Workers are never torn down, so two identical-width regions in
/// sequence leave this unchanged — the regression tests use exactly that
/// property to prove pool re-use.
pub fn pool_threads_spawned() -> usize {
    pool::Pool::global().threads_spawned()
}

thread_local! {
    /// Per-thread override installed by [`with_threads`] (and propagated
    /// into region workers).
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };

    /// Pool involvement of the most recent region completed on this
    /// thread; see [`last_region_stats`].
    static LAST_REGION_STATS: Cell<RegionStats> = const { Cell::new(RegionStats::ZERO) };
}

/// Pool involvement of the most recent [`par_map`], [`join`] or
/// [`scope`] call that completed on the calling thread. A region that
/// ran sequentially (width 1, single item) reports [`RegionStats::ZERO`].
pub fn last_region_stats() -> RegionStats {
    LAST_REGION_STATS.with(Cell::get)
}

/// Publishes a region's stats: thread-local for [`last_region_stats`],
/// and as schedule-class span attributes (dropped from ops-mode traces —
/// claims and queue waits are racy by nature).
fn record_region(span: &noc_obs::Span, stats: RegionStats) {
    span.sched_attr("tickets_claimed", stats.tickets_claimed);
    span.sched_attr("queue_wait_us", stats.queue_wait_ns / 1_000);
    LAST_REGION_STATS.with(|c| c.set(stats));
}

/// Runs `f` with the effective thread count pinned to `max(threads, 1)`
/// on this thread (and any parallel regions it enters, transitively).
///
/// This is the race-free alternative to mutating [`THREADS_ENV`] from
/// tests: overrides are thread-local, so concurrently running tests
/// cannot observe each other's setting.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let previous = THREAD_OVERRIDE.with(|c| c.replace(Some(threads.max(1))));
    // Restore on unwind too, so a panicking test doesn't poison later
    // tests running on the same thread.
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(previous);
    f()
}

/// The effective worker count for parallel regions entered from this
/// thread: [`with_threads`] override, else [`THREADS_ENV`], else
/// available parallelism (min 1). A value of 1 means sequential
/// execution.
pub fn current_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Work-stealing deques for one region: `pop_own` takes from the front
/// of the worker's own deque, `steal` from the back of the first
/// non-empty victim (scanning right from the thief).
struct TaskQueues<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
}

impl<T> TaskQueues<T> {
    /// Deals `items` into `workers` deques in contiguous blocks, so that
    /// under zero stealing each worker handles a cache-friendly index
    /// range.
    fn deal(items: Vec<T>, workers: usize) -> Self {
        let n = items.len();
        let per = n.div_ceil(workers);
        let mut queues: Vec<Mutex<VecDeque<T>>> = Vec::with_capacity(workers);
        let mut iter = items.into_iter();
        for _ in 0..workers {
            queues.push(Mutex::new(iter.by_ref().take(per).collect()));
        }
        TaskQueues { queues }
    }

    fn pop_own(&self, worker: usize) -> Option<T> {
        self.queues[worker].lock().unwrap().pop_front()
    }

    fn steal(&self, thief: usize) -> Option<T> {
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (thief + offset) % n;
            if let Some(task) = self.queues[victim].lock().unwrap().pop_back() {
                return Some(task);
            }
        }
        None
    }

    fn next_task(&self, worker: usize) -> Option<T> {
        self.pop_own(worker).or_else(|| self.steal(worker))
    }
}

/// Runs `f(index, item)` over all items and returns the results **in
/// input order**, regardless of thread count or schedule.
///
/// With an effective thread count of 1 (or fewer than 2 items) the map
/// runs inline on the calling thread. Worker panics are propagated to
/// the caller (first worker in spawn order wins).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    // Workers inherit the caller's *configured* width, not the
    // item-count clamp below — a 2-item region at 8 threads must not
    // throttle nested regions inside those 2 tasks down to 2.
    let configured = current_threads();
    let threads = configured.min(n);
    // One trace lane per *item* (not per worker): lane `i` holds item
    // `i`'s spans regardless of which thread ran it, so the merged tree
    // is schedule-independent. Both execution paths below run every item
    // through `tasks.run`, keeping the sequential and parallel traces
    // structurally identical.
    let span = noc_obs::span("par_map");
    span.attr("items", n);
    let tasks = noc_obs::task_set(n);
    if threads <= 1 {
        let out = items
            .into_iter()
            .enumerate()
            .map(|(i, t)| tasks.run(i, || f(i, t)))
            .collect();
        record_region(&span, RegionStats::ZERO);
        return out;
    }

    let queues = TaskQueues::deal(items.into_iter().enumerate().collect(), threads);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots_mutex = Mutex::new(&mut slots);

    let worker_loop = |worker: usize| {
        with_threads(configured, || {
            let mut local: Vec<(usize, R)> = Vec::new();
            while let Some((index, item)) = queues.next_task(worker) {
                local.push((index, tasks.run(index, || f(index, item))));
            }
            let mut slots = slots_mutex.lock().unwrap();
            for (index, result) in local {
                slots[index] = Some(result);
            }
        })
    };
    // Helpers draw distinct deque slots 1..threads; the caller is slot 0.
    // A cancelled ticket simply never draws — its deque is drained by
    // stealing.
    let next_slot = AtomicUsize::new(1);
    let helper = || worker_loop(next_slot.fetch_add(1, Ordering::Relaxed));
    let stats = run_region(threads - 1, &helper, || worker_loop(0));
    record_region(&span, stats);
    drop(slots_mutex);

    slots
        .into_iter()
        .map(|slot| slot.expect("every index executed exactly once"))
        .collect()
}

/// Fallible [`par_map`]: `Ok` with all results in input order, or the
/// `Err` of the **smallest failing index** — exactly the error a
/// sequential left-to-right loop would have returned first.
///
/// All tasks run to completion even when one fails (no cancellation);
/// failed runs are expected to be cheap in this workspace because the
/// mapper aborts a whole attempt on the first unroutable pair.
pub fn try_par_map<T, R, E, F>(items: Vec<T>, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(usize, T) -> Result<R, E> + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for result in par_map(items, f) {
        out.push(result?);
    }
    Ok(out)
}

/// Runs `a` and `b`, potentially in parallel, and returns both results.
///
/// `a` always runs on the calling thread; with an effective thread count
/// of 1, `a` then `b` run sequentially. With more threads, `b` is
/// offered to the persistent pool — and reclaimed by the caller (run
/// inline after `a`) if no worker picked it up, so a busy pool degrades
/// to sequential execution instead of blocking.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
{
    let threads = current_threads();
    // Lane 0 is `a`, lane 1 is `b`, on every execution path (sequential,
    // helper-run, reclaimed), so the trace never depends on who ran `b`.
    let span = noc_obs::span("join");
    let tasks = noc_obs::task_set(2);
    if threads <= 1 {
        let ra = tasks.run(0, a);
        let rb = tasks.run(1, b);
        record_region(&span, RegionStats::ZERO);
        return (ra, rb);
    }
    let b_cell: Mutex<Option<B>> = Mutex::new(Some(b));
    let rb_slot: Mutex<Option<std::thread::Result<RB>>> = Mutex::new(None);
    let helper = || {
        let taken = b_cell.lock().unwrap().take();
        if let Some(b) = taken {
            let result = catch_unwind(AssertUnwindSafe(|| {
                tasks.run(1, || with_threads(threads, b))
            }));
            *rb_slot.lock().unwrap() = Some(result);
        }
    };
    let mut ra = None;
    let stats = run_region(1, &helper, || ra = Some(tasks.run(0, a)));
    record_region(&span, stats);
    let ra = ra.expect("caller closure ran");
    // After the region, the helper either ran to completion (slot set)
    // or its ticket was cancelled (b still in the cell).
    let rb = match rb_slot.into_inner().unwrap() {
        Some(Ok(rb)) => rb,
        Some(Err(payload)) => resume_unwind(payload),
        None => {
            let b = b_cell
                .into_inner()
                .unwrap()
                .expect("ticket cancelled implies b untaken");
            tasks.run(1, b)
        }
    };
    (ra, rb)
}

/// A fork-join scope handed to the closure of [`scope`]: tasks spawned
/// on it may borrow data living outside the `scope` call and may spawn
/// further tasks; all of them complete before `scope` returns.
pub struct Scope<'env> {
    tasks: Mutex<Vec<Box<dyn FnOnce(&Scope<'env>) + Send + 'env>>>,
    in_flight: AtomicUsize,
}

impl<'env> Scope<'env> {
    /// Queues `task` for execution by the scope's worker team. Spawn
    /// order is **not** execution order; tasks needing ordered results
    /// should write into pre-indexed slots (or use [`par_map`]).
    pub fn spawn(&self, task: impl FnOnce(&Scope<'env>) + Send + 'env) {
        self.tasks.lock().unwrap().push(Box::new(task));
    }
}

/// Creates a fork-join scope: runs `f`, then executes every task spawned
/// on the scope (including tasks spawned by other tasks) across the
/// effective thread count, returning `f`'s result once all tasks
/// finished.
pub fn scope<'env, R>(f: impl FnOnce(&Scope<'env>) -> R) -> R {
    let sc = Scope {
        tasks: Mutex::new(Vec::new()),
        in_flight: AtomicUsize::new(0),
    };
    let result = f(&sc);

    // Decrements `in_flight` even when the task unwinds: a leaked
    // increment would leave idle workers spinning on "someone is still
    // running" forever instead of letting the panic propagate.
    struct InFlight<'a>(&'a AtomicUsize);
    impl Drop for InFlight<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }

    let run_worker = |sc: &Scope<'env>| loop {
        let task = sc.tasks.lock().unwrap().pop();
        match task {
            Some(task) => {
                sc.in_flight.fetch_add(1, Ordering::SeqCst);
                let _in_flight = InFlight(&sc.in_flight);
                task(sc);
            }
            // Another worker may still be executing a task that spawns
            // more; stay alive until the scope is fully quiescent.
            None if sc.in_flight.load(Ordering::SeqCst) > 0 => std::thread::yield_now(),
            None => break,
        }
    };

    // Scope tasks have no deterministic lane index (spawn order is not
    // execution order), so their spans are suppressed with `untraced` at
    // every width — otherwise a width-1 run would record what a width-4
    // run drops on cursor-less workers, breaking trace determinism.
    let threads = current_threads();
    if threads <= 1 {
        noc_obs::untraced(|| run_worker(&sc));
        LAST_REGION_STATS.with(|c| c.set(RegionStats::ZERO));
        return result;
    }
    let helper = || with_threads(threads, || run_worker(&sc));
    let stats = run_region(threads - 1, &helper, || {
        noc_obs::untraced(|| run_worker(&sc))
    });
    LAST_REGION_STATS.with(|c| c.set(stats));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        for threads in [1, 2, 3, 8] {
            let got = with_threads(threads, || {
                par_map((0..100).collect::<Vec<u64>>(), |i, x| {
                    assert_eq!(i as u64, x);
                    x * x
                })
            });
            let want: Vec<u64> = (0..100).map(|x| x * x).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert_eq!(par_map(empty, |_, x: u32| x), Vec::<u32>::new());
        assert_eq!(
            with_threads(8, || par_map(vec![7], |_, x: u32| x + 1)),
            vec![8]
        );
    }

    #[test]
    fn try_par_map_reports_smallest_failing_index() {
        for threads in [1, 2, 8] {
            let err = with_threads(threads, || {
                try_par_map((0..64).collect::<Vec<usize>>(), |_, x| {
                    if x % 7 == 3 {
                        Err(x)
                    } else {
                        Ok(x)
                    }
                })
            })
            .unwrap_err();
            assert_eq!(err, 3, "threads = {threads}");
        }
    }

    #[test]
    fn try_par_map_ok_round_trips() {
        let got: Result<Vec<i32>, ()> =
            with_threads(4, || try_par_map(vec![1, 2, 3], |_, x| Ok(x * 10)));
        assert_eq!(got.unwrap(), vec![10, 20, 30]);
    }

    #[test]
    fn join_returns_both_results() {
        for threads in [1, 4] {
            let (a, b) = with_threads(threads, || join(|| 6 * 7, || "ok"));
            assert_eq!((a, b), (42, "ok"));
        }
    }

    #[test]
    fn scope_runs_all_spawned_tasks_including_nested() {
        for threads in [1, 2, 8] {
            let counter = AtomicUsize::new(0);
            with_threads(threads, || {
                scope(|s| {
                    for _ in 0..10 {
                        s.spawn(|s| {
                            counter.fetch_add(1, Ordering::SeqCst);
                            s.spawn(|_| {
                                counter.fetch_add(1, Ordering::SeqCst);
                            });
                        });
                    }
                });
            });
            assert_eq!(counter.load(Ordering::SeqCst), 20, "threads = {threads}");
        }
    }

    #[test]
    fn with_threads_propagates_into_workers() {
        // Nested regions inside workers must see the caller's override.
        let seen = with_threads(3, || par_map(vec![(); 3], |_, ()| current_threads()));
        assert_eq!(seen, vec![3, 3, 3]);
    }

    #[test]
    fn item_count_clamp_does_not_throttle_nested_regions() {
        // A 2-item region at 8 configured threads spawns 2 workers, but
        // nested regions inside those tasks still get the full width.
        let seen = with_threads(8, || par_map(vec![(), ()], |_, ()| current_threads()));
        assert_eq!(seen, vec![8, 8]);
    }

    #[test]
    fn scope_task_panic_propagates_instead_of_hanging() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                scope(|s| {
                    s.spawn(|_| panic!("task boom"));
                    for _ in 0..8 {
                        s.spawn(|_| std::thread::yield_now());
                    }
                });
            })
        });
        assert!(result.is_err(), "the panic must reach the caller");
    }

    #[test]
    fn sequential_fallback_spawns_nothing() {
        // With one thread the closure runs on the calling thread, so a
        // non-Sync-unfriendly pattern like a thread-local is observable.
        thread_local! {
            static MARK: Cell<u32> = const { Cell::new(0) };
        }
        MARK.with(|m| m.set(17));
        let seen = with_threads(1, || par_map(vec![(), ()], |_, ()| MARK.with(Cell::get)));
        assert_eq!(seen, vec![17, 17]);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // A mildly stateful per-task computation (seeded by index) must
        // reduce identically at every width.
        let run = |threads: usize| {
            with_threads(threads, || {
                par_map((0..257).collect::<Vec<u64>>(), |i, seed| {
                    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64;
                    for _ in 0..100 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                    }
                    x
                })
            })
        };
        let baseline = run(1);
        for threads in [2, 3, 8, 16] {
            assert_eq!(run(threads), baseline, "threads = {threads}");
        }
    }

    #[test]
    fn pool_workers_are_reused_across_regions() {
        // Warm the pool to this test binary's widest region — 16, used
        // by `deterministic_across_thread_counts`, which may run
        // concurrently — then prove that running more regions spawns
        // nothing new: after warm-up no test in this process can grow
        // the pool, so the count is stable.
        let _ = with_threads(16, || par_map((0..64).collect::<Vec<u64>>(), |_, x| x));
        let run = || with_threads(8, || par_map((0..64).collect::<Vec<u64>>(), |_, x| x * 2));
        let expected: Vec<u64> = (0..64).map(|x| x * 2).collect();
        assert_eq!(run(), expected);
        let warmed = pool_threads_spawned();
        assert!(warmed >= 1, "a 16-wide region must have enlisted the pool");
        for _ in 0..32 {
            assert_eq!(run(), expected);
        }
        assert_eq!(
            pool_threads_spawned(),
            warmed,
            "sequential regions must re-use pooled workers, not spawn"
        );
    }

    #[test]
    fn caller_absorbs_work_when_pool_is_saturated() {
        // Deeply nested regions: inner regions find every pool worker
        // busy with the outer region, so their tickets are cancelled and
        // the calling task does all the work itself — results unchanged.
        let got = with_threads(4, || {
            par_map((0..8).collect::<Vec<u64>>(), |_, outer| {
                let inner = par_map((0..8).collect::<Vec<u64>>(), |_, x| x + outer);
                inner.iter().sum::<u64>()
            })
        });
        let want: Vec<u64> = (0..8)
            .map(|outer| (0..8).map(|x| x + outer).sum())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn join_reclaims_cancelled_second_closure() {
        // Saturate the pool from inside a region, then join: even when
        // no helper is free, both closures must run exactly once.
        let count = AtomicUsize::new(0);
        let (a, b) = with_threads(4, || {
            join(
                || {
                    count.fetch_add(1, Ordering::SeqCst);
                    1
                },
                || {
                    count.fetch_add(1, Ordering::SeqCst);
                    2
                },
            )
        });
        assert_eq!((a, b), (1, 2));
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn width1_region_reports_zero_pool_involvement() {
        let got = with_threads(1, || par_map(vec![1, 2, 3], |_, x: u32| x * 2));
        assert_eq!(got, vec![2, 4, 6]);
        assert_eq!(
            last_region_stats(),
            RegionStats::ZERO,
            "a sequential region must not touch the pool"
        );
        let _ = with_threads(1, || join(|| 1, || 2));
        assert_eq!(last_region_stats(), RegionStats::ZERO);
    }

    #[test]
    fn region_stats_account_for_every_ticket() {
        let _ = with_threads(4, || {
            par_map((0..64).collect::<Vec<u64>>(), |_, x| x.wrapping_mul(3))
        });
        let stats = last_region_stats();
        assert_eq!(stats.tickets_submitted, 3, "width 4 enqueues 3 tickets");
        assert_eq!(
            stats.tickets_claimed + stats.tickets_cancelled,
            stats.tickets_submitted,
            "every ticket is either claimed or cancelled"
        );
        if stats.tickets_claimed == 0 {
            assert_eq!(stats.queue_wait_ns, 0, "no claim, no queue wait");
        }
    }

    // The only test in this binary that installs the (process-global)
    // noc-obs collector: concurrent tests never record (their threads
    // hold no cursor), so they cannot disturb this trace.
    #[test]
    fn op_clock_region_trace_is_identical_at_any_width() {
        let run = |threads: usize| {
            assert!(noc_obs::install(noc_obs::TraceMode::Ops));
            with_threads(threads, || {
                par_map((0..8).collect::<Vec<u64>>(), |i, _| {
                    let sp = noc_obs::span("task");
                    sp.attr("index", i);
                    noc_obs::tick(1 + i as u64);
                })
            });
            noc_obs::finish().unwrap().render_text()
        };
        let baseline = run(1);
        assert!(baseline.contains("par_map #1"), "got:\n{baseline}");
        assert!(baseline.contains("items=8"));
        for threads in [2, 4] {
            assert_eq!(run(threads), baseline, "threads = {threads}");
        }
    }

    #[test]
    fn panics_propagate_to_caller() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map(vec![0, 1, 2, 3], |_, x| {
                    if x == 2 {
                        panic!("boom");
                    }
                    x
                })
            })
        });
        assert!(result.is_err());
    }
}
