//! `noc-par` — deterministic fork-join parallelism for the NoC mapping
//! stack.
//!
//! The container this workspace builds in has no crates.io access, so
//! `rayon` is unavailable; this crate hand-rolls the small subset the
//! stack needs: [`join`], scoped [`spawn`](Scope::spawn), and an indexed
//! [`par_map`] whose results are always reduced **in input order**, so
//! output is bit-identical regardless of thread count.
//!
//! # Execution model
//!
//! Each parallel region spawns a team of workers (scoped threads, so
//! borrowed closures need no `'static` bound and no `unsafe`). Tasks are
//! dealt into per-worker deques in contiguous index blocks; a worker pops
//! from the front of its own deque and, when empty, **steals from the
//! back** of its neighbours' deques. Regions are coarse in this workspace
//! (a whole annealing chain, a whole mesh-size mapping attempt, a whole
//! figure suite), so per-region thread spawning is noise compared to the
//! work each task performs.
//!
//! # Determinism contract
//!
//! * [`par_map`] writes each result into the slot of its input index and
//!   returns the slots in input order — the *schedule* is racy, the
//!   *reduction* is not.
//! * [`try_par_map`] reports the error of the **smallest failing index**,
//!   matching what a sequential left-to-right loop would return.
//! * With an effective thread count of 1 every primitive degenerates to
//!   plain sequential execution on the calling thread (no threads are
//!   spawned at all).
//!
//! Callers remain responsible for making each *task* a pure function of
//! its inputs (per-task RNG seeds derived from `(base_seed, index)`, no
//! shared accumulators with order-sensitive arithmetic).
//!
//! # Choosing the thread count
//!
//! Resolution order, first match wins:
//!
//! 1. an active [`with_threads`] override on the calling thread (regions
//!    propagate it to their workers, so nesting inherits it),
//! 2. the `NOC_PAR_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "NOC_PAR_THREADS";

thread_local! {
    /// Per-thread override installed by [`with_threads`] (and propagated
    /// into region workers).
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `f` with the effective thread count pinned to `max(threads, 1)`
/// on this thread (and any parallel regions it enters, transitively).
///
/// This is the race-free alternative to mutating [`THREADS_ENV`] from
/// tests: overrides are thread-local, so concurrently running tests
/// cannot observe each other's setting.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let previous = THREAD_OVERRIDE.with(|c| c.replace(Some(threads.max(1))));
    // Restore on unwind too, so a panicking test doesn't poison later
    // tests running on the same thread.
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(previous);
    f()
}

/// The effective worker count for parallel regions entered from this
/// thread: [`with_threads`] override, else [`THREADS_ENV`], else
/// available parallelism (min 1). A value of 1 means sequential
/// execution.
pub fn current_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Work-stealing deques for one region: `pop_own` takes from the front
/// of the worker's own deque, `steal` from the back of the first
/// non-empty victim (scanning right from the thief).
struct TaskQueues<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
}

impl<T> TaskQueues<T> {
    /// Deals `items` into `workers` deques in contiguous blocks, so that
    /// under zero stealing each worker handles a cache-friendly index
    /// range.
    fn deal(items: Vec<T>, workers: usize) -> Self {
        let n = items.len();
        let per = n.div_ceil(workers);
        let mut queues: Vec<Mutex<VecDeque<T>>> = Vec::with_capacity(workers);
        let mut iter = items.into_iter();
        for _ in 0..workers {
            queues.push(Mutex::new(iter.by_ref().take(per).collect()));
        }
        TaskQueues { queues }
    }

    fn pop_own(&self, worker: usize) -> Option<T> {
        self.queues[worker].lock().unwrap().pop_front()
    }

    fn steal(&self, thief: usize) -> Option<T> {
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (thief + offset) % n;
            if let Some(task) = self.queues[victim].lock().unwrap().pop_back() {
                return Some(task);
            }
        }
        None
    }

    fn next_task(&self, worker: usize) -> Option<T> {
        self.pop_own(worker).or_else(|| self.steal(worker))
    }
}

/// Runs `f(index, item)` over all items and returns the results **in
/// input order**, regardless of thread count or schedule.
///
/// With an effective thread count of 1 (or fewer than 2 items) the map
/// runs inline on the calling thread. Worker panics are propagated to
/// the caller (first worker in spawn order wins).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    // Workers inherit the caller's *configured* width, not the
    // item-count clamp below — a 2-item region at 8 threads must not
    // throttle nested regions inside those 2 tasks down to 2.
    let configured = current_threads();
    let threads = configured.min(n);
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let queues = TaskQueues::deal(items.into_iter().enumerate().collect(), threads);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots_mutex = Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let queues = &queues;
            let f = &f;
            let slots_mutex = &slots_mutex;
            handles.push(scope.spawn(move || {
                with_threads(configured, || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    while let Some((index, item)) = queues.next_task(worker) {
                        local.push((index, f(index, item)));
                    }
                    let mut slots = slots_mutex.lock().unwrap();
                    for (index, result) in local {
                        slots[index] = Some(result);
                    }
                })
            }));
        }
        for handle in handles {
            if let Err(payload) = handle.join() {
                resume_unwind(payload);
            }
        }
    });
    drop(slots_mutex);

    slots
        .into_iter()
        .map(|slot| slot.expect("every index executed exactly once"))
        .collect()
}

/// Fallible [`par_map`]: `Ok` with all results in input order, or the
/// `Err` of the **smallest failing index** — exactly the error a
/// sequential left-to-right loop would have returned first.
///
/// All tasks run to completion even when one fails (no cancellation);
/// failed runs are expected to be cheap in this workspace because the
/// mapper aborts a whole attempt on the first unroutable pair.
pub fn try_par_map<T, R, E, F>(items: Vec<T>, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(usize, T) -> Result<R, E> + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for result in par_map(items, f) {
        out.push(result?);
    }
    Ok(out)
}

/// Runs `a` and `b`, potentially in parallel, and returns both results.
///
/// `a` always runs on the calling thread; with an effective thread count
/// of 1, `a` then `b` run sequentially.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
{
    let threads = current_threads();
    if threads <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(move || with_threads(threads, b));
        let ra = a();
        let rb = match handle.join() {
            Ok(rb) => rb,
            Err(payload) => resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// A fork-join scope handed to the closure of [`scope`]: tasks spawned
/// on it may borrow data living outside the `scope` call and may spawn
/// further tasks; all of them complete before `scope` returns.
pub struct Scope<'env> {
    tasks: Mutex<Vec<Box<dyn FnOnce(&Scope<'env>) + Send + 'env>>>,
    in_flight: AtomicUsize,
}

impl<'env> Scope<'env> {
    /// Queues `task` for execution by the scope's worker team. Spawn
    /// order is **not** execution order; tasks needing ordered results
    /// should write into pre-indexed slots (or use [`par_map`]).
    pub fn spawn(&self, task: impl FnOnce(&Scope<'env>) + Send + 'env) {
        self.tasks.lock().unwrap().push(Box::new(task));
    }
}

/// Creates a fork-join scope: runs `f`, then executes every task spawned
/// on the scope (including tasks spawned by other tasks) across the
/// effective thread count, returning `f`'s result once all tasks
/// finished.
pub fn scope<'env, R>(f: impl FnOnce(&Scope<'env>) -> R) -> R {
    let sc = Scope {
        tasks: Mutex::new(Vec::new()),
        in_flight: AtomicUsize::new(0),
    };
    let result = f(&sc);

    // Decrements `in_flight` even when the task unwinds: a leaked
    // increment would leave idle workers spinning on "someone is still
    // running" forever instead of letting the panic propagate.
    struct InFlight<'a>(&'a AtomicUsize);
    impl Drop for InFlight<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }

    let run_worker = |sc: &Scope<'env>| loop {
        let task = sc.tasks.lock().unwrap().pop();
        match task {
            Some(task) => {
                sc.in_flight.fetch_add(1, Ordering::SeqCst);
                let _in_flight = InFlight(&sc.in_flight);
                task(sc);
            }
            // Another worker may still be executing a task that spawns
            // more; stay alive until the scope is fully quiescent.
            None if sc.in_flight.load(Ordering::SeqCst) > 0 => std::thread::yield_now(),
            None => break,
        }
    };

    let threads = current_threads();
    if threads <= 1 {
        run_worker(&sc);
        return result;
    }
    std::thread::scope(|ts| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let sc = &sc;
            let run_worker = &run_worker;
            handles.push(ts.spawn(move || with_threads(threads, || run_worker(sc))));
        }
        for handle in handles {
            if let Err(payload) = handle.join() {
                resume_unwind(payload);
            }
        }
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        for threads in [1, 2, 3, 8] {
            let got = with_threads(threads, || {
                par_map((0..100).collect::<Vec<u64>>(), |i, x| {
                    assert_eq!(i as u64, x);
                    x * x
                })
            });
            let want: Vec<u64> = (0..100).map(|x| x * x).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert_eq!(par_map(empty, |_, x: u32| x), Vec::<u32>::new());
        assert_eq!(
            with_threads(8, || par_map(vec![7], |_, x: u32| x + 1)),
            vec![8]
        );
    }

    #[test]
    fn try_par_map_reports_smallest_failing_index() {
        for threads in [1, 2, 8] {
            let err = with_threads(threads, || {
                try_par_map((0..64).collect::<Vec<usize>>(), |_, x| {
                    if x % 7 == 3 {
                        Err(x)
                    } else {
                        Ok(x)
                    }
                })
            })
            .unwrap_err();
            assert_eq!(err, 3, "threads = {threads}");
        }
    }

    #[test]
    fn try_par_map_ok_round_trips() {
        let got: Result<Vec<i32>, ()> =
            with_threads(4, || try_par_map(vec![1, 2, 3], |_, x| Ok(x * 10)));
        assert_eq!(got.unwrap(), vec![10, 20, 30]);
    }

    #[test]
    fn join_returns_both_results() {
        for threads in [1, 4] {
            let (a, b) = with_threads(threads, || join(|| 6 * 7, || "ok"));
            assert_eq!((a, b), (42, "ok"));
        }
    }

    #[test]
    fn scope_runs_all_spawned_tasks_including_nested() {
        for threads in [1, 2, 8] {
            let counter = AtomicUsize::new(0);
            with_threads(threads, || {
                scope(|s| {
                    for _ in 0..10 {
                        s.spawn(|s| {
                            counter.fetch_add(1, Ordering::SeqCst);
                            s.spawn(|_| {
                                counter.fetch_add(1, Ordering::SeqCst);
                            });
                        });
                    }
                });
            });
            assert_eq!(counter.load(Ordering::SeqCst), 20, "threads = {threads}");
        }
    }

    #[test]
    fn with_threads_propagates_into_workers() {
        // Nested regions inside workers must see the caller's override.
        let seen = with_threads(3, || par_map(vec![(); 3], |_, ()| current_threads()));
        assert_eq!(seen, vec![3, 3, 3]);
    }

    #[test]
    fn item_count_clamp_does_not_throttle_nested_regions() {
        // A 2-item region at 8 configured threads spawns 2 workers, but
        // nested regions inside those tasks still get the full width.
        let seen = with_threads(8, || par_map(vec![(), ()], |_, ()| current_threads()));
        assert_eq!(seen, vec![8, 8]);
    }

    #[test]
    fn scope_task_panic_propagates_instead_of_hanging() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                scope(|s| {
                    s.spawn(|_| panic!("task boom"));
                    for _ in 0..8 {
                        s.spawn(|_| std::thread::yield_now());
                    }
                });
            })
        });
        assert!(result.is_err(), "the panic must reach the caller");
    }

    #[test]
    fn sequential_fallback_spawns_nothing() {
        // With one thread the closure runs on the calling thread, so a
        // non-Sync-unfriendly pattern like a thread-local is observable.
        thread_local! {
            static MARK: Cell<u32> = const { Cell::new(0) };
        }
        MARK.with(|m| m.set(17));
        let seen = with_threads(1, || par_map(vec![(), ()], |_, ()| MARK.with(Cell::get)));
        assert_eq!(seen, vec![17, 17]);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // A mildly stateful per-task computation (seeded by index) must
        // reduce identically at every width.
        let run = |threads: usize| {
            with_threads(threads, || {
                par_map((0..257).collect::<Vec<u64>>(), |i, seed| {
                    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64;
                    for _ in 0..100 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                    }
                    x
                })
            })
        };
        let baseline = run(1);
        for threads in [2, 3, 8, 16] {
            assert_eq!(run(threads), baseline, "threads = {threads}");
        }
    }

    #[test]
    fn panics_propagate_to_caller() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map(vec![0, 1, 2, 3], |_, x| {
                    if x == 2 {
                        panic!("boom");
                    }
                    x
                })
            })
        });
        assert!(result.is_err());
    }
}
