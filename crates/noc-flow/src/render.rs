//! Fixed-width table renderers shared by both CLIs.
//!
//! One renderer per [`ExperimentOutput`] family, returning the exact
//! bytes the pre-redesign `experiments` binary printed — the workspace
//! golden tests (`tests/flow_goldens.rs`) diff these renderings against
//! captured pre-redesign outputs, so do not change a space here without
//! re-pinning the goldens.

use std::fmt::Write as _;

use crate::runner::{
    AblationPoint, AreaPoint, BeBurstPoint, Comparison, DvsPoint, ExperimentOutput, FrontierPoint,
    Headline, ParallelPoint, PerfPoint, ResiliencePoint, RuntimePoint, ServicePoint, SpeedupPoint,
    VerifyPoint,
};

/// Renders a comparison table (Figures 6(a)–(c)).
pub fn render_comparisons(title: &str, comps: &[Comparison]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = writeln!(
        out,
        "{:<8} {:>8} {:>8} {:>12}",
        "bench", "ours", "WC", "ours/WC"
    );
    for c in comps {
        let fmt = |v: Option<usize>| v.map_or("fail".to_string(), |n| n.to_string());
        let norm = c
            .normalized()
            .map_or("-".to_string(), |n| format!("{n:.3}"));
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>8} {:>12}",
            c.label,
            fmt(c.ours),
            fmt(c.wc),
            norm
        );
    }
    out
}

fn render_area(title: &str, points: &[AreaPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = writeln!(out, "{:>10} {:>10} {:>12}", "MHz", "switches", "area (mm2)");
    for p in points {
        let s = p.switches.map_or("fail".into(), |n: usize| n.to_string());
        let a = p.area_mm2.map_or("-".into(), |a| format!("{a:.3}"));
        let _ = writeln!(out, "{:>10} {:>10} {:>12}", p.frequency.as_mhz_f64(), s, a);
    }
    out
}

fn render_dvs(title: &str, points: &[DvsPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = writeln!(
        out,
        "{:<8} {:>12} per-use-case min MHz",
        "design", "savings"
    );
    for p in points {
        let mhz: Vec<String> = p
            .per_use_case_mhz
            .iter()
            .map(|f| format!("{f:.0}"))
            .collect();
        let _ = writeln!(
            out,
            "{:<8} {:>11.1}% [{}]",
            p.label,
            100.0 * p.savings,
            mhz.join(", ")
        );
    }
    out
}

fn render_parallel(title: &str, points: &[ParallelPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = writeln!(out, "{:>10} {:>14}", "parallel", "min MHz");
    for p in points {
        let f = p
            .frequency
            .map_or("infeasible".into(), |f| format!("{:.0}", f.as_mhz_f64()));
        let _ = writeln!(out, "{:>10} {:>14}", p.parallel, f);
    }
    out
}

fn render_verify(title: &str, points: &[VerifyPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>12} {:>11} {:>11} {:>10}",
        "design", "use-cases", "connections", "contention", "late words", "delivered"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>12} {:>11} {:>11} {:>10}",
            p.label,
            p.use_cases,
            p.connections,
            p.contention,
            p.late_words,
            if p.all_delivered { "yes" } else { "NO" }
        );
    }
    out
}

fn render_ablations(title: &str, points: &[AblationPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = writeln!(
        out,
        "{:<24} {:>9} {:>16}",
        "variant", "switches", "comm cost"
    );
    for p in points {
        let s = p.switches.map_or("fail".into(), |n| n.to_string());
        let cc = p.comm_cost.map_or("-".into(), |v| format!("{v:.0}"));
        let _ = writeln!(out, "{:<24} {:>9} {:>16}", p.label, s, cc);
    }
    out
}

fn render_runtimes(title: &str, rows: &[RuntimePoint], speedups: &[SpeedupPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = writeln!(out, "{:<8} {:>12} {:>12}", "bench", "ours", "WC");
    for r in rows {
        let _ = writeln!(out, "{:<8} {:>12?} {:>12?}", r.label, r.ours, r.wc);
    }
    let threads = speedups.first().map_or(1, |s| s.threads);
    let _ = writeln!(
        out,
        "\n-- parallel speedup (1 thread vs {threads} threads) --"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>12} {:>9}",
        "bench", "1 thread", "parallel", "speedup"
    );
    for s in speedups {
        let _ = writeln!(
            out,
            "{:<8} {:>12?} {:>12?} {:>8.2}x",
            s.label,
            s.sequential,
            s.parallel,
            s.speedup()
        );
    }
    out
}

/// Renders the BE burst sweep as the fixed-width table both CLIs print.
pub fn render_be_burst(title: &str, points: &[BeBurstPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>9} {:>10} {:>8} {:>9} {:>8} {:>10} {:>10}",
        "model",
        "hops",
        "injected",
        "delivered",
        "backlog",
        "mean lat",
        "max lat",
        "peak blog",
        "max queue"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:<10} {:>5} {:>9} {:>10} {:>8} {:>9.1} {:>8} {:>10} {:>10}",
            p.model,
            p.hops,
            p.injected,
            p.delivered,
            p.backlog,
            p.mean_latency_cycles,
            p.max_latency_cycles,
            p.peak_backlog_words,
            p.max_queue_depth
        );
    }
    out
}

/// Renders the perf-telemetry table. Wall-clock cells are
/// machine-dependent (`traced` is the map flow re-timed with an
/// op-mode trace collector installed — compare against `map` for the
/// tracing overhead); every other column is a deterministic op count
/// (identical at any thread count).
pub fn render_perf(title: &str, points: &[PerfPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = writeln!(
        out,
        "{:<8} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "bench",
        "switches",
        "map",
        "anneal",
        "traced",
        "queries",
        "pops",
        "rerouted",
        "reused",
        "accepts"
    );
    for p in points {
        let s = p.switches.map_or("fail".into(), |n: usize| n.to_string());
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>10?} {:>10?} {:>10?} {:>10} {:>10} {:>10} {:>9} {:>9}",
            p.label,
            s,
            p.map_wall,
            p.anneal_wall,
            p.trace_wall,
            p.map_ops.path_queries + p.anneal_ops.path_queries,
            p.map_ops.dijkstra_pops + p.anneal_ops.dijkstra_pops,
            p.anneal_ops.groups_rerouted,
            p.anneal_ops.groups_reused,
            p.anneal_ops.anneal_accepts
        );
    }
    out
}

/// Renders the strategy-portfolio frontier table. Every cell is
/// schedule-independent — quality columns plus deterministic op
/// counters, no wall-clock — so the rendering is pinned as a golden
/// and compared across `noc-par` worker counts.
pub fn render_frontier(title: &str, points: &[FrontierPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = writeln!(
        out,
        "{:<8} {:<13} {:>8} {:>14} {:>6} {:>7} {:>10} {:>12} {:>10} {:>10}",
        "bench",
        "strategy",
        "switches",
        "cost",
        "evict",
        "nodes",
        "queries",
        "pops",
        "cache hit",
        "cache miss"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:<8} {:<13} {:>8} {:>14} {:>6} {:>7} {:>10} {:>12} {:>10} {:>10}",
            p.bench,
            p.strategy.token(),
            p.switches,
            p.cost,
            p.evictions,
            p.nodes,
            p.ops.path_queries,
            p.ops.dijkstra_pops,
            p.ops.route_cache_hits,
            p.ops.route_cache_misses,
        );
    }
    out
}

/// Renders the online-service admission table. Every cell is
/// schedule-independent — engine metrics of a deterministic replay
/// plus op counters, no wall-clock — so the rendering is pinned as a
/// golden and compared across `noc-par` worker counts. The
/// `routes`/`maps` columns are the incremental-vs-resolve contrast:
/// incremental admissions cost one group route each, the resolve
/// baseline a full map per applied mutation.
pub fn render_service(title: &str, points: &[ServicePoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = writeln!(
        out,
        "{:<12} {:<12} {:>8} {:>8} {:>9} {:>9} {:>6} {:>8} {:>8} {:>6}",
        "fabric",
        "mode",
        "admitted",
        "rejected",
        "blocking",
        "displaced",
        "evict",
        "flushes",
        "routes",
        "maps"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:<12} {:<12} {:>8} {:>8} {:>9.4} {:>9} {:>6} {:>8} {:>8} {:>6}",
            p.fabric,
            p.mode.token(),
            p.stats.admitted,
            p.stats.rejected,
            p.stats.blocking(),
            p.stats.displaced,
            p.stats.evictions,
            p.stats.flushes,
            p.ops.group_routes,
            p.ops.full_maps,
        );
    }
    out
}

/// Renders the fault-injection resilience table. The `maps` column is
/// the load-bearing cell: healing is incremental repair
/// (`hreroute` group re-routes, `hevict` displacements), so full maps
/// stay at the admission baseline even under the fault schedule.
pub fn render_resilience(title: &str, points: &[ResiliencePoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>8} {:>8} {:>9} {:>5} {:>5} {:>6} {:>6} {:>8} {:>6} {:>6}",
        "fabric",
        "faults",
        "admitted",
        "rejected",
        "blocking",
        "lfail",
        "nfail",
        "degr",
        "healed",
        "hreroute",
        "hevict",
        "maps"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>8} {:>8} {:>9.4} {:>5} {:>5} {:>6} {:>6} {:>8} {:>6} {:>6}",
            p.fabric,
            p.faults,
            p.stats.admitted,
            p.stats.rejected,
            p.stats.blocking(),
            p.stats.links_failed,
            p.stats.nis_failed,
            p.stats.degraded,
            p.stats.healed,
            p.ops.heal_reroutes,
            p.ops.heal_evictions,
            p.ops.full_maps,
        );
    }
    out
}

fn render_headline(title: &str, h: &Headline) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = writeln!(
        out,
        "mean NoC area (switch) reduction vs WC: {:.1}% (paper: ~80%)",
        100.0 * h.mean_area_reduction
    );
    let _ = writeln!(
        out,
        "mean DVS/DFS power saving:              {:.1}% (paper: ~54%)",
        100.0 * h.mean_power_saving
    );
    out
}

/// Renders any experiment output as the table the CLIs print.
pub fn render(output: &ExperimentOutput) -> String {
    match output {
        ExperimentOutput::Comparison { title, points } => render_comparisons(title, points),
        ExperimentOutput::AreaFrequency { title, points } => render_area(title, points),
        ExperimentOutput::DvsSavings { title, points } => render_dvs(title, points),
        ExperimentOutput::ParallelFrequency { title, points } => render_parallel(title, points),
        ExperimentOutput::VerifyDesigns { title, points } => render_verify(title, points),
        ExperimentOutput::Ablations { title, points } => render_ablations(title, points),
        ExperimentOutput::Runtimes {
            title,
            rows,
            speedups,
        } => render_runtimes(title, rows, speedups),
        ExperimentOutput::BeBurst { title, points } => render_be_burst(title, points),
        ExperimentOutput::Headline { title, headline } => render_headline(title, headline),
        ExperimentOutput::Perf { title, points } => render_perf(title, points),
        ExperimentOutput::Frontier { title, points } => render_frontier(title, points),
        ExperimentOutput::Service { title, points } => render_service(title, points),
        ExperimentOutput::Resilience { title, points } => render_resilience(title, points),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_table_shape() {
        let table = render_comparisons(
            "T",
            &[
                Comparison {
                    label: "D1".into(),
                    ours: Some(4),
                    wc: Some(16),
                },
                Comparison {
                    label: "D2".into(),
                    ours: None,
                    wc: Some(4),
                },
            ],
        );
        assert!(table.starts_with("\n== T ==\n"));
        assert!(table.contains("D1              4       16        0.250"));
        assert!(table.contains("fail"));
        assert!(table.ends_with('\n'));
    }

    #[test]
    fn be_burst_table_lists_models() {
        let p = BeBurstPoint {
            model: "constant".into(),
            hops: 2,
            injected: 10,
            delivered: 9,
            backlog: 1,
            mean_latency_cycles: 6.5,
            max_latency_cycles: 12,
            peak_backlog_words: 2,
            max_queue_depth: 2,
        };
        let table = render_be_burst("B", &[p]);
        assert!(table.contains("constant"));
        assert!(table.contains("6.5"));
    }
}
