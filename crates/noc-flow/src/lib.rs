//! `noc-flow` — the paper's staged methodology as a **composable
//! pipeline API**.
//!
//! The methodology of Murali et al. is a design flow: map the
//! multi-use-case spec onto the smallest feasible mesh, refine the
//! placement (annealing, per-group remapping), verify the TDMA
//! configuration analytically, then replay it on the cycle-level
//! simulator. Before this crate, every caller re-wired those phases by
//! hand from free functions; here they are [`Stage`]s assembled by a
//! [`FlowBuilder`] into a deterministic [`DesignFlow`], and whole
//! evaluation sweeps (benchmark × axis × traffic model) are declared as
//! data — an [`ExperimentSpec`] executed by one generic runner
//! ([`run_spec`]).
//!
//! # Layers
//!
//! * [`stage`] — [`Stage`] trait + the built-in map / worst-case /
//!   anneal / remap / verify / simulate stages over a [`FlowContext`].
//! * [`builder`] — [`FlowBuilder`] / [`DesignFlow`]: seed, `noc-par`
//!   thread policy and per-stage configs threaded once.
//! * [`config`] — serde-serializable [`FlowConfig`] / [`ExperimentSpec`]
//!   with a line-oriented text format (`to_text` / `from_text`).
//! * [`registry`] — every figure/table of the paper's evaluation
//!   re-expressed as a named [`ExperimentSpec`].
//! * [`runner`] / [`render`] — the generic executor and the shared
//!   table renderers both CLIs print (byte-identical output).
//! * [`cli`] — the argument helpers shared by the `experiments` and
//!   `nocmap_cli` binaries.
//!
//! # Determinism contract
//!
//! A flow inherits the `noc-par` contract (see `crates/noc-par`):
//! ordered reduction, per-unit seeds derived from `(seed, index)`, no
//! order-sensitive float accumulation in compared quantities. Running
//! the same spec at any thread count yields byte-identical renderings;
//! `tests/flow_goldens.rs` at the workspace root pins every registry
//! entry against pre-redesign goldens at 1 and 4 workers.
//!
//! # Quick example
//!
//! ```
//! use noc_flow::FlowBuilder;
//! use noc_tdma::TdmaSpec;
//! use noc_topology::units::{Bandwidth, Latency};
//! use noc_usecase::{spec::{CoreId, SocSpec, UseCaseBuilder}, UseCaseGroups};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut soc = SocSpec::new("demo");
//! soc.add_use_case(
//!     UseCaseBuilder::new("u0")
//!         .flow(CoreId::new(0), CoreId::new(1), Bandwidth::from_mbps(100), Latency::UNCONSTRAINED)?
//!         .build(),
//! );
//! let groups = UseCaseGroups::singletons(1);
//! let flow = FlowBuilder::new(TdmaSpec::paper_default())
//!     .max_switches(64)
//!     .map()
//!     .verify()
//!     .simulate(1024)
//!     .build();
//! let outcome = flow.run(&soc, &groups)?;
//! assert_eq!(outcome.solution()?.switch_count(), 1);
//! assert_eq!(outcome.sim_reports.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod cli;
pub mod config;
pub mod registry;
pub mod render;
pub mod runner;
pub mod stage;

mod error;

pub use builder::{DesignFlow, FlowBuilder};
pub use config::{
    AblationVariant, BenchmarkSpec, BurstModel, ExperimentKind, ExperimentSpec, FlowConfig,
    LabeledBench, StageConfig,
};
pub use error::FlowError;
pub use runner::{run_spec, ExperimentOutput};
pub use stage::{FlowContext, Stage};
