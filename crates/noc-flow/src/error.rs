use std::error::Error;
use std::fmt;

use nocmap::MapError;

/// Unified error type of the design-flow layer and both CLIs.
///
/// Wraps the mapper's [`MapError`], I/O failures, spec-file parse
/// errors, and CLI usage mistakes, so binaries report every failure
/// through one `error: {e}` path instead of ad-hoc `format!` strings.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlowError {
    /// The mapping flow failed.
    Map(MapError),
    /// Reading or writing a file failed.
    Io {
        /// Path involved.
        path: String,
        /// The OS error rendered as text (keeps `FlowError: Clone + Eq`).
        message: String,
    },
    /// A spec / config text file could not be parsed.
    Parse {
        /// 1-based line number (0 when the error is not line-specific).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A stage ran before the stage that produces its input.
    MissingInput {
        /// The stage that was starved.
        stage: &'static str,
        /// What it needed (e.g. "a mapped solution").
        needs: &'static str,
    },
    /// No registry entry with this name.
    UnknownExperiment(String),
    /// A command-line argument was malformed or missing.
    Usage(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Transparent: callers historically printed the MapError text
            // directly ("fig7b failed: {e}"), so wrapping must not change
            // a single byte of that output.
            FlowError::Map(e) => write!(f, "{e}"),
            FlowError::Io { path, message } => write!(f, "{path}: {message}"),
            FlowError::Parse { line: 0, message } => write!(f, "{message}"),
            FlowError::Parse { line, message } => write!(f, "line {line}: {message}"),
            FlowError::MissingInput { stage, needs } => {
                write!(f, "stage '{stage}' needs {needs} from an earlier stage")
            }
            FlowError::UnknownExperiment(name) => write!(f, "unknown experiment '{name}'"),
            FlowError::Usage(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Map(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MapError> for FlowError {
    fn from(e: MapError) -> Self {
        FlowError::Map(e)
    }
}

impl FlowError {
    /// Wraps an I/O error with the path it concerned.
    pub fn io(path: impl Into<String>, e: &std::io::Error) -> Self {
        FlowError::Io {
            path: path.into(),
            message: e.to_string(),
        }
    }

    /// A parse error at a 1-based line.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        FlowError::Parse {
            line,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_trait_bounds() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<FlowError>();
    }

    #[test]
    fn map_error_display_is_transparent() {
        let e = FlowError::from(MapError::NoFeasibleFrequency);
        assert_eq!(
            e.to_string(),
            MapError::NoFeasibleFrequency.to_string(),
            "wrapping must not change the printed text"
        );
        assert!(e.source().is_some());
    }

    #[test]
    fn parse_line_zero_omits_prefix() {
        assert_eq!(FlowError::parse(0, "boom").to_string(), "boom");
        assert_eq!(FlowError::parse(3, "boom").to_string(), "line 3: boom");
    }
}
