//! The experiment registry: every figure and table of the paper's
//! evaluation section re-expressed as a named [`ExperimentSpec`].
//!
//! The registry is the single source of truth both CLIs execute
//! (`experiments <name>`, `nocmap_cli flow run <name|file>`); adding a
//! sweep means adding a spec here (or shipping a spec file), not
//! writing a new Rust function. `fig6b`/`fig6c` have `+`-suffixed
//! variants carrying the paper's prose 40-use-case extension.

use noc_benchgen::SocDesign;
use noc_sim::TrafficModel;

use crate::config::{
    AblationVariant, BenchmarkSpec, BurstModel, ExperimentKind, ExperimentSpec, LabeledBench,
};
use crate::FlowError;

/// Growth cap used everywhere: the paper reports WC failing "even onto a
/// 20 × 20 mesh topology", so 400 switches is the search bound.
pub const MAX_SWITCHES: usize = 400;

/// Default seed for synthetic benchmarks (results are deterministic).
pub const SEED: u64 = 2006;

fn design_benches() -> Vec<LabeledBench> {
    SocDesign::ALL
        .iter()
        .map(|&d| LabeledBench::new(d.label(), BenchmarkSpec::Design(d)))
        .collect()
}

fn spread_benches(counts: &[usize]) -> Vec<LabeledBench> {
    counts
        .iter()
        .map(|&n| LabeledBench::new(format!("{n}"), BenchmarkSpec::spread(n, SEED + n as u64)))
        .collect()
}

fn bottleneck_benches(counts: &[usize]) -> Vec<LabeledBench> {
    counts
        .iter()
        .map(|&n| {
            LabeledBench::new(
                format!("{n}"),
                BenchmarkSpec::Bottleneck {
                    use_cases: n,
                    seed: SEED + n as u64,
                },
            )
        })
        .collect()
}

fn use_case_counts(extended: bool) -> Vec<usize> {
    let mut counts = vec![2usize, 5, 10, 15, 20];
    if extended {
        counts.push(40);
    }
    counts
}

fn spec(name: &str, title: &str, kind: ExperimentKind) -> ExperimentSpec {
    ExperimentSpec {
        name: name.to_string(),
        title: title.to_string(),
        kind,
    }
}

/// Every registered experiment, in the order `experiments -- all` runs
/// its deterministic core (`fig6b`/`fig6c` appear in both plain and
/// extended form).
pub fn registry() -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    specs.push(spec(
        "fig6a",
        "Fig 6(a): SoC designs, switch count ours vs WC",
        ExperimentKind::Comparison {
            benches: design_benches(),
        },
    ));
    for (name, extended) in [("fig6b", false), ("fig6b+", true)] {
        specs.push(spec(
            name,
            "Fig 6(b): Sp benchmarks, switch count ours vs WC",
            ExperimentKind::Comparison {
                benches: spread_benches(&use_case_counts(extended)),
            },
        ));
    }
    for (name, extended) in [("fig6c", false), ("fig6c+", true)] {
        specs.push(spec(
            name,
            "Fig 6(c): Bot benchmarks, switch count ours vs WC",
            ExperimentKind::Comparison {
                benches: bottleneck_benches(&use_case_counts(extended)),
            },
        ));
    }
    specs.push(spec(
        "fig7a",
        "Fig 7(a): area-frequency trade-off, D1",
        ExperimentKind::AreaFrequency {
            bench: BenchmarkSpec::Design(SocDesign::D1),
            sweep_mhz: vec![
                100, 150, 200, 250, 300, 350, 400, 500, 650, 800, 1000, 1250, 1500, 1750, 2000,
            ],
        },
    ));
    specs.push(spec(
        "fig7b",
        "Fig 7(b): DVS/DFS power savings",
        ExperimentKind::DvsSavings {
            benches: design_benches(),
            floor_mhz: 10,
        },
    ));
    specs.push(spec(
        "fig7c",
        "Fig 7(c): frequency vs parallel use-cases (Sp, 10 UC)",
        ExperimentKind::ParallelFrequency {
            bench: BenchmarkSpec::pooled_spread(10, SEED, 150, 0.3),
            parallel: vec![1, 2, 3, 4],
            lo_mhz: 10,
            hi_mhz: 4000,
        },
    ));
    specs.push(spec(
        "verify",
        "Phase-4 verification (analytical + simulation)",
        ExperimentKind::VerifyDesigns {
            benches: design_benches(),
            cycles: 4096,
        },
    ));
    specs.push(spec(
        "ablation",
        "Ablations (Sp, 5 use-cases)",
        ExperimentKind::Ablations {
            bench: BenchmarkSpec::spread(5, 11),
            variants: vec![
                AblationVariant::PaperDefaults,
                AblationVariant::UnsortedFlows,
                AblationVariant::RoundRobinPlacement,
                AblationVariant::SingleSharedConfig,
                AblationVariant::WithAnnealing {
                    iterations: 100,
                    chains: 2,
                },
            ],
        },
    ));
    specs.push(spec(
        "runtime",
        "Runtime (paper: 'less than few minutes' per benchmark)",
        ExperimentKind::Runtimes {
            benches: design_benches()
                .into_iter()
                .chain([10usize, 20, 40].iter().map(|&n| {
                    LabeledBench::new(format!("sp{n}"), BenchmarkSpec::spread(n, SEED + n as u64))
                }))
                .collect(),
            speedup_benches: [10usize, 20, 40]
                .iter()
                .map(|&n| {
                    LabeledBench::new(
                        format!("sp{n}"),
                        BenchmarkSpec::pooled_spread(n, SEED + n as u64, 150, 0.3),
                    )
                })
                .collect(),
        },
    ));
    specs.push(spec(
        "be_burst",
        "BE burst sweep (3 chained BE flows @ 200 MB/s avg, GT trunk owns 8/16 slots)",
        ExperimentKind::BeBurst {
            models: vec![
                BurstModel {
                    label: "constant".to_string(),
                    model: TrafficModel::Constant,
                },
                BurstModel {
                    label: "onoff-1/2".to_string(),
                    model: TrafficModel::OnOff {
                        period: 64,
                        on: 32,
                        phase: 0,
                    },
                },
                BurstModel {
                    label: "onoff-1/8".to_string(),
                    model: TrafficModel::OnOff {
                        period: 256,
                        on: 32,
                        phase: 0,
                    },
                },
                BurstModel {
                    label: "mmpp-1/8".to_string(),
                    model: TrafficModel::RandomBursts {
                        mean_on: 32,
                        mean_off: 224,
                        seed: SEED,
                    },
                },
            ],
            hops: vec![2, 4, 6, 8],
            flows: 3,
            avg_mbps: 200,
            slots: 16,
            freq_mhz: 500,
            cycles: 16_384,
        },
    ));
    specs.push(spec(
        "headline",
        "Headline numbers (abstract)",
        ExperimentKind::Headline {
            area_benches: design_benches(),
            dvs_benches: design_benches(),
            floor_mhz: 10,
        },
    ));
    specs.push(spec(
        "perf",
        "Perf telemetry: map + anneal op counters and wall time",
        ExperimentKind::Perf {
            benches: design_benches()
                .into_iter()
                .chain([
                    LabeledBench::new("sp10", BenchmarkSpec::spread(10, SEED + 10)),
                    LabeledBench::new(
                        "bot10",
                        BenchmarkSpec::Bottleneck {
                            use_cases: 10,
                            seed: SEED + 10,
                        },
                    ),
                ])
                .collect(),
            anneal_iterations: 60,
            anneal_chains: 2,
        },
    ));
    specs.push(spec(
        "frontier",
        "Strategy portfolio: quality vs deterministic ops per strategy",
        ExperimentKind::Frontier {
            benches: design_benches()
                .into_iter()
                .chain([
                    LabeledBench::new("sp10", BenchmarkSpec::spread(10, SEED + 10)),
                    LabeledBench::new(
                        "bot10",
                        BenchmarkSpec::Bottleneck {
                            use_cases: 10,
                            seed: SEED + 10,
                        },
                    ),
                ])
                .collect(),
        },
    ));
    specs.push(spec(
        "service",
        "Online admission: blocking and reconfiguration cost, incremental vs resolve",
        ExperimentKind::Service {
            requests: 200,
            seed: SEED,
            batch: 4,
            budget: 6,
        },
    ));
    specs.push(spec(
        "resilience",
        "Fault injection and self-healing: service degradation and incremental repair cost",
        ExperimentKind::Resilience {
            requests: 150,
            seed: SEED,
            batch: 4,
            budget: 6,
            faults: 5,
        },
    ));
    specs
}

/// Looks up one registered experiment by name.
///
/// # Errors
///
/// [`FlowError::UnknownExperiment`] when nothing is registered under
/// `name`.
pub fn find(name: &str) -> Result<ExperimentSpec, FlowError> {
    registry()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| FlowError::UnknownExperiment(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let specs = registry();
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate registry names");
        for name in names {
            assert_eq!(find(name).unwrap().name, name);
        }
        assert_eq!(
            find("fig9z").unwrap_err(),
            FlowError::UnknownExperiment("fig9z".into())
        );
    }

    #[test]
    fn extended_variants_add_the_40_use_case_point() {
        let plain = find("fig6b").unwrap();
        let ext = find("fig6b+").unwrap();
        let count = |s: &ExperimentSpec| match &s.kind {
            ExperimentKind::Comparison { benches } => benches.len(),
            _ => panic!("fig6b is a comparison"),
        };
        assert_eq!(count(&plain) + 1, count(&ext));
    }
}
