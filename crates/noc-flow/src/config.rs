//! Serde-serializable flow and experiment configurations, with a
//! line-oriented text format.
//!
//! Sweeps are **data**: an [`ExperimentSpec`] names a kind (comparison,
//! area–frequency, DVS, …) and lists its axes (benchmarks × points ×
//! traffic models); [`crate::run_spec`] executes any spec through the
//! pipeline API. A [`FlowConfig`] is the single-design analogue: the
//! stage list plus the shared knobs of one [`crate::DesignFlow`].
//!
//! The types derive `serde::{Serialize, Deserialize}`; since the
//! offline `serde` shim has no format backend, the wire format is the
//! hand-rolled text grammar below (the same approach as
//! `noc_usecase::textio`), which round-trips every spec exactly:
//!
//! ```text
//! experiment fig6b
//! title Fig 6(b): Sp benchmarks, switch count ours vs WC
//! kind comparison
//! bench 2 spread 2 2008
//! bench 5 spread 5 2011
//! ```
//!
//! Rules: `#` starts a comment, blank lines are ignored, the first line
//! is `experiment NAME` (or `flow NAME` for a [`FlowConfig`]), and the
//! remaining lines are keyword-led, one datum per line. The `title`
//! payload is taken verbatim to the end of its line (a `#` there is
//! part of the title, not a comment); names and labels are single
//! whitespace-free tokens — a label with spaces fails to re-parse with
//! an error rather than round-tripping silently wrong.

use std::fmt::Write as _;

use noc_benchgen::{BottleneckConfig, SocDesign, SpreadConfig};
use noc_sim::TrafficModel;
use noc_tdma::TdmaSpec;
use noc_topology::units::{Frequency, LinkWidth};
use noc_usecase::spec::SocSpec;
use nocmap::anneal::AnnealConfig;
use nocmap::remap::RemapConfig;
use nocmap::strategy::StrategyKind;
use serde::{Deserialize, Serialize};

use crate::builder::{DesignFlow, FlowBuilder};
use crate::FlowError;

/// A benchmark generator reference: which spec to synthesize, from
/// which seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BenchmarkSpec {
    /// One of the paper's four SoC designs (deterministic, no seed).
    Design(SocDesign),
    /// Synthetic Sp (spread) benchmark at the paper's parameters.
    Spread {
        /// Number of use-cases.
        use_cases: usize,
        /// Generator seed.
        seed: u64,
        /// Shared master pair pool (`None` = free sampling, the Sp
        /// default).
        pair_pool: Option<usize>,
        /// Fraction of pool pairs re-drawn per use-case.
        versatile_fraction: f64,
    },
    /// Synthetic Bot (bottleneck) benchmark at the paper's parameters.
    Bottleneck {
        /// Number of use-cases.
        use_cases: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl BenchmarkSpec {
    /// Plain Sp benchmark (no pool).
    pub fn spread(use_cases: usize, seed: u64) -> Self {
        BenchmarkSpec::Spread {
            use_cases,
            seed,
            pair_pool: None,
            versatile_fraction: 0.0,
        }
    }

    /// Pooled Sp benchmark (shared physical connections, as in the
    /// Figure 7(c) and speedup studies).
    pub fn pooled_spread(use_cases: usize, seed: u64, pool: usize, versatile: f64) -> Self {
        BenchmarkSpec::Spread {
            use_cases,
            seed,
            pair_pool: Some(pool),
            versatile_fraction: versatile,
        }
    }

    /// Synthesizes the communication spec.
    pub fn generate(&self) -> SocSpec {
        match *self {
            BenchmarkSpec::Design(d) => d.generate(),
            BenchmarkSpec::Spread {
                use_cases,
                seed,
                pair_pool,
                versatile_fraction,
            } => {
                let mut cfg = SpreadConfig::paper(use_cases);
                cfg.pair_pool = pair_pool;
                cfg.versatile_fraction = versatile_fraction;
                cfg.generate(seed)
            }
            BenchmarkSpec::Bottleneck { use_cases, seed } => {
                BottleneckConfig::paper(use_cases).generate(seed)
            }
        }
    }
}

/// A benchmark plus the row label it carries in rendered tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledBench {
    /// Row label (design name, use-case count, …).
    pub label: String,
    /// The benchmark to generate.
    pub bench: BenchmarkSpec,
}

impl LabeledBench {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, bench: BenchmarkSpec) -> Self {
        LabeledBench {
            label: label.into(),
            bench,
        }
    }
}

/// A labeled best-effort traffic shape for burst sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstModel {
    /// Row label (`constant`, `onoff-1/2`, …).
    pub label: String,
    /// The traffic source model.
    pub model: TrafficModel,
}

/// One mapper-quality ablation variant (the DESIGN.md heuristics
/// against naive baselines).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AblationVariant {
    /// The paper's default heuristics.
    PaperDefaults,
    /// No bandwidth sorting, no prefer-mapped ordering.
    UnsortedFlows,
    /// Round-robin core placement instead of unified placement.
    RoundRobinPlacement,
    /// All use-cases merged into one shared configuration.
    SingleSharedConfig,
    /// Annealing refinement on top of the paper defaults.
    WithAnnealing {
        /// Proposed moves.
        iterations: usize,
        /// Independent chains.
        chains: usize,
    },
}

impl AblationVariant {
    /// The row label of this variant in the ablation table.
    pub fn label(&self) -> &'static str {
        match self {
            AblationVariant::PaperDefaults => "paper-defaults",
            AblationVariant::UnsortedFlows => "unsorted-flows",
            AblationVariant::RoundRobinPlacement => "round-robin-placement",
            AblationVariant::SingleSharedConfig => "single-shared-config",
            AblationVariant::WithAnnealing { .. } => "with-annealing",
        }
    }
}

/// The experiment families the generic runner knows how to execute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExperimentKind {
    /// Ours-vs-worst-case switch-count comparison over benchmarks
    /// (Figures 6(a)–(c)).
    Comparison {
        /// Rows of the comparison table.
        benches: Vec<LabeledBench>,
    },
    /// Area–frequency trade-off of one design (Figure 7(a)).
    AreaFrequency {
        /// The design under study.
        bench: BenchmarkSpec,
        /// Clock sweep in MHz.
        sweep_mhz: Vec<u64>,
    },
    /// DVS/DFS power savings per design (Figure 7(b)).
    DvsSavings {
        /// Designs under study.
        benches: Vec<LabeledBench>,
        /// Lower bound of the per-use-case frequency search.
        floor_mhz: u64,
    },
    /// Minimum frequency vs number of parallel use-cases (Figure 7(c)).
    ParallelFrequency {
        /// The design under study.
        bench: BenchmarkSpec,
        /// Parallelism degrees to evaluate.
        parallel: Vec<usize>,
        /// Frequency search range, low end (MHz).
        lo_mhz: u64,
        /// Frequency search range, high end (MHz).
        hi_mhz: u64,
    },
    /// Phase-4 verification: map, verify analytically, simulate every
    /// use-case.
    VerifyDesigns {
        /// Designs under study.
        benches: Vec<LabeledBench>,
        /// Simulated cycles per use-case.
        cycles: u64,
    },
    /// Mapper-quality ablations on one benchmark.
    Ablations {
        /// The benchmark all variants run on.
        bench: BenchmarkSpec,
        /// The variants, in table order.
        variants: Vec<AblationVariant>,
    },
    /// Wall-clock study: ours vs WC per benchmark, plus the 1-vs-N
    /// worker speedup rows.
    Runtimes {
        /// Benchmarks timed for both methods.
        benches: Vec<LabeledBench>,
        /// Benchmarks timed at 1 worker vs the ambient count.
        speedup_benches: Vec<LabeledBench>,
    },
    /// Best-effort burstiness × hop-count contention sweep.
    BeBurst {
        /// Traffic shapes (rows).
        models: Vec<BurstModel>,
        /// Chain depths (columns).
        hops: Vec<usize>,
        /// Chained BE flows per point.
        flows: usize,
        /// Average injection rate per flow (MB/s).
        avg_mbps: u64,
        /// TDMA slots of the scenario's wheel.
        slots: usize,
        /// NoC clock (MHz).
        freq_mhz: u64,
        /// Simulated cycles per point.
        cycles: u64,
    },
    /// The abstract's headline aggregates (mean area reduction, mean
    /// power saving) over a comparison set and a DVS set.
    Headline {
        /// Benchmarks of the area comparison.
        area_benches: Vec<LabeledBench>,
        /// Benchmarks of the DVS study.
        dvs_benches: Vec<LabeledBench>,
        /// Lower bound of the per-use-case frequency search.
        floor_mhz: u64,
    },
    /// Perf telemetry: map + anneal each benchmark, recording wall time
    /// and the deterministic hot-path op counters (the `BENCH_nocmap.json`
    /// trajectory; see `docs/PERFORMANCE.md`).
    Perf {
        /// Benchmarks to measure, in row order.
        benches: Vec<LabeledBench>,
        /// Annealing moves per benchmark.
        anneal_iterations: u64,
        /// Independent annealing chains per benchmark.
        anneal_chains: u64,
    },
    /// Strategy-portfolio frontier: map each benchmark with every
    /// [`StrategyKind`], recording cost quality against deterministic
    /// op totals (see `docs/STRATEGIES.md`).
    Frontier {
        /// Benchmarks to sweep, in row order.
        benches: Vec<LabeledBench>,
    },
    /// Online-service admission study: replay one seeded request trace
    /// through `noc-service` per fabric × admission mode, reporting
    /// blocking probability and reconfiguration cost (see
    /// `docs/SERVICE.md`).
    Service {
        /// Requests in the generated trace.
        requests: u64,
        /// Trace seed.
        seed: u64,
        /// Mutations batched between reconfiguration points.
        batch: u64,
        /// Displacement eviction budget per admission.
        budget: u64,
    },
    /// Fault-injection resilience study: replay a seeded request trace
    /// with a woven-in fault schedule (`fault` / `heal` lines) through
    /// `noc-service` per fabric, reporting degradation and repair cost
    /// (see `docs/RESILIENCE.md`).
    Resilience {
        /// Requests in the generated trace.
        requests: u64,
        /// Trace seed (also salts the fault schedule).
        seed: u64,
        /// Mutations batched between reconfiguration points.
        batch: u64,
        /// Displacement eviction budget per admission.
        budget: u64,
        /// Fault events woven into the trace.
        faults: u64,
    },
}

/// A named, titled, executable experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Registry / CLI name (`fig6a`, `be_burst`, …).
    pub name: String,
    /// Table title printed above the rendered output.
    pub title: String,
    /// What to run.
    pub kind: ExperimentKind,
}

/// One stage entry of a [`FlowConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StageConfig {
    /// Smallest-mesh mapping, optionally refined by a portfolio
    /// strategy (`stage map [greedy|displacement|bnb]` in the text
    /// form; the bare `stage map` spelling is the greedy default and
    /// round-trips byte-identically).
    Map {
        /// Mapping strategy from the portfolio.
        strategy: StrategyKind,
    },
    /// Worst-case baseline.
    WorstCase,
    /// Annealing refinement.
    Anneal {
        /// Proposed moves.
        iterations: usize,
        /// Independent chains.
        chains: usize,
        /// Base seed.
        seed: u64,
        /// Initial temperature (cost units).
        initial_temperature: f64,
        /// Geometric cooling factor.
        cooling: f64,
    },
    /// Per-group remapping refinement.
    Remap {
        /// Cores a group may move.
        max_moved_cores: usize,
        /// Hill-climb rounds.
        rounds: usize,
    },
    /// Analytical verification.
    Verify,
    /// Cycle-level simulation of every use-case.
    Simulate {
        /// Cycles per use-case.
        cycles: u64,
    },
}

impl StageConfig {
    /// The default map stage (greedy strategy).
    pub fn map() -> Self {
        StageConfig::Map {
            strategy: StrategyKind::Greedy,
        }
    }
}

/// Declarative form of one [`DesignFlow`]: the shared knobs plus the
/// stage list, as data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Config name (informational).
    pub name: String,
    /// TDMA slots per table.
    pub slots: usize,
    /// NoC clock in MHz.
    pub freq_mhz: u64,
    /// Topology growth cap.
    pub max_switches: usize,
    /// `noc-par` worker pin (`None` = ambient policy).
    pub threads: Option<usize>,
    /// Base RNG seed.
    pub seed: u64,
    /// Stages in execution order.
    pub stages: Vec<StageConfig>,
}

impl FlowConfig {
    /// The `nocmap_cli design` defaults: 128 slots at 500 MHz, 400
    /// switches max, map + verify.
    pub fn design_defaults() -> Self {
        FlowConfig {
            name: "design".to_string(),
            slots: 128,
            freq_mhz: 500,
            max_switches: 400,
            threads: None,
            seed: 2006,
            stages: vec![StageConfig::map(), StageConfig::Verify],
        }
    }

    /// Assembles the executable [`DesignFlow`] this config describes.
    pub fn build(&self) -> DesignFlow {
        let spec = TdmaSpec::new(
            self.slots,
            Frequency::from_mhz(self.freq_mhz),
            LinkWidth::BITS_32,
        );
        let mut b = FlowBuilder::new(spec)
            .max_switches(self.max_switches)
            .threads(self.threads)
            .seed(self.seed);
        for stage in &self.stages {
            b = match *stage {
                // `map_strategy` with the greedy default is exactly
                // `map()` — one arm keeps every spelling uniform.
                StageConfig::Map { strategy } => b.map_strategy(strategy),
                StageConfig::WorstCase => b.worst_case(),
                StageConfig::Anneal {
                    iterations,
                    chains,
                    seed,
                    initial_temperature,
                    cooling,
                } => b.anneal(AnnealConfig {
                    iterations,
                    chains,
                    seed,
                    initial_temperature,
                    cooling,
                }),
                StageConfig::Remap {
                    max_moved_cores,
                    rounds,
                } => b.remap(RemapConfig {
                    max_moved_cores,
                    rounds,
                }),
                StageConfig::Verify => b.verify(),
                StageConfig::Simulate { cycles } => b.simulate(cycles),
            };
        }
        b.build()
    }
}

/// A parsed spec file: either document type the text format carries.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecFile {
    /// An `experiment NAME` document.
    Experiment(ExperimentSpec),
    /// A `flow NAME` document.
    Flow(FlowConfig),
}

// ---------------------------------------------------------------------
// Text serialization.
// ---------------------------------------------------------------------

fn write_bench(out: &mut String, b: &BenchmarkSpec) {
    match b {
        BenchmarkSpec::Design(d) => {
            let _ = write!(out, "design {}", d.label().to_ascii_lowercase());
        }
        BenchmarkSpec::Spread {
            use_cases,
            seed,
            pair_pool,
            versatile_fraction,
        } => {
            let _ = write!(out, "spread {use_cases} {seed}");
            if let Some(pool) = pair_pool {
                let _ = write!(out, " pool {pool}");
            }
            if *versatile_fraction != 0.0 {
                let _ = write!(out, " versatile {versatile_fraction}");
            }
        }
        BenchmarkSpec::Bottleneck { use_cases, seed } => {
            let _ = write!(out, "bot {use_cases} {seed}");
        }
    }
}

fn write_labeled(out: &mut String, keyword: &str, benches: &[LabeledBench]) {
    for b in benches {
        let _ = write!(out, "{keyword} {} ", b.label);
        write_bench(out, &b.bench);
        out.push('\n');
    }
}

fn write_list<T: std::fmt::Display>(out: &mut String, keyword: &str, values: &[T]) {
    let _ = write!(out, "{keyword}");
    for v in values {
        let _ = write!(out, " {v}");
    }
    out.push('\n');
}

/// Serializes an [`ExperimentSpec`] to the text format.
pub fn experiment_to_text(spec: &ExperimentSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "experiment {}", spec.name);
    let _ = writeln!(out, "title {}", spec.title);
    match &spec.kind {
        ExperimentKind::Comparison { benches } => {
            let _ = writeln!(out, "kind comparison");
            write_labeled(&mut out, "bench", benches);
        }
        ExperimentKind::AreaFrequency { bench, sweep_mhz } => {
            let _ = writeln!(out, "kind area_frequency");
            out.push_str("target ");
            write_bench(&mut out, bench);
            out.push('\n');
            write_list(&mut out, "sweep_mhz", sweep_mhz);
        }
        ExperimentKind::DvsSavings { benches, floor_mhz } => {
            let _ = writeln!(out, "kind dvs");
            write_labeled(&mut out, "bench", benches);
            let _ = writeln!(out, "floor_mhz {floor_mhz}");
        }
        ExperimentKind::ParallelFrequency {
            bench,
            parallel,
            lo_mhz,
            hi_mhz,
        } => {
            let _ = writeln!(out, "kind parallel_frequency");
            out.push_str("target ");
            write_bench(&mut out, bench);
            out.push('\n');
            write_list(&mut out, "parallel", parallel);
            let _ = writeln!(out, "lo_mhz {lo_mhz}");
            let _ = writeln!(out, "hi_mhz {hi_mhz}");
        }
        ExperimentKind::VerifyDesigns { benches, cycles } => {
            let _ = writeln!(out, "kind verify");
            write_labeled(&mut out, "bench", benches);
            let _ = writeln!(out, "cycles {cycles}");
        }
        ExperimentKind::Ablations { bench, variants } => {
            let _ = writeln!(out, "kind ablations");
            out.push_str("target ");
            write_bench(&mut out, bench);
            out.push('\n');
            for v in variants {
                match v {
                    AblationVariant::WithAnnealing { iterations, chains } => {
                        let _ = writeln!(out, "variant with-annealing {iterations} {chains}");
                    }
                    other => {
                        let _ = writeln!(out, "variant {}", other.label());
                    }
                }
            }
        }
        ExperimentKind::Runtimes {
            benches,
            speedup_benches,
        } => {
            let _ = writeln!(out, "kind runtimes");
            write_labeled(&mut out, "bench", benches);
            write_labeled(&mut out, "speedup", speedup_benches);
        }
        ExperimentKind::BeBurst {
            models,
            hops,
            flows,
            avg_mbps,
            slots,
            freq_mhz,
            cycles,
        } => {
            let _ = writeln!(out, "kind be_burst");
            for m in models {
                let _ = write!(out, "model {} ", m.label);
                match &m.model {
                    TrafficModel::Constant => out.push_str("constant"),
                    TrafficModel::OnOff { period, on, phase } => {
                        let _ = write!(out, "onoff {period} {on} {phase}");
                    }
                    TrafficModel::RandomBursts {
                        mean_on,
                        mean_off,
                        seed,
                    } => {
                        let _ = write!(out, "mmpp {mean_on} {mean_off} {seed}");
                    }
                    TrafficModel::Trace(cycles) => {
                        out.push_str("trace");
                        for c in cycles {
                            let _ = write!(out, " {c}");
                        }
                    }
                }
                out.push('\n');
            }
            write_list(&mut out, "hops", hops);
            let _ = writeln!(out, "flows {flows}");
            let _ = writeln!(out, "avg_mbps {avg_mbps}");
            let _ = writeln!(out, "slots {slots}");
            let _ = writeln!(out, "freq_mhz {freq_mhz}");
            let _ = writeln!(out, "cycles {cycles}");
        }
        ExperimentKind::Headline {
            area_benches,
            dvs_benches,
            floor_mhz,
        } => {
            let _ = writeln!(out, "kind headline");
            write_labeled(&mut out, "bench", area_benches);
            write_labeled(&mut out, "dvs", dvs_benches);
            let _ = writeln!(out, "floor_mhz {floor_mhz}");
        }
        ExperimentKind::Perf {
            benches,
            anneal_iterations,
            anneal_chains,
        } => {
            let _ = writeln!(out, "kind perf");
            write_labeled(&mut out, "bench", benches);
            let _ = writeln!(out, "anneal_iterations {anneal_iterations}");
            let _ = writeln!(out, "anneal_chains {anneal_chains}");
        }
        ExperimentKind::Frontier { benches } => {
            let _ = writeln!(out, "kind frontier");
            write_labeled(&mut out, "bench", benches);
        }
        ExperimentKind::Service {
            requests,
            seed,
            batch,
            budget,
        } => {
            let _ = writeln!(out, "kind service");
            let _ = writeln!(out, "requests {requests}");
            let _ = writeln!(out, "seed {seed}");
            let _ = writeln!(out, "batch {batch}");
            let _ = writeln!(out, "budget {budget}");
        }
        ExperimentKind::Resilience {
            requests,
            seed,
            batch,
            budget,
            faults,
        } => {
            let _ = writeln!(out, "kind resilience");
            let _ = writeln!(out, "requests {requests}");
            let _ = writeln!(out, "seed {seed}");
            let _ = writeln!(out, "batch {batch}");
            let _ = writeln!(out, "budget {budget}");
            let _ = writeln!(out, "faults {faults}");
        }
    }
    out
}

/// Serializes a [`FlowConfig`] to the text format.
pub fn flow_to_text(cfg: &FlowConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "flow {}", cfg.name);
    let _ = writeln!(out, "slots {}", cfg.slots);
    let _ = writeln!(out, "freq_mhz {}", cfg.freq_mhz);
    let _ = writeln!(out, "max_switches {}", cfg.max_switches);
    if let Some(t) = cfg.threads {
        let _ = writeln!(out, "threads {t}");
    }
    let _ = writeln!(out, "seed {}", cfg.seed);
    for s in &cfg.stages {
        match s {
            StageConfig::Map { strategy } => {
                // Bare `stage map` for the greedy default so existing
                // specs round-trip byte-for-byte.
                match strategy {
                    StrategyKind::Greedy => {
                        let _ = writeln!(out, "stage map");
                    }
                    other => {
                        let _ = writeln!(out, "stage map {}", other.token());
                    }
                }
            }
            StageConfig::WorstCase => {
                let _ = writeln!(out, "stage worst_case");
            }
            StageConfig::Anneal {
                iterations,
                chains,
                seed,
                initial_temperature,
                cooling,
            } => {
                let _ = writeln!(
                    out,
                    "stage anneal {iterations} {chains} {seed} {initial_temperature} {cooling}"
                );
            }
            StageConfig::Remap {
                max_moved_cores,
                rounds,
            } => {
                let _ = writeln!(out, "stage remap {max_moved_cores} {rounds}");
            }
            StageConfig::Verify => {
                let _ = writeln!(out, "stage verify");
            }
            StageConfig::Simulate { cycles } => {
                let _ = writeln!(out, "stage simulate {cycles}");
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Text parsing.
// ---------------------------------------------------------------------

/// Meaningful lines of a spec document: `(1-based line, tokens of the
/// comment-stripped text, raw trimmed line with any comment intact)`.
/// The raw form exists for free-text payloads (`title`), which may
/// legitimately contain `#` — comment stripping only governs which
/// lines are skipped and how keyword lines tokenize.
struct Lines<'a> {
    lines: Vec<(usize, Vec<&'a str>, &'a str)>,
    pos: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .filter_map(|(i, raw)| {
                let no_comment = raw.split('#').next().unwrap_or("");
                let trimmed = no_comment.trim();
                if trimmed.is_empty() {
                    None
                } else {
                    Some((i + 1, trimmed.split_whitespace().collect(), raw.trim()))
                }
            })
            .collect();
        Lines { lines, pos: 0 }
    }

    fn next(&mut self) -> Option<&(usize, Vec<&'a str>, &'a str)> {
        let item = self.lines.get(self.pos);
        if item.is_some() {
            self.pos += 1;
        }
        item
    }
}

fn parse_num<T: std::str::FromStr>(line: usize, what: &str, tok: &str) -> Result<T, FlowError> {
    tok.parse::<T>()
        .map_err(|_| FlowError::parse(line, format!("invalid {what} '{tok}'")))
}

/// Parses a benchmark reference from tokens (after the label).
fn parse_bench(line: usize, toks: &[&str]) -> Result<BenchmarkSpec, FlowError> {
    let missing = || FlowError::parse(line, "incomplete benchmark reference");
    match *toks.first().ok_or_else(missing)? {
        "design" => {
            let which = toks.get(1).ok_or_else(missing)?;
            let d = match *which {
                "d1" => SocDesign::D1,
                "d2" => SocDesign::D2,
                "d3" => SocDesign::D3,
                "d4" => SocDesign::D4,
                other => {
                    return Err(FlowError::parse(line, format!("unknown design '{other}'")));
                }
            };
            Ok(BenchmarkSpec::Design(d))
        }
        "spread" => {
            let use_cases = parse_num(line, "use-case count", toks.get(1).ok_or_else(missing)?)?;
            let seed = parse_num(line, "seed", toks.get(2).ok_or_else(missing)?)?;
            let mut pair_pool = None;
            let mut versatile_fraction = 0.0f64;
            let mut rest = &toks[3..];
            while !rest.is_empty() {
                match rest[0] {
                    "pool" => {
                        pair_pool = Some(parse_num(
                            line,
                            "pool size",
                            rest.get(1).ok_or_else(missing)?,
                        )?);
                        rest = &rest[2..];
                    }
                    "versatile" => {
                        versatile_fraction = parse_num(
                            line,
                            "versatile fraction",
                            rest.get(1).ok_or_else(missing)?,
                        )?;
                        rest = &rest[2..];
                    }
                    other => {
                        return Err(FlowError::parse(
                            line,
                            format!("unknown spread option '{other}'"),
                        ));
                    }
                }
            }
            Ok(BenchmarkSpec::Spread {
                use_cases,
                seed,
                pair_pool,
                versatile_fraction,
            })
        }
        "bot" => Ok(BenchmarkSpec::Bottleneck {
            use_cases: parse_num(line, "use-case count", toks.get(1).ok_or_else(missing)?)?,
            seed: parse_num(line, "seed", toks.get(2).ok_or_else(missing)?)?,
        }),
        other => Err(FlowError::parse(
            line,
            format!("unknown benchmark kind '{other}'"),
        )),
    }
}

fn parse_labeled(line: usize, toks: &[&str]) -> Result<LabeledBench, FlowError> {
    let label = toks
        .first()
        .ok_or_else(|| FlowError::parse(line, "missing bench label"))?;
    Ok(LabeledBench::new(*label, parse_bench(line, &toks[1..])?))
}

fn parse_list<T: std::str::FromStr>(
    line: usize,
    what: &str,
    toks: &[&str],
) -> Result<Vec<T>, FlowError> {
    toks.iter().map(|t| parse_num(line, what, t)).collect()
}

/// Parses either document type from text, dispatching on the header.
///
/// # Errors
///
/// [`FlowError::Parse`] with the offending 1-based line.
pub fn spec_from_text(text: &str) -> Result<SpecFile, FlowError> {
    let mut lines = Lines::new(text);
    let Some((line, toks, _)) = lines.next().cloned() else {
        return Err(FlowError::parse(0, "empty spec file"));
    };
    match *toks.first().expect("non-empty by construction") {
        "experiment" => {
            let name = toks
                .get(1)
                .ok_or_else(|| FlowError::parse(line, "missing experiment name"))?
                .to_string();
            experiment_body(name, &mut lines).map(SpecFile::Experiment)
        }
        "flow" => {
            let name = toks
                .get(1)
                .ok_or_else(|| FlowError::parse(line, "missing flow name"))?
                .to_string();
            flow_body(name, &mut lines).map(SpecFile::Flow)
        }
        other => Err(FlowError::parse(
            line,
            format!("expected 'experiment NAME' or 'flow NAME', got '{other}'"),
        )),
    }
}

/// Parses an [`ExperimentSpec`] from text.
///
/// # Errors
///
/// [`FlowError::Parse`]; also when the document is a `flow` config.
pub fn experiment_from_text(text: &str) -> Result<ExperimentSpec, FlowError> {
    match spec_from_text(text)? {
        SpecFile::Experiment(spec) => Ok(spec),
        SpecFile::Flow(_) => Err(FlowError::parse(
            0,
            "expected an 'experiment' document, found a 'flow' config",
        )),
    }
}

/// Parses a [`FlowConfig`] from text.
///
/// # Errors
///
/// [`FlowError::Parse`]; also when the document is an `experiment`.
pub fn flow_from_text(text: &str) -> Result<FlowConfig, FlowError> {
    match spec_from_text(text)? {
        SpecFile::Flow(cfg) => Ok(cfg),
        SpecFile::Experiment(_) => Err(FlowError::parse(
            0,
            "expected a 'flow' config, found an 'experiment' document",
        )),
    }
}

fn experiment_body(name: String, lines: &mut Lines<'_>) -> Result<ExperimentSpec, FlowError> {
    // `title` then `kind` are fixed, in order.
    let (tline, ttoks, traw) = lines
        .next()
        .ok_or_else(|| FlowError::parse(0, "missing 'title' line"))?
        .clone();
    if ttoks.first() != Some(&"title") {
        return Err(FlowError::parse(tline, "expected 'title TEXT'"));
    }
    let title = traw["title".len()..].trim().to_string();
    let (kline, ktoks, _) = lines
        .next()
        .ok_or_else(|| FlowError::parse(0, "missing 'kind' line"))?
        .clone();
    if ktoks.first() != Some(&"kind") || ktoks.len() != 2 {
        return Err(FlowError::parse(kline, "expected 'kind NAME'"));
    }
    let kind_name = ktoks[1].to_string();

    // Collect the keyword-led body lines.
    let mut benches = Vec::new();
    let mut dvs_benches = Vec::new();
    let mut speedup_benches = Vec::new();
    let mut target: Option<BenchmarkSpec> = None;
    let mut variants = Vec::new();
    let mut models = Vec::new();
    let mut sweep_mhz = Vec::new();
    let mut hops = Vec::new();
    let mut parallel = Vec::new();
    let mut scalars: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    const SCALARS: [&str; 15] = [
        "floor_mhz",
        "lo_mhz",
        "hi_mhz",
        "cycles",
        "flows",
        "avg_mbps",
        "slots",
        "freq_mhz",
        "anneal_iterations",
        "anneal_chains",
        "requests",
        "seed",
        "batch",
        "budget",
        "faults",
    ];

    while let Some((line, toks, _)) = lines.next().cloned() {
        match *toks.first().expect("non-empty by construction") {
            "bench" => benches.push(parse_labeled(line, &toks[1..])?),
            "dvs" => dvs_benches.push(parse_labeled(line, &toks[1..])?),
            "speedup" => speedup_benches.push(parse_labeled(line, &toks[1..])?),
            "target" => target = Some(parse_bench(line, &toks[1..])?),
            "sweep_mhz" => sweep_mhz = parse_list(line, "frequency", &toks[1..])?,
            "hops" => hops = parse_list(line, "hop count", &toks[1..])?,
            "parallel" => parallel = parse_list(line, "parallelism", &toks[1..])?,
            "variant" => {
                let which = toks
                    .get(1)
                    .ok_or_else(|| FlowError::parse(line, "missing variant name"))?;
                variants.push(match *which {
                    "paper-defaults" => AblationVariant::PaperDefaults,
                    "unsorted-flows" => AblationVariant::UnsortedFlows,
                    "round-robin-placement" => AblationVariant::RoundRobinPlacement,
                    "single-shared-config" => AblationVariant::SingleSharedConfig,
                    "with-annealing" => AblationVariant::WithAnnealing {
                        iterations: parse_num(line, "iterations", toks.get(2).unwrap_or(&""))?,
                        chains: parse_num(line, "chains", toks.get(3).unwrap_or(&""))?,
                    },
                    other => {
                        return Err(FlowError::parse(
                            line,
                            format!("unknown ablation variant '{other}'"),
                        ));
                    }
                });
            }
            "model" => {
                let label = toks
                    .get(1)
                    .ok_or_else(|| FlowError::parse(line, "missing model label"))?
                    .to_string();
                let shape = toks
                    .get(2)
                    .ok_or_else(|| FlowError::parse(line, "missing model shape"))?;
                let model = match *shape {
                    "constant" => TrafficModel::Constant,
                    "onoff" => TrafficModel::OnOff {
                        period: parse_num(line, "period", toks.get(3).unwrap_or(&""))?,
                        on: parse_num(line, "on window", toks.get(4).unwrap_or(&""))?,
                        phase: parse_num(line, "phase", toks.get(5).unwrap_or(&""))?,
                    },
                    "mmpp" => TrafficModel::RandomBursts {
                        mean_on: parse_num(line, "mean on", toks.get(3).unwrap_or(&""))?,
                        mean_off: parse_num(line, "mean off", toks.get(4).unwrap_or(&""))?,
                        seed: parse_num(line, "seed", toks.get(5).unwrap_or(&""))?,
                    },
                    "trace" => TrafficModel::Trace(parse_list(line, "cycle", &toks[3..])?),
                    other => {
                        return Err(FlowError::parse(
                            line,
                            format!("unknown traffic model '{other}'"),
                        ));
                    }
                };
                models.push(BurstModel { label, model });
            }
            key if SCALARS.contains(&key) => {
                let value = toks
                    .get(1)
                    .ok_or_else(|| FlowError::parse(line, format!("{key} needs a value")))?;
                let canonical = SCALARS
                    .iter()
                    .find(|s| **s == key)
                    .expect("guard checked membership");
                scalars.insert(canonical, parse_num(line, key, value)?);
            }
            other => {
                return Err(FlowError::parse(line, format!("unknown keyword '{other}'")));
            }
        }
    }

    let scalar = |key: &str, default: Option<u64>| -> Result<u64, FlowError> {
        scalars
            .get(key)
            .copied()
            .or(default)
            .ok_or_else(|| FlowError::parse(0, format!("missing '{key}' line")))
    };
    let need_target = |t: &Option<BenchmarkSpec>| -> Result<BenchmarkSpec, FlowError> {
        t.clone()
            .ok_or_else(|| FlowError::parse(0, "missing 'target' line"))
    };

    let kind = match kind_name.as_str() {
        "comparison" => ExperimentKind::Comparison { benches },
        "area_frequency" => ExperimentKind::AreaFrequency {
            bench: need_target(&target)?,
            sweep_mhz,
        },
        "dvs" => ExperimentKind::DvsSavings {
            benches,
            floor_mhz: scalar("floor_mhz", Some(10))?,
        },
        "parallel_frequency" => ExperimentKind::ParallelFrequency {
            bench: need_target(&target)?,
            parallel,
            lo_mhz: scalar("lo_mhz", Some(10))?,
            hi_mhz: scalar("hi_mhz", Some(4000))?,
        },
        "verify" => ExperimentKind::VerifyDesigns {
            benches,
            cycles: scalar("cycles", Some(4096))?,
        },
        "ablations" => ExperimentKind::Ablations {
            bench: need_target(&target)?,
            variants,
        },
        "runtimes" => ExperimentKind::Runtimes {
            benches,
            speedup_benches,
        },
        "be_burst" => ExperimentKind::BeBurst {
            models,
            hops,
            flows: scalar("flows", Some(3))? as usize,
            avg_mbps: scalar("avg_mbps", Some(200))?,
            slots: scalar("slots", Some(16))? as usize,
            freq_mhz: scalar("freq_mhz", Some(500))?,
            cycles: scalar("cycles", Some(16_384))?,
        },
        "headline" => ExperimentKind::Headline {
            area_benches: benches,
            dvs_benches,
            floor_mhz: scalar("floor_mhz", Some(10))?,
        },
        "perf" => ExperimentKind::Perf {
            benches,
            anneal_iterations: scalar("anneal_iterations", Some(60))?,
            anneal_chains: scalar("anneal_chains", Some(2))?,
        },
        "frontier" => ExperimentKind::Frontier { benches },
        "service" => ExperimentKind::Service {
            requests: scalar("requests", Some(200))?,
            seed: scalar("seed", Some(2006))?,
            batch: scalar("batch", Some(4))?,
            budget: scalar("budget", Some(6))?,
        },
        "resilience" => ExperimentKind::Resilience {
            requests: scalar("requests", Some(150))?,
            seed: scalar("seed", Some(2006))?,
            batch: scalar("batch", Some(4))?,
            budget: scalar("budget", Some(6))?,
            faults: scalar("faults", Some(5))?,
        },
        other => {
            return Err(FlowError::parse(
                kline,
                format!("unknown experiment kind '{other}'"),
            ));
        }
    };
    Ok(ExperimentSpec { name, title, kind })
}

fn flow_body(name: String, lines: &mut Lines<'_>) -> Result<FlowConfig, FlowError> {
    let mut cfg = FlowConfig {
        name,
        ..FlowConfig::design_defaults()
    };
    cfg.stages.clear();
    while let Some((line, toks, _)) = lines.next().cloned() {
        let value = |i: usize| -> Result<&str, FlowError> {
            toks.get(i)
                .copied()
                .ok_or_else(|| FlowError::parse(line, "missing value"))
        };
        match *toks.first().expect("non-empty by construction") {
            "slots" => cfg.slots = parse_num(line, "slots", value(1)?)?,
            "freq_mhz" => cfg.freq_mhz = parse_num(line, "frequency", value(1)?)?,
            "max_switches" => cfg.max_switches = parse_num(line, "switch cap", value(1)?)?,
            "threads" => cfg.threads = Some(parse_num(line, "threads", value(1)?)?),
            "seed" => cfg.seed = parse_num(line, "seed", value(1)?)?,
            "stage" => {
                let stage = match value(1)? {
                    "map" => StageConfig::Map {
                        strategy: match toks.get(2) {
                            Some(tok) => StrategyKind::parse(tok).ok_or_else(|| {
                                FlowError::parse(line, format!("unknown map strategy '{tok}'"))
                            })?,
                            None => StrategyKind::Greedy,
                        },
                    },
                    "worst_case" => StageConfig::WorstCase,
                    "anneal" => {
                        let d = AnnealConfig::default();
                        StageConfig::Anneal {
                            iterations: parse_num(line, "iterations", value(2)?)?,
                            chains: parse_num(line, "chains", value(3)?)?,
                            seed: match toks.get(4) {
                                Some(t) => parse_num(line, "seed", t)?,
                                None => d.seed,
                            },
                            initial_temperature: match toks.get(5) {
                                Some(t) => parse_num(line, "temperature", t)?,
                                None => d.initial_temperature,
                            },
                            cooling: match toks.get(6) {
                                Some(t) => parse_num(line, "cooling", t)?,
                                None => d.cooling,
                            },
                        }
                    }
                    "remap" => StageConfig::Remap {
                        max_moved_cores: parse_num(line, "moved cores", value(2)?)?,
                        rounds: parse_num(line, "rounds", value(3)?)?,
                    },
                    "verify" => StageConfig::Verify,
                    "simulate" => StageConfig::Simulate {
                        cycles: parse_num(line, "cycles", value(2)?)?,
                    },
                    other => {
                        return Err(FlowError::parse(line, format!("unknown stage '{other}'")));
                    }
                };
                cfg.stages.push(stage);
            }
            other => {
                return Err(FlowError::parse(line, format!("unknown keyword '{other}'")));
            }
        }
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_generate_matches_direct_generators() {
        assert_eq!(
            BenchmarkSpec::Design(SocDesign::D2).generate(),
            SocDesign::D2.generate()
        );
        assert_eq!(
            BenchmarkSpec::spread(3, 7).generate(),
            SpreadConfig::paper(3).generate(7)
        );
        let mut pooled = SpreadConfig::paper(3);
        pooled.pair_pool = Some(50);
        pooled.versatile_fraction = 0.3;
        assert_eq!(
            BenchmarkSpec::pooled_spread(3, 7, 50, 0.3).generate(),
            pooled.generate(7)
        );
    }

    #[test]
    fn flow_config_round_trips() {
        let cfg = FlowConfig {
            name: "full".into(),
            slots: 32,
            freq_mhz: 650,
            max_switches: 100,
            threads: Some(4),
            seed: 42,
            stages: vec![
                StageConfig::map(),
                StageConfig::WorstCase,
                StageConfig::Anneal {
                    iterations: 50,
                    chains: 2,
                    seed: 9,
                    initial_temperature: 450.5,
                    cooling: 0.93,
                },
                StageConfig::Remap {
                    max_moved_cores: 2,
                    rounds: 3,
                },
                StageConfig::Verify,
                StageConfig::Simulate { cycles: 2048 },
            ],
        };
        let text = flow_to_text(&cfg);
        assert_eq!(flow_from_text(&text).unwrap(), cfg);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = spec_from_text("experiment x\ntitle t\nkind comparison\nbench A design d9\n")
            .unwrap_err();
        assert_eq!(err, FlowError::parse(4, "unknown design 'd9'"));
        let err = spec_from_text("banana\n").unwrap_err();
        assert!(matches!(err, FlowError::Parse { line: 1, .. }));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let cfg = flow_from_text("# header\nflow x\n\nslots 8  # eight\nstage map\n").unwrap();
        assert_eq!(cfg.slots, 8);
        assert_eq!(cfg.stages, vec![StageConfig::map()]);
    }

    #[test]
    fn map_strategy_round_trips_and_defaults_to_greedy() {
        for strategy in StrategyKind::ALL {
            let cfg = FlowConfig {
                stages: vec![StageConfig::Map { strategy }, StageConfig::Verify],
                ..FlowConfig::design_defaults()
            };
            let text = flow_to_text(&cfg);
            // The greedy default keeps the historical bare spelling.
            if strategy == StrategyKind::Greedy {
                assert!(text.contains("stage map\n"), "{text}");
            } else {
                assert!(
                    text.contains(&format!("stage map {}\n", strategy.token())),
                    "{text}"
                );
            }
            assert_eq!(flow_from_text(&text).unwrap(), cfg);
        }
        let err = flow_from_text("flow x\nstage map banana\n").unwrap_err();
        assert_eq!(err, FlowError::parse(2, "unknown map strategy 'banana'"));
    }

    #[test]
    fn service_experiment_round_trips() {
        let spec = ExperimentSpec {
            name: "service".into(),
            title: "Online admission".into(),
            kind: ExperimentKind::Service {
                requests: 200,
                seed: 2006,
                batch: 4,
                budget: 6,
            },
        };
        let text = experiment_to_text(&spec);
        assert_eq!(experiment_from_text(&text).unwrap(), spec);
        // Scalars default when omitted.
        let spec = experiment_from_text("experiment s\ntitle t\nkind service\n").unwrap();
        assert!(matches!(
            spec.kind,
            ExperimentKind::Service {
                requests: 200,
                seed: 2006,
                batch: 4,
                budget: 6,
            }
        ));
    }

    #[test]
    fn resilience_experiment_round_trips() {
        let spec = ExperimentSpec {
            name: "resilience".into(),
            title: "Fault injection".into(),
            kind: ExperimentKind::Resilience {
                requests: 150,
                seed: 2006,
                batch: 4,
                budget: 6,
                faults: 5,
            },
        };
        let text = experiment_to_text(&spec);
        assert_eq!(experiment_from_text(&text).unwrap(), spec);
        // Scalars default when omitted.
        let spec = experiment_from_text("experiment r\ntitle t\nkind resilience\n").unwrap();
        assert!(matches!(
            spec.kind,
            ExperimentKind::Resilience {
                requests: 150,
                seed: 2006,
                batch: 4,
                budget: 6,
                faults: 5,
            }
        ));
    }

    #[test]
    fn frontier_experiment_round_trips() {
        let spec = ExperimentSpec {
            name: "frontier".into(),
            title: "Strategy frontier".into(),
            kind: ExperimentKind::Frontier {
                benches: vec![LabeledBench::new("sp3", BenchmarkSpec::spread(3, 7))],
            },
        };
        let text = experiment_to_text(&spec);
        assert_eq!(experiment_from_text(&text).unwrap(), spec);
    }
}
