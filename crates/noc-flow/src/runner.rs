//! The generic experiment runner: executes any [`ExperimentSpec`]
//! through the pipeline API.
//!
//! One executor per [`ExperimentKind`] replaces the dozen hand-wired
//! sweep functions the `noc-bench` crate used to carry; the legacy
//! entry points (`fig6a()`, …) now delegate here. Every executor
//! evaluates its points through [`crate::DesignFlow`]s (or
//! [`Stage`]s directly) and parallelizes via `noc-par` with ordered
//! reduction, so outputs are byte-identical at any thread count.

use noc_sim::{simulate_mixed, BestEffortFlow, Connection, TrafficModel};
use noc_tdma::TdmaSpec;
use noc_topology::units::{Bandwidth, Frequency, LinkWidth};
use noc_topology::{AreaModel, DvsModel};
use noc_usecase::UseCaseGroups;
use nocmap::anneal::AnnealConfig;
use nocmap::design::FabricKind;
use nocmap::dvs::{dvs_savings, parallel_min_frequency};
pub use nocmap::perf::PerfSnapshot;
use nocmap::strategy::{design_with_strategy, StrategyKind};
use nocmap::{MapperOptions, MappingSolution, Placement};

use crate::builder::{DesignFlow, FlowBuilder};
use crate::config::{
    AblationVariant, BenchmarkSpec, BurstModel, ExperimentKind, ExperimentSpec, LabeledBench,
};
use crate::registry::MAX_SWITCHES;
use crate::stage::{AnnealStage, Stage};
use crate::FlowError;

// ---------------------------------------------------------------------
// Point types (one per experiment family).
// ---------------------------------------------------------------------

/// Outcome of one ours-vs-WC comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Benchmark label (design name or use-case count).
    pub label: String,
    /// Switches used by the multi-use-case method.
    pub ours: Option<usize>,
    /// Switches used by the worst-case baseline.
    pub wc: Option<usize>,
}

impl Comparison {
    /// `ours / wc`, when both methods succeeded — the y-axis of Figure 6.
    pub fn normalized(&self) -> Option<f64> {
        match (self.ours, self.wc) {
            (Some(a), Some(b)) if b > 0 => Some(a as f64 / b as f64),
            _ => None,
        }
    }
}

/// One point of the area–frequency Pareto curve.
#[derive(Debug, Clone)]
pub struct AreaPoint {
    /// NoC clock frequency.
    pub frequency: Frequency,
    /// Switch count of the smallest valid mesh, if any.
    pub switches: Option<usize>,
    /// Total switch area (mm²) of that mesh.
    pub area_mm2: Option<f64>,
}

/// One design's DVS/DFS saving.
#[derive(Debug, Clone)]
pub struct DvsPoint {
    /// Design label.
    pub label: String,
    /// Power-saving fraction (Figure 7(b) plots this as a percentage).
    pub savings: f64,
    /// Per-use-case minimum frequencies (MHz) behind the saving.
    pub per_use_case_mhz: Vec<f64>,
}

/// One point of the parallel-use-case frequency study.
#[derive(Debug, Clone)]
pub struct ParallelPoint {
    /// Number of use-cases running in parallel.
    pub parallel: usize,
    /// Minimum NoC frequency supporting the compound mode, if feasible on
    /// the base mesh.
    pub frequency: Option<Frequency>,
}

/// Verification outcome for one design: the paper's phase-4 check
/// (analytical + simulation) over every use-case.
#[derive(Debug, Clone)]
pub struct VerifyPoint {
    /// Design label.
    pub label: String,
    /// Use-cases simulated.
    pub use_cases: usize,
    /// GT connections configured across all groups.
    pub connections: usize,
    /// Slot-contention events observed (must be 0).
    pub contention: u64,
    /// Words that exceeded their analytical latency bound (must be 0).
    pub late_words: u64,
    /// Whether every injected word was delivered or still in flight.
    pub all_delivered: bool,
}

/// Quality outcome of one ablation variant.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Variant label.
    pub label: String,
    /// Switches of the smallest feasible mesh, if any.
    pub switches: Option<usize>,
    /// Bandwidth-weighted hop cost of the solution.
    pub comm_cost: Option<f64>,
}

/// One row of the runtime study.
#[derive(Debug, Clone)]
pub struct RuntimePoint {
    /// Benchmark label.
    pub label: String,
    /// Wall-clock time of the full multi-use-case design flow.
    pub ours: std::time::Duration,
    /// Wall-clock time of the WC design flow (including failures).
    pub wc: std::time::Duration,
}

/// One row of the parallel-speedup study: the same design flow timed at
/// one worker and at the ambient `noc-par` thread count.
#[derive(Debug, Clone)]
pub struct SpeedupPoint {
    /// Benchmark label.
    pub label: String,
    /// Wall-clock with the effective thread count pinned to 1.
    pub sequential: std::time::Duration,
    /// Wall-clock at the ambient thread count.
    pub parallel: std::time::Duration,
    /// The ambient thread count the parallel run used.
    pub threads: usize,
}

impl SpeedupPoint {
    /// `sequential / parallel` — how much faster the parallel run was.
    pub fn speedup(&self) -> f64 {
        let par = self.parallel.as_secs_f64();
        if par <= 0.0 {
            1.0
        } else {
            self.sequential.as_secs_f64() / par
        }
    }
}

/// One point of the BE burstiness × hop-count sweep: a fixed traffic
/// shape and chain depth, with the aggregate best-effort outcome.
#[derive(Debug, Clone)]
pub struct BeBurstPoint {
    /// Traffic-model label (`constant`, `onoff-1/2`, …).
    pub model: String,
    /// Switch-to-switch hops of each chained BE flow.
    pub hops: usize,
    /// Words injected across all BE flows.
    pub injected: u64,
    /// Words delivered across all BE flows.
    pub delivered: u64,
    /// Words still queued or in flight when the window closed.
    pub backlog: u64,
    /// Delivery-weighted mean BE word latency in cycles.
    pub mean_latency_cycles: f64,
    /// Worst BE word latency in cycles.
    pub max_latency_cycles: u64,
    /// Deepest per-flow outstanding backlog observed at any cycle.
    pub peak_backlog_words: u64,
    /// Deepest per-link BE queue observed at any cycle.
    pub max_queue_depth: usize,
}

/// Headline aggregates the abstract quotes: mean NoC area reduction
/// (switch count, ours vs WC) and mean DVS/DFS power saving over the SoC
/// designs.
#[derive(Debug, Clone)]
pub struct Headline {
    /// Mean `1 - ours/wc` over benchmarks where both methods succeed.
    pub mean_area_reduction: f64,
    /// Mean DVS/DFS saving over D1–D4.
    pub mean_power_saving: f64,
}

/// One row of the perf-telemetry study: wall time plus the deterministic
/// op-counter deltas of mapping and then annealing one benchmark.
///
/// The op deltas ([`PerfSnapshot`]) are identical at every `noc-par`
/// thread count (each counted operation is algorithmic work the
/// determinism contract fixes); the wall-clock fields are the only
/// machine-dependent cells, and the `BENCH_nocmap.json` schema keeps the
/// two apart (see `docs/PERFORMANCE.md`).
#[derive(Debug, Clone)]
pub struct PerfPoint {
    /// Benchmark label.
    pub label: String,
    /// Switches of the smallest feasible mesh.
    pub switches: Option<usize>,
    /// Wall-clock of the smallest-mesh map flow.
    pub map_wall: std::time::Duration,
    /// Op-counter delta of the map flow.
    pub map_ops: PerfSnapshot,
    /// Wall-clock of the annealing refinement.
    pub anneal_wall: std::time::Duration,
    /// Op-counter delta of the annealing refinement.
    pub anneal_ops: PerfSnapshot,
    /// Wall-clock of the map flow re-run with an op-mode trace
    /// collector installed — compare against `map_wall` for the
    /// tracing overhead. Zero when a collector was already active
    /// (the re-run is skipped; the ambient trace covers the run).
    pub trace_wall: std::time::Duration,
}

/// One row of the strategy-portfolio frontier: one benchmark mapped by
/// one [`StrategyKind`], with the quality of the result (switches,
/// integer comm cost) and the deterministic effort that bought it
/// (op-counter delta plus the strategy's own search counters).
///
/// Unlike [`PerfPoint`] this row carries **no wall-clock**: every field
/// is identical at any `noc-par` thread count, so the rendered table is
/// goldenable and the `BENCH_nocmap.json` frontier record diffs clean
/// across worker counts.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// Benchmark label.
    pub bench: String,
    /// Strategy that produced this row.
    pub strategy: StrategyKind,
    /// Switches of the produced fabric (same for every strategy — the
    /// portfolio refines placement on the greedy design's fabric).
    pub switches: usize,
    /// Bandwidth × hop integer cost of the solution.
    pub cost: u128,
    /// Evictions the displacement search spent (0 for the others).
    pub evictions: u64,
    /// Branch-and-bound nodes expanded (0 for the others).
    pub nodes: u64,
    /// Op-counter delta of the run.
    pub ops: PerfSnapshot,
}

/// One row of the online-service admission study: one seeded request
/// trace replayed in-process through the `noc-service` engine on one
/// fabric in one admission mode.
///
/// Like [`FrontierPoint`] this row carries **no wall-clock**: the
/// replay transcript is byte-identical at any `noc-par` width, and the
/// op-counter delta records only algorithmic work, so the rendered
/// table is goldenable and diffs clean across worker counts. The
/// `group_routes` / `full_maps` cells are the incremental-vs-resolve
/// contrast the `pr9` bench record pins (see `docs/SERVICE.md`).
#[derive(Debug, Clone)]
pub struct ServicePoint {
    /// Fabric label (`mesh-4x4`, `bneck-2x1x8`).
    pub fabric: String,
    /// Admission mode of this row.
    pub mode: noc_service::AdmitMode,
    /// Final cumulative engine metrics of the replay.
    pub stats: noc_service::ServiceStats,
    /// Op-counter delta of the replay.
    pub ops: PerfSnapshot,
}

/// One row of the fault-injection resilience study: one seeded trace
/// with a woven-in fault schedule ([`noc_service::generate_fault_trace`])
/// replayed in-process on one fabric in incremental mode.
///
/// The interesting cells contrast repair cost against the from-scratch
/// alternative: `heal_reroutes` counts groups re-routed around failed
/// resources, and `full_maps` must stay at the resolve-free baseline —
/// healing is incremental, never a re-solve. Degradation (`degraded` /
/// `healed`) measures how much service the fault schedule actually
/// costs on each fabric.
#[derive(Debug, Clone)]
pub struct ResiliencePoint {
    /// Fabric label (`mesh-4x4`, `bneck-2x1x8`).
    pub fabric: String,
    /// Fault events in the schedule.
    pub faults: u64,
    /// Final cumulative engine metrics of the replay.
    pub stats: noc_service::ServiceStats,
    /// Op-counter delta of the replay.
    pub ops: PerfSnapshot,
}

/// The typed result of executing one [`ExperimentSpec`]: the spec's
/// title plus the points of its family. [`crate::render::render`]
/// turns any output into the fixed-width table both CLIs print.
#[derive(Debug, Clone)]
pub enum ExperimentOutput {
    /// Comparison table rows.
    Comparison {
        /// Table title.
        title: String,
        /// Rows.
        points: Vec<Comparison>,
    },
    /// Area–frequency sweep rows.
    AreaFrequency {
        /// Table title.
        title: String,
        /// Rows.
        points: Vec<AreaPoint>,
    },
    /// DVS/DFS savings rows.
    DvsSavings {
        /// Table title.
        title: String,
        /// Rows.
        points: Vec<DvsPoint>,
    },
    /// Parallel-use-case frequency rows.
    ParallelFrequency {
        /// Table title.
        title: String,
        /// Rows.
        points: Vec<ParallelPoint>,
    },
    /// Phase-4 verification rows.
    VerifyDesigns {
        /// Table title.
        title: String,
        /// Rows.
        points: Vec<VerifyPoint>,
    },
    /// Ablation rows.
    Ablations {
        /// Table title.
        title: String,
        /// Rows.
        points: Vec<AblationPoint>,
    },
    /// Runtime rows plus the 1-vs-N speedup rows.
    Runtimes {
        /// Table title.
        title: String,
        /// Per-benchmark wall-clock rows.
        rows: Vec<RuntimePoint>,
        /// 1-worker vs ambient-worker rows.
        speedups: Vec<SpeedupPoint>,
    },
    /// BE burstiness sweep rows.
    BeBurst {
        /// Table title.
        title: String,
        /// Rows.
        points: Vec<BeBurstPoint>,
    },
    /// Headline aggregates.
    Headline {
        /// Table title.
        title: String,
        /// The two means.
        headline: Headline,
    },
    /// Perf-telemetry rows.
    Perf {
        /// Table title.
        title: String,
        /// Rows.
        points: Vec<PerfPoint>,
    },
    /// Strategy-portfolio frontier rows.
    Frontier {
        /// Table title.
        title: String,
        /// Rows (benchmark-major, strategies in [`StrategyKind::ALL`]
        /// order).
        points: Vec<FrontierPoint>,
    },
    /// Online-service admission rows.
    Service {
        /// Table title.
        title: String,
        /// Rows (fabric-major, incremental before resolve).
        points: Vec<ServicePoint>,
    },
    /// Fault-injection resilience rows.
    Resilience {
        /// Table title.
        title: String,
        /// Rows (one per fabric, incremental mode).
        points: Vec<ResiliencePoint>,
    },
}

// ---------------------------------------------------------------------
// Executors.
// ---------------------------------------------------------------------

fn map_flow(spec: TdmaSpec, options: &MapperOptions) -> DesignFlow {
    FlowBuilder::new(spec)
        .options(options.clone())
        .max_switches(MAX_SWITCHES)
        .map()
        .build()
}

fn wc_flow(spec: TdmaSpec, options: &MapperOptions) -> DesignFlow {
    FlowBuilder::new(spec)
        .options(options.clone())
        .max_switches(MAX_SWITCHES)
        .worst_case()
        .build()
}

fn singleton_groups(soc: &noc_usecase::spec::SocSpec) -> UseCaseGroups {
    UseCaseGroups::singletons(soc.use_case_count())
}

/// One ours-vs-WC pair: the two design flows forked via
/// [`noc_par::join`], exactly as the legacy `run_pair` did.
fn run_pair(label: &str, bench: &BenchmarkSpec) -> Comparison {
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    let soc = bench.generate();
    let groups = singleton_groups(&soc);
    let (ours, wc) = noc_par::join(
        || {
            map_flow(spec, &opts)
                .run(&soc, &groups)
                .ok()
                .and_then(|ctx| ctx.solution.map(|s| s.switch_count()))
        },
        || {
            wc_flow(spec, &opts)
                .run(&soc, &groups)
                .ok()
                .and_then(|ctx| ctx.wc.and_then(|r| r.ok()).map(|s| s.switch_count()))
        },
    );
    Comparison {
        label: label.to_string(),
        ours,
        wc,
    }
}

fn run_comparison(benches: &[LabeledBench]) -> Vec<Comparison> {
    noc_par::par_map(benches.to_vec(), |_, b| run_pair(&b.label, &b.bench))
}

fn run_area_frequency(bench: &BenchmarkSpec, sweep_mhz: &[u64]) -> Vec<AreaPoint> {
    let soc = bench.generate();
    let groups = singleton_groups(&soc);
    let opts = MapperOptions::default();
    let area = AreaModel::cmos130();
    noc_par::par_map(sweep_mhz.to_vec(), |_, mhz| {
        let f = Frequency::from_mhz(mhz);
        let sol = map_flow(TdmaSpec::paper_default().at_frequency(f), &opts)
            .run(&soc, &groups)
            .ok()
            .and_then(|ctx| ctx.solution);
        AreaPoint {
            frequency: f,
            switches: sol.as_ref().map(MappingSolution::switch_count),
            area_mm2: sol.as_ref().map(|s| s.area_mm2(&area)),
        }
    })
}

fn run_dvs(benches: &[LabeledBench], floor_mhz: u64) -> Result<Vec<DvsPoint>, FlowError> {
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    let dvs = DvsModel::cmos130();
    noc_par::try_par_map(benches.to_vec(), |_, b| {
        let soc = b.bench.generate();
        let groups = singleton_groups(&soc);
        let ctx = map_flow(spec, &opts).run(&soc, &groups)?;
        let sol = ctx.solution()?;
        let report = dvs_savings(
            &soc,
            &groups,
            sol,
            &opts,
            &dvs,
            Frequency::from_mhz(floor_mhz),
        )?;
        Ok(DvsPoint {
            label: b.label.clone(),
            savings: report.savings_fraction(),
            per_use_case_mhz: report
                .per_use_case
                .iter()
                .map(|(_, f)| f.as_mhz_f64())
                .collect(),
        })
    })
}

fn run_parallel_frequency(
    bench: &BenchmarkSpec,
    parallel: &[usize],
    lo_mhz: u64,
    hi_mhz: u64,
) -> Result<Vec<ParallelPoint>, FlowError> {
    let soc = bench.generate();
    let groups = singleton_groups(&soc);
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    let ctx = map_flow(spec, &opts).run(&soc, &groups)?;
    let base = ctx.solution()?;
    Ok(noc_par::par_map(parallel.to_vec(), |_, k| {
        let f = parallel_min_frequency(
            &soc,
            k,
            base.topology(),
            spec,
            &opts,
            Frequency::from_mhz(lo_mhz),
            Frequency::from_mhz(hi_mhz),
        )
        .ok()
        .map(|(f, _)| f);
        ParallelPoint {
            parallel: k,
            frequency: f,
        }
    }))
}

fn run_verify(benches: &[LabeledBench], cycles: u64) -> Result<Vec<VerifyPoint>, FlowError> {
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    noc_par::try_par_map(benches.to_vec(), |_, b| {
        let soc = b.bench.generate();
        let groups = singleton_groups(&soc);
        // Map, verify analytically, then replay every use-case on the
        // simulator — one pipeline, three stages. The reports' aggregates
        // are integer sums and an `and`, so reduction order cannot change
        // them.
        let flow = FlowBuilder::new(spec)
            .options(opts.clone())
            .max_switches(MAX_SWITCHES)
            .map()
            .verify()
            .simulate(cycles)
            .build();
        let ctx = flow.run(&soc, &groups)?;
        let sol = ctx.solution()?;
        let contention = ctx
            .sim_reports
            .iter()
            .map(|r| r.contention_violations)
            .sum();
        let late = ctx.sim_reports.iter().map(|r| r.latency_violations).sum();
        let delivered = ctx.sim_reports.iter().all(|r| r.all_flows_delivered());
        Ok(VerifyPoint {
            label: b.label.clone(),
            use_cases: soc.use_case_count(),
            connections: sol.connection_count(),
            contention,
            late_words: late,
            all_delivered: delivered,
        })
    })
}

fn run_ablations(bench: &BenchmarkSpec, variants: &[AblationVariant]) -> Vec<AblationPoint> {
    let soc = bench.generate();
    let spec = TdmaSpec::paper_default();
    let paper = MapperOptions::default();
    let n = soc.use_case_count();
    let points = noc_par::par_map(variants.to_vec(), |_, variant| {
        let (groups, opts) = match &variant {
            AblationVariant::UnsortedFlows => (
                UseCaseGroups::singletons(n),
                MapperOptions {
                    sort_by_bandwidth: false,
                    prefer_mapped: false,
                    ..paper.clone()
                },
            ),
            AblationVariant::RoundRobinPlacement => (
                UseCaseGroups::singletons(n),
                MapperOptions {
                    placement: Placement::RoundRobin,
                    ..paper.clone()
                },
            ),
            AblationVariant::SingleSharedConfig => (UseCaseGroups::single_group(n), paper.clone()),
            _ => (UseCaseGroups::singletons(n), paper.clone()),
        };
        let sol = match &variant {
            AblationVariant::WithAnnealing { iterations, chains } => {
                // Anneal on top of the paper-default base; a failed base
                // map yields no row (matching the legacy behavior).
                let mut ctx = map_flow(spec, &opts).run(&soc, &groups).ok()?;
                let stage = AnnealStage(AnnealConfig {
                    iterations: *iterations,
                    chains: *chains,
                    ..Default::default()
                });
                match stage.run(&mut ctx) {
                    Ok(()) => ctx.solution,
                    Err(_) => None,
                }
            }
            _ => map_flow(spec, &opts)
                .run(&soc, &groups)
                .ok()
                .and_then(|ctx| ctx.solution),
        };
        Some(AblationPoint {
            label: variant.label().to_string(),
            switches: sol.as_ref().map(MappingSolution::switch_count),
            comm_cost: sol.as_ref().map(MappingSolution::comm_cost),
        })
    });
    points.into_iter().flatten().collect()
}

fn run_runtimes(benches: &[LabeledBench]) -> Vec<RuntimePoint> {
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    benches
        .iter()
        .map(|b| {
            let soc = b.bench.generate();
            let groups = singleton_groups(&soc);
            let t0 = std::time::Instant::now();
            let _ = map_flow(spec, &opts).run(&soc, &groups);
            let ours = t0.elapsed();
            let t1 = std::time::Instant::now();
            let _ = wc_flow(spec, &opts).run(&soc, &groups);
            let wc = t1.elapsed();
            RuntimePoint {
                label: b.label.clone(),
                ours,
                wc,
            }
        })
        .collect()
}

fn run_speedups(benches: &[LabeledBench]) -> Vec<SpeedupPoint> {
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    let threads = noc_par::current_threads();
    benches
        .iter()
        .map(|b| {
            let soc = b.bench.generate();
            let groups = singleton_groups(&soc);
            let run = || {
                let t0 = std::time::Instant::now();
                let sol = map_flow(spec, &opts)
                    .run(&soc, &groups)
                    .ok()
                    .and_then(|ctx| ctx.solution);
                (t0.elapsed(), sol)
            };
            let (sequential, seq_sol) = noc_par::with_threads(1, run);
            let (parallel, par_sol) = run();
            assert_eq!(
                seq_sol, par_sol,
                "thread count must not change the solution ({})",
                b.label
            );
            SpeedupPoint {
                label: b.label.clone(),
                sequential,
                parallel,
                threads,
            }
        })
        .collect()
}

/// The scenario behind one [`BeBurstPoint`]: `flows` chained BE flows
/// (consecutive flows overlap on `hops − 1` interior links) riding the
/// leftover capacity of a GT trunk that spans the whole chain and owns
/// half the slot table. Every flow injects `avg_mbps` on average; only
/// the burst shape varies.
#[allow(clippy::too_many_arguments)]
fn be_burst_point(
    label: &str,
    model: &TrafficModel,
    hops: usize,
    flows: usize,
    avg_mbps: u64,
    slots: usize,
    freq_mhz: u64,
    cycles: u64,
) -> BeBurstPoint {
    let spec = TdmaSpec::new(slots, Frequency::from_mhz(freq_mhz), LinkWidth::BITS_32);
    let (mesh, routes) = noc_benchgen::chained_chain(flows, hops);
    let trunk = noc_benchgen::route_between(&mesh, (0, 0), (0, mesh.cols() - 1));
    let base_slots: Vec<usize> = (0..spec.slots() / 2).collect();
    let bound = spec.worst_case_latency_cycles(&base_slots, trunk.path.len());
    // Half the table at a `word_bytes × freq` link: e.g. 8/16 slots of a
    // 2000 MB/s link = 1000 MB/s provisioned.
    let link_mbps = freq_mhz * u64::from(LinkWidth::BITS_32.bits() / 8);
    let gt = Connection {
        key: (trunk.src, trunk.dst),
        path: trunk.path.clone(),
        base_slots,
        inject_bandwidth: Bandwidth::from_mbps(
            link_mbps * (spec.slots() as u64 / 2) / spec.slots() as u64,
        ),
        traffic: TrafficModel::Constant,
        latency_bound_cycles: Some(bound),
    };
    let be: Vec<BestEffortFlow> = routes
        .iter()
        .map(|r| BestEffortFlow {
            key: (r.src, r.dst),
            path: r.path.clone(),
            inject_bandwidth: Bandwidth::from_mbps(avg_mbps),
            traffic: model.clone(),
        })
        .collect();
    let report = simulate_mixed(&spec, &[gt], &be, cycles);
    assert_eq!(
        report.guaranteed.contention_violations, 0,
        "the GT trunk owns its slots exclusively"
    );
    let (mut injected, mut delivered, mut backlog) = (0u64, 0u64, 0u64);
    let (mut lat_total, mut lat_max, mut peak) = (0u64, 0u64, 0u64);
    for stats in report.best_effort.values() {
        injected += stats.injected_words;
        delivered += stats.delivered_words;
        backlog += stats.backlog_words;
        lat_total += stats.total_latency_cycles;
        lat_max = lat_max.max(stats.max_latency_cycles);
        peak = peak.max(stats.peak_backlog_words);
    }
    BeBurstPoint {
        model: label.to_string(),
        hops,
        injected,
        delivered,
        backlog,
        mean_latency_cycles: if delivered == 0 {
            0.0
        } else {
            lat_total as f64 / delivered as f64
        },
        max_latency_cycles: lat_max,
        peak_backlog_words: peak,
        max_queue_depth: report.max_be_queue_depth,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_be_burst(
    models: &[BurstModel],
    hops: &[usize],
    flows: usize,
    avg_mbps: u64,
    slots: usize,
    freq_mhz: u64,
    cycles: u64,
) -> Vec<BeBurstPoint> {
    let points: Vec<(BurstModel, usize)> = models
        .iter()
        .flat_map(|m| hops.iter().map(move |&h| (m.clone(), h)))
        .collect();
    noc_par::par_map(points, |_, (m, h)| {
        be_burst_point(
            &m.label, &m.model, h, flows, avg_mbps, slots, freq_mhz, cycles,
        )
    })
}

/// Maps and then anneals each benchmark, bracketing both phases with
/// op-counter snapshots. Benchmarks run sequentially (each is timed;
/// the flows inside still use `noc-par`), so the per-phase counter
/// deltas are exact — the perf harness runs in its own process.
fn run_perf(benches: &[LabeledBench], iterations: u64, chains: u64) -> Vec<PerfPoint> {
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    benches
        .iter()
        .map(|b| {
            let soc = b.bench.generate();
            let groups = singleton_groups(&soc);
            let before = nocmap::perf::snapshot();
            let t0 = std::time::Instant::now();
            let sol = map_flow(spec, &opts)
                .run(&soc, &groups)
                .ok()
                .and_then(|ctx| ctx.solution);
            let map_wall = t0.elapsed();
            let mid = nocmap::perf::snapshot();
            let t1 = std::time::Instant::now();
            let annealed = sol.as_ref().and_then(|sol| {
                nocmap::anneal::refine(
                    &soc,
                    &groups,
                    &opts,
                    sol,
                    &AnnealConfig {
                        iterations: iterations as usize,
                        chains: chains as usize,
                        seed: crate::registry::SEED,
                        ..Default::default()
                    },
                )
                .ok()
            });
            let anneal_wall = t1.elapsed();
            let after = nocmap::perf::snapshot();
            // Tracing-overhead probe: re-run the map flow with an
            // op-mode collector installed and time it. The re-run sits
            // *outside* the snapshot brackets above, so the per-phase
            // op deltas are untouched by it (and record trace_spans=0
            // — the pay-for-use proof). Skipped when a collector is
            // already active (double-install is refused).
            let trace_wall = if noc_obs::active() {
                std::time::Duration::ZERO
            } else {
                let t2 = std::time::Instant::now();
                let installed = noc_obs::install(noc_obs::TraceMode::Ops);
                let _ = map_flow(spec, &opts).run(&soc, &groups);
                if installed {
                    let _ = noc_obs::finish();
                }
                t2.elapsed()
            };
            PerfPoint {
                label: b.label.clone(),
                switches: annealed
                    .as_ref()
                    .or(sol.as_ref())
                    .map(MappingSolution::switch_count),
                map_wall,
                map_ops: mid.since(&before),
                anneal_wall,
                anneal_ops: after.since(&mid),
                trace_wall,
            }
        })
        .collect()
}

/// Maps each benchmark with every portfolio strategy, bracketing each
/// run with op-counter snapshots. Rows run sequentially so the
/// per-row deltas are exact (the mapper inside still uses `noc-par`);
/// every recorded field is schedule-independent.
fn run_frontier(benches: &[LabeledBench]) -> Result<Vec<FrontierPoint>, FlowError> {
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    let mut points = Vec::new();
    for b in benches {
        let soc = b.bench.generate();
        let groups = singleton_groups(&soc);
        for kind in StrategyKind::ALL {
            let before = nocmap::perf::snapshot();
            let outcome = design_with_strategy(
                &soc,
                &groups,
                spec,
                &opts,
                MAX_SWITCHES,
                FabricKind::Mesh,
                kind,
            )?;
            let ops = nocmap::perf::snapshot().since(&before);
            points.push(FrontierPoint {
                bench: b.label.clone(),
                strategy: kind,
                switches: outcome.solution.switch_count(),
                cost: outcome.solution.comm_cost_bytes_hops(),
                evictions: outcome.evictions,
                nodes: outcome.nodes_expanded,
                ops,
            });
        }
    }
    Ok(points)
}

/// The fabrics the service study replays on: the paper's canonical
/// 4×4 mesh (16 NIs, high path diversity — displacement rarely needed)
/// and a two-switch bottleneck fabric with the same NI count, where
/// heavy use-cases conflict on the single inter-switch link and the
/// displacement path earns its keep.
const SERVICE_FABRICS: [(&str, u16, u16, u16); 2] =
    [("mesh-4x4", 4, 4, 1), ("bneck-2x1x8", 2, 1, 8)];

/// Replays the seeded trace once per fabric × admission mode,
/// bracketing each replay with op-counter snapshots. Rows run
/// sequentially so the per-row deltas are exact; every recorded field
/// is schedule-independent.
fn run_service(
    requests: u64,
    seed: u64,
    batch: u64,
    budget: u64,
) -> Result<Vec<ServicePoint>, FlowError> {
    use noc_service::{replay, AdmitMode, EngineConfig};
    let mut points = Vec::new();
    for (fabric, rows, cols, nis) in SERVICE_FABRICS {
        for mode in [AdmitMode::Incremental, AdmitMode::Resolve] {
            let cfg = EngineConfig {
                rows,
                cols,
                nis_per_switch: nis,
                batch: batch as usize,
                budget,
                mode,
                ..EngineConfig::default()
            };
            let before = nocmap::perf::snapshot();
            let replayed = replay(cfg, requests, seed).map_err(|m| FlowError::parse(0, m))?;
            let ops = nocmap::perf::snapshot().since(&before);
            points.push(ServicePoint {
                fabric: fabric.to_string(),
                mode,
                stats: replayed.stats,
                ops,
            });
        }
    }
    Ok(points)
}

/// Replays the seeded fault schedule once per fabric (incremental
/// admission only — healing is defined as incremental repair),
/// bracketing each replay with op-counter snapshots, exactly like
/// [`run_service`].
fn run_resilience(
    requests: u64,
    seed: u64,
    batch: u64,
    budget: u64,
    faults: u64,
) -> Result<Vec<ResiliencePoint>, FlowError> {
    use noc_service::{generate_fault_trace, replay_lines, AdmitMode, EngineConfig};
    let mut points = Vec::new();
    for (fabric, rows, cols, nis) in SERVICE_FABRICS {
        let cfg = EngineConfig {
            rows,
            cols,
            nis_per_switch: nis,
            batch: batch as usize,
            budget,
            mode: AdmitMode::Incremental,
            ..EngineConfig::default()
        };
        let lines = generate_fault_trace(&cfg, requests, seed, faults)
            .map_err(|m| FlowError::parse(0, m))?;
        let before = nocmap::perf::snapshot();
        let replayed = replay_lines(cfg, &lines).map_err(|m| FlowError::parse(0, m))?;
        let ops = nocmap::perf::snapshot().since(&before);
        points.push(ResiliencePoint {
            fabric: fabric.to_string(),
            faults,
            stats: replayed.stats,
            ops,
        });
    }
    Ok(points)
}

fn run_headline(
    area_benches: &[LabeledBench],
    dvs_benches: &[LabeledBench],
    floor_mhz: u64,
) -> Result<Headline, FlowError> {
    let comps = run_comparison(area_benches);
    let reductions: Vec<f64> = comps
        .iter()
        .filter_map(Comparison::normalized)
        .map(|n| 1.0 - n)
        .collect();
    let mean_area_reduction = if reductions.is_empty() {
        0.0
    } else {
        reductions.iter().sum::<f64>() / reductions.len() as f64
    };
    let savings = run_dvs(dvs_benches, floor_mhz)?;
    let mean_power_saving =
        savings.iter().map(|p| p.savings).sum::<f64>() / savings.len().max(1) as f64;
    Ok(Headline {
        mean_area_reduction,
        mean_power_saving,
    })
}

/// Executes one experiment spec and returns its typed output.
///
/// # Errors
///
/// [`FlowError`] (usually a wrapped `MapError`) when a fallible
/// experiment family cannot complete — e.g. a DVS study whose design
/// has no feasible frequency. Infallible families (comparisons, area
/// sweeps, …) record per-point failures *in* their points instead.
pub fn run_spec(spec: &ExperimentSpec) -> Result<ExperimentOutput, FlowError> {
    let span = noc_obs::span("experiment");
    span.attr("name", spec.name.clone());
    let title = spec.title.clone();
    Ok(match &spec.kind {
        ExperimentKind::Comparison { benches } => ExperimentOutput::Comparison {
            title,
            points: run_comparison(benches),
        },
        ExperimentKind::AreaFrequency { bench, sweep_mhz } => ExperimentOutput::AreaFrequency {
            title,
            points: run_area_frequency(bench, sweep_mhz),
        },
        ExperimentKind::DvsSavings { benches, floor_mhz } => ExperimentOutput::DvsSavings {
            title,
            points: run_dvs(benches, *floor_mhz)?,
        },
        ExperimentKind::ParallelFrequency {
            bench,
            parallel,
            lo_mhz,
            hi_mhz,
        } => ExperimentOutput::ParallelFrequency {
            title,
            points: run_parallel_frequency(bench, parallel, *lo_mhz, *hi_mhz)?,
        },
        ExperimentKind::VerifyDesigns { benches, cycles } => ExperimentOutput::VerifyDesigns {
            title,
            points: run_verify(benches, *cycles)?,
        },
        ExperimentKind::Ablations { bench, variants } => ExperimentOutput::Ablations {
            title,
            points: run_ablations(bench, variants),
        },
        ExperimentKind::Runtimes {
            benches,
            speedup_benches,
        } => ExperimentOutput::Runtimes {
            title,
            rows: run_runtimes(benches),
            speedups: run_speedups(speedup_benches),
        },
        ExperimentKind::BeBurst {
            models,
            hops,
            flows,
            avg_mbps,
            slots,
            freq_mhz,
            cycles,
        } => ExperimentOutput::BeBurst {
            title,
            points: run_be_burst(models, hops, *flows, *avg_mbps, *slots, *freq_mhz, *cycles),
        },
        ExperimentKind::Headline {
            area_benches,
            dvs_benches,
            floor_mhz,
        } => ExperimentOutput::Headline {
            title,
            headline: run_headline(area_benches, dvs_benches, *floor_mhz)?,
        },
        ExperimentKind::Perf {
            benches,
            anneal_iterations,
            anneal_chains,
        } => ExperimentOutput::Perf {
            title,
            points: run_perf(benches, *anneal_iterations, *anneal_chains),
        },
        ExperimentKind::Frontier { benches } => ExperimentOutput::Frontier {
            title,
            points: run_frontier(benches)?,
        },
        ExperimentKind::Service {
            requests,
            seed,
            batch,
            budget,
        } => ExperimentOutput::Service {
            title,
            points: run_service(*requests, *seed, *batch, *budget)?,
        },
        ExperimentKind::Resilience {
            requests,
            seed,
            batch,
            budget,
            faults,
        } => ExperimentOutput::Resilience {
            title,
            points: run_resilience(*requests, *seed, *batch, *budget, *faults)?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SEED;

    #[test]
    fn comparison_normalization() {
        let c = Comparison {
            label: "x".into(),
            ours: Some(4),
            wc: Some(16),
        };
        assert_eq!(c.normalized(), Some(0.25));
        let c = Comparison {
            label: "x".into(),
            ours: Some(4),
            wc: None,
        };
        assert_eq!(c.normalized(), None);
    }

    #[test]
    fn small_comparison_point_runs() {
        // Smoke-test the smallest Sp point end to end (2 use-cases).
        let comp = run_pair("2", &BenchmarkSpec::spread(2, SEED + 2));
        let ours = comp.ours.expect("multi-use-case mapping must succeed");
        assert!(ours >= 1);
        if let Some(n) = comp.normalized() {
            assert!(
                n <= 1.0 + 1e-9,
                "ours must not need more switches than WC, got {n}"
            );
        }
    }

    #[test]
    fn be_burst_point_shapes_order_by_burstiness() {
        // At one average rate, the duty-1/8 burst source must queue
        // deeper and wait longer than the smooth source on the same
        // 4-hop chain.
        let point = |label: &str, model: &TrafficModel| {
            be_burst_point(label, model, 4, 3, 200, 16, 500, 16_384)
        };
        let smooth = point("constant", &TrafficModel::Constant);
        let bursty = point(
            "onoff-1/8",
            &TrafficModel::OnOff {
                period: 256,
                on: 32,
                phase: 0,
            },
        );
        assert!(smooth.injected > 0 && bursty.injected > 0);
        assert_eq!(
            smooth.injected, bursty.injected,
            "equal average rate over whole periods"
        );
        assert!(bursty.peak_backlog_words > smooth.peak_backlog_words);
        assert!(bursty.mean_latency_cycles > smooth.mean_latency_cycles);
    }
}
