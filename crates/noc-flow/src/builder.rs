//! [`FlowBuilder`] — assemble stages into a deterministic
//! [`DesignFlow`].
//!
//! The builder threads the knobs every caller used to plumb by hand —
//! TDMA spec, mapper options, growth cap, RNG seed, and the `noc-par`
//! thread policy — exactly once; stages are appended in execution
//! order. The resulting flow is reusable: [`DesignFlow::run`] takes a
//! spec + group partition and returns the final [`FlowContext`].

use noc_tdma::TdmaSpec;
use noc_usecase::spec::SocSpec;
use noc_usecase::UseCaseGroups;
use nocmap::anneal::AnnealConfig;
use nocmap::design::FabricKind;
use nocmap::remap::RemapConfig;
use nocmap::strategy::StrategyKind;
use nocmap::MapperOptions;

use crate::stage::{
    AnnealStage, FlowContext, MapStage, RemapStage, SimulateStage, Stage, VerifyStage,
    WorstCaseStage,
};
use crate::FlowError;

/// Builder for a [`DesignFlow`]. See the crate docs for a worked
/// example.
pub struct FlowBuilder {
    spec: TdmaSpec,
    options: MapperOptions,
    max_switches: usize,
    threads: Option<usize>,
    seed: u64,
    stages: Vec<Box<dyn Stage + Send + Sync>>,
}

impl FlowBuilder {
    /// Starts a flow at the given TDMA parameters with default mapper
    /// options, the paper's 400-switch growth cap, the ambient thread
    /// policy, and seed 2006.
    pub fn new(spec: TdmaSpec) -> Self {
        FlowBuilder {
            spec,
            options: MapperOptions::default(),
            max_switches: 400,
            threads: None,
            seed: 2006,
            stages: Vec::new(),
        }
    }

    /// Sets the mapper heuristic options shared by all stages.
    #[must_use]
    pub fn options(mut self, options: MapperOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the topology growth cap (switch count).
    #[must_use]
    pub fn max_switches(mut self, max_switches: usize) -> Self {
        self.max_switches = max_switches;
        self
    }

    /// Pins the `noc-par` worker count for the whole flow run
    /// (`None` = ambient policy). Results are identical at any setting.
    #[must_use]
    pub fn threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the base RNG seed stages derive per-unit seeds from.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Appends the map stage (smallest feasible mesh).
    #[must_use]
    pub fn map(self) -> Self {
        self.stage(MapStage::default())
    }

    /// Appends the map stage on the given fabric family.
    #[must_use]
    pub fn map_fabric(self, fabric: FabricKind) -> Self {
        self.stage(MapStage {
            fabric,
            ..Default::default()
        })
    }

    /// Appends the map stage with an explicit mapping strategy from the
    /// portfolio (see [`nocmap::strategy`]).
    #[must_use]
    pub fn map_strategy(self, strategy: StrategyKind) -> Self {
        self.stage(MapStage {
            strategy,
            ..Default::default()
        })
    }

    /// Appends the worst-case baseline stage.
    #[must_use]
    pub fn worst_case(self) -> Self {
        self.stage(WorstCaseStage)
    }

    /// Appends the annealing refinement stage.
    #[must_use]
    pub fn anneal(self, config: AnnealConfig) -> Self {
        self.stage(AnnealStage(config))
    }

    /// Appends the per-group remapping stage.
    #[must_use]
    pub fn remap(self, config: RemapConfig) -> Self {
        self.stage(RemapStage(config))
    }

    /// Appends the analytical verification stage.
    #[must_use]
    pub fn verify(self) -> Self {
        self.stage(VerifyStage)
    }

    /// Appends the cycle-level simulation stage.
    #[must_use]
    pub fn simulate(self, cycles: u64) -> Self {
        self.stage(SimulateStage { cycles })
    }

    /// Appends an arbitrary (possibly user-defined) stage.
    #[must_use]
    pub fn stage(mut self, stage: impl Stage + Send + Sync + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Finalizes the pipeline.
    #[must_use]
    pub fn build(self) -> DesignFlow {
        DesignFlow {
            spec: self.spec,
            options: self.options,
            max_switches: self.max_switches,
            threads: self.threads,
            seed: self.seed,
            stages: self.stages,
        }
    }
}

/// An assembled pipeline: an ordered list of stages plus the shared
/// parameters they read from the [`FlowContext`].
pub struct DesignFlow {
    spec: TdmaSpec,
    options: MapperOptions,
    max_switches: usize,
    threads: Option<usize>,
    seed: u64,
    stages: Vec<Box<dyn Stage + Send + Sync>>,
}

impl DesignFlow {
    /// Runs every stage in order on a fresh context for `soc`, under the
    /// flow's thread policy.
    ///
    /// # Errors
    ///
    /// The first stage failure, as a [`FlowError`]; the partial context
    /// is dropped.
    pub fn run(&self, soc: &SocSpec, groups: &UseCaseGroups) -> Result<FlowContext, FlowError> {
        let execute = || {
            let mut ctx = FlowContext::new(
                soc.clone(),
                groups.clone(),
                self.spec,
                self.options.clone(),
                self.max_switches,
                self.seed,
            );
            for stage in &self.stages {
                let span = noc_obs::span(stage.name());
                span.attr("config", format!("{:016x}", stage.config_digest()));
                stage.run(&mut ctx)?;
                ctx.trace.push(stage.name());
            }
            Ok(ctx)
        };
        match self.threads {
            Some(n) => noc_par::with_threads(n, execute),
            None => execute(),
        }
    }

    /// The stage names in execution order (for docs and `flow show`).
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::units::{Bandwidth, Latency};
    use noc_usecase::spec::{CoreId, UseCaseBuilder};

    fn tiny_soc() -> SocSpec {
        let mut soc = SocSpec::new("tiny");
        for uc in 0..2 {
            soc.add_use_case(
                UseCaseBuilder::new(format!("u{uc}"))
                    .flow(
                        CoreId::new(0),
                        CoreId::new(1),
                        Bandwidth::from_mbps(100 + 50 * uc),
                        Latency::UNCONSTRAINED,
                    )
                    .unwrap()
                    .build(),
            );
        }
        soc
    }

    #[test]
    fn full_pipeline_runs_in_order() {
        let soc = tiny_soc();
        let groups = UseCaseGroups::singletons(2);
        let flow = FlowBuilder::new(TdmaSpec::paper_default())
            .max_switches(16)
            .map()
            .worst_case()
            .anneal(AnnealConfig {
                iterations: 10,
                ..Default::default()
            })
            .remap(RemapConfig::default())
            .verify()
            .simulate(512)
            .build();
        assert_eq!(
            flow.stage_names(),
            ["map", "worst-case", "anneal", "remap", "verify", "simulate"]
        );
        let ctx = flow.run(&soc, &groups).unwrap();
        assert_eq!(ctx.trace, flow.stage_names());
        assert!(ctx.solution().is_ok());
        assert!(ctx.wc.as_ref().unwrap().is_ok());
        assert!(ctx.remapped.is_some());
        assert_eq!(ctx.sim_reports.len(), 2);
        for r in &ctx.sim_reports {
            assert_eq!(r.contention_violations, 0);
        }
    }

    #[test]
    fn thread_policy_does_not_change_the_outcome() {
        let soc = tiny_soc();
        let groups = UseCaseGroups::singletons(2);
        let build = |threads| {
            FlowBuilder::new(TdmaSpec::paper_default())
                .max_switches(16)
                .threads(threads)
                .map()
                .verify()
                .build()
        };
        let a = build(Some(1)).run(&soc, &groups).unwrap();
        let b = build(Some(4)).run(&soc, &groups).unwrap();
        assert_eq!(a.solution.unwrap(), b.solution.unwrap());
    }
}
