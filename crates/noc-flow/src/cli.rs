//! Argument helpers shared by the `experiments` and `nocmap_cli`
//! binaries.
//!
//! Both tools use the same hand-rolled option scanning (no external
//! argument parser in this offline workspace); these helpers used to be
//! copy-pasted into each binary and now live here once, with tests.
//! Every helper removes the options it consumed from `args`, so
//! whatever remains is positional.

use crate::FlowError;

/// Pulls `--name VALUE` out of `args`, parsing VALUE as `u64`.
///
/// # Errors
///
/// [`FlowError::Usage`] when the value is missing or not an integer.
pub fn take_opt(args: &mut Vec<String>, name: &str) -> Result<Option<u64>, FlowError> {
    match take_string(args, name)? {
        Some(value) => value
            .parse::<u64>()
            .map(Some)
            .map_err(|_| FlowError::Usage(format!("invalid {name} '{value}'"))),
        None => Ok(None),
    }
}

/// Pulls `--name VALUE` out of `args`, parsing VALUE into any integer
/// type and substituting `default` when the option is absent — the
/// typed form `nocmap_cli serve --port/--batch/--budget` uses (`u16`
/// ports, `usize` batch sizes, `u64` budgets) without per-site casts.
///
/// # Errors
///
/// [`FlowError::Usage`] when the value is missing, not an integer, or
/// out of range for `T`.
pub fn take_num<T: std::str::FromStr>(
    args: &mut Vec<String>,
    name: &str,
    default: T,
) -> Result<T, FlowError> {
    match take_string(args, name)? {
        Some(value) => value
            .parse::<T>()
            .map_err(|_| FlowError::Usage(format!("invalid {name} '{value}'"))),
        None => Ok(default),
    }
}

/// Removes the bare flag `--name` from `args`, reporting whether it was
/// present.
pub fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == name) {
        args.remove(pos);
        true
    } else {
        false
    }
}

/// Pulls `--name VALUE` out of `args` as a raw string.
///
/// # Errors
///
/// [`FlowError::Usage`] when the option is present without a value.
pub fn take_string(args: &mut Vec<String>, name: &str) -> Result<Option<String>, FlowError> {
    if let Some(pos) = args.iter().position(|a| a == name) {
        if pos + 1 >= args.len() {
            return Err(FlowError::Usage(format!("{name} needs a value")));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

/// Pulls the global `--threads N` option both binaries accept (the
/// `noc-par` worker-count pin, equivalent to `NOC_PAR_THREADS=N`).
///
/// # Errors
///
/// [`FlowError::Usage`] as for [`take_opt`].
pub fn take_threads(args: &mut Vec<String>) -> Result<Option<usize>, FlowError> {
    Ok(take_opt(args, "--threads")?.map(|n| n as usize))
}

/// A requested trace: output path plus which clock the exporters use.
///
/// Built by [`take_trace`]; the path's extension picks the exporter in
/// [`write_trace`] (`.json` → Chrome trace-event JSON, anything else →
/// the text tree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRequest {
    /// Destination file.
    pub path: String,
    /// Clock mode ([`noc_obs::TraceMode::Ops`] is the deterministic
    /// default; `wall` keeps real timestamps).
    pub mode: noc_obs::TraceMode,
}

/// Pulls the global `--trace FILE [--trace-mode ops|wall]` options both
/// binaries accept, falling back to the `NOC_TRACE` / `NOC_TRACE_MODE`
/// environment variables when the flags are absent. Returns `None`
/// when no trace was requested anywhere.
///
/// # Errors
///
/// [`FlowError::Usage`] when a value is missing, when the mode is
/// neither `ops` nor `wall`, or when `--trace-mode` is given without a
/// trace destination.
pub fn take_trace(args: &mut Vec<String>) -> Result<Option<TraceRequest>, FlowError> {
    let flag_path = take_string(args, "--trace")?;
    let flag_mode = take_string(args, "--trace-mode")?;
    let path = flag_path.or_else(|| std::env::var("NOC_TRACE").ok().filter(|s| !s.is_empty()));
    if flag_mode.is_some() && path.is_none() {
        return Err(FlowError::Usage(
            "--trace-mode needs a trace destination (--trace FILE or NOC_TRACE)".into(),
        ));
    }
    let mode_name = flag_mode.or_else(|| {
        std::env::var("NOC_TRACE_MODE")
            .ok()
            .filter(|s| !s.is_empty())
    });
    let mode = match mode_name.as_deref() {
        None | Some("ops") => noc_obs::TraceMode::Ops,
        Some("wall") => noc_obs::TraceMode::Wall,
        Some(other) => {
            return Err(FlowError::Usage(format!(
                "invalid trace mode '{other}' (expected ops|wall)"
            )))
        }
    };
    Ok(path.map(|path| TraceRequest { path, mode }))
}

/// Writes a finished trace to the requested destination: Chrome
/// trace-event JSON when the path ends in `.json`, the indented text
/// tree otherwise.
///
/// # Errors
///
/// [`FlowError::Io`] when the file cannot be written.
pub fn write_trace(request: &TraceRequest, trace: &noc_obs::Trace) -> Result<(), FlowError> {
    let rendered = if request.path.ends_with(".json") {
        trace.to_chrome_json()
    } else {
        trace.render_text()
    };
    std::fs::write(&request.path, rendered).map_err(|e| FlowError::Io {
        path: request.path.clone(),
        message: format!("cannot write trace: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn take_opt_removes_pair_and_parses() {
        let mut a = args(&["design", "--freq", "650", "x.spec"]);
        assert_eq!(take_opt(&mut a, "--freq").unwrap(), Some(650));
        assert_eq!(a, args(&["design", "x.spec"]));
        // Absent option: untouched args, Ok(None).
        assert_eq!(take_opt(&mut a, "--slots").unwrap(), None);
        assert_eq!(a, args(&["design", "x.spec"]));
    }

    #[test]
    fn take_opt_rejects_missing_and_malformed_values() {
        let mut a = args(&["--freq"]);
        assert_eq!(
            take_opt(&mut a, "--freq").unwrap_err(),
            FlowError::Usage("--freq needs a value".into())
        );
        let mut a = args(&["--freq", "fast"]);
        assert_eq!(
            take_opt(&mut a, "--freq").unwrap_err(),
            FlowError::Usage("invalid --freq 'fast'".into())
        );
    }

    #[test]
    fn take_num_parses_types_and_defaults() {
        let mut a = args(&["serve", "--port", "7777", "--batch", "8"]);
        let port: u16 = take_num(&mut a, "--port", 0).unwrap();
        assert_eq!(port, 7777);
        let batch: usize = take_num(&mut a, "--batch", 4).unwrap();
        assert_eq!(batch, 8);
        // Absent option: the default, args untouched.
        let budget: u64 = take_num(&mut a, "--budget", 6).unwrap();
        assert_eq!(budget, 6);
        assert_eq!(a, args(&["serve"]));
    }

    #[test]
    fn take_num_rejects_out_of_range_and_malformed() {
        let mut a = args(&["--port", "70000"]);
        assert_eq!(
            take_num::<u16>(&mut a, "--port", 0).unwrap_err(),
            FlowError::Usage("invalid --port '70000'".into())
        );
        let mut a = args(&["--batch", "many"]);
        assert_eq!(
            take_num::<usize>(&mut a, "--batch", 4).unwrap_err(),
            FlowError::Usage("invalid --batch 'many'".into())
        );
        let mut a = args(&["--budget"]);
        assert_eq!(
            take_num::<u64>(&mut a, "--budget", 6).unwrap_err(),
            FlowError::Usage("--budget needs a value".into())
        );
    }

    #[test]
    fn take_flag_reports_and_removes() {
        let mut a = args(&["design", "--wc", "x.spec"]);
        assert!(take_flag(&mut a, "--wc"));
        assert!(!take_flag(&mut a, "--wc"));
        assert_eq!(a, args(&["design", "x.spec"]));
    }

    #[test]
    fn take_string_keeps_raw_value() {
        let mut a = args(&["--emit", "out.cfg", "rest"]);
        assert_eq!(
            take_string(&mut a, "--emit").unwrap(),
            Some("out.cfg".into())
        );
        assert_eq!(a, args(&["rest"]));
    }

    #[test]
    fn take_threads_matches_env_pin_semantics() {
        let mut a = args(&["fig6a", "--threads", "4"]);
        assert_eq!(take_threads(&mut a).unwrap(), Some(4));
        assert_eq!(a, args(&["fig6a"]));
    }

    #[test]
    fn take_trace_parses_flags_and_defaults_to_ops() {
        let mut a = args(&["flow", "--trace", "t.json", "run"]);
        let req = take_trace(&mut a).unwrap().unwrap();
        assert_eq!(req.path, "t.json");
        assert_eq!(req.mode, noc_obs::TraceMode::Ops);
        assert_eq!(a, args(&["flow", "run"]));

        let mut a = args(&["--trace", "t.txt", "--trace-mode", "wall"]);
        assert_eq!(
            take_trace(&mut a).unwrap().unwrap().mode,
            noc_obs::TraceMode::Wall
        );

        let mut a = args(&["--trace", "t", "--trace-mode", "sideways"]);
        assert!(take_trace(&mut a).is_err());
    }

    #[test]
    fn trace_mode_without_destination_is_a_usage_error() {
        // Guard: only meaningful when the env fallback is not set.
        if std::env::var("NOC_TRACE").is_ok() {
            return;
        }
        let mut a = args(&["--trace-mode", "ops"]);
        assert!(take_trace(&mut a).is_err());
    }
}
