//! Argument helpers shared by the `experiments` and `nocmap_cli`
//! binaries.
//!
//! Both tools use the same hand-rolled option scanning (no external
//! argument parser in this offline workspace); these helpers used to be
//! copy-pasted into each binary and now live here once, with tests.
//! Every helper removes the options it consumed from `args`, so
//! whatever remains is positional.

use crate::FlowError;

/// Pulls `--name VALUE` out of `args`, parsing VALUE as `u64`.
///
/// # Errors
///
/// [`FlowError::Usage`] when the value is missing or not an integer.
pub fn take_opt(args: &mut Vec<String>, name: &str) -> Result<Option<u64>, FlowError> {
    match take_string(args, name)? {
        Some(value) => value
            .parse::<u64>()
            .map(Some)
            .map_err(|_| FlowError::Usage(format!("invalid {name} '{value}'"))),
        None => Ok(None),
    }
}

/// Removes the bare flag `--name` from `args`, reporting whether it was
/// present.
pub fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == name) {
        args.remove(pos);
        true
    } else {
        false
    }
}

/// Pulls `--name VALUE` out of `args` as a raw string.
///
/// # Errors
///
/// [`FlowError::Usage`] when the option is present without a value.
pub fn take_string(args: &mut Vec<String>, name: &str) -> Result<Option<String>, FlowError> {
    if let Some(pos) = args.iter().position(|a| a == name) {
        if pos + 1 >= args.len() {
            return Err(FlowError::Usage(format!("{name} needs a value")));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

/// Pulls the global `--threads N` option both binaries accept (the
/// `noc-par` worker-count pin, equivalent to `NOC_PAR_THREADS=N`).
///
/// # Errors
///
/// [`FlowError::Usage`] as for [`take_opt`].
pub fn take_threads(args: &mut Vec<String>) -> Result<Option<usize>, FlowError> {
    Ok(take_opt(args, "--threads")?.map(|n| n as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn take_opt_removes_pair_and_parses() {
        let mut a = args(&["design", "--freq", "650", "x.spec"]);
        assert_eq!(take_opt(&mut a, "--freq").unwrap(), Some(650));
        assert_eq!(a, args(&["design", "x.spec"]));
        // Absent option: untouched args, Ok(None).
        assert_eq!(take_opt(&mut a, "--slots").unwrap(), None);
        assert_eq!(a, args(&["design", "x.spec"]));
    }

    #[test]
    fn take_opt_rejects_missing_and_malformed_values() {
        let mut a = args(&["--freq"]);
        assert_eq!(
            take_opt(&mut a, "--freq").unwrap_err(),
            FlowError::Usage("--freq needs a value".into())
        );
        let mut a = args(&["--freq", "fast"]);
        assert_eq!(
            take_opt(&mut a, "--freq").unwrap_err(),
            FlowError::Usage("invalid --freq 'fast'".into())
        );
    }

    #[test]
    fn take_flag_reports_and_removes() {
        let mut a = args(&["design", "--wc", "x.spec"]);
        assert!(take_flag(&mut a, "--wc"));
        assert!(!take_flag(&mut a, "--wc"));
        assert_eq!(a, args(&["design", "x.spec"]));
    }

    #[test]
    fn take_string_keeps_raw_value() {
        let mut a = args(&["--emit", "out.cfg", "rest"]);
        assert_eq!(
            take_string(&mut a, "--emit").unwrap(),
            Some("out.cfg".into())
        );
        assert_eq!(a, args(&["rest"]));
    }

    #[test]
    fn take_threads_matches_env_pin_semantics() {
        let mut a = args(&["fig6a", "--threads", "4"]);
        assert_eq!(take_threads(&mut a).unwrap(), Some(4));
        assert_eq!(a, args(&["fig6a"]));
    }
}
