//! The [`Stage`] trait and the built-in pipeline stages.
//!
//! A stage is one phase of the paper's methodology operating on a
//! [`FlowContext`]: it reads the inputs earlier stages produced (spec,
//! solution, …), performs its work, and writes its outputs back. The
//! typed accessors ([`FlowContext::solution`], …) turn a mis-ordered
//! pipeline into a [`FlowError::MissingInput`] instead of a panic.

use noc_sim::{SimConfig, SimReport};
use noc_tdma::TdmaSpec;
use noc_usecase::spec::SocSpec;
use noc_usecase::UseCaseGroups;
use nocmap::anneal::{refine, AnnealConfig};
use nocmap::design::{design_smallest_fabric, FabricKind};
use nocmap::remap::{refine_with_remap, RemapConfig, RemappedDesign};
use nocmap::strategy::{design_with_strategy, StrategyKind};
use nocmap::wc::design_worst_case;
use nocmap::{MapError, MapperOptions, MappingSolution};

use crate::FlowError;

/// The state a [`DesignFlow`](crate::DesignFlow) threads through its
/// stages: the problem (spec, groups, TDMA parameters, mapper options)
/// plus every artifact produced so far.
#[derive(Debug, Clone)]
pub struct FlowContext {
    /// The multi-use-case communication spec being designed for.
    pub soc: SocSpec,
    /// The use-case partition (which use-cases share a configuration).
    pub groups: UseCaseGroups,
    /// TDMA wheel parameters (slots, frequency, link width).
    pub spec: TdmaSpec,
    /// Mapper heuristic options, shared by every mapping stage.
    pub options: MapperOptions,
    /// Topology growth cap (switch count).
    pub max_switches: usize,
    /// Base RNG seed stages derive their per-unit seeds from.
    pub seed: u64,
    /// The current mapped solution (set by the map stage, refined in
    /// place by the anneal stage).
    pub solution: Option<MappingSolution>,
    /// Outcome of the worst-case baseline stage, if it ran. The baseline
    /// failing to map is a *result* (the paper reports exactly that for
    /// large suites), not a flow failure, hence the nested `Result`.
    pub wc: Option<Result<MappingSolution, MapError>>,
    /// Per-group remapping refinement, if the remap stage ran.
    pub remapped: Option<RemappedDesign>,
    /// Cycle-level reports, one per use-case, if the simulate stage ran.
    pub sim_reports: Vec<SimReport>,
    /// Names of the stages executed, in order.
    pub trace: Vec<&'static str>,
}

impl FlowContext {
    /// A fresh context with no artifacts.
    pub fn new(
        soc: SocSpec,
        groups: UseCaseGroups,
        spec: TdmaSpec,
        options: MapperOptions,
        max_switches: usize,
        seed: u64,
    ) -> Self {
        FlowContext {
            soc,
            groups,
            spec,
            options,
            max_switches,
            seed,
            solution: None,
            wc: None,
            remapped: None,
            sim_reports: Vec::new(),
            trace: Vec::new(),
        }
    }

    /// The mapped solution, or [`FlowError::MissingInput`] when no map
    /// stage has run yet.
    ///
    /// # Errors
    ///
    /// [`FlowError::MissingInput`] when the pipeline has no solution.
    pub fn solution(&self) -> Result<&MappingSolution, FlowError> {
        self.solution.as_ref().ok_or(FlowError::MissingInput {
            stage: "flow",
            needs: "a mapped solution",
        })
    }

    /// Borrows the mapped solution on behalf of `stage` (no clone —
    /// refining stages read through this and assign their result back).
    fn stage_solution(&self, stage: &'static str) -> Result<&MappingSolution, FlowError> {
        self.solution.as_ref().ok_or(FlowError::MissingInput {
            stage,
            needs: "a mapped solution",
        })
    }
}

/// One phase of the design flow.
///
/// Implementations must be deterministic given the context (derive any
/// randomness from [`FlowContext::seed`]) and must not depend on the
/// ambient thread count — the contract every built-in stage inherits
/// from `noc-par`.
pub trait Stage {
    /// Short stable name, used in traces and error messages.
    fn name(&self) -> &'static str;

    /// A stable digest of the stage's configuration, attached to the
    /// stage's trace span so two traces can be told apart by the exact
    /// settings they ran with. The built-in stages hash their `Debug`
    /// rendering ([`noc_obs::fnv1a`]); the default is 0 ("no digest").
    fn config_digest(&self) -> u64 {
        0
    }

    /// Executes the stage, reading and writing `ctx`.
    ///
    /// # Errors
    ///
    /// [`FlowError`] when the stage cannot produce its output (mapping
    /// infeasible, missing input, …).
    fn run(&self, ctx: &mut FlowContext) -> Result<(), FlowError>;
}

/// Map stage: smallest feasible fabric for the whole multi-use-case
/// spec (the paper's outer growth loop + Algorithm 2), optionally
/// refined by an alternative search strategy from the portfolio
/// (`nocmap::strategy`). The default ([`StrategyKind::Greedy`]) is
/// byte- and op-identical to the historical plain greedy stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct MapStage {
    /// Fabric family to grow (mesh by default).
    pub fabric: FabricKind,
    /// Mapping strategy (greedy by default; `displacement` and `bnb`
    /// refine the greedy design on its own fabric).
    pub strategy: StrategyKind,
}

impl Stage for MapStage {
    fn name(&self) -> &'static str {
        "map"
    }

    fn config_digest(&self) -> u64 {
        noc_obs::fnv1a(format!("{self:?}").as_bytes())
    }

    fn run(&self, ctx: &mut FlowContext) -> Result<(), FlowError> {
        let sol = match self.strategy {
            // Call the plain design entry point directly so the default
            // path stays op-identical to the pre-portfolio stage.
            StrategyKind::Greedy => design_smallest_fabric(
                &ctx.soc,
                &ctx.groups,
                ctx.spec,
                &ctx.options,
                ctx.max_switches,
                self.fabric,
            )?,
            strategy => {
                design_with_strategy(
                    &ctx.soc,
                    &ctx.groups,
                    ctx.spec,
                    &ctx.options,
                    ctx.max_switches,
                    self.fabric,
                    strategy,
                )?
                .solution
            }
        };
        ctx.solution = Some(sol);
        Ok(())
    }
}

/// Worst-case baseline stage: the ASPDAC'06 method (merge all use-cases
/// into one over-specified spec). Its failure is recorded, not raised —
/// "WC fails even onto a 20 × 20 mesh" is a reportable outcome.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorstCaseStage;

impl Stage for WorstCaseStage {
    fn name(&self) -> &'static str {
        "worst-case"
    }

    fn config_digest(&self) -> u64 {
        noc_obs::fnv1a(format!("{self:?}").as_bytes())
    }

    fn run(&self, ctx: &mut FlowContext) -> Result<(), FlowError> {
        ctx.wc = Some(design_worst_case(
            &ctx.soc,
            ctx.spec,
            &ctx.options,
            ctx.max_switches,
        ));
        Ok(())
    }
}

/// Anneal stage: multi-chain simulated-annealing refinement of the
/// mapped solution (in place).
#[derive(Debug, Clone, Copy)]
pub struct AnnealStage(
    /// Annealing schedule (chains, iterations, seed).
    pub AnnealConfig,
);

impl Stage for AnnealStage {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn config_digest(&self) -> u64 {
        noc_obs::fnv1a(format!("{self:?}").as_bytes())
    }

    fn run(&self, ctx: &mut FlowContext) -> Result<(), FlowError> {
        let base = ctx.stage_solution(self.name())?;
        let refined = refine(&ctx.soc, &ctx.groups, &ctx.options, base, &self.0)?;
        ctx.solution = Some(refined);
        Ok(())
    }
}

/// Remap stage: limited per-group placement reconfiguration on top of
/// the shared base solution.
#[derive(Debug, Clone, Copy)]
pub struct RemapStage(
    /// Remapping search parameters.
    pub RemapConfig,
);

impl Stage for RemapStage {
    fn name(&self) -> &'static str {
        "remap"
    }

    fn config_digest(&self) -> u64 {
        noc_obs::fnv1a(format!("{self:?}").as_bytes())
    }

    fn run(&self, ctx: &mut FlowContext) -> Result<(), FlowError> {
        let base = ctx.stage_solution(self.name())?;
        let remapped = refine_with_remap(&ctx.soc, &ctx.groups, &ctx.options, base, &self.0)?;
        ctx.remapped = Some(remapped);
        Ok(())
    }
}

/// Verify stage: the analytical phase-4 check (slot-table consistency,
/// bandwidth and latency bounds) over every use-case.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyStage;

impl Stage for VerifyStage {
    fn name(&self) -> &'static str {
        "verify"
    }

    fn config_digest(&self) -> u64 {
        noc_obs::fnv1a(format!("{self:?}").as_bytes())
    }

    fn run(&self, ctx: &mut FlowContext) -> Result<(), FlowError> {
        ctx.stage_solution(self.name())?
            .verify(&ctx.soc, &ctx.groups)
            .map_err(MapError::Inconsistent)?;
        Ok(())
    }
}

/// Simulate stage: replay every use-case on the cycle-level simulator
/// (the `noc-sim` sim-stage adapter, use-cases in parallel).
#[derive(Debug, Clone, Copy)]
pub struct SimulateStage {
    /// Cycles to simulate per use-case.
    pub cycles: u64,
}

impl Stage for SimulateStage {
    fn name(&self) -> &'static str {
        "simulate"
    }

    fn config_digest(&self) -> u64 {
        noc_obs::fnv1a(format!("{self:?}").as_bytes())
    }

    fn run(&self, ctx: &mut FlowContext) -> Result<(), FlowError> {
        let reports = noc_sim::simulate_solution(
            ctx.stage_solution(self.name())?,
            &ctx.soc,
            &ctx.groups,
            &SimConfig {
                cycles: self.cycles,
                ..Default::default()
            },
        );
        ctx.sim_reports = reports;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starved_stage_reports_missing_input() {
        let soc = {
            use noc_topology::units::{Bandwidth, Latency};
            use noc_usecase::spec::{CoreId, UseCaseBuilder};
            let mut soc = SocSpec::new("t");
            soc.add_use_case(
                UseCaseBuilder::new("u0")
                    .flow(
                        CoreId::new(0),
                        CoreId::new(1),
                        Bandwidth::from_mbps(100),
                        Latency::UNCONSTRAINED,
                    )
                    .unwrap()
                    .build(),
            );
            soc
        };
        let mut ctx = FlowContext::new(
            soc,
            UseCaseGroups::singletons(1),
            TdmaSpec::paper_default(),
            MapperOptions::default(),
            16,
            2006,
        );
        let err = VerifyStage.run(&mut ctx).unwrap_err();
        assert_eq!(
            err,
            FlowError::MissingInput {
                stage: "verify",
                needs: "a mapped solution",
            }
        );
        assert!(matches!(
            ctx.solution().unwrap_err(),
            FlowError::MissingInput { .. }
        ));
    }
}
