//! Serde/text round-trip coverage for [`FlowConfig`] and every
//! registered [`ExperimentSpec`].
//!
//! The offline `serde` shim has no format backend, so the wire format
//! is the crate's line-oriented text grammar; these tests prove it is
//! lossless for every spec the project actually ships, plus edge cases
//! (traces, pooled benchmarks, option-less stages).

use noc_flow::config::{
    experiment_from_text, experiment_to_text, flow_from_text, flow_to_text, spec_from_text,
    SpecFile,
};
use noc_flow::{
    registry, BenchmarkSpec, BurstModel, ExperimentKind, ExperimentSpec, FlowConfig, FlowError,
    StageConfig,
};
use noc_sim::TrafficModel;

#[test]
fn every_registry_entry_round_trips() {
    for spec in registry::registry() {
        let text = experiment_to_text(&spec);
        let parsed = experiment_from_text(&text)
            .unwrap_or_else(|e| panic!("{} does not re-parse: {e}\n{text}", spec.name));
        assert_eq!(parsed, spec, "{} round-trip changed the spec", spec.name);
    }
}

#[test]
fn dispatching_parser_distinguishes_documents() {
    let exp = experiment_to_text(&registry::find("fig6a").unwrap());
    assert!(matches!(
        spec_from_text(&exp).unwrap(),
        SpecFile::Experiment(_)
    ));
    let flow = flow_to_text(&FlowConfig::design_defaults());
    assert!(matches!(spec_from_text(&flow).unwrap(), SpecFile::Flow(_)));
    // Cross-type requests fail with a Parse error, not a panic.
    assert!(matches!(
        experiment_from_text(&flow),
        Err(FlowError::Parse { .. })
    ));
    assert!(matches!(flow_from_text(&exp), Err(FlowError::Parse { .. })));
}

#[test]
fn title_with_hash_round_trips_verbatim() {
    // `#` opens comments everywhere except the free-text title payload.
    let mut spec = registry::find("fig6a").unwrap();
    spec.title = "Sweep #2 (50% duty)".to_string();
    let text = experiment_to_text(&spec);
    assert_eq!(experiment_from_text(&text).unwrap(), spec);
    // A label with whitespace cannot tokenize back: it must fail loudly,
    // never round-trip to a silently different spec.
    let broken = text.replace("bench D1 ", "bench my label ");
    assert!(experiment_from_text(&broken).is_err());
}

#[test]
fn trace_and_pooled_benchmark_round_trip() {
    let spec = ExperimentSpec {
        name: "custom".to_string(),
        title: "A custom sweep with every exotic field".to_string(),
        kind: ExperimentKind::BeBurst {
            models: vec![
                BurstModel {
                    label: "trace".to_string(),
                    model: TrafficModel::Trace(vec![0, 3, 3, 9, 200]),
                },
                BurstModel {
                    label: "mmpp".to_string(),
                    model: TrafficModel::RandomBursts {
                        mean_on: 5,
                        mean_off: 11,
                        seed: 77,
                    },
                },
            ],
            hops: vec![2, 3],
            flows: 2,
            avg_mbps: 125,
            slots: 8,
            freq_mhz: 650,
            cycles: 4096,
        },
    };
    assert_eq!(
        experiment_from_text(&experiment_to_text(&spec)).unwrap(),
        spec
    );

    let pooled = ExperimentSpec {
        name: "pooled".to_string(),
        title: "Pooled spread".to_string(),
        kind: ExperimentKind::ParallelFrequency {
            bench: BenchmarkSpec::pooled_spread(10, 2006, 150, 0.3),
            parallel: vec![1, 2, 3, 4],
            lo_mhz: 10,
            hi_mhz: 4000,
        },
    };
    assert_eq!(
        experiment_from_text(&experiment_to_text(&pooled)).unwrap(),
        pooled
    );
}

#[test]
fn flow_config_round_trips_with_and_without_threads() {
    for threads in [None, Some(4)] {
        let cfg = FlowConfig {
            name: "rt".to_string(),
            slots: 64,
            freq_mhz: 500,
            max_switches: 200,
            threads,
            seed: 7,
            stages: vec![
                StageConfig::map(),
                StageConfig::Anneal {
                    iterations: 30,
                    chains: 3,
                    seed: 5,
                    initial_temperature: 500.0,
                    cooling: 0.97,
                },
                StageConfig::WorstCase,
                StageConfig::Remap {
                    max_moved_cores: 1,
                    rounds: 2,
                },
                StageConfig::Verify,
                StageConfig::Simulate { cycles: 1024 },
            ],
        };
        assert_eq!(flow_from_text(&flow_to_text(&cfg)).unwrap(), cfg);
    }
}

#[test]
fn built_flow_matches_its_stage_list() {
    let cfg = FlowConfig {
        stages: vec![
            StageConfig::map(),
            StageConfig::WorstCase,
            StageConfig::Verify,
            StageConfig::Simulate { cycles: 256 },
        ],
        ..FlowConfig::design_defaults()
    };
    assert_eq!(
        cfg.build().stage_names(),
        ["map", "worst-case", "verify", "simulate"]
    );
}
