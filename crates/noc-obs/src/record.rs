//! Recording side: the global collector, per-thread event buffers,
//! span guards, and the [`TaskSet`] lane protocol.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::{clock_read, clock_set, count_span, trace, TraceMode, ENABLED};

/// One typed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (finite values only — exporters emit it verbatim as JSON).
    F64(f64),
    /// Text.
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v:?}"),
            AttrValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One recorded event. Buffers are flat event lists; the tree is built
/// at finalize time.
#[derive(Debug)]
pub(crate) enum Event {
    /// Span opened: name plus both clock readings at entry.
    Begin {
        /// Span name (static so recording never allocates for it).
        name: &'static str,
        /// Wall reading at entry (0 in ops mode).
        wall_ns: u64,
        /// Op-clock reading at entry.
        ops: u64,
    },
    /// Attribute attached to the innermost open span.
    Attr {
        /// Attribute key.
        key: &'static str,
        /// Attribute value.
        value: AttrValue,
        /// Schedule-class (dropped from ops-mode exports).
        schedule: bool,
    },
    /// Innermost open span closed, with both clock readings at exit.
    End {
        /// Wall reading at exit (0 in ops mode).
        wall_ns: u64,
        /// Op-clock reading at exit.
        ops: u64,
    },
    /// A [`TaskSet`] was created here: splice its lanes under the span
    /// open at this position.
    Tasks {
        /// Registry key of the lane set.
        id: u64,
    },
}

/// State shared by every buffer of one collector session.
pub(crate) struct Shared {
    pub(crate) mode: TraceMode,
    pub(crate) start: Instant,
    next_task_set: AtomicU64,
    /// Lane buffers by task-set id; slot `i` holds lane `i`'s events
    /// plus the lane's final op-clock reading (so lane work outside any
    /// span still counts toward the enclosing span's total).
    pub(crate) lanes: Mutex<HashMap<u64, Vec<Option<(Vec<Event>, u64)>>>>,
}

/// A per-thread recording cursor: the buffer events go into, plus the
/// session it belongs to.
pub(crate) struct Cursor {
    pub(crate) shared: Arc<Shared>,
    pub(crate) buf: Vec<Event>,
}

impl Cursor {
    fn new(shared: Arc<Shared>) -> Self {
        Cursor {
            shared,
            buf: Vec::new(),
        }
    }

    fn now_ns(&self) -> u64 {
        match self.shared.mode {
            TraceMode::Ops => 0,
            TraceMode::Wall => self.shared.start.elapsed().as_nanos() as u64,
        }
    }
}

thread_local! {
    static CURSOR: RefCell<Option<Cursor>> = const { RefCell::new(None) };
}

/// The installed collector, if any. The root buffer lives in the
/// installing thread's [`CURSOR`]; [`finish`] must run on that thread.
static COLLECTOR: Mutex<Option<Arc<Shared>>> = Mutex::new(None);

/// Installs a collector and makes the calling thread the root recording
/// thread. Returns `false` (and changes nothing) if a collector is
/// already installed.
pub fn install(mode: TraceMode) -> bool {
    let mut slot = COLLECTOR.lock().unwrap();
    if slot.is_some() {
        return false;
    }
    let shared = Arc::new(Shared {
        mode,
        start: Instant::now(),
        next_task_set: AtomicU64::new(1),
        lanes: Mutex::new(HashMap::new()),
    });
    CURSOR.with(|c| *c.borrow_mut() = Some(Cursor::new(Arc::clone(&shared))));
    *slot = Some(shared);
    clock_set(0);
    ENABLED.store(true, Ordering::Release);
    true
}

/// Uninstalls the collector and finalizes the recorded events into a
/// [`crate::Trace`]. Must be called on the thread that called
/// [`install`] (the root buffer is thread-local); returns `None` when no
/// collector is installed.
pub fn finish() -> Option<crate::Trace> {
    let shared = COLLECTOR.lock().unwrap().take()?;
    ENABLED.store(false, Ordering::Release);
    let root = CURSOR.with(|c| c.borrow_mut().take());
    let root_events = root.map(|c| c.buf).unwrap_or_default();
    let lanes = std::mem::take(&mut *shared.lanes.lock().unwrap());
    Some(trace::finalize(shared.mode, root_events, lanes))
}

/// `true` while a collector is installed (process-wide).
pub fn active() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// `true` when spans opened on the *calling thread* right now would be
/// recorded (a collector is installed and this thread holds a buffer).
pub fn recording() -> bool {
    CURSOR.with(|c| c.borrow().is_some())
}

fn with_cursor(f: impl FnOnce(&mut Cursor)) {
    CURSOR.with(|c| {
        if let Some(cur) = c.borrow_mut().as_mut() {
            f(cur);
        }
    });
}

/// A scoped span guard: records `Begin` on creation and `End` on drop.
/// Inert (every method a no-op) when the creating thread was not
/// recording.
///
/// Contract: a `Span` must be dropped on the thread and in the buffer
/// scope it was created in (plain lexical scoping guarantees this); do
/// not carry one across a [`TaskSet::run`] lane boundary.
#[must_use = "a span measures the scope it is alive for"]
pub struct Span {
    armed: bool,
}

/// Opens a span named `name` on the calling thread. See [`Span`].
pub fn span(name: &'static str) -> Span {
    let mut armed = false;
    with_cursor(|cur| {
        let wall_ns = cur.now_ns();
        cur.buf.push(Event::Begin {
            name,
            wall_ns,
            ops: clock_read(),
        });
        count_span();
        armed = true;
    });
    Span { armed }
}

impl Span {
    /// Attaches a deterministic attribute (exported in every mode).
    pub fn attr(&self, key: &'static str, value: impl Into<AttrValue>) {
        self.push_attr(key, value.into(), false);
    }

    /// Attaches a schedule-class attribute (thread counts, queue waits,
    /// …): exported in [`TraceMode::Wall`] only, so ops-mode traces stay
    /// byte-identical across schedules.
    pub fn sched_attr(&self, key: &'static str, value: impl Into<AttrValue>) {
        self.push_attr(key, value.into(), true);
    }

    fn push_attr(&self, key: &'static str, value: AttrValue, schedule: bool) {
        if !self.armed {
            return;
        }
        with_cursor(|cur| {
            cur.buf.push(Event::Attr {
                key,
                value,
                schedule,
            });
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        with_cursor(|cur| {
            let wall_ns = cur.now_ns();
            cur.buf.push(Event::End {
                wall_ns,
                ops: clock_read(),
            });
        });
    }
}

/// A deterministic splice point for the lanes of one parallel region.
///
/// Created (on a recording thread) with [`task_set`]; each task then
/// runs under [`TaskSet::run`]`(index, …)` — on *any* thread — and its
/// events land in lane `index`. At [`finish`] the lanes are spliced
/// under the span that was open at creation, in index order.
pub struct TaskSet(Option<TaskSetInner>);

struct TaskSetInner {
    shared: Arc<Shared>,
    id: u64,
}

/// Creates a [`TaskSet`] with `lanes` lanes at the current buffer
/// position. Inert when the calling thread is not recording.
pub fn task_set(lanes: usize) -> TaskSet {
    let mut inner = None;
    with_cursor(|cur| {
        let shared = Arc::clone(&cur.shared);
        let id = shared.next_task_set.fetch_add(1, Ordering::Relaxed);
        shared
            .lanes
            .lock()
            .unwrap()
            .insert(id, (0..lanes).map(|_| None).collect());
        cur.buf.push(Event::Tasks { id });
        inner = Some(TaskSetInner { shared, id });
    });
    TaskSet(inner)
}

/// Restores the previous cursor and op-clock when a lane (or an
/// [`untraced`] section) exits, on both the return and unwind paths; a
/// lane's buffer is committed to its slot only on clean return.
struct LaneGuard {
    prev: Option<Cursor>,
    saved_clock: u64,
    /// `Some((shared, id, lane))` once the lane should commit its buffer.
    commit: Option<(Arc<Shared>, u64, usize)>,
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        let lane_cursor = CURSOR.with(|c| {
            let mut slot = c.borrow_mut();
            std::mem::replace(&mut *slot, self.prev.take())
        });
        let lane_clock = clock_read();
        clock_set(self.saved_clock);
        if let (Some((shared, id, lane)), Some(cursor)) = (self.commit.take(), lane_cursor) {
            if let Some(slots) = shared.lanes.lock().unwrap().get_mut(&id) {
                if let Some(slot) = slots.get_mut(lane) {
                    *slot = Some((cursor.buf, lane_clock));
                }
            }
        }
    }
}

impl TaskSet {
    /// Runs `f` as lane `lane`: its events are recorded into a private
    /// buffer committed to slot `lane`, and the executing thread's
    /// op-clock is saved and restored around it (so inline execution
    /// cannot leak lane work into the surrounding span). Inert task
    /// sets just call `f`.
    pub fn run<R>(&self, lane: usize, f: impl FnOnce() -> R) -> R {
        let Some(inner) = &self.0 else {
            return f();
        };
        let prev = CURSOR.with(|c| {
            c.borrow_mut()
                .replace(Cursor::new(Arc::clone(&inner.shared)))
        });
        let mut guard = LaneGuard {
            prev,
            saved_clock: clock_read(),
            commit: None,
        };
        clock_set(0);
        let result = f();
        guard.commit = Some((Arc::clone(&inner.shared), inner.id, lane));
        result
    }
}

/// Runs `f` with recording suspended on the calling thread: spans and
/// ticks inside are discarded, and the op-clock is restored afterwards,
/// so the surrounding trace is identical whether `f` records nothing
/// here or runs on a non-recording thread (used by `noc_par::scope`,
/// whose dynamic tasks have no deterministic lane index).
pub fn untraced<R>(f: impl FnOnce() -> R) -> R {
    let prev = CURSOR.with(|c| c.borrow_mut().take());
    let _guard = LaneGuard {
        prev,
        saved_clock: clock_read(),
        commit: None,
    };
    f()
}
