//! `noc-obs` — deterministic span tracing for the NoC mapping stack.
//!
//! The perf counters (`nocmap::perf`, `BENCH_nocmap.json`) say how much
//! work the stack does; this crate says **where it nests**: scoped spans
//! with parent/child structure, typed attributes, and two cost fields
//! per span — wall-clock nanoseconds (for humans) and an **op-clock**
//! delta (for goldens). The op-clock is a per-thread counter ticked by
//! instrumented code ([`tick`]) in units of deterministic algorithmic
//! work (the `nocmap::perf` counter increments, simulation cycles, …),
//! so in [`TraceMode::Ops`] a trace is a pure function of the workload:
//! byte-identical at any `noc-par` thread count, golden-testable like
//! every other output of this workspace.
//!
//! # Span model
//!
//! * A [`Span`] guard records a `Begin`/`End` event pair into the
//!   calling thread's buffer; nesting follows scope nesting.
//! * [`Span::attr`] attaches a deterministic attribute; schedule-class
//!   attributes ([`Span::sched_attr`]: queue waits, ticket counts, …)
//!   are kept out of [`TraceMode::Ops`] exports.
//! * A parallel region records a [`TaskSet`] marker; each task runs
//!   under [`TaskSet::run`]`(index, …)`, which gives it a private lane
//!   buffer. At [`finish`] lanes are spliced under the span that was
//!   open at the marker, **in index order** — the tree's shape depends
//!   on the work, never on the schedule.
//! * Span ids are assigned at finalize time by a preorder walk of the
//!   merged tree, so they are stable too.
//!
//! # Determinism of the op-clock
//!
//! The op-clock is thread-local. [`TaskSet::run`] saves and restores the
//! executing thread's clock around every lane, so a lane that happens to
//! run inline on the caller (width 1, or a saturated pool) never
//! inflates the parent span's delta — the parent's *self* cost and each
//! lane's cost are schedule-independent. In [`TraceMode::Ops`] wall
//! fields are not even sampled (they export as zero), which is what
//! makes the whole artifact byte-stable.
//!
//! # Pay-for-use
//!
//! With no collector [`install`]ed, [`span`] and [`tick`] cost a few
//! predictable branches (one relaxed atomic load for `tick`, one
//! thread-local probe for `span`) and never allocate — hot loops keep
//! their allocation-free guarantee. `tests` pin this with the
//! `nocmap::perf` counters.
//!
//! `docs/OBSERVABILITY.md` documents the model, the exporters, and the
//! determinism contract in full.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod record;
mod trace;

pub use record::{
    active, finish, install, recording, span, task_set, untraced, AttrValue, Span, TaskSet,
};
pub use trace::{Attr, SpanNode, Trace};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Export/determinism mode a collector is installed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Deterministic mode: span costs are op-clock deltas, wall fields
    /// are zero, schedule-class attributes are dropped. Traces are
    /// byte-identical at any thread count.
    Ops,
    /// Human mode: real wall-clock timestamps and lane ids, plus the
    /// schedule-class attributes. Not byte-stable across runs.
    Wall,
}

/// `true` while a collector is installed (drives the [`tick`] fast
/// path); set/cleared by [`install`] / [`finish`].
pub(crate) static ENABLED: AtomicBool = AtomicBool::new(false);

/// Spans recorded since the last [`reset_span_count`], process-wide.
/// Zero while tracing is off — `nocmap::perf` folds this in as its
/// `trace_spans` counter, which is how the bench trajectory proves
/// tracing is pay-for-use.
static SPANS_RECORDED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The op-clock: a per-thread work counter in instrumentation units.
    static OP_CLOCK: Cell<u64> = const { Cell::new(0) };
}

/// Advances the calling thread's op-clock by `n` work units.
///
/// A no-op (one relaxed atomic load) while no collector is installed.
/// Instrumented code calls this wherever it counts deterministic work —
/// `nocmap::perf` forwards every counter increment here.
#[inline]
pub fn tick(n: u64) {
    if ENABLED.load(Ordering::Relaxed) {
        OP_CLOCK.with(|c| c.set(c.get().wrapping_add(n)));
    }
}

/// Reads the calling thread's op-clock.
pub(crate) fn clock_read() -> u64 {
    OP_CLOCK.with(Cell::get)
}

/// Overwrites the calling thread's op-clock (lane save/restore).
pub(crate) fn clock_set(value: u64) {
    OP_CLOCK.with(|c| c.set(value));
}

/// Spans recorded process-wide since the last [`reset_span_count`].
/// Stays zero while no collector is installed.
pub fn span_count() -> u64 {
    SPANS_RECORDED.load(Ordering::Relaxed)
}

/// Resets [`span_count`] to zero (test/perf harnesses only).
pub fn reset_span_count() {
    SPANS_RECORDED.store(0, Ordering::Relaxed);
}

pub(crate) fn count_span() {
    SPANS_RECORDED.fetch_add(1, Ordering::Relaxed);
}

/// FNV-1a over `bytes` — the workspace's stable 64-bit digest (config
/// digests in stage spans, nothing cryptographic).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The collector is process-global; tests that install one take this
    /// lock so `cargo test`'s parallel scheduling cannot interleave two
    /// collectors.
    static COLLECTOR_LOCK: Mutex<()> = Mutex::new(());

    fn collector_test() -> MutexGuard<'static, ()> {
        COLLECTOR_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn fnv1a_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"map"), fnv1a(b"map"));
        assert_ne!(fnv1a(b"map"), fnv1a(b"anneal"));
    }

    #[test]
    fn tracing_is_inert_without_a_collector() {
        let _guard = collector_test();
        let spans_before = span_count();
        let s = span("never-recorded");
        s.attr("k", 1u64);
        tick(1_000_000);
        drop(s);
        let ts = task_set(2);
        assert_eq!(ts.run(0, || 7), 7);
        assert_eq!(span_count(), spans_before, "no collector, no spans");
        assert_eq!(clock_read(), 0, "tick must be a no-op while disabled");
    }

    #[test]
    fn spans_nest_and_ids_are_preorder() {
        let _guard = collector_test();
        assert!(install(TraceMode::Ops));
        assert!(!install(TraceMode::Ops), "second install must refuse");
        {
            let a = span("a");
            a.attr("kind", "outer");
            {
                let _b = span("b");
                tick(5);
            }
            {
                let _c = span("c");
                tick(2);
            }
        }
        let trace = finish().expect("collector was installed");
        assert!(finish().is_none(), "finish is one-shot");
        assert_eq!(trace.roots.len(), 1);
        let a = &trace.roots[0];
        assert_eq!((a.name, a.id, a.ops_self, a.ops_total), ("a", 1, 0, 7));
        assert_eq!(a.children.len(), 2);
        assert_eq!(
            (a.children[0].id, a.children[0].ops_total),
            (2, 5),
            "preorder ids"
        );
        assert_eq!((a.children[1].id, a.children[1].ops_total), (3, 2));
        assert_eq!(a.wall_end_ns, 0, "ops mode records no wall clock");
    }

    #[test]
    fn lanes_merge_in_index_order_regardless_of_execution_order() {
        let _guard = collector_test();
        assert!(install(TraceMode::Ops));
        {
            let _region = span("region");
            let ts = task_set(2);
            // Execute lane 1 before lane 0: the tree must not care.
            ts.run(1, || {
                let _s = span("second");
                tick(20);
            });
            ts.run(0, || {
                let _s = span("first");
                tick(10);
            });
        }
        let trace = finish().unwrap();
        let region = &trace.roots[0];
        let names: Vec<&str> = region.children.iter().map(|c| c.name).collect();
        assert_eq!(names, ["first", "second"], "lanes splice by index");
        assert_eq!(region.ops_total, 30);
        assert_eq!(region.ops_self, 0, "lane work never leaks into self");
    }

    #[test]
    fn lane_clock_save_restore_keeps_parent_self_cost_schedule_free() {
        let _guard = collector_test();
        assert!(install(TraceMode::Ops));
        {
            let _p = span("parent");
            tick(5);
            let ts = task_set(1);
            ts.run(0, || tick(100)); // inline lane, like a width-1 region
            tick(3);
        }
        let trace = finish().unwrap();
        let p = &trace.roots[0];
        assert_eq!(p.ops_self, 8, "parent self excludes inline lane work");
        assert_eq!(p.ops_total, 108, "…but the total includes it");
    }

    #[test]
    fn lanes_recorded_on_other_threads_merge_identically() {
        let _guard = collector_test();
        assert!(install(TraceMode::Ops));
        {
            let _region = span("region");
            let ts = task_set(2);
            std::thread::scope(|s| {
                s.spawn(|| {
                    ts.run(1, || {
                        let sp = span("worker-lane");
                        sp.attr("lane", 1u64);
                        tick(40);
                    });
                });
                ts.run(0, || {
                    let _sp = span("caller-lane");
                    tick(4);
                });
            });
        }
        let trace = finish().unwrap();
        let region = &trace.roots[0];
        let names: Vec<&str> = region.children.iter().map(|c| c.name).collect();
        assert_eq!(names, ["caller-lane", "worker-lane"]);
        assert_eq!(region.ops_total, 44);
    }

    #[test]
    fn untraced_discards_events_and_clock_drift() {
        let _guard = collector_test();
        assert!(install(TraceMode::Ops));
        {
            let _p = span("parent");
            tick(1);
            untraced(|| {
                let _hidden = span("hidden");
                tick(1_000);
            });
            tick(2);
        }
        let trace = finish().unwrap();
        let p = &trace.roots[0];
        assert_eq!(p.children.len(), 0, "untraced spans are dropped");
        assert_eq!(p.ops_total, 3, "untraced ticks don't count");
    }

    #[test]
    fn text_and_chrome_exports_are_deterministic() {
        let _guard = collector_test();
        let run = || {
            assert!(install(TraceMode::Ops));
            {
                let r = span("region");
                r.attr("items", 2u64);
                r.sched_attr("queue_wait_us", 999u64);
                let ts = task_set(2);
                for lane in [1usize, 0] {
                    ts.run(lane, || {
                        let s = span("task");
                        s.attr("index", lane as u64);
                        tick(10 * (lane as u64 + 1));
                    });
                }
            }
            let trace = finish().unwrap();
            (trace.render_text(), trace.to_chrome_json())
        };
        let (text_a, json_a) = run();
        let (text_b, json_b) = run();
        assert_eq!(text_a, text_b);
        assert_eq!(json_a, json_b);
        assert!(
            !text_a.contains("queue_wait_us"),
            "ops mode drops schedule-class attrs:\n{text_a}"
        );
        assert!(text_a.contains("region #1 ops=30 self=0 items=2"));
        assert_eq!(json_a.matches("\"ph\":\"B\"").count(), 3);
        assert_eq!(json_a.matches("\"ph\":\"E\"").count(), 3);
        let parsed: Vec<&str> = json_a.lines().collect();
        assert_eq!(parsed.first(), Some(&"["));
        assert_eq!(parsed.last(), Some(&"]"));
    }

    #[test]
    fn span_count_tracks_recorded_spans() {
        let _guard = collector_test();
        reset_span_count();
        assert!(install(TraceMode::Ops));
        {
            let _a = span("a");
            let _b = span("b");
        }
        assert_eq!(span_count(), 2);
        let _ = finish();
        reset_span_count();
        assert_eq!(span_count(), 0);
    }
}
