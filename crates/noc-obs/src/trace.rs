//! Finalized traces: tree construction from raw buffers, the text tree
//! renderer, and the Chrome trace-event JSON writer.

use std::collections::HashMap;

use crate::record::{AttrValue, Event};
use crate::TraceMode;

/// One attribute of a finalized span.
#[derive(Debug, Clone, PartialEq)]
pub struct Attr {
    /// Attribute key.
    pub key: &'static str,
    /// Attribute value.
    pub value: AttrValue,
    /// Schedule-class: dropped from ops-mode exports.
    pub schedule: bool,
}

/// One span of a finalized trace tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Stable id: preorder position in the merged tree, starting at 1.
    pub id: u64,
    /// Span name.
    pub name: &'static str,
    /// Attributes in recording order.
    pub attrs: Vec<Attr>,
    /// Op-clock work inside this span excluding all child spans.
    pub ops_self: u64,
    /// Op-clock work inside this span including all child spans (lane
    /// children too).
    pub ops_total: u64,
    /// Wall reading at entry, ns since collector install (0 in ops mode).
    pub wall_begin_ns: u64,
    /// Wall reading at exit, ns since collector install (0 in ops mode).
    pub wall_end_ns: u64,
    /// The buffer this span was recorded into, numbered in merge order
    /// (root buffer 0). The Chrome exporter maps this to `tid` in wall
    /// mode so parallel lanes render as parallel tracks.
    pub lane: u32,
    /// Child spans: inline children and spliced lanes, in deterministic
    /// order.
    pub children: Vec<SpanNode>,
}

/// A finalized trace: the merged span forest plus the mode it was
/// recorded under.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Mode the collector was installed with (drives the exporters).
    pub mode: TraceMode,
    /// Top-level spans in recording order.
    pub roots: Vec<SpanNode>,
}

/// An in-progress node while parsing one buffer.
struct OpenSpan {
    name: &'static str,
    begin_wall: u64,
    begin_ops: u64,
    attrs: Vec<Attr>,
    children: Vec<SpanNode>,
    /// Sum of the *raw* op deltas of direct children recorded inline in
    /// this same buffer (lane children excluded — their work never
    /// advanced this buffer's clock).
    inline_raw: u64,
    /// Lane work not enclosed in any span inside the lane: it belongs
    /// to this span's total but to no child.
    lane_loose: u64,
}

type LaneMap = HashMap<u64, Vec<Option<(Vec<Event>, u64)>>>;

/// Parses one buffer into a span forest, recursing into lane buffers at
/// their `Tasks` markers. `next_lane` numbers buffers in encounter
/// order, which is deterministic because the tree shape is. Returns the
/// forest plus the sum of the top-level spans' raw op deltas, which the
/// caller needs to compute the buffer's loose (unspanned) op count.
fn build_buffer(
    events: Vec<Event>,
    lanes: &mut LaneMap,
    next_lane: &mut u32,
    my_lane: u32,
) -> (Vec<SpanNode>, u64) {
    let mut roots: Vec<SpanNode> = Vec::new();
    let mut top_raw: u64 = 0;
    let mut stack: Vec<OpenSpan> = Vec::new();
    let attach = |stack: &mut Vec<OpenSpan>, roots: &mut Vec<SpanNode>, node: SpanNode| match stack
        .last_mut()
    {
        Some(parent) => parent.children.push(node),
        None => roots.push(node),
    };
    for event in events {
        match event {
            Event::Begin { name, wall_ns, ops } => stack.push(OpenSpan {
                name,
                begin_wall: wall_ns,
                begin_ops: ops,
                attrs: Vec::new(),
                children: Vec::new(),
                inline_raw: 0,
                lane_loose: 0,
            }),
            Event::Attr {
                key,
                value,
                schedule,
            } => {
                if let Some(open) = stack.last_mut() {
                    open.attrs.push(Attr {
                        key,
                        value,
                        schedule,
                    });
                }
            }
            Event::End { wall_ns, ops } => {
                let open = stack.pop().expect("span events are balanced per buffer");
                let raw = ops.saturating_sub(open.begin_ops);
                let ops_self = raw.saturating_sub(open.inline_raw);
                let ops_total = ops_self
                    + open.lane_loose
                    + open.children.iter().map(|c| c.ops_total).sum::<u64>();
                match stack.last_mut() {
                    Some(parent) => parent.inline_raw += raw,
                    None => top_raw += raw,
                }
                let node = SpanNode {
                    id: 0,
                    name: open.name,
                    attrs: open.attrs,
                    ops_self,
                    ops_total,
                    wall_begin_ns: open.begin_wall,
                    wall_end_ns: wall_ns,
                    lane: my_lane,
                    children: open.children,
                };
                attach(&mut stack, &mut roots, node);
            }
            Event::Tasks { id } => {
                for slot in lanes.remove(&id).unwrap_or_default() {
                    let lane_no = *next_lane;
                    *next_lane += 1;
                    let Some((lane_events, lane_clock)) = slot else {
                        continue;
                    };
                    let (nodes, lane_top_raw) =
                        build_buffer(lane_events, lanes, next_lane, lane_no);
                    // Lane work counts toward the enclosing span's
                    // total but not its raw delta (it never advanced
                    // this buffer's clock): spans become children, and
                    // lane ops outside any span become `lane_loose`.
                    let loose = lane_clock.saturating_sub(lane_top_raw);
                    match stack.last_mut() {
                        Some(open) => {
                            open.children.extend(nodes);
                            open.lane_loose += loose;
                        }
                        None => roots.extend(nodes),
                    }
                }
            }
        }
    }
    // An unwound recording can leave spans open; close them at the
    // buffer boundary so a partial trace still finalizes.
    while let Some(open) = stack.pop() {
        let ops_self = 0;
        let ops_total = open.lane_loose + open.children.iter().map(|c| c.ops_total).sum::<u64>();
        let node = SpanNode {
            id: 0,
            name: open.name,
            attrs: open.attrs,
            ops_self,
            ops_total,
            wall_begin_ns: open.begin_wall,
            wall_end_ns: open.begin_wall,
            lane: my_lane,
            children: open.children,
        };
        attach(&mut stack, &mut roots, node);
    }
    (roots, top_raw)
}

fn assign_ids(nodes: &mut [SpanNode], next: &mut u64) {
    for node in nodes {
        *next += 1;
        node.id = *next;
        assign_ids(&mut node.children, next);
    }
}

/// Builds a [`Trace`] out of the raw buffers: parse the root buffer
/// (recursing into lane buffers at their `Tasks` markers — a marker
/// always precedes the enclosing `End` event in its buffer, so every
/// lane subtree is in place before its parent's totals are computed),
/// then assign preorder ids.
pub(crate) fn finalize(mode: TraceMode, root_events: Vec<Event>, mut lanes: LaneMap) -> Trace {
    let mut next_lane: u32 = 1;
    let (mut roots, _top_raw) = build_buffer(root_events, &mut lanes, &mut next_lane, 0);
    let mut next_id = 0;
    assign_ids(&mut roots, &mut next_id);
    Trace { mode, roots }
}

impl Trace {
    /// Number of spans in the trace.
    pub fn span_count(&self) -> u64 {
        fn count(nodes: &[SpanNode]) -> u64 {
            nodes.iter().map(|n| 1 + count(&n.children)).sum()
        }
        count(&self.roots)
    }

    /// Renders the indented text tree. In [`TraceMode::Ops`] the output
    /// is byte-identical at any thread count (op costs and deterministic
    /// attributes only); [`TraceMode::Wall`] adds wall durations and
    /// schedule-class attributes.
    pub fn render_text(&self) -> String {
        let mode = match self.mode {
            TraceMode::Ops => "ops",
            TraceMode::Wall => "wall",
        };
        let mut out = format!("# noc-obs trace (mode: {mode})\n");
        fn render(out: &mut String, nodes: &[SpanNode], depth: usize, wall: bool) {
            for node in nodes {
                out.push_str(&"  ".repeat(depth));
                out.push_str(&format!(
                    "{} #{} ops={} self={}",
                    node.name, node.id, node.ops_total, node.ops_self
                ));
                if wall {
                    let dur_us = node.wall_end_ns.saturating_sub(node.wall_begin_ns) / 1_000;
                    out.push_str(&format!(" wall_us={dur_us} lane={}", node.lane));
                }
                for attr in &node.attrs {
                    if attr.schedule && !wall {
                        continue;
                    }
                    out.push_str(&format!(" {}={}", attr.key, attr.value));
                }
                out.push('\n');
                render(out, &node.children, depth + 1, wall);
            }
        }
        render(
            &mut out,
            &self.roots,
            0,
            matches!(self.mode, TraceMode::Wall),
        );
        out
    }

    /// Renders Chrome trace-event JSON (an array of `B`/`E` duration
    /// events), loadable in Perfetto or `chrome://tracing`.
    ///
    /// * [`TraceMode::Ops`]: timestamps are **op-clock units** laid out
    ///   sequentially (children packed after their parent's begin), all
    ///   on `tid` 0 — a deterministic, byte-identical artifact.
    /// * [`TraceMode::Wall`]: timestamps are real microseconds since
    ///   install and `tid` is the recording lane, so parallel lanes
    ///   render as parallel tracks.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        match self.mode {
            TraceMode::Ops => {
                fn emit(events: &mut Vec<String>, node: &SpanNode, t0: u64) {
                    events.push(chrome_event(node, "B", 0, &t0.to_string(), true));
                    let mut t = t0;
                    for child in &node.children {
                        emit(events, child, t);
                        t += child.ops_total;
                    }
                    let end = t0 + node.ops_total;
                    events.push(chrome_end(node, 0, &end.to_string()));
                }
                let mut t = 0;
                for root in &self.roots {
                    emit(&mut events, root, t);
                    t += root.ops_total;
                }
            }
            TraceMode::Wall => {
                fn emit(events: &mut Vec<String>, node: &SpanNode) {
                    events.push(chrome_event(
                        node,
                        "B",
                        node.lane,
                        &us(node.wall_begin_ns),
                        false,
                    ));
                    for child in &node.children {
                        emit(events, child);
                    }
                    events.push(chrome_end(node, node.lane, &us(node.wall_end_ns)));
                }
                for root in &self.roots {
                    emit(&mut events, root);
                }
            }
        }
        let mut out = String::from("[\n");
        out.push_str(&events.join(",\n"));
        out.push_str("\n]\n");
        out
    }
}

/// Nanoseconds → microseconds with three decimals (Chrome's `ts` unit),
/// via integer math so the text is deterministic for a given input.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' | '\\' => {
                out.push('\\');
                out.push(c);
            }
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn chrome_event(node: &SpanNode, ph: &str, tid: u32, ts: &str, ops_mode: bool) -> String {
    let mut args = format!(
        "\"span\":{},\"ops_total\":{},\"ops_self\":{}",
        node.id, node.ops_total, node.ops_self
    );
    for attr in &node.attrs {
        if attr.schedule && ops_mode {
            continue;
        }
        let value = match &attr.value {
            AttrValue::U64(v) => v.to_string(),
            AttrValue::I64(v) => v.to_string(),
            AttrValue::F64(v) => format!("{v:?}"),
            AttrValue::Str(v) => format!("\"{}\"", json_escape(v)),
        };
        args.push_str(&format!(",\"{}\":{}", json_escape(attr.key), value));
    }
    format!(
        "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"args\":{{{args}}}}}",
        json_escape(node.name)
    )
}

fn chrome_end(node: &SpanNode, tid: u32, ts: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"E\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}}}",
        json_escape(node.name)
    )
}
