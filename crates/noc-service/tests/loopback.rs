//! Socket smoke test: the daemon is a thin transport over the
//! replay-tested engine, so every framed response read back over TCP
//! must match what an in-process engine produces for the same lines —
//! byte for byte.

use noc_service::{Client, Engine, EngineConfig, Server};

#[test]
fn daemon_responses_match_the_in_process_engine_verbatim() {
    let cfg = EngineConfig::default();
    let server = Server::bind(cfg.clone(), 0).expect("bind on an OS-assigned port");
    let port = server.port().expect("bound port");
    let daemon = std::thread::spawn(move || server.run());

    let mut reference = Engine::new(cfg).expect("valid default config");
    let mut client = Client::connect(("127.0.0.1", port)).expect("connect to daemon");

    let lines = [
        "add u0 flow 0 1 400 ; flow 1 2 250",
        "add u1 flow 3 4 150 30",
        "add u1 flow 5 6 100", // duplicate id -> error event at flush
        "modify u0 flow 0 2 300",
        "remove missing",
        "flush",
        "stats",
        "snapshot",
        "bogus command",
        "shutdown",
    ];
    for line in lines {
        let over_socket = client.send(line).expect("framed response");
        let in_process = reference.submit_line(line);
        assert_eq!(over_socket, in_process, "divergent response for {line:?}");
    }

    daemon
        .join()
        .expect("daemon thread")
        .expect("clean shutdown");
}
