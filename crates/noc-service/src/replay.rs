//! In-process deterministic replay: a seeded trace through the real
//! engine, no sockets.
//!
//! Goldens and CI never depend on networking: the transcript below is
//! produced by feeding [`generate_trace`] straight into
//! [`Engine::submit_line`], appending `stats` / `snapshot` / `shutdown`
//! so the final admission report (and every queued mutation) is part of
//! the compared bytes. The socket daemon ([`crate::net`]) is a thin
//! transport over the same `submit_line`, which is what the loopback
//! test pins.

use crate::engine::{Engine, EngineConfig, ServiceStats};
use crate::trace::generate_trace;

/// A finished replay: the full request/response transcript plus the
/// engine's final metrics.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Every request line (prefixed `> `) followed by its framed
    /// response, ending with the `stats` / `snapshot` / `shutdown`
    /// epilogue — the byte-compared determinism artifact.
    pub transcript: String,
    /// Final cumulative metrics.
    pub stats: ServiceStats,
}

/// Replays `requests` seeded requests through a fresh engine.
///
/// Pure: the transcript is a function of `(cfg, requests, seed)` only —
/// byte-identical at any `noc-par` thread count.
///
/// # Errors
///
/// A message when the engine configuration is invalid.
pub fn replay(cfg: EngineConfig, requests: u64, seed: u64) -> Result<Replay, String> {
    let lines = generate_trace(requests, seed);
    replay_lines(cfg, &lines)
}

/// Replays an explicit request-line sequence through a fresh engine,
/// appending the `stats` / `snapshot` / `shutdown` epilogue. This is
/// the primitive behind [`replay`] and the resilience sweeps (which
/// weave `fault` / `heal` lines into a seeded trace via
/// [`crate::trace::generate_fault_trace`]).
///
/// # Errors
///
/// A message when the engine configuration is invalid.
pub fn replay_lines(cfg: EngineConfig, lines: &[String]) -> Result<Replay, String> {
    let mut engine = Engine::new(cfg)?;
    let mut transcript = String::new();
    let mut drive = |engine: &mut Engine, line: &str| {
        transcript.push_str("> ");
        transcript.push_str(line);
        transcript.push('\n');
        transcript.push_str(&engine.submit_line(line));
    };
    for line in lines {
        drive(&mut engine, line);
    }
    for line in ["stats", "snapshot", "shutdown"] {
        drive(&mut engine, line);
    }
    let stats = *engine.stats();
    Ok(Replay { transcript, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AdmitMode;

    #[test]
    fn replay_is_deterministic_and_reports() {
        let cfg = EngineConfig::default();
        let a = replay(cfg.clone(), 40, 2006).unwrap();
        let b = replay(cfg, 40, 2006).unwrap();
        assert_eq!(a.transcript, b.transcript);
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.admitted > 0, "{:?}", a.stats);
        assert!(a.transcript.ends_with("ok shutdown\n.\n"));
        assert!(a.transcript.contains("blocking="));
    }

    #[test]
    fn resolve_mode_admits_the_same_requests_differently_costed() {
        let inc = replay(EngineConfig::default(), 30, 2006).unwrap();
        let res = replay(
            EngineConfig {
                mode: AdmitMode::Resolve,
                ..EngineConfig::default()
            },
            30,
            2006,
        )
        .unwrap();
        // Same request counts; admission outcomes may differ by mode.
        assert_eq!(inc.stats.requests, res.stats.requests);
        assert_eq!(inc.stats.adds, res.stats.adds);
    }
}
