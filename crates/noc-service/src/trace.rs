//! Seeded request-trace generation for deterministic replay.
//!
//! The generator emits a mixed `add` / `modify` / `remove` stream over
//! a shared pool of [`CORE_POOL`] cores — larger than the default
//! engine's 16 NIs, so a busy stream naturally exhausts NIs and
//! exercises admission control. Every [`FORCED_REJECT_PERIOD`]-th `add`
//! carries one flow over the link capacity of the paper's TDMA
//! operating point (2000 MB/s), forcing a deterministic capacity
//! rejection. Ids optimistically enter the live set even though the
//! engine may reject them, so the stream also produces `unknown-id`
//! error events — all deterministic under the seed.

use std::collections::BTreeMap;

use noc_topology::MeshBuilder;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::engine::EngineConfig;

/// Cores the generated use-cases draw from (> default NI count).
pub const CORE_POOL: u32 = 24;

/// Every n-th `add` carries a flow exceeding link capacity.
pub const FORCED_REJECT_PERIOD: u64 = 13;

/// Every n-th `add` is a heavy two-flow use-case (800–1200 MB/s per
/// flow) whose flows can conflict on a bottleneck link — the workload
/// that makes the engine's displacement path earn its keep.
pub const HEAVY_PERIOD: u64 = 5;

#[derive(Clone, Copy, PartialEq)]
enum AddKind {
    Normal,
    Heavy,
    OverCapacity,
}

fn flows_clause(rng: &mut SmallRng, kind: AddKind) -> String {
    let count = match kind {
        AddKind::Normal => rng.gen_range(1..=3usize),
        AddKind::Heavy => 2,
        AddKind::OverCapacity => rng.gen_range(1..=3usize),
    };
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut clauses: Vec<String> = Vec::new();
    for i in 0..count {
        let (src, dst) = loop {
            let src = rng.gen_range(0..CORE_POOL);
            let dst = rng.gen_range(0..CORE_POOL);
            if src != dst && !pairs.contains(&(src, dst)) {
                break (src, dst);
            }
        };
        pairs.push((src, dst));
        let mbps = match kind {
            AddKind::OverCapacity if i == 0 => 5000,
            AddKind::Heavy => rng.gen_range(1050..=1500u64),
            _ => rng.gen_range(50..=400u64),
        };
        let mut clause = format!("flow {src} {dst} {mbps}");
        if kind != AddKind::Heavy && rng.gen_bool(0.2) {
            let lat = rng.gen_range(20..=80u64);
            clause.push_str(&format!(" {lat}"));
        }
        clauses.push(clause);
    }
    clauses.join(" ; ")
}

/// Generates `requests` protocol lines from `seed` (pure; the same
/// arguments always produce the same trace).
pub fn generate_trace(requests: u64, seed: u64) -> Vec<String> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut lines = Vec::with_capacity(requests as usize);
    let mut live: Vec<String> = Vec::new();
    let mut next_id = 0u64;
    let mut adds = 0u64;
    for _ in 0..requests {
        let roll = if live.is_empty() {
            0
        } else {
            rng.gen_range(0..10u32)
        };
        let line = match roll {
            0..=4 => {
                let id = format!("u{next_id}");
                next_id += 1;
                adds += 1;
                let kind = if adds % FORCED_REJECT_PERIOD == 0 {
                    AddKind::OverCapacity
                } else if adds % HEAVY_PERIOD == 0 {
                    AddKind::Heavy
                } else {
                    AddKind::Normal
                };
                let clause = flows_clause(&mut rng, kind);
                live.push(id.clone());
                format!("add {id} {clause}")
            }
            5..=6 => {
                let id = live.choose(&mut rng).expect("live non-empty").clone();
                let clause = flows_clause(&mut rng, AddKind::Normal);
                format!("modify {id} {clause}")
            }
            _ => {
                let at = rng.gen_range(0..live.len());
                let id = live.remove(at);
                format!("remove {id}")
            }
        };
        lines.push(line);
    }
    lines
}

/// Seed salt separating the fault schedule's RNG stream from the
/// request stream's, so adding faults never perturbs the base trace.
const FAULT_SEED_SALT: u64 = 0x666c_7461;

/// Generates a request trace with `faults` seeded fault events woven
/// in: [`generate_trace`]`(requests, seed)` plus, spread evenly after a
/// warm-up quarter, `fault link|ni …` lines with indices valid for
/// `cfg`'s fabric, a `heal` re-attempt between consecutive faults, and
/// a final `heal` / `health` epilogue.
///
/// Pure: the same `(cfg, requests, seed, faults)` always produce the
/// same lines, and the embedded base trace is byte-identical to
/// `generate_trace(requests, seed)` — the fault schedule draws from
/// its own salted RNG stream.
///
/// # Errors
///
/// A message when `cfg`'s mesh dimensions are invalid.
pub fn generate_fault_trace(
    cfg: &EngineConfig,
    requests: u64,
    seed: u64,
    faults: u64,
) -> Result<Vec<String>, String> {
    let topo = MeshBuilder::new(cfg.rows, cfg.cols)
        .nis_per_switch(cfg.nis_per_switch)
        .build()
        .map_err(|e| e.to_string())?
        .into_topology();
    let link_count = topo.link_count();
    let ni_count = topo.ni_count();
    let base = generate_trace(requests, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ FAULT_SEED_SALT);
    let last = requests.max(1) - 1;
    let warmup = requests / 4;
    let span = requests.saturating_sub(warmup).max(1);
    let stride = (span / (faults + 1)).max(1);
    // After which base-line index each extra line is emitted.
    let mut extras: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for f in 0..faults {
        let pos = (warmup + f * stride).min(last);
        let line = if rng.gen_bool(0.3) {
            format!("fault ni {}", rng.gen_range(0..ni_count))
        } else if rng.gen_bool(0.5) {
            let (a, b) = (rng.gen_range(0..link_count), rng.gen_range(0..link_count));
            format!("fault link {a} {b}")
        } else {
            format!("fault link {}", rng.gen_range(0..link_count))
        };
        extras.entry(pos).or_default().push(line);
        // A repair attempt midway to the next fault.
        extras
            .entry((pos + stride / 2).min(last))
            .or_default()
            .push("heal".to_string());
    }
    let mut lines = Vec::with_capacity(base.len() + 2 * faults as usize + 2);
    for (i, line) in base.into_iter().enumerate() {
        lines.push(line);
        if let Some(ex) = extras.remove(&(i as u64)) {
            lines.extend(ex);
        }
    }
    // Anything scheduled past an empty/short base trace still runs.
    for (_, ex) in extras {
        lines.extend(ex);
    }
    lines.push("heal".to_string());
    lines.push("health".to_string());
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_command;

    #[test]
    fn traces_are_deterministic_and_parse() {
        let a = generate_trace(200, 2006);
        let b = generate_trace(200, 2006);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        for line in &a {
            assert!(parse_command(line).unwrap().is_some(), "unparsable {line}");
        }
        // A different seed gives a different stream.
        assert_ne!(a, generate_trace(200, 7));
        // The forced over-capacity adds are present.
        assert!(a.iter().any(|l| l.contains(" 5000")));
    }

    #[test]
    fn fault_traces_are_deterministic_and_embed_the_base_trace() {
        let cfg = EngineConfig::default();
        let a = generate_fault_trace(&cfg, 100, 2006, 4).unwrap();
        let b = generate_fault_trace(&cfg, 100, 2006, 4).unwrap();
        assert_eq!(a, b);
        for line in &a {
            assert!(parse_command(line).unwrap().is_some(), "unparsable {line}");
        }
        assert_eq!(a.iter().filter(|l| l.starts_with("fault ")).count(), 4);
        assert!(a.iter().filter(|l| l.as_str() == "heal").count() >= 1);
        assert_eq!(a.last().unwrap(), "health");
        // Removing the fault/heal/health weave recovers the base trace.
        let stripped: Vec<String> = a
            .iter()
            .filter(|l| !l.starts_with("fault ") && l.as_str() != "heal" && l.as_str() != "health")
            .cloned()
            .collect();
        assert_eq!(stripped, generate_trace(100, 2006));
        // Zero faults still appends the repair epilogue.
        let none = generate_fault_trace(&cfg, 10, 2006, 0).unwrap();
        assert_eq!(none.len(), 12);
    }
}
