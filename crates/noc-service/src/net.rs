//! The socket layer: a `std::net` TCP daemon and line-protocol client.
//!
//! Deliberately thin: every received line goes straight through
//! [`Engine::submit_line`] — the same entry point the deterministic
//! replay drives — and the framed response (terminated by a lone `.`)
//! is written back verbatim. The daemon serves one connection at a
//! time (admissions mutate one engine; parallelism lives inside the
//! mapper via `noc-par`, not across requests) and returns from
//! [`Server::run`] once a `shutdown` command is applied.
//!
//! With a journal ([`Server::bind_with_journal`]) the daemon records
//! every request line *before* applying it and rebuilds its engine
//! from the journal on startup — see [`crate::journal`].
//!
//! The client side is hardened against a hung or flaky daemon:
//! [`Client::connect_to`] bounds the connect, [`Client::set_read_timeout`]
//! bounds each response read, and [`request`] wraps both in a bounded
//! retry loop with deterministic backoff.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::engine::{Engine, EngineConfig};
use crate::journal::{recover, Journal};
use crate::protocol::TERMINATOR;

/// The `nocd` daemon: a bound listener plus the admission engine.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    engine: Engine,
    journal: Option<Journal>,
}

impl Server {
    /// Binds to `127.0.0.1:port` (`0` = OS-assigned; read it back with
    /// [`Self::port`]).
    ///
    /// # Errors
    ///
    /// Bind failures, or an invalid engine configuration (reported as
    /// [`std::io::ErrorKind::InvalidInput`]).
    pub fn bind(cfg: EngineConfig, port: u16) -> std::io::Result<Server> {
        let engine = Engine::new(cfg)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        Ok(Server {
            listener,
            engine,
            journal: None,
        })
    }

    /// Binds like [`Self::bind`], but first rebuilds the engine from
    /// the journal at `journal_path` (created if absent) and records
    /// every subsequent request line there before applying it.
    ///
    /// # Errors
    ///
    /// As [`Self::bind`], plus journal open/replay failures.
    pub fn bind_with_journal(
        cfg: EngineConfig,
        port: u16,
        journal_path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Server> {
        let engine = recover(cfg, &journal_path)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let journal = Journal::open(&journal_path)?;
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        Ok(Server {
            listener,
            engine,
            journal: Some(journal),
        })
    }

    /// The bound port.
    ///
    /// # Errors
    ///
    /// As [`TcpListener::local_addr`].
    pub fn port(&self) -> std::io::Result<u16> {
        Ok(self.listener.local_addr()?.port())
    }

    /// Serves connections until a `shutdown` command is applied. Each
    /// request line is answered with its full framed response; a client
    /// disconnect just moves on to the next `accept`.
    ///
    /// # Errors
    ///
    /// Fatal listener failures (per-connection I/O errors only drop
    /// that connection).
    pub fn run(mut self) -> std::io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.serve_connection(stream).is_err() {
                continue;
            }
            if self.engine.is_shutdown() {
                return Ok(());
            }
        }
    }

    fn serve_connection(&mut self, stream: TcpStream) -> std::io::Result<()> {
        let mut writer = stream.try_clone()?;
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let line = line?;
            // Journal before applying: a request is durable before it
            // can mutate state.
            if let Some(journal) = &mut self.journal {
                journal.record(&line)?;
            }
            let response = self.engine.submit_line(&line);
            writer.write_all(response.as_bytes())?;
            writer.flush()?;
            if self.engine.is_shutdown() {
                break;
            }
        }
        Ok(())
    }
}

/// A blocking line-protocol client.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Client::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects with a bound on the connect itself (`None` = blocking)
    /// and on every subsequent response read.
    ///
    /// # Errors
    ///
    /// Resolution and connection failures, including
    /// [`std::io::ErrorKind::TimedOut`] when the bound is exceeded.
    pub fn connect_to(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> std::io::Result<Client> {
        let Some(timeout) = timeout else {
            return Client::connect(addr);
        };
        let mut last: Option<std::io::Error> = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(stream) => {
                    let mut client = Client::from_stream(stream)?;
                    client.set_read_timeout(Some(timeout))?;
                    return Ok(client);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        }))
    }

    fn from_stream(writer: TcpStream) -> std::io::Result<Client> {
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Bounds every subsequent response read (`None` = blocking). A
    /// read that exceeds the bound fails with
    /// [`std::io::ErrorKind::WouldBlock`] / `TimedOut`.
    ///
    /// # Errors
    ///
    /// As [`TcpStream::set_read_timeout`].
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Sends one request line and reads the full framed response
    /// (including the `.` terminator line), exactly as the engine
    /// produced it.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`std::io::ErrorKind::UnexpectedEof`] when the
    /// daemon closes before the terminator.
    pub fn send(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        loop {
            let mut chunk = String::new();
            if self.reader.read_line(&mut chunk)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed before response terminator",
                ));
            }
            let done = chunk.trim_end_matches('\n') == TERMINATOR;
            response.push_str(&chunk);
            if done {
                return Ok(response);
            }
        }
    }
}

/// Retry policy for [`request`]: a per-attempt timeout (connect and
/// read) plus bounded retries with deterministic linear backoff
/// (`backoff × attempt` before attempt *n+1* — no jitter, so a retry
/// schedule is reproducible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Per-attempt connect/read bound; `None` = block forever.
    pub timeout: Option<Duration>,
    /// Retries after the first attempt (`0` = single attempt).
    pub retries: u32,
    /// Base backoff between attempts.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    /// One attempt, no timeout — the pre-hardening behavior.
    fn default() -> Self {
        RetryPolicy {
            timeout: None,
            retries: 0,
            backoff: Duration::from_millis(50),
        }
    }
}

/// Sends one request line over a fresh connection under `policy`,
/// retrying failed attempts (connect errors, timeouts, truncated
/// responses) up to `policy.retries` times.
///
/// # Errors
///
/// The last attempt's error once every attempt failed.
pub fn request(addr: SocketAddr, line: &str, policy: &RetryPolicy) -> std::io::Result<String> {
    let mut last: Option<std::io::Error> = None;
    for attempt in 0..=policy.retries {
        if attempt > 0 {
            std::thread::sleep(policy.backoff * attempt);
        }
        match Client::connect_to(addr, policy.timeout).and_then(|mut c| c.send(line)) {
            Ok(response) => return Ok(response),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("at least one attempt runs"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A listener that accepts connections and then never replies —
    /// the failure mode the read timeout exists for.
    fn silent_server() -> (SocketAddr, mpsc::Sender<()>) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let (tx, rx) = mpsc::channel::<()>();
        std::thread::spawn(move || {
            let mut held = Vec::new();
            loop {
                if let Ok((stream, _)) = listener.accept() {
                    held.push(stream);
                }
                if rx.try_recv().is_ok() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        (addr, tx)
    }

    #[test]
    fn read_timeout_bounds_a_silent_daemon() {
        let (addr, stop) = silent_server();
        let policy = RetryPolicy {
            timeout: Some(Duration::from_millis(60)),
            retries: 2,
            backoff: Duration::from_millis(5),
        };
        let started = std::time::Instant::now();
        let err = request(addr, "stats", &policy).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "expected a timeout, got {err:?}"
        );
        // Three bounded attempts, not a hang.
        assert!(started.elapsed() < Duration::from_secs(5));
        let _ = stop.send(());
    }

    #[test]
    fn connect_timeout_rejects_an_unbound_port() {
        // Bind-then-drop to get a port nothing listens on.
        let addr = {
            let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap()
        };
        let policy = RetryPolicy {
            timeout: Some(Duration::from_millis(60)),
            retries: 1,
            backoff: Duration::from_millis(1),
        };
        assert!(request(addr, "stats", &policy).is_err());
    }
}
