//! The socket layer: a `std::net` TCP daemon and line-protocol client.
//!
//! Deliberately thin: every received line goes straight through
//! [`Engine::submit_line`] — the same entry point the deterministic
//! replay drives — and the framed response (terminated by a lone `.`)
//! is written back verbatim. The daemon serves one connection at a
//! time (admissions mutate one engine; parallelism lives inside the
//! mapper via `noc-par`, not across requests) and returns from
//! [`Server::run`] once a `shutdown` command is applied.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

use crate::engine::{Engine, EngineConfig};
use crate::protocol::TERMINATOR;

/// The `nocd` daemon: a bound listener plus the admission engine.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    engine: Engine,
}

impl Server {
    /// Binds to `127.0.0.1:port` (`0` = OS-assigned; read it back with
    /// [`Self::port`]).
    ///
    /// # Errors
    ///
    /// Bind failures, or an invalid engine configuration (reported as
    /// [`std::io::ErrorKind::InvalidInput`]).
    pub fn bind(cfg: EngineConfig, port: u16) -> std::io::Result<Server> {
        let engine = Engine::new(cfg)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        Ok(Server { listener, engine })
    }

    /// The bound port.
    ///
    /// # Errors
    ///
    /// As [`TcpListener::local_addr`].
    pub fn port(&self) -> std::io::Result<u16> {
        Ok(self.listener.local_addr()?.port())
    }

    /// Serves connections until a `shutdown` command is applied. Each
    /// request line is answered with its full framed response; a client
    /// disconnect just moves on to the next `accept`.
    ///
    /// # Errors
    ///
    /// Fatal listener failures (per-connection I/O errors only drop
    /// that connection).
    pub fn run(mut self) -> std::io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.serve_connection(stream).is_err() {
                continue;
            }
            if self.engine.is_shutdown() {
                return Ok(());
            }
        }
    }

    fn serve_connection(&mut self, stream: TcpStream) -> std::io::Result<()> {
        let mut writer = stream.try_clone()?;
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let line = line?;
            let response = self.engine.submit_line(&line);
            writer.write_all(response.as_bytes())?;
            writer.flush()?;
            if self.engine.is_shutdown() {
                break;
            }
        }
        Ok(())
    }
}

/// A blocking line-protocol client.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Sends one request line and reads the full framed response
    /// (including the `.` terminator line), exactly as the engine
    /// produced it.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`std::io::ErrorKind::UnexpectedEof`] when the
    /// daemon closes before the terminator.
    pub fn send(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        loop {
            let mut chunk = String::new();
            if self.reader.read_line(&mut chunk)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed before response terminator",
                ));
            }
            let done = chunk.trim_end_matches('\n') == TERMINATOR;
            response.push_str(&chunk);
            if done {
                return Ok(response);
            }
        }
    }
}
