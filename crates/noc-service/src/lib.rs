//! `nocd` — the online mapping service: streaming use-case admission
//! with incremental remapping (ROADMAP item 1).
//!
//! The batch flow maps a fixed set of use-cases offline; this crate
//! turns the same machinery into a long-running daemon. Use-cases
//! arrive and depart as line-protocol requests
//! ([`protocol`]), mutations are batched between reconfiguration
//! points, and each admission is placed **incrementally** by
//! [`nocmap::admit_group`] — greedy on free NIs, displacing blocking
//! placements under the `RemapConfig` eviction budget on conflict —
//! instead of re-solving the whole mapping ([`engine`]). A per-use-case
//! route store re-seeds the `RouteCache` across admissions.
//!
//! Layering (the determinism contract): [`mod@replay`] feeds a seeded
//! request trace ([`trace`]) through the engine **in process** — its
//! transcript is a pure function of `(config, requests, seed)` and
//! byte-identical at any `noc-par` width, pinned by
//! `tests/service_determinism.rs` and the `service` registry suite in
//! `noc-flow`. The TCP daemon ([`net`]) is a thin transport over the
//! same `submit_line` entry point, so the socket path inherits the
//! replay-tested behavior verbatim (pinned by the loopback test).
//!
//! Resilience (PR 10): `fault link|ni` / `heal` / `health` verbs
//! inject deterministic link/NI failures and self-heal the live
//! mapping incrementally ([`nocmap::heal()`]); a crash-consistency
//! journal ([`mod@journal`], `serve --journal`) rebuilds byte-identical
//! engine state on restart; the client side is hardened with connect/
//! read timeouts and bounded deterministic retry ([`net::request`]).
//! See `docs/RESILIENCE.md`.
//!
//! # Quick example
//!
//! ```
//! use noc_service::{Engine, EngineConfig};
//!
//! let mut engine = Engine::new(EngineConfig::default()).unwrap();
//! let response = engine.submit_line("add u0 flow 0 1 200");
//! assert!(response.starts_with("ok queued seq=1"));
//! let response = engine.submit_line("stats");
//! assert!(response.contains("admitted=1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod journal;
pub mod net;
pub mod protocol;
pub mod replay;
pub mod trace;

pub use engine::{AdmitMode, Engine, EngineConfig, ServiceStats};
pub use journal::{recover, Journal};
pub use net::{request, Client, RetryPolicy, Server};
pub use protocol::{parse_command, Command, FaultTarget, FlowSpec, ProtocolError};
pub use replay::{replay, replay_lines, Replay};
pub use trace::{generate_fault_trace, generate_trace};
