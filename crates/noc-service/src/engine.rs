//! The `nocd` admission engine: streaming use-case admission with
//! incremental remapping and request batching.
//!
//! The engine owns the running mapping state (admitted use-cases, the
//! preset-pure per-group configs, the core → NI placement) and applies
//! a stream of [`Command`]s. Mutations (`add` / `modify` / `remove`)
//! are **queued** and applied together at the next *reconfiguration
//! point* — when the batch fills, on an explicit `flush`, or before any
//! `stats` / `snapshot` / `shutdown` — mirroring how a deployed NoC
//! reconfigures between use-case groups rather than per request.
//!
//! Admission ([`AdmitMode::Incremental`], the default) goes through
//! [`nocmap::admit_group`]: greedy placement on free NIs, one group
//! route (everything else spliced from the running solution), and
//! displacement under the eviction budget on conflict. The per-use-case
//! route store re-seeds each admission's [`RouteCache`] with every
//! signature routed since that use-case was admitted, so repeated
//! displacement probes across the stream hit the cache.
//! [`AdmitMode::Resolve`] is the from-scratch baseline: every applied
//! add/modify re-runs the full batch mapper over all admitted use-cases
//! — the `pr9` perf record contrasts the two on identical traces.
//!
//! # Faults and self-healing
//!
//! `fault link|ni <idx>…` requests are queued like mutations; at the
//! reconfiguration point that applies one, the engine adds the named
//! resources to [`MapperOptions::faults`], drops its route store (those
//! configs were routed on the pre-fault fabric and must not be spliced
//! or cache-seeded again), and runs [`nocmap::heal()`] over the running
//! solution. Groups the heal cannot service are *parked*: their
//! configs are emptied, their exclusive cores unplaced, and their ids
//! reported `degraded` by `health` until an explicit `heal` request
//! re-admits them through the normal admission path (now fault-aware,
//! so re-placement avoids failed NIs and re-routes avoid failed
//! links).
//!
//! # Flush-then-read contract
//!
//! Every read (`stats` / `snapshot` / `heal` / `health` / `shutdown`)
//! flushes the pending batch *first* and reports the post-flush state:
//! a read never observes a half-applied batch, and interleaving reads
//! with queued mutations changes *when* reconfiguration points occur
//! but never the state a read reports for a given request prefix.
//!
//! Everything is a pure function of the request stream — responses
//! (and therefore replay transcripts) are byte-identical at any
//! `noc-par` width.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

use noc_tdma::TdmaSpec;
use noc_topology::units::{Bandwidth, Frequency, Latency, LinkWidth};
use noc_topology::{FaultSet, MeshBuilder, NodeId, Topology};
use noc_usecase::spec::{CoreId, SocSpec, UseCase, UseCaseBuilder};
use noc_usecase::UseCaseGroups;
use nocmap::remap::RemapConfig;
use nocmap::strategy::displacement_eviction_budget;
use nocmap::{
    admit_group, map_multi_usecase, merged_group_flows, GroupConfig, HealOutcome, MapperOptions,
    MappingSolution, RouteCache,
};

use crate::protocol::{parse_command, Command, FaultTarget, FlowSpec, TERMINATOR};

/// How applied mutations reach a new mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmitMode {
    /// Incremental admission via [`nocmap::admit_group`] (greedy fast
    /// path, displacement on conflict, route-cache reuse).
    #[default]
    Incremental,
    /// From-scratch baseline: re-run the full batch mapper on every
    /// applied add/modify.
    Resolve,
}

impl AdmitMode {
    /// CLI/flags token.
    pub fn token(self) -> &'static str {
        match self {
            AdmitMode::Incremental => "incremental",
            AdmitMode::Resolve => "resolve",
        }
    }

    /// Parses a [`Self::token`].
    pub fn parse(token: &str) -> Option<AdmitMode> {
        [AdmitMode::Incremental, AdmitMode::Resolve]
            .into_iter()
            .find(|m| m.token() == token)
    }
}

/// Engine construction parameters (the daemon's fixed fabric plus
/// admission policy).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Mesh rows.
    pub rows: u16,
    /// Mesh columns.
    pub cols: u16,
    /// NIs per switch.
    pub nis_per_switch: u16,
    /// TDMA slots per table.
    pub slots: usize,
    /// NoC frequency in MHz.
    pub freq_mhz: u64,
    /// Mutations applied together per reconfiguration point.
    pub batch: usize,
    /// Displacement eviction budget per admission.
    pub budget: u64,
    /// Admission mode.
    pub mode: AdmitMode,
}

impl Default for EngineConfig {
    /// A 4×4 mesh (16 NIs) at the paper's TDMA operating point, batch
    /// of 4, and the [`displacement_eviction_budget`] the strategy
    /// portfolio uses.
    fn default() -> Self {
        EngineConfig {
            rows: 4,
            cols: 4,
            nis_per_switch: 1,
            slots: 128,
            freq_mhz: 500,
            batch: 4,
            budget: displacement_eviction_budget(),
            mode: AdmitMode::Incremental,
        }
    }
}

/// Cumulative admission-control metrics (all counters monotonic over
/// the engine's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Commands received (parse errors included, blank/comment lines
    /// not).
    pub requests: u64,
    /// `add` requests queued.
    pub adds: u64,
    /// `modify` requests queued.
    pub modifies: u64,
    /// `remove` requests queued.
    pub removes: u64,
    /// Parse errors plus apply-time id/spec errors.
    pub errors: u64,
    /// Admissions accepted (adds and modifies).
    pub admitted: u64,
    /// Admissions rejected by capacity (NI exhaustion or unroutable).
    pub rejected: u64,
    /// Admissions that displaced at least one pre-existing core.
    pub displaced: u64,
    /// Cumulative pre-existing cores moved — the reconfiguration cost.
    pub evictions: u64,
    /// Non-empty batches applied at reconfiguration points.
    pub flushes: u64,
    /// `fault` requests queued.
    pub faults: u64,
    /// Links newly failed by applied `fault` requests.
    pub links_failed: u64,
    /// NIs newly failed by applied `fault` requests.
    pub nis_failed: u64,
    /// Explicit `heal` requests served.
    pub heals: u64,
    /// Degraded use-cases revived by explicit `heal` requests.
    pub healed: u64,
    /// Use-cases parked as degraded (cumulative; a use-case degraded
    /// twice counts twice).
    pub degraded: u64,
}

impl ServiceStats {
    /// Blocking probability: rejected / (admitted + rejected), `0` with
    /// no capacity decisions yet. Id/spec errors are not admission
    /// attempts and do not count.
    pub fn blocking(&self) -> f64 {
        let attempts = self.admitted + self.rejected;
        if attempts == 0 {
            return 0.0;
        }
        self.rejected as f64 / attempts as f64
    }
}

/// The admission engine. See the module docs; the socket layer
/// ([`crate::net`]) is a thin transport over [`Engine::submit_line`].
#[derive(Debug)]
pub struct Engine {
    cfg: EngineConfig,
    topo: Topology,
    spec: TdmaSpec,
    options: MapperOptions,
    /// Admitted use-cases in admission order (a modify re-admits at the
    /// back).
    ucs: Vec<(String, UseCase)>,
    /// Preset-pure per-group configs, parallel to `ucs`.
    configs: Vec<GroupConfig>,
    /// Core → NI placement of every referenced core.
    placement: BTreeMap<CoreId, NodeId>,
    /// Per use-case id: every `signature → config` routed while the
    /// use-case's flows were live (invalidated on modify/remove).
    store: BTreeMap<String, BTreeMap<Vec<NodeId>, GroupConfig>>,
    /// Ids of parked (degraded) use-cases: admitted but unserviced
    /// until an explicit `heal` re-admits them.
    parked: BTreeSet<String>,
    pending: VecDeque<(u64, Command)>,
    seq: u64,
    stats: ServiceStats,
    shutdown: bool,
}

impl Engine {
    /// Builds an engine over a fresh, empty mesh.
    ///
    /// # Errors
    ///
    /// A message when the mesh dimensions are invalid.
    pub fn new(cfg: EngineConfig) -> Result<Engine, String> {
        let topo = MeshBuilder::new(cfg.rows, cfg.cols)
            .nis_per_switch(cfg.nis_per_switch)
            .build()
            .map_err(|e| e.to_string())?
            .into_topology();
        let spec = TdmaSpec::new(
            cfg.slots,
            Frequency::from_mhz(cfg.freq_mhz),
            LinkWidth::BITS_32,
        );
        Ok(Engine {
            cfg,
            topo,
            spec,
            options: MapperOptions::default(),
            ucs: Vec::new(),
            configs: Vec::new(),
            placement: BTreeMap::new(),
            store: BTreeMap::new(),
            parked: BTreeSet::new(),
            pending: VecDeque::new(),
            seq: 0,
            stats: ServiceStats::default(),
            shutdown: false,
        })
    }

    /// Whether a `shutdown` command has been applied.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    /// The cumulative admission-control metrics.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The current total communication cost (exact bytes/s·hops).
    pub fn comm_cost(&self) -> u128 {
        self.configs
            .iter()
            .flat_map(|g| g.iter())
            .map(|(_, r)| r.bandwidth.as_bytes_per_sec() as u128 * r.hops() as u128)
            .sum()
    }

    /// Admitted use-case count.
    pub fn use_case_count(&self) -> usize {
        self.ucs.len()
    }

    /// The active fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.options.faults
    }

    /// Currently degraded (parked) use-case count.
    pub fn degraded_count(&self) -> usize {
        self.parked.len()
    }

    /// Handles one request line and returns the full framed response
    /// (status line, detail lines, `.` terminator).
    pub fn submit_line(&mut self, line: &str) -> String {
        match parse_command(line) {
            Ok(None) => format!("ok\n{TERMINATOR}\n"),
            Ok(Some(cmd)) => self.submit(cmd),
            Err(e) => {
                self.stats.requests += 1;
                self.stats.errors += 1;
                format!("err {}: {e}\n{TERMINATOR}\n", e.kind())
            }
        }
    }

    fn submit(&mut self, cmd: Command) -> String {
        self.stats.requests += 1;
        let mut out = String::new();
        match cmd {
            cmd @ (Command::Add { .. }
            | Command::Modify { .. }
            | Command::Remove { .. }
            | Command::Fault { .. }) => {
                self.seq += 1;
                match &cmd {
                    Command::Add { .. } => self.stats.adds += 1,
                    Command::Modify { .. } => self.stats.modifies += 1,
                    Command::Fault { .. } => self.stats.faults += 1,
                    _ => self.stats.removes += 1,
                }
                self.pending.push_back((self.seq, cmd));
                if self.pending.len() >= self.cfg.batch {
                    self.write_applied(&mut out);
                } else {
                    let _ = writeln!(
                        out,
                        "ok queued seq={} pending={}/{}",
                        self.seq,
                        self.pending.len(),
                        self.cfg.batch
                    );
                }
            }
            Command::Flush => self.write_applied(&mut out),
            Command::Stats => {
                let events = self.flush();
                out.push_str("ok stats\n");
                for e in &events {
                    out.push_str(e);
                    out.push('\n');
                }
                let s = &self.stats;
                let _ = writeln!(
                    out,
                    "requests={} adds={} modifies={} removes={} errors={}",
                    s.requests, s.adds, s.modifies, s.removes, s.errors
                );
                let _ = writeln!(
                    out,
                    "admitted={} rejected={} blocking={:.4}",
                    s.admitted,
                    s.rejected,
                    s.blocking()
                );
                let _ = writeln!(
                    out,
                    "displaced={} evictions={} flushes={}",
                    s.displaced, s.evictions, s.flushes
                );
                let _ = writeln!(
                    out,
                    "use_cases={} cores={} free_nis={} comm_cost={}",
                    self.ucs.len(),
                    self.placement.len(),
                    self.free_ni_count(),
                    self.comm_cost()
                );
                // The fault line only appears once a fault exists, so
                // fault-free transcripts are byte-identical to the
                // pre-fault protocol.
                if !self.options.faults.is_empty() {
                    let s = &self.stats;
                    let _ = writeln!(
                        out,
                        "faults={} links_failed={} nis_failed={} heals={} healed={} degraded={}",
                        s.faults,
                        s.links_failed,
                        s.nis_failed,
                        s.heals,
                        s.healed,
                        self.parked.len()
                    );
                }
            }
            Command::Snapshot => {
                let events = self.flush();
                let _ = writeln!(
                    out,
                    "ok snapshot use_cases={} cores={}",
                    self.ucs.len(),
                    self.placement.len()
                );
                for e in &events {
                    out.push_str(e);
                    out.push('\n');
                }
                for (id, uc) in &self.ucs {
                    // `.get()`, not indexing: a parked use-case's cores
                    // are legitimately unplaced.
                    let seats: Vec<String> = uc
                        .cores()
                        .iter()
                        .map(|c| match self.placement.get(c) {
                            Some(ni) => format!("{c}->{ni}"),
                            None => format!("{c}->?"),
                        })
                        .collect();
                    let mark = if self.parked.contains(id) {
                        " [degraded]"
                    } else {
                        ""
                    };
                    let _ = writeln!(out, "uc {id}: {}{mark}", seats.join(" "));
                }
            }
            Command::Heal => {
                let events = self.flush();
                self.stats.heals += 1;
                let (lines, revived) = self.reheal();
                let _ = writeln!(
                    out,
                    "ok heal attempted={} healed={} degraded={}",
                    lines.len(),
                    revived,
                    self.parked.len()
                );
                for e in &events {
                    out.push_str(e);
                    out.push('\n');
                }
                for l in &lines {
                    out.push_str(l);
                    out.push('\n');
                }
            }
            Command::Health => {
                let events = self.flush();
                let f = &self.options.faults;
                let _ = writeln!(
                    out,
                    "ok health use_cases={} degraded={} links_failed={} nis_failed={}",
                    self.ucs.len(),
                    self.parked.len(),
                    f.failed_link_count(),
                    f.failed_ni_count()
                );
                for e in &events {
                    out.push_str(e);
                    out.push('\n');
                }
                for (id, _) in &self.ucs {
                    let state = if self.parked.contains(id) {
                        "degraded"
                    } else {
                        "healthy"
                    };
                    let _ = writeln!(out, "uc {id}: {state}");
                }
            }
            Command::Shutdown => {
                let events = self.flush();
                out.push_str("ok shutdown\n");
                for e in &events {
                    out.push_str(e);
                    out.push('\n');
                }
                self.shutdown = true;
            }
        }
        out.push_str(TERMINATOR);
        out.push('\n');
        out
    }

    fn write_applied(&mut self, out: &mut String) {
        let events = self.flush();
        let _ = writeln!(out, "ok applied n={}", events.len());
        for e in &events {
            out.push_str(e);
            out.push('\n');
        }
    }

    /// Applies every queued mutation (one reconfiguration point) and
    /// returns the per-request event lines.
    fn flush(&mut self) -> Vec<String> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        self.stats.flushes += 1;
        nocmap::perf::record_batch_flush();
        let batch: Vec<(u64, Command)> = self.pending.drain(..).collect();
        batch
            .into_iter()
            .map(|(seq, cmd)| self.apply(seq, cmd))
            .collect()
    }

    fn apply(&mut self, seq: u64, cmd: Command) -> String {
        match cmd {
            Command::Add { id, flows } => {
                if self.index_of(&id).is_some() {
                    self.stats.errors += 1;
                    return format!("#{seq} add {id}: error duplicate-id");
                }
                self.admit(seq, "add", id, &flows, None)
            }
            Command::Modify { id, flows } => {
                let Some(at) = self.index_of(&id) else {
                    self.stats.errors += 1;
                    return format!("#{seq} modify {id}: error unknown-id");
                };
                self.admit(seq, "modify", id, &flows, Some(at))
            }
            Command::Remove { id } => {
                let Some(at) = self.index_of(&id) else {
                    self.stats.errors += 1;
                    return format!("#{seq} remove {id}: error unknown-id");
                };
                let (_, uc) = self.ucs.remove(at);
                self.configs.remove(at);
                self.store.remove(&id);
                self.parked.remove(&id);
                let freed = self.prune_placement(&uc);
                format!("#{seq} remove {id}: removed freed={freed}")
            }
            Command::Fault { target, indices } => self.apply_fault(seq, target, &indices),
            _ => unreachable!("only mutations are queued"),
        }
    }

    /// Applies one `fault` request: injects the named failures, then
    /// auto-heals the running mapping around them.
    fn apply_fault(&mut self, seq: u64, target: FaultTarget, indices: &[usize]) -> String {
        let available = match target {
            FaultTarget::Link => self.topo.link_count(),
            FaultTarget::Ni => self.topo.ni_count(),
        };
        // Atomic: one out-of-range index rejects the whole request.
        if let Some(&bad) = indices.iter().find(|&&i| i >= available) {
            self.stats.errors += 1;
            return format!(
                "#{seq} fault {}: error index {bad} out of range (fabric has {available})",
                target.token()
            );
        }
        let mut injected = 0u64;
        for &i in indices {
            let newly = match target {
                FaultTarget::Link => self.options.faults.fail_link(self.topo.links()[i].id()),
                FaultTarget::Ni => self.options.faults.fail_ni(self.topo.nis()[i]),
            };
            if newly {
                injected += 1;
                match target {
                    FaultTarget::Link => self.stats.links_failed += 1,
                    FaultTarget::Ni => self.stats.nis_failed += 1,
                }
            }
        }
        nocmap::perf::record_fault_injections(injected);
        let head = format!(
            "#{seq} fault {}: injected={injected} links_failed={} nis_failed={}",
            target.token(),
            self.options.faults.failed_link_count(),
            self.options.faults.failed_ni_count()
        );
        if injected == 0 {
            return format!("{head} (already failed)");
        }
        // Every stored config was routed on the pre-fault fabric; none
        // may be spliced or cache-seeded again.
        self.store.clear();
        if self.ucs.is_empty() {
            return head;
        }
        let (soc, groups) = self.soc_current();
        let base = MappingSolution::new(
            self.topo.clone(),
            format!("{}sw", self.topo.switch_count()),
            self.spec,
            self.placement.clone(),
            self.configs.clone(),
        );
        match nocmap::heal(&soc, &groups, &base, &self.options, &RemapConfig::default()) {
            HealOutcome::Healed {
                solution,
                rerouted,
                moved,
            } => {
                self.placement = solution.core_mapping().clone();
                self.configs = solution.group_configs().to_vec();
                format!("{head} healed rerouted={rerouted} moved={}", moved.len())
            }
            HealOutcome::Degraded {
                solution,
                groups: dead,
                rerouted,
                moved,
            } => {
                self.placement = solution.core_mapping().clone();
                self.configs = solution.group_configs().to_vec();
                let ids: Vec<String> = dead.iter().map(|&g| self.ucs[g].0.clone()).collect();
                for id in &ids {
                    self.park(id);
                }
                format!(
                    "{head} degraded={} rerouted={rerouted} moved={} [{}]",
                    ids.len(),
                    moved.len(),
                    ids.join(" ")
                )
            }
            HealOutcome::Infeasible { error } => {
                // No repaired solution exists: park everything rather
                // than keep routes that may cross failed resources.
                let ids: Vec<String> = self.ucs.iter().map(|(id, _)| id.clone()).collect();
                for id in &ids {
                    self.park(id);
                }
                format!("{head} infeasible: {error} parked={}", ids.len())
            }
        }
    }

    /// Parks a use-case as degraded: empties its config and unplaces
    /// the cores no live (non-parked) use-case still references.
    fn park(&mut self, id: &str) {
        if !self.parked.insert(id.to_string()) {
            return;
        }
        self.stats.degraded += 1;
        let Some(at) = self.index_of(id) else {
            return;
        };
        self.configs[at] = GroupConfig::new();
        let uc = self.ucs[at].1.clone();
        let live: BTreeSet<CoreId> = self
            .ucs
            .iter()
            .filter(|(uid, _)| !self.parked.contains(uid))
            .flat_map(|(_, u)| u.cores())
            .collect();
        for core in uc.cores() {
            if !live.contains(&core) {
                self.placement.remove(&core);
            }
        }
    }

    /// Re-attempts admission of every parked use-case (ascending id
    /// order) through the fault-aware admission path. Returns the
    /// per-use-case event lines and how many were revived.
    fn reheal(&mut self) -> (Vec<String>, u64) {
        let ids: Vec<String> = self.parked.iter().cloned().collect();
        let mut lines = Vec::with_capacity(ids.len());
        let mut revived = 0u64;
        for id in ids {
            nocmap::perf::record_heal_attempt();
            let Some(at) = self.index_of(&id) else {
                continue;
            };
            let (_, uc) = self.ucs.remove(at);
            let cfg = self.configs.remove(at);
            let saved_placement = self.placement.clone();
            self.prune_placement(&uc);
            match self.admit_incremental(&id, &uc) {
                Ok((cost, placed, moved)) => {
                    self.parked.remove(&id);
                    self.stats.healed += 1;
                    revived += 1;
                    lines.push(format!(
                        "uc {id}: healed cost={cost} placed={placed} moved={moved}"
                    ));
                }
                Err(reason) => {
                    self.placement = saved_placement;
                    self.ucs.insert(at, (id.clone(), uc));
                    self.configs.insert(at, cfg);
                    lines.push(format!("uc {id}: degraded {reason}"));
                }
            }
        }
        (lines, revived)
    }

    /// NIs that are neither occupied nor failed.
    fn free_ni_count(&self) -> usize {
        let usable = self.topo.ni_count() - self.options.faults.failed_ni_count();
        usable.saturating_sub(self.placement.len())
    }

    /// The running spec as singleton groups (no extra use-case).
    fn soc_current(&self) -> (SocSpec, UseCaseGroups) {
        let mut soc = SocSpec::new("nocd");
        for (_, existing) in &self.ucs {
            soc.add_use_case(existing.clone());
        }
        let groups = UseCaseGroups::singletons(soc.use_case_count());
        (soc, groups)
    }

    /// Admits (or, with `replace_at`, atomically re-admits) a use-case.
    fn admit(
        &mut self,
        seq: u64,
        op: &str,
        id: String,
        flows: &[FlowSpec],
        replace_at: Option<usize>,
    ) -> String {
        let uc = match build_use_case(&id, flows) {
            Ok(uc) => uc,
            Err(e) => {
                self.stats.errors += 1;
                return format!("#{seq} {op} {id}: error bad-flows: {e}");
            }
        };
        let span = noc_obs::span("admission");
        span.attr("op", op);
        span.attr("id", id.as_str());
        span.attr("seq", seq);

        // A modify re-admits against the state without its old version;
        // the removal is rolled back wholesale if the new version is
        // rejected, so a failed modify leaves the engine untouched
        // (minus the old version's now-stale route-store entry).
        let mut old: Option<(
            usize,
            String,
            UseCase,
            GroupConfig,
            BTreeMap<CoreId, NodeId>,
        )> = None;
        if let Some(at) = replace_at {
            let (oid, ouc) = self.ucs.remove(at);
            let ocfg = self.configs.remove(at);
            self.store.remove(&oid);
            let saved_placement = self.placement.clone();
            self.prune_placement(&ouc);
            old = Some((at, oid, ouc, ocfg, saved_placement));
        }

        let outcome = match self.cfg.mode {
            AdmitMode::Incremental => self.admit_incremental(&id, &uc),
            AdmitMode::Resolve => self.admit_resolve(&id, &uc),
        };
        match outcome {
            Ok((cost, placed, moved)) => {
                self.stats.admitted += 1;
                // A re-admitted (modified) use-case is serviced again.
                self.parked.remove(&id);
                if moved > 0 {
                    self.stats.displaced += 1;
                    self.stats.evictions += moved;
                }
                span.attr("admitted", 1u64);
                span.attr("moved", moved);
                format!(
                    "#{seq} {op} {id}: admitted cost={cost} placed={placed} \
                     moved={moved} evictions={moved}"
                )
            }
            Err(reason) => {
                self.stats.rejected += 1;
                if let Some((at, oid, ouc, ocfg, saved_placement)) = old {
                    self.placement = saved_placement;
                    self.ucs.insert(at, (oid, ouc));
                    self.configs.insert(at, ocfg);
                }
                span.attr("admitted", 0u64);
                format!("#{seq} {op} {id}: rejected {reason}")
            }
        }
    }

    fn admit_incremental(&mut self, id: &str, uc: &UseCase) -> Result<(u128, usize, u64), String> {
        let (soc, groups) = self.soc_with(uc);
        let group = groups.group_count() - 1;
        let merged = merged_group_flows(&soc, &groups);
        let mut base_configs = self.configs.clone();
        base_configs.push(GroupConfig::new());
        let base = MappingSolution::new(
            self.topo.clone(),
            format!("{}sw", self.topo.switch_count()),
            self.spec,
            self.placement.clone(),
            base_configs,
        );
        let mut cache = RouteCache::new(&merged);
        for (g, (gid, _)) in self.ucs.iter().enumerate() {
            if let Some(entries) = self.store.get(gid) {
                for (sig, config) in entries {
                    cache.insert(g, sig.clone(), config.clone());
                }
            }
        }
        match admit_group(
            &soc,
            &groups,
            &base,
            &self.options,
            group,
            self.cfg.budget,
            &merged,
            &mut cache,
        ) {
            Ok(adm) => {
                self.ucs.push((id.to_string(), uc.clone()));
                self.placement = adm.solution.core_mapping().clone();
                self.configs = adm.solution.group_configs().to_vec();
                for (g, (gid, _)) in self.ucs.iter().enumerate() {
                    let entries = self.store.entry(gid.clone()).or_default();
                    for (sig, config) in cache.group_entries(g) {
                        entries.entry(sig.clone()).or_insert_with(|| config.clone());
                    }
                }
                Ok((
                    adm.solution.comm_cost_bytes_hops(),
                    adm.placed.len(),
                    adm.evictions,
                ))
            }
            Err(reason) => Err(reason.to_string()),
        }
    }

    fn admit_resolve(&mut self, id: &str, uc: &UseCase) -> Result<(u128, usize, u64), String> {
        let (soc, groups) = self.soc_with(uc);
        match map_multi_usecase(&soc, &groups, &self.topo, self.spec, &self.options) {
            Ok(sol) => {
                let placed = uc
                    .cores()
                    .iter()
                    .filter(|c| !self.placement.contains_key(c))
                    .count();
                let moved = self
                    .placement
                    .iter()
                    .filter(|(c, ni)| sol.core_mapping().get(c).is_some_and(|n| n != *ni))
                    .count() as u64;
                self.ucs.push((id.to_string(), uc.clone()));
                self.placement = sol.core_mapping().clone();
                self.configs = sol.group_configs().to_vec();
                nocmap::perf::record_admission();
                nocmap::perf::record_displacement_evictions(moved);
                Ok((sol.comm_cost_bytes_hops(), placed, moved))
            }
            Err(e) => {
                nocmap::perf::record_rejection();
                Err(format!("unroutable: {e}"))
            }
        }
    }

    /// The running spec plus one more use-case, as singleton groups.
    fn soc_with(&self, uc: &UseCase) -> (SocSpec, UseCaseGroups) {
        let mut soc = SocSpec::new("nocd");
        for (_, existing) in &self.ucs {
            soc.add_use_case(existing.clone());
        }
        soc.add_use_case(uc.clone());
        let groups = UseCaseGroups::singletons(soc.use_case_count());
        (soc, groups)
    }

    fn index_of(&self, id: &str) -> Option<usize> {
        self.ucs.iter().position(|(uid, _)| uid == id)
    }

    /// Drops placement entries for cores of `removed` that no remaining
    /// use-case references; returns how many were freed.
    fn prune_placement(&mut self, removed: &UseCase) -> usize {
        let live: BTreeSet<CoreId> = self.ucs.iter().flat_map(|(_, uc)| uc.cores()).collect();
        let mut freed = 0;
        for core in removed.cores() {
            if !live.contains(&core) && self.placement.remove(&core).is_some() {
                freed += 1;
            }
        }
        freed
    }
}

/// Builds a [`UseCase`] named `id` from protocol flow specs.
fn build_use_case(id: &str, flows: &[FlowSpec]) -> Result<UseCase, String> {
    let mut b = UseCaseBuilder::new(id);
    for f in flows {
        let latency = match f.lat_us {
            Some(us) => Latency::from_us(us),
            None => Latency::UNCONSTRAINED,
        };
        b = b
            .flow(
                CoreId::new(f.src),
                CoreId::new(f.dst),
                Bandwidth::from_mbps(f.mbps),
                latency,
            )
            .map_err(|e| e.to_string())?;
    }
    Ok(b.build())
}
