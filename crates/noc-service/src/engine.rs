//! The `nocd` admission engine: streaming use-case admission with
//! incremental remapping and request batching.
//!
//! The engine owns the running mapping state (admitted use-cases, the
//! preset-pure per-group configs, the core → NI placement) and applies
//! a stream of [`Command`]s. Mutations (`add` / `modify` / `remove`)
//! are **queued** and applied together at the next *reconfiguration
//! point* — when the batch fills, on an explicit `flush`, or before any
//! `stats` / `snapshot` / `shutdown` — mirroring how a deployed NoC
//! reconfigures between use-case groups rather than per request.
//!
//! Admission ([`AdmitMode::Incremental`], the default) goes through
//! [`nocmap::admit_group`]: greedy placement on free NIs, one group
//! route (everything else spliced from the running solution), and
//! displacement under the eviction budget on conflict. The per-use-case
//! route store re-seeds each admission's [`RouteCache`] with every
//! signature routed since that use-case was admitted, so repeated
//! displacement probes across the stream hit the cache.
//! [`AdmitMode::Resolve`] is the from-scratch baseline: every applied
//! add/modify re-runs the full batch mapper over all admitted use-cases
//! — the `pr9` perf record contrasts the two on identical traces.
//!
//! Everything is a pure function of the request stream — responses
//! (and therefore replay transcripts) are byte-identical at any
//! `noc-par` width.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

use noc_tdma::TdmaSpec;
use noc_topology::units::{Bandwidth, Frequency, Latency, LinkWidth};
use noc_topology::{MeshBuilder, NodeId, Topology};
use noc_usecase::spec::{CoreId, SocSpec, UseCase, UseCaseBuilder};
use noc_usecase::UseCaseGroups;
use nocmap::strategy::displacement_eviction_budget;
use nocmap::{
    admit_group, map_multi_usecase, merged_group_flows, GroupConfig, MapperOptions,
    MappingSolution, RouteCache,
};

use crate::protocol::{parse_command, Command, FlowSpec, TERMINATOR};

/// How applied mutations reach a new mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmitMode {
    /// Incremental admission via [`nocmap::admit_group`] (greedy fast
    /// path, displacement on conflict, route-cache reuse).
    #[default]
    Incremental,
    /// From-scratch baseline: re-run the full batch mapper on every
    /// applied add/modify.
    Resolve,
}

impl AdmitMode {
    /// CLI/flags token.
    pub fn token(self) -> &'static str {
        match self {
            AdmitMode::Incremental => "incremental",
            AdmitMode::Resolve => "resolve",
        }
    }

    /// Parses a [`Self::token`].
    pub fn parse(token: &str) -> Option<AdmitMode> {
        [AdmitMode::Incremental, AdmitMode::Resolve]
            .into_iter()
            .find(|m| m.token() == token)
    }
}

/// Engine construction parameters (the daemon's fixed fabric plus
/// admission policy).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Mesh rows.
    pub rows: u16,
    /// Mesh columns.
    pub cols: u16,
    /// NIs per switch.
    pub nis_per_switch: u16,
    /// TDMA slots per table.
    pub slots: usize,
    /// NoC frequency in MHz.
    pub freq_mhz: u64,
    /// Mutations applied together per reconfiguration point.
    pub batch: usize,
    /// Displacement eviction budget per admission.
    pub budget: u64,
    /// Admission mode.
    pub mode: AdmitMode,
}

impl Default for EngineConfig {
    /// A 4×4 mesh (16 NIs) at the paper's TDMA operating point, batch
    /// of 4, and the [`displacement_eviction_budget`] the strategy
    /// portfolio uses.
    fn default() -> Self {
        EngineConfig {
            rows: 4,
            cols: 4,
            nis_per_switch: 1,
            slots: 128,
            freq_mhz: 500,
            batch: 4,
            budget: displacement_eviction_budget(),
            mode: AdmitMode::Incremental,
        }
    }
}

/// Cumulative admission-control metrics (all counters monotonic over
/// the engine's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Commands received (parse errors included, blank/comment lines
    /// not).
    pub requests: u64,
    /// `add` requests queued.
    pub adds: u64,
    /// `modify` requests queued.
    pub modifies: u64,
    /// `remove` requests queued.
    pub removes: u64,
    /// Parse errors plus apply-time id/spec errors.
    pub errors: u64,
    /// Admissions accepted (adds and modifies).
    pub admitted: u64,
    /// Admissions rejected by capacity (NI exhaustion or unroutable).
    pub rejected: u64,
    /// Admissions that displaced at least one pre-existing core.
    pub displaced: u64,
    /// Cumulative pre-existing cores moved — the reconfiguration cost.
    pub evictions: u64,
    /// Non-empty batches applied at reconfiguration points.
    pub flushes: u64,
}

impl ServiceStats {
    /// Blocking probability: rejected / (admitted + rejected), `0` with
    /// no capacity decisions yet. Id/spec errors are not admission
    /// attempts and do not count.
    pub fn blocking(&self) -> f64 {
        let attempts = self.admitted + self.rejected;
        if attempts == 0 {
            return 0.0;
        }
        self.rejected as f64 / attempts as f64
    }
}

/// The admission engine. See the module docs; the socket layer
/// ([`crate::net`]) is a thin transport over [`Engine::submit_line`].
#[derive(Debug)]
pub struct Engine {
    cfg: EngineConfig,
    topo: Topology,
    spec: TdmaSpec,
    options: MapperOptions,
    /// Admitted use-cases in admission order (a modify re-admits at the
    /// back).
    ucs: Vec<(String, UseCase)>,
    /// Preset-pure per-group configs, parallel to `ucs`.
    configs: Vec<GroupConfig>,
    /// Core → NI placement of every referenced core.
    placement: BTreeMap<CoreId, NodeId>,
    /// Per use-case id: every `signature → config` routed while the
    /// use-case's flows were live (invalidated on modify/remove).
    store: BTreeMap<String, BTreeMap<Vec<NodeId>, GroupConfig>>,
    pending: VecDeque<(u64, Command)>,
    seq: u64,
    stats: ServiceStats,
    shutdown: bool,
}

impl Engine {
    /// Builds an engine over a fresh, empty mesh.
    ///
    /// # Errors
    ///
    /// A message when the mesh dimensions are invalid.
    pub fn new(cfg: EngineConfig) -> Result<Engine, String> {
        let topo = MeshBuilder::new(cfg.rows, cfg.cols)
            .nis_per_switch(cfg.nis_per_switch)
            .build()
            .map_err(|e| e.to_string())?
            .into_topology();
        let spec = TdmaSpec::new(
            cfg.slots,
            Frequency::from_mhz(cfg.freq_mhz),
            LinkWidth::BITS_32,
        );
        Ok(Engine {
            cfg,
            topo,
            spec,
            options: MapperOptions::default(),
            ucs: Vec::new(),
            configs: Vec::new(),
            placement: BTreeMap::new(),
            store: BTreeMap::new(),
            pending: VecDeque::new(),
            seq: 0,
            stats: ServiceStats::default(),
            shutdown: false,
        })
    }

    /// Whether a `shutdown` command has been applied.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    /// The cumulative admission-control metrics.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The current total communication cost (exact bytes/s·hops).
    pub fn comm_cost(&self) -> u128 {
        self.configs
            .iter()
            .flat_map(|g| g.iter())
            .map(|(_, r)| r.bandwidth.as_bytes_per_sec() as u128 * r.hops() as u128)
            .sum()
    }

    /// Admitted use-case count.
    pub fn use_case_count(&self) -> usize {
        self.ucs.len()
    }

    /// Handles one request line and returns the full framed response
    /// (status line, detail lines, `.` terminator).
    pub fn submit_line(&mut self, line: &str) -> String {
        match parse_command(line) {
            Ok(None) => format!("ok\n{TERMINATOR}\n"),
            Ok(Some(cmd)) => self.submit(cmd),
            Err(msg) => {
                self.stats.requests += 1;
                self.stats.errors += 1;
                format!("err parse: {msg}\n{TERMINATOR}\n")
            }
        }
    }

    fn submit(&mut self, cmd: Command) -> String {
        self.stats.requests += 1;
        let mut out = String::new();
        match cmd {
            cmd @ (Command::Add { .. } | Command::Modify { .. } | Command::Remove { .. }) => {
                self.seq += 1;
                match &cmd {
                    Command::Add { .. } => self.stats.adds += 1,
                    Command::Modify { .. } => self.stats.modifies += 1,
                    _ => self.stats.removes += 1,
                }
                self.pending.push_back((self.seq, cmd));
                if self.pending.len() >= self.cfg.batch {
                    self.write_applied(&mut out);
                } else {
                    let _ = writeln!(
                        out,
                        "ok queued seq={} pending={}/{}",
                        self.seq,
                        self.pending.len(),
                        self.cfg.batch
                    );
                }
            }
            Command::Flush => self.write_applied(&mut out),
            Command::Stats => {
                let events = self.flush();
                out.push_str("ok stats\n");
                for e in &events {
                    out.push_str(e);
                    out.push('\n');
                }
                let s = &self.stats;
                let _ = writeln!(
                    out,
                    "requests={} adds={} modifies={} removes={} errors={}",
                    s.requests, s.adds, s.modifies, s.removes, s.errors
                );
                let _ = writeln!(
                    out,
                    "admitted={} rejected={} blocking={:.4}",
                    s.admitted,
                    s.rejected,
                    s.blocking()
                );
                let _ = writeln!(
                    out,
                    "displaced={} evictions={} flushes={}",
                    s.displaced, s.evictions, s.flushes
                );
                let _ = writeln!(
                    out,
                    "use_cases={} cores={} free_nis={} comm_cost={}",
                    self.ucs.len(),
                    self.placement.len(),
                    self.topo.ni_count() - self.placement.len(),
                    self.comm_cost()
                );
            }
            Command::Snapshot => {
                let events = self.flush();
                let _ = writeln!(
                    out,
                    "ok snapshot use_cases={} cores={}",
                    self.ucs.len(),
                    self.placement.len()
                );
                for e in &events {
                    out.push_str(e);
                    out.push('\n');
                }
                for (id, uc) in &self.ucs {
                    let seats: Vec<String> = uc
                        .cores()
                        .iter()
                        .map(|c| format!("{c}->{}", self.placement[c]))
                        .collect();
                    let _ = writeln!(out, "uc {id}: {}", seats.join(" "));
                }
            }
            Command::Shutdown => {
                let events = self.flush();
                out.push_str("ok shutdown\n");
                for e in &events {
                    out.push_str(e);
                    out.push('\n');
                }
                self.shutdown = true;
            }
        }
        out.push_str(TERMINATOR);
        out.push('\n');
        out
    }

    fn write_applied(&mut self, out: &mut String) {
        let events = self.flush();
        let _ = writeln!(out, "ok applied n={}", events.len());
        for e in &events {
            out.push_str(e);
            out.push('\n');
        }
    }

    /// Applies every queued mutation (one reconfiguration point) and
    /// returns the per-request event lines.
    fn flush(&mut self) -> Vec<String> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        self.stats.flushes += 1;
        nocmap::perf::record_batch_flush();
        let batch: Vec<(u64, Command)> = self.pending.drain(..).collect();
        batch
            .into_iter()
            .map(|(seq, cmd)| self.apply(seq, cmd))
            .collect()
    }

    fn apply(&mut self, seq: u64, cmd: Command) -> String {
        match cmd {
            Command::Add { id, flows } => {
                if self.index_of(&id).is_some() {
                    self.stats.errors += 1;
                    return format!("#{seq} add {id}: error duplicate-id");
                }
                self.admit(seq, "add", id, &flows, None)
            }
            Command::Modify { id, flows } => {
                let Some(at) = self.index_of(&id) else {
                    self.stats.errors += 1;
                    return format!("#{seq} modify {id}: error unknown-id");
                };
                self.admit(seq, "modify", id, &flows, Some(at))
            }
            Command::Remove { id } => {
                let Some(at) = self.index_of(&id) else {
                    self.stats.errors += 1;
                    return format!("#{seq} remove {id}: error unknown-id");
                };
                let (_, uc) = self.ucs.remove(at);
                self.configs.remove(at);
                self.store.remove(&id);
                let freed = self.prune_placement(&uc);
                format!("#{seq} remove {id}: removed freed={freed}")
            }
            _ => unreachable!("only mutations are queued"),
        }
    }

    /// Admits (or, with `replace_at`, atomically re-admits) a use-case.
    fn admit(
        &mut self,
        seq: u64,
        op: &str,
        id: String,
        flows: &[FlowSpec],
        replace_at: Option<usize>,
    ) -> String {
        let uc = match build_use_case(&id, flows) {
            Ok(uc) => uc,
            Err(e) => {
                self.stats.errors += 1;
                return format!("#{seq} {op} {id}: error bad-flows: {e}");
            }
        };
        let span = noc_obs::span("admission");
        span.attr("op", op);
        span.attr("id", id.as_str());
        span.attr("seq", seq);

        // A modify re-admits against the state without its old version;
        // the removal is rolled back wholesale if the new version is
        // rejected, so a failed modify leaves the engine untouched
        // (minus the old version's now-stale route-store entry).
        let mut old: Option<(
            usize,
            String,
            UseCase,
            GroupConfig,
            BTreeMap<CoreId, NodeId>,
        )> = None;
        if let Some(at) = replace_at {
            let (oid, ouc) = self.ucs.remove(at);
            let ocfg = self.configs.remove(at);
            self.store.remove(&oid);
            let saved_placement = self.placement.clone();
            self.prune_placement(&ouc);
            old = Some((at, oid, ouc, ocfg, saved_placement));
        }

        let outcome = match self.cfg.mode {
            AdmitMode::Incremental => self.admit_incremental(&id, &uc),
            AdmitMode::Resolve => self.admit_resolve(&id, &uc),
        };
        match outcome {
            Ok((cost, placed, moved)) => {
                self.stats.admitted += 1;
                if moved > 0 {
                    self.stats.displaced += 1;
                    self.stats.evictions += moved;
                }
                span.attr("admitted", 1u64);
                span.attr("moved", moved);
                format!(
                    "#{seq} {op} {id}: admitted cost={cost} placed={placed} \
                     moved={moved} evictions={moved}"
                )
            }
            Err(reason) => {
                self.stats.rejected += 1;
                if let Some((at, oid, ouc, ocfg, saved_placement)) = old {
                    self.placement = saved_placement;
                    self.ucs.insert(at, (oid, ouc));
                    self.configs.insert(at, ocfg);
                }
                span.attr("admitted", 0u64);
                format!("#{seq} {op} {id}: rejected {reason}")
            }
        }
    }

    fn admit_incremental(&mut self, id: &str, uc: &UseCase) -> Result<(u128, usize, u64), String> {
        let (soc, groups) = self.soc_with(uc);
        let group = groups.group_count() - 1;
        let merged = merged_group_flows(&soc, &groups);
        let mut base_configs = self.configs.clone();
        base_configs.push(GroupConfig::new());
        let base = MappingSolution::new(
            self.topo.clone(),
            format!("{}sw", self.topo.switch_count()),
            self.spec,
            self.placement.clone(),
            base_configs,
        );
        let mut cache = RouteCache::new(&merged);
        for (g, (gid, _)) in self.ucs.iter().enumerate() {
            if let Some(entries) = self.store.get(gid) {
                for (sig, config) in entries {
                    cache.insert(g, sig.clone(), config.clone());
                }
            }
        }
        match admit_group(
            &soc,
            &groups,
            &base,
            &self.options,
            group,
            self.cfg.budget,
            &merged,
            &mut cache,
        ) {
            Ok(adm) => {
                self.ucs.push((id.to_string(), uc.clone()));
                self.placement = adm.solution.core_mapping().clone();
                self.configs = adm.solution.group_configs().to_vec();
                for (g, (gid, _)) in self.ucs.iter().enumerate() {
                    let entries = self.store.entry(gid.clone()).or_default();
                    for (sig, config) in cache.group_entries(g) {
                        entries.entry(sig.clone()).or_insert_with(|| config.clone());
                    }
                }
                Ok((
                    adm.solution.comm_cost_bytes_hops(),
                    adm.placed.len(),
                    adm.evictions,
                ))
            }
            Err(reason) => Err(reason.to_string()),
        }
    }

    fn admit_resolve(&mut self, id: &str, uc: &UseCase) -> Result<(u128, usize, u64), String> {
        let (soc, groups) = self.soc_with(uc);
        match map_multi_usecase(&soc, &groups, &self.topo, self.spec, &self.options) {
            Ok(sol) => {
                let placed = uc
                    .cores()
                    .iter()
                    .filter(|c| !self.placement.contains_key(c))
                    .count();
                let moved = self
                    .placement
                    .iter()
                    .filter(|(c, ni)| sol.core_mapping().get(c).is_some_and(|n| n != *ni))
                    .count() as u64;
                self.ucs.push((id.to_string(), uc.clone()));
                self.placement = sol.core_mapping().clone();
                self.configs = sol.group_configs().to_vec();
                nocmap::perf::record_admission();
                nocmap::perf::record_displacement_evictions(moved);
                Ok((sol.comm_cost_bytes_hops(), placed, moved))
            }
            Err(e) => {
                nocmap::perf::record_rejection();
                Err(format!("unroutable: {e}"))
            }
        }
    }

    /// The running spec plus one more use-case, as singleton groups.
    fn soc_with(&self, uc: &UseCase) -> (SocSpec, UseCaseGroups) {
        let mut soc = SocSpec::new("nocd");
        for (_, existing) in &self.ucs {
            soc.add_use_case(existing.clone());
        }
        soc.add_use_case(uc.clone());
        let groups = UseCaseGroups::singletons(soc.use_case_count());
        (soc, groups)
    }

    fn index_of(&self, id: &str) -> Option<usize> {
        self.ucs.iter().position(|(uid, _)| uid == id)
    }

    /// Drops placement entries for cores of `removed` that no remaining
    /// use-case references; returns how many were freed.
    fn prune_placement(&mut self, removed: &UseCase) -> usize {
        let live: BTreeSet<CoreId> = self.ucs.iter().flat_map(|(_, uc)| uc.cores()).collect();
        let mut freed = 0;
        for core in removed.cores() {
            if !live.contains(&core) && self.placement.remove(&core).is_some() {
                freed += 1;
            }
        }
        freed
    }
}

/// Builds a [`UseCase`] named `id` from protocol flow specs.
fn build_use_case(id: &str, flows: &[FlowSpec]) -> Result<UseCase, String> {
    let mut b = UseCaseBuilder::new(id);
    for f in flows {
        let latency = match f.lat_us {
            Some(us) => Latency::from_us(us),
            None => Latency::UNCONSTRAINED,
        };
        b = b
            .flow(
                CoreId::new(f.src),
                CoreId::new(f.dst),
                Bandwidth::from_mbps(f.mbps),
                latency,
            )
            .map_err(|e| e.to_string())?;
    }
    Ok(b.build())
}
