//! The `nocd` line protocol: request grammar, input caps and parsing.
//!
//! One request per line, in the same keyword-led style as the
//! `ExperimentSpec` grammar (`noc-flow`). Blank lines and `#` comments
//! are ignored. Every response is a status line (`ok …` / `err …`),
//! zero or more detail lines, and a lone `.` terminator — so clients
//! frame responses without length prefixes.
//!
//! ```text
//! add <id> flow <src> <dst> <mbps> [<lat_us>] [; flow ...]
//! modify <id> flow <src> <dst> <mbps> [<lat_us>] [; flow ...]
//! remove <id>
//! fault link <idx> [<idx> ...]
//! fault ni <idx> [<idx> ...]
//! heal
//! health
//! flush
//! stats
//! snapshot
//! shutdown
//! ```
//!
//! `src` / `dst` are core indices from the shared core pool, `mbps` the
//! flow bandwidth in MB/s, `lat_us` an optional worst-case latency
//! bound in µs (unconstrained when absent). `add`/`modify`/`remove`/
//! `fault` are queued and applied together at the next reconfiguration
//! point (batch full, explicit `flush`, or any of `stats` / `snapshot` /
//! `heal` / `health` / `shutdown`) — see [`crate::engine`]. `fault`
//! indices are positions into the fabric's link list (`fault link`) or
//! NI list (`fault ni`).
//!
//! # Hardened edge
//!
//! The parser is the daemon's untrusted-input boundary, so every limit
//! is explicit and typed: a request line longer than [`MAX_LINE_BYTES`],
//! more than [`MAX_FLOWS`] flow clauses, or more than
//! [`MAX_FAULT_INDICES`] fault indices is rejected with
//! [`ProtocolError::Overflow`] *before* any allocation proportional to
//! the oversized input. Grammar violations are
//! [`ProtocolError::Syntax`]. Every malformed input maps to an `err …`
//! response — never a panic (pinned by a seeded byte-salad property
//! test in the engine).

use std::error::Error;
use std::fmt;

/// Hard cap on one request line, in bytes (before parsing).
pub const MAX_LINE_BYTES: usize = 4096;

/// Hard cap on flow clauses per `add` / `modify`.
pub const MAX_FLOWS: usize = 64;

/// Hard cap on indices per `fault` request.
pub const MAX_FAULT_INDICES: usize = 64;

/// A rejected request line: either an input-cap overflow or a grammar
/// violation. The engine renders these as `err overflow: …` /
/// `err parse: …` status lines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The request exceeded a hard input cap.
    Overflow {
        /// What overflowed (`"line bytes"`, `"flow clauses"`, …).
        what: &'static str,
        /// The cap.
        limit: usize,
        /// The offending size.
        got: usize,
    },
    /// The request violated the grammar.
    Syntax(String),
}

impl ProtocolError {
    /// The `err <kind>:` token the engine prefixes responses with.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolError::Overflow { .. } => "overflow",
            ProtocolError::Syntax(_) => "parse",
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Overflow { what, limit, got } => {
                write!(f, "{what} {got} exceeds cap {limit}")
            }
            ProtocolError::Syntax(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for ProtocolError {}

fn syntax(msg: impl Into<String>) -> ProtocolError {
    ProtocolError::Syntax(msg.into())
}

/// One requested flow of a use-case (`flow <src> <dst> <mbps>
/// [<lat_us>]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source core index in the shared pool.
    pub src: u32,
    /// Destination core index.
    pub dst: u32,
    /// Bandwidth in MB/s.
    pub mbps: u64,
    /// Worst-case latency bound in µs; `None` = unconstrained.
    pub lat_us: Option<u64>,
}

impl fmt::Display for FlowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow {} {} {}", self.src, self.dst, self.mbps)?;
        if let Some(lat) = self.lat_us {
            write!(f, " {lat}")?;
        }
        Ok(())
    }
}

/// Which resource class a `fault` request fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Directed links, by index into the fabric's link list.
    Link,
    /// NIs, by index into the fabric's NI list.
    Ni,
}

impl FaultTarget {
    /// The grammar token (`link` / `ni`).
    pub fn token(self) -> &'static str {
        match self {
            FaultTarget::Link => "link",
            FaultTarget::Ni => "ni",
        }
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Admit a new use-case under the given id.
    Add {
        /// Client-chosen use-case id (must be new).
        id: String,
        /// The use-case's flows (at least one).
        flows: Vec<FlowSpec>,
    },
    /// Replace an admitted use-case's flows (re-admitted atomically;
    /// the old version stays if the new one is rejected).
    Modify {
        /// Id of an admitted use-case.
        id: String,
        /// The replacement flows (at least one).
        flows: Vec<FlowSpec>,
    },
    /// Evict an admitted use-case and free its exclusive cores.
    Remove {
        /// Id of an admitted use-case.
        id: String,
    },
    /// Fail fabric resources (queued like a mutation; the engine
    /// injects the faults and auto-heals at the next reconfiguration
    /// point).
    Fault {
        /// Resource class the indices address.
        target: FaultTarget,
        /// Indices into the fabric's link or NI list (at least one).
        indices: Vec<usize>,
    },
    /// Re-attempt admission of every degraded use-case (flushes
    /// first).
    Heal,
    /// Per-use-case health plus the active fault set (flushes first).
    Health,
    /// Apply all queued mutations now (an explicit reconfiguration
    /// point).
    Flush,
    /// Admission-control metrics (flushes first).
    Stats,
    /// The current core → NI placement per use-case (flushes first).
    Snapshot,
    /// Flush, respond, and stop serving.
    Shutdown,
}

fn parse_flows(tokens: &[&str]) -> Result<Vec<FlowSpec>, ProtocolError> {
    let clauses = tokens.split(|&t| t == ";").count();
    if clauses > MAX_FLOWS {
        return Err(ProtocolError::Overflow {
            what: "flow clauses",
            limit: MAX_FLOWS,
            got: clauses,
        });
    }
    let mut flows = Vec::new();
    for chunk in tokens.split(|&t| t == ";") {
        match chunk {
            ["flow", src, dst, mbps, rest @ ..] => {
                let num = |name: &str, tok: &str| {
                    tok.parse::<u64>()
                        .map_err(|_| syntax(format!("bad {name} '{tok}'")))
                };
                let lat_us = match rest {
                    [] => None,
                    [lat] => Some(num("latency", lat)?),
                    more => return Err(syntax(format!("trailing tokens {more:?}"))),
                };
                flows.push(FlowSpec {
                    src: u32::try_from(num("source core", src)?)
                        .map_err(|_| syntax(format!("bad source core '{src}'")))?,
                    dst: u32::try_from(num("destination core", dst)?)
                        .map_err(|_| syntax(format!("bad destination core '{dst}'")))?,
                    mbps: num("bandwidth", mbps)?,
                    lat_us,
                });
            }
            [] => return Err(syntax("empty flow clause")),
            other => {
                return Err(syntax(format!(
                    "expected 'flow SRC DST MBPS [LAT_US]', got {other:?}"
                )))
            }
        }
    }
    if flows.is_empty() {
        return Err(syntax("a use-case needs at least one flow"));
    }
    Ok(flows)
}

fn parse_fault(tokens: &[&str]) -> Result<Command, ProtocolError> {
    let [kind, rest @ ..] = tokens else {
        return Err(syntax("expected 'fault <link|ni> IDX [IDX ...]'"));
    };
    let target = match *kind {
        "link" => FaultTarget::Link,
        "ni" => FaultTarget::Ni,
        other => return Err(syntax(format!("unknown fault target '{other}'"))),
    };
    if rest.is_empty() {
        return Err(syntax("a fault needs at least one index"));
    }
    if rest.len() > MAX_FAULT_INDICES {
        return Err(ProtocolError::Overflow {
            what: "fault indices",
            limit: MAX_FAULT_INDICES,
            got: rest.len(),
        });
    }
    let indices = rest
        .iter()
        .map(|tok| {
            tok.parse::<usize>()
                .map_err(|_| syntax(format!("bad fault index '{tok}'")))
        })
        .collect::<Result<Vec<usize>, ProtocolError>>()?;
    Ok(Command::Fault { target, indices })
}

/// Parses one request line. `Ok(None)` for blank lines and `#`
/// comments; `Err` is the first input-cap or grammar violation.
///
/// # Errors
///
/// [`ProtocolError::Overflow`] when an input cap is exceeded (checked
/// before any grammar work), [`ProtocolError::Syntax`] for grammar
/// violations.
pub fn parse_command(line: &str) -> Result<Option<Command>, ProtocolError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(ProtocolError::Overflow {
            what: "line bytes",
            limit: MAX_LINE_BYTES,
            got: line.len(),
        });
    }
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let cmd = match tokens.as_slice() {
        ["add", id, rest @ ..] => Command::Add {
            id: (*id).to_string(),
            flows: parse_flows(rest)?,
        },
        ["modify", id, rest @ ..] => Command::Modify {
            id: (*id).to_string(),
            flows: parse_flows(rest)?,
        },
        ["remove", id] => Command::Remove {
            id: (*id).to_string(),
        },
        ["fault", rest @ ..] => parse_fault(rest)?,
        ["heal"] => Command::Heal,
        ["health"] => Command::Health,
        ["flush"] => Command::Flush,
        ["stats"] => Command::Stats,
        ["snapshot"] => Command::Snapshot,
        ["shutdown"] => Command::Shutdown,
        [verb, ..] => return Err(syntax(format!("unknown command '{verb}'"))),
        [] => unreachable!("blank lines returned above"),
    };
    Ok(Some(cmd))
}

/// The response terminator line clients frame on.
pub const TERMINATOR: &str = ".";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        assert_eq!(parse_command("").unwrap(), None);
        assert_eq!(parse_command("# comment").unwrap(), None);
        assert_eq!(parse_command("stats").unwrap(), Some(Command::Stats));
        assert_eq!(parse_command("snapshot").unwrap(), Some(Command::Snapshot));
        assert_eq!(parse_command("flush").unwrap(), Some(Command::Flush));
        assert_eq!(parse_command("shutdown").unwrap(), Some(Command::Shutdown));
        assert_eq!(parse_command("heal").unwrap(), Some(Command::Heal));
        assert_eq!(parse_command("health").unwrap(), Some(Command::Health));
        assert_eq!(
            parse_command("remove u3").unwrap(),
            Some(Command::Remove {
                id: "u3".to_string()
            })
        );
        assert_eq!(
            parse_command("fault link 3 17").unwrap(),
            Some(Command::Fault {
                target: FaultTarget::Link,
                indices: vec![3, 17],
            })
        );
        assert_eq!(
            parse_command("fault ni 0").unwrap(),
            Some(Command::Fault {
                target: FaultTarget::Ni,
                indices: vec![0],
            })
        );
        assert_eq!(
            parse_command("add u0 flow 1 2 250 30 ; flow 2 3 100").unwrap(),
            Some(Command::Add {
                id: "u0".to_string(),
                flows: vec![
                    FlowSpec {
                        src: 1,
                        dst: 2,
                        mbps: 250,
                        lat_us: Some(30)
                    },
                    FlowSpec {
                        src: 2,
                        dst: 3,
                        mbps: 100,
                        lat_us: None
                    },
                ],
            })
        );
    }

    #[test]
    fn rejects_grammar_violations() {
        assert!(parse_command("add u0").is_err());
        assert!(parse_command("add u0 flow 1 2").is_err());
        assert!(parse_command("add u0 flow 1 2 x").is_err());
        assert!(parse_command("add u0 flow 1 2 100 5 9").is_err());
        assert!(parse_command("remove").is_err());
        assert!(parse_command("frobnicate u0").is_err());
        assert!(parse_command("modify u0 flow 1 2 100 ;").is_err());
        assert!(parse_command("fault").is_err());
        assert!(parse_command("fault link").is_err());
        assert!(parse_command("fault switch 3").is_err());
        assert!(parse_command("fault link x").is_err());
        assert!(parse_command("heal now").is_err());
        assert!(parse_command("health check").is_err());
    }

    #[test]
    fn overflows_are_typed_and_checked_first() {
        let long = format!("add u0 flow 1 2 {}", "9".repeat(MAX_LINE_BYTES));
        let err = parse_command(&long).unwrap_err();
        assert_eq!(err.kind(), "overflow");
        assert!(matches!(
            err,
            ProtocolError::Overflow {
                what: "line bytes",
                ..
            }
        ));

        let many_flows = format!("add u0 {}", vec!["flow 1 2 10"; MAX_FLOWS + 1].join(" ; "));
        assert!(
            many_flows.len() <= MAX_LINE_BYTES,
            "cap ordering assumption"
        );
        let err = parse_command(&many_flows).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Overflow {
                what: "flow clauses",
                limit: MAX_FLOWS,
                ..
            }
        ));

        let many_faults = format!(
            "fault link {}",
            (0..=MAX_FAULT_INDICES)
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        );
        let err = parse_command(&many_faults).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Overflow {
                what: "fault indices",
                ..
            }
        ));

        // Syntax errors keep the parse kind.
        assert_eq!(parse_command("frobnicate").unwrap_err().kind(), "parse");
    }

    #[test]
    fn flow_specs_round_trip_through_display() {
        for line in ["add u0 flow 1 2 250 30", "add u0 flow 9 4 77"] {
            let Some(Command::Add { flows, .. }) = parse_command(line).unwrap() else {
                panic!("parsed {line}");
            };
            assert_eq!(format!("add u0 {}", flows[0]), line);
        }
    }
}
