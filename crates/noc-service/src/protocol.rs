//! The `nocd` line protocol: request grammar and parsing.
//!
//! One request per line, in the same keyword-led style as the
//! `ExperimentSpec` grammar (`noc-flow`). Blank lines and `#` comments
//! are ignored. Every response is a status line (`ok …` / `err …`),
//! zero or more detail lines, and a lone `.` terminator — so clients
//! frame responses without length prefixes.
//!
//! ```text
//! add <id> flow <src> <dst> <mbps> [<lat_us>] [; flow ...]
//! modify <id> flow <src> <dst> <mbps> [<lat_us>] [; flow ...]
//! remove <id>
//! flush
//! stats
//! snapshot
//! shutdown
//! ```
//!
//! `src` / `dst` are core indices from the shared core pool, `mbps` the
//! flow bandwidth in MB/s, `lat_us` an optional worst-case latency
//! bound in µs (unconstrained when absent). `add`/`modify`/`remove`
//! are queued and applied together at the next reconfiguration point
//! (batch full, explicit `flush`, or any of `stats` / `snapshot` /
//! `shutdown`) — see [`crate::engine`].

use std::fmt;

/// One requested flow of a use-case (`flow <src> <dst> <mbps>
/// [<lat_us>]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source core index in the shared pool.
    pub src: u32,
    /// Destination core index.
    pub dst: u32,
    /// Bandwidth in MB/s.
    pub mbps: u64,
    /// Worst-case latency bound in µs; `None` = unconstrained.
    pub lat_us: Option<u64>,
}

impl fmt::Display for FlowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow {} {} {}", self.src, self.dst, self.mbps)?;
        if let Some(lat) = self.lat_us {
            write!(f, " {lat}")?;
        }
        Ok(())
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Admit a new use-case under the given id.
    Add {
        /// Client-chosen use-case id (must be new).
        id: String,
        /// The use-case's flows (at least one).
        flows: Vec<FlowSpec>,
    },
    /// Replace an admitted use-case's flows (re-admitted atomically;
    /// the old version stays if the new one is rejected).
    Modify {
        /// Id of an admitted use-case.
        id: String,
        /// The replacement flows (at least one).
        flows: Vec<FlowSpec>,
    },
    /// Evict an admitted use-case and free its exclusive cores.
    Remove {
        /// Id of an admitted use-case.
        id: String,
    },
    /// Apply all queued mutations now (an explicit reconfiguration
    /// point).
    Flush,
    /// Admission-control metrics (flushes first).
    Stats,
    /// The current core → NI placement per use-case (flushes first).
    Snapshot,
    /// Flush, respond, and stop serving.
    Shutdown,
}

fn parse_flows(tokens: &[&str]) -> Result<Vec<FlowSpec>, String> {
    let mut flows = Vec::new();
    for chunk in tokens.split(|&t| t == ";") {
        match chunk {
            ["flow", src, dst, mbps, rest @ ..] => {
                let num = |name: &str, tok: &str| {
                    tok.parse::<u64>()
                        .map_err(|_| format!("bad {name} '{tok}'"))
                };
                let lat_us = match rest {
                    [] => None,
                    [lat] => Some(num("latency", lat)?),
                    more => return Err(format!("trailing tokens {more:?}")),
                };
                flows.push(FlowSpec {
                    src: u32::try_from(num("source core", src)?)
                        .map_err(|_| format!("bad source core '{src}'"))?,
                    dst: u32::try_from(num("destination core", dst)?)
                        .map_err(|_| format!("bad destination core '{dst}'"))?,
                    mbps: num("bandwidth", mbps)?,
                    lat_us,
                });
            }
            [] => return Err("empty flow clause".to_string()),
            other => {
                return Err(format!(
                    "expected 'flow SRC DST MBPS [LAT_US]', got {other:?}"
                ))
            }
        }
    }
    if flows.is_empty() {
        return Err("a use-case needs at least one flow".to_string());
    }
    Ok(flows)
}

/// Parses one request line. `Ok(None)` for blank lines and `#`
/// comments; `Err` describes the first grammar violation.
///
/// # Errors
///
/// A human-readable parse message (the engine prefixes it with
/// `err parse:`).
pub fn parse_command(line: &str) -> Result<Option<Command>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let cmd = match tokens.as_slice() {
        ["add", id, rest @ ..] => Command::Add {
            id: (*id).to_string(),
            flows: parse_flows(rest)?,
        },
        ["modify", id, rest @ ..] => Command::Modify {
            id: (*id).to_string(),
            flows: parse_flows(rest)?,
        },
        ["remove", id] => Command::Remove {
            id: (*id).to_string(),
        },
        ["flush"] => Command::Flush,
        ["stats"] => Command::Stats,
        ["snapshot"] => Command::Snapshot,
        ["shutdown"] => Command::Shutdown,
        [verb, ..] => return Err(format!("unknown command '{verb}'")),
        [] => unreachable!("blank lines returned above"),
    };
    Ok(Some(cmd))
}

/// The response terminator line clients frame on.
pub const TERMINATOR: &str = ".";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        assert_eq!(parse_command("").unwrap(), None);
        assert_eq!(parse_command("# comment").unwrap(), None);
        assert_eq!(parse_command("stats").unwrap(), Some(Command::Stats));
        assert_eq!(parse_command("snapshot").unwrap(), Some(Command::Snapshot));
        assert_eq!(parse_command("flush").unwrap(), Some(Command::Flush));
        assert_eq!(parse_command("shutdown").unwrap(), Some(Command::Shutdown));
        assert_eq!(
            parse_command("remove u3").unwrap(),
            Some(Command::Remove {
                id: "u3".to_string()
            })
        );
        assert_eq!(
            parse_command("add u0 flow 1 2 250 30 ; flow 2 3 100").unwrap(),
            Some(Command::Add {
                id: "u0".to_string(),
                flows: vec![
                    FlowSpec {
                        src: 1,
                        dst: 2,
                        mbps: 250,
                        lat_us: Some(30)
                    },
                    FlowSpec {
                        src: 2,
                        dst: 3,
                        mbps: 100,
                        lat_us: None
                    },
                ],
            })
        );
    }

    #[test]
    fn rejects_grammar_violations() {
        assert!(parse_command("add u0").is_err());
        assert!(parse_command("add u0 flow 1 2").is_err());
        assert!(parse_command("add u0 flow 1 2 x").is_err());
        assert!(parse_command("add u0 flow 1 2 100 5 9").is_err());
        assert!(parse_command("remove").is_err());
        assert!(parse_command("frobnicate u0").is_err());
        assert!(parse_command("modify u0 flow 1 2 100 ;").is_err());
    }

    #[test]
    fn flow_specs_round_trip_through_display() {
        for line in ["add u0 flow 1 2 250 30", "add u0 flow 9 4 77"] {
            let Some(Command::Add { flows, .. }) = parse_command(line).unwrap() else {
                panic!("parsed {line}");
            };
            assert_eq!(format!("add u0 {}", flows[0]), line);
        }
    }
}
