//! Crash-consistency journal: a line-oriented request log the daemon
//! can rebuild its state from.
//!
//! The engine is a pure function of its request stream, so durability
//! needs no snapshot format: journal every request line verbatim
//! *before* handing it to the engine, and recovery is replaying the
//! journal through a fresh engine. A rebuilt engine answers `snapshot`
//! byte-identically to the one that wrote the journal (pinned by the
//! recovery test below), because both saw exactly the same line
//! sequence — including its pending (not yet flushed) tail.
//!
//! `shutdown` lines are never journaled: replaying one on recovery
//! would stop the rebuilt daemon before it served a request. Recovery
//! also skips any `shutdown` found in a hand-edited journal, for the
//! same reason.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use crate::engine::{Engine, EngineConfig};
use crate::protocol::{parse_command, Command};

/// An append-only request journal (one request line per journal line).
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` for appending.
    ///
    /// # Errors
    ///
    /// File-system failures.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal { path, file })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether `line` belongs in the journal: anything except
    /// `shutdown` (see the module docs). Unparsable lines *are*
    /// journaled — the engine's error response is part of its state
    /// (the `errors` counter), so recovery must replay them too.
    pub fn should_record(line: &str) -> bool {
        !matches!(parse_command(line), Ok(Some(Command::Shutdown)))
    }

    /// Appends one request line and flushes it to the OS before
    /// returning, so a request is durable before it is applied.
    ///
    /// # Errors
    ///
    /// File-system failures.
    pub fn record(&mut self, line: &str) -> std::io::Result<()> {
        if !Journal::should_record(line) {
            return Ok(());
        }
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()
    }
}

/// Rebuilds an engine by replaying the journal at `path` (a missing
/// journal file yields a fresh engine). Responses are discarded — only
/// the resulting engine state matters — and `shutdown` lines are
/// skipped.
///
/// # Errors
///
/// A message for an invalid engine configuration or an unreadable
/// journal.
pub fn recover(cfg: EngineConfig, path: impl AsRef<Path>) -> Result<Engine, String> {
    let mut engine = Engine::new(cfg)?;
    let path = path.as_ref();
    if !path.exists() {
        return Ok(engine);
    }
    let file = File::open(path).map_err(|e| format!("open journal {}: {e}", path.display()))?;
    for line in BufReader::new(file).lines() {
        let line = line.map_err(|e| format!("read journal {}: {e}", path.display()))?;
        if !Journal::should_record(&line) {
            continue;
        }
        let _ = engine.submit_line(&line);
    }
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::generate_trace;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nocd-journal-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn recovery_rebuilds_a_byte_identical_snapshot() {
        let path = temp_path("recover");
        let _ = std::fs::remove_file(&path);
        let cfg = EngineConfig::default();
        let mut live = Engine::new(cfg.clone()).unwrap();
        let mut journal = Journal::open(&path).unwrap();
        let mut lines = generate_trace(37, 2006);
        // Interleave faults and a heal so the rebuilt state includes
        // the fault set and parked use-cases, plus a shutdown that the
        // journal must *not* record.
        lines.insert(20, "fault link 5 6".to_string());
        lines.insert(28, "fault ni 2".to_string());
        lines.insert(33, "heal".to_string());
        lines.push("shutdown".to_string());
        for line in &lines {
            journal.record(line).unwrap();
            if line != "shutdown" {
                let _ = live.submit_line(line);
            }
        }

        let mut rebuilt = recover(cfg, &path).unwrap();
        assert!(!rebuilt.is_shutdown(), "shutdown must not be journaled");
        assert_eq!(
            live.submit_line("snapshot"),
            rebuilt.submit_line("snapshot")
        );
        assert_eq!(live.submit_line("stats"), rebuilt.submit_line("stats"));
        assert_eq!(live.submit_line("health"), rebuilt.submit_line("health"));
        assert_eq!(live.stats(), rebuilt.stats());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_recovers_to_a_fresh_engine() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        let rebuilt = recover(EngineConfig::default(), &path).unwrap();
        assert_eq!(rebuilt.use_case_count(), 0);
        assert_eq!(rebuilt.stats().requests, 0);
    }

    #[test]
    fn journal_appends_across_reopens() {
        let path = temp_path("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open(&path).unwrap();
            j.record("add u0 flow 0 1 100").unwrap();
        }
        {
            let mut j = Journal::open(&path).unwrap();
            j.record("add u1 flow 2 3 100").unwrap();
            j.record("shutdown").unwrap(); // filtered
            assert_eq!(j.path(), path.as_path());
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "add u0 flow 0 1 100\nadd u1 flow 2 3 100\n");
        let mut rebuilt = recover(EngineConfig::default(), &path).unwrap();
        let _ = rebuilt.submit_line("flush");
        assert_eq!(rebuilt.use_case_count(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
