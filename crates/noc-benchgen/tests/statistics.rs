//! Statistical and structural tests of the benchmark generators, run as
//! integration tests because they inspect whole generated suites.

use noc_benchgen::{BottleneckConfig, SocDesign, SpreadConfig, TrafficMix};
use noc_topology::units::Bandwidth;
use noc_usecase::spec::{CoreId, SocSpec};

/// Sum of flow bandwidths whose endpoint includes `core`.
fn core_load(soc: &SocSpec, core: CoreId) -> Bandwidth {
    soc.use_cases()
        .iter()
        .flat_map(|u| u.flows())
        .filter(|f| f.src() == core || f.dst() == core)
        .map(|f| f.bandwidth())
        .sum()
}

#[test]
fn sp_and_bot_differ_structurally() {
    let sp = SpreadConfig::paper(8).generate(3);
    let bot = BottleneckConfig::paper(8).generate(3);
    // Gini-style concentration: the busiest core's share of endpoint load.
    let share = |soc: &SocSpec| {
        let total: u64 = soc
            .cores()
            .iter()
            .map(|&c| core_load(soc, c).as_bytes_per_sec())
            .sum();
        let max = soc
            .cores()
            .iter()
            .map(|&c| core_load(soc, c).as_bytes_per_sec())
            .max()
            .unwrap_or(0);
        max as f64 / total.max(1) as f64
    };
    assert!(
        share(&bot) > 1.5 * share(&sp),
        "bottleneck suite should concentrate load: bot {:.3} vs sp {:.3}",
        share(&bot),
        share(&sp)
    );
}

#[test]
fn latency_critical_flows_exist_and_are_small() {
    // "the control streams have low bandwidth needs, but are latency
    // critical" — every generated suite must contain such flows, and
    // their bandwidth must sit in the lowest cluster.
    for soc in [
        SpreadConfig::paper(4).generate(1),
        BottleneckConfig::paper(4).generate(1),
    ] {
        let constrained: Vec<_> = soc
            .use_cases()
            .iter()
            .flat_map(|u| u.flows())
            .filter(|f| !f.latency().is_unconstrained())
            .collect();
        assert!(
            !constrained.is_empty(),
            "no latency-critical flows in {}",
            soc.name()
        );
        for f in &constrained {
            assert!(
                f.bandwidth() <= Bandwidth::from_mbps(5),
                "latency-critical flow with {} is not a control stream",
                f.bandwidth()
            );
        }
    }
}

#[test]
fn bandwidths_cluster_around_mix_centers() {
    let soc = SpreadConfig::paper(6).generate(9);
    let mix = TrafficMix::video_soc();
    let centers: Vec<f64> = mix
        .classes()
        .iter()
        .map(|c| c.nominal.as_mbps_f64())
        .collect();
    let max_dev = mix
        .classes()
        .iter()
        .map(|c| c.deviation)
        .fold(0.0f64, f64::max);
    for uc in soc.use_cases() {
        for f in uc.flows() {
            let bw = f.bandwidth().as_mbps_f64();
            let near_some_center = centers.iter().any(|&c| (bw - c).abs() <= c * max_dev + 1.0);
            assert!(
                near_some_center,
                "flow bandwidth {bw} MB/s belongs to no cluster"
            );
        }
    }
}

#[test]
fn use_case_counts_scale_suite_size_not_core_count() {
    for n in [2usize, 10, 30] {
        let soc = SpreadConfig::paper(n).generate(5);
        assert_eq!(soc.use_case_count(), n);
        assert!(soc.core_count() <= 20);
    }
}

#[test]
fn designs_are_distinct_across_seeds_and_labels() {
    let all: Vec<SocSpec> = SocDesign::ALL.iter().map(|d| d.generate()).collect();
    for i in 0..all.len() {
        for j in (i + 1)..all.len() {
            assert_ne!(all[i], all[j], "designs {i} and {j} identical");
        }
    }
}

#[test]
fn pooled_suites_reuse_pairs_across_use_cases() {
    // With a pool, the union of pairs is bounded by the pool size even as
    // use-cases multiply — the property the WC baseline's feasibility
    // rests on.
    let mut cfg = SpreadConfig::paper(20);
    cfg.pair_pool = Some(120);
    let soc = cfg.generate(4);
    let union: std::collections::BTreeSet<_> = soc
        .use_cases()
        .iter()
        .flat_map(|u| u.flows())
        .map(|f| f.endpoints())
        .collect();
    assert!(union.len() <= 120, "union {} exceeds the pool", union.len());

    // Without a pool, 20 use-cases x 60-100 flows cover far more pairs.
    let free = SpreadConfig::paper(20).generate(4);
    let free_union: std::collections::BTreeSet<_> = free
        .use_cases()
        .iter()
        .flat_map(|u| u.flows())
        .map(|f| f.endpoints())
        .collect();
    assert!(
        free_union.len() > 250,
        "pool-free suite should spread over most pairs, got {}",
        free_union.len()
    );
}

#[test]
fn hub_direction_mix_is_two_way() {
    // Memory traffic flows both into and out of the hubs.
    let cfg = BottleneckConfig::paper(6);
    let soc = cfg.generate(8);
    for hub in cfg.hub_cores() {
        let inbound = soc
            .use_cases()
            .iter()
            .flat_map(|u| u.flows())
            .filter(|f| f.dst() == hub)
            .count();
        let outbound = soc
            .use_cases()
            .iter()
            .flat_map(|u| u.flows())
            .filter(|f| f.src() == hub)
            .count();
        assert!(inbound > 0 && outbound > 0, "hub {hub} is one-directional");
    }
}
