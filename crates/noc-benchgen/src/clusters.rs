//! Clustered traffic classes.
//!
//! "Most of the video processing architectures have traffic flows that
//! have bandwidth/latency values that fall in to few (around 3-4)
//! clusters. As an example, the HD video streams have traffic flows with
//! bandwidth requirements of few hundred MB/s, the SD video streams have
//! few MB/s bandwidth needs, the audio streams have low bandwidth needs
//! and the control streams have low bandwidth needs, but are latency
//! critical." — Section 6.1.

use noc_topology::units::{Bandwidth, Latency};
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One cluster of traffic constraints: a nominal bandwidth with a small
/// relative deviation, a latency bound, and a selection weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficClass {
    /// Human-readable cluster name.
    pub name: String,
    /// Cluster-center bandwidth.
    pub nominal: Bandwidth,
    /// Relative deviation within the cluster (e.g. `0.2` for ±20 %).
    pub deviation: f64,
    /// Latency bound applied to flows of this class.
    pub latency: Latency,
    /// Relative frequency of this class among generated flows.
    pub weight: f64,
}

impl TrafficClass {
    /// Creates a traffic class.
    ///
    /// # Panics
    ///
    /// Panics if `deviation` is not in `[0, 1)` or `weight` is not
    /// positive and finite.
    pub fn new(
        name: impl Into<String>,
        nominal: Bandwidth,
        deviation: f64,
        latency: Latency,
        weight: f64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&deviation),
            "deviation must be in [0, 1)"
        );
        assert!(
            weight > 0.0 && weight.is_finite(),
            "weight must be positive and finite"
        );
        TrafficClass {
            name: name.into(),
            nominal,
            deviation,
            latency,
            weight,
        }
    }

    /// Samples a bandwidth from this cluster: uniform within
    /// `nominal × (1 ± deviation)`, never below 1 MB/s.
    pub fn sample_bandwidth<R: Rng + ?Sized>(&self, rng: &mut R) -> Bandwidth {
        let nominal = self.nominal.as_mbps_f64();
        let lo = nominal * (1.0 - self.deviation);
        let hi = nominal * (1.0 + self.deviation);
        let v = if hi > lo {
            rng.gen_range(lo..=hi)
        } else {
            nominal
        };
        Bandwidth::from_mbps_f64(v.max(1.0))
    }
}

/// A weighted set of traffic classes to draw flows from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMix {
    classes: Vec<TrafficClass>,
}

impl TrafficMix {
    /// Creates a mix from classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty.
    pub fn new(classes: Vec<TrafficClass>) -> Self {
        assert!(
            !classes.is_empty(),
            "a traffic mix needs at least one class"
        );
        TrafficMix { classes }
    }

    /// The 4-cluster video-processing mix of Section 6.1: "the HD video
    /// streams have traffic flows with bandwidth requirements of few
    /// hundred MB/s, the SD video streams have few MB/s bandwidth needs,
    /// the audio streams have low bandwidth needs and the control streams
    /// have low bandwidth needs, but are latency critical".
    pub fn video_soc() -> Self {
        TrafficMix::new(vec![
            TrafficClass::new(
                "hd-video",
                Bandwidth::from_mbps(200),
                0.25,
                Latency::UNCONSTRAINED,
                0.4,
            ),
            TrafficClass::new(
                "sd-video",
                Bandwidth::from_mbps(12),
                0.40,
                Latency::UNCONSTRAINED,
                4.0,
            ),
            TrafficClass::new(
                "audio",
                Bandwidth::from_mbps(3),
                0.50,
                Latency::UNCONSTRAINED,
                2.5,
            ),
            TrafficClass::new(
                "control",
                Bandwidth::from_mbps(2),
                0.50,
                Latency::from_us(10),
                3.0,
            ),
        ])
    }

    /// The TV-processor streaming mix: the same four clusters, but video
    /// streams are a much larger share of the flows — a TV pipeline is
    /// mostly picture data moving between processing stages and local
    /// memories (used by the D3/D4 designs).
    pub fn tv_streaming() -> Self {
        TrafficMix::new(vec![
            TrafficClass::new(
                "hd-video",
                Bandwidth::from_mbps(200),
                0.25,
                Latency::UNCONSTRAINED,
                0.8,
            ),
            TrafficClass::new(
                "sd-video",
                Bandwidth::from_mbps(30),
                0.40,
                Latency::UNCONSTRAINED,
                4.0,
            ),
            TrafficClass::new(
                "audio",
                Bandwidth::from_mbps(3),
                0.50,
                Latency::UNCONSTRAINED,
                2.0,
            ),
            TrafficClass::new(
                "control",
                Bandwidth::from_mbps(2),
                0.50,
                Latency::from_us(10),
                2.0,
            ),
        ])
    }

    /// A lighter mix for hub-bound flows: the hub link is a single NI
    /// link, so individual hub flows must stay small for designs with many
    /// use-cases to remain routable (matches the shared-memory traffic of
    /// the set-top designs, which is many small transactions).
    pub fn memory_hub() -> Self {
        TrafficMix::new(vec![
            TrafficClass::new(
                "dma-burst",
                Bandwidth::from_mbps(64),
                0.30,
                Latency::UNCONSTRAINED,
                2.0,
            ),
            TrafficClass::new(
                "mem-read",
                Bandwidth::from_mbps(24),
                0.40,
                Latency::UNCONSTRAINED,
                4.0,
            ),
            TrafficClass::new(
                "mem-ctrl",
                Bandwidth::from_mbps(3),
                0.50,
                Latency::from_us(10),
                3.0,
            ),
        ])
    }

    /// The classes of this mix.
    pub fn classes(&self) -> &[TrafficClass] {
        &self.classes
    }

    /// Samples a class according to the weights.
    pub fn sample_class<R: Rng + ?Sized>(&self, rng: &mut R) -> &TrafficClass {
        let dist = WeightedIndex::new(self.classes.iter().map(|c| c.weight))
            .expect("weights validated positive");
        &self.classes[dist.sample(rng)]
    }

    /// Samples a `(bandwidth, latency)` pair: a class, then a bandwidth
    /// within its cluster.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (Bandwidth, Latency) {
        let class = self.sample_class(rng);
        (class.sample_bandwidth(rng), class.latency)
    }

    /// The largest bandwidth any class can produce (for capacity checks).
    pub fn max_bandwidth(&self) -> Bandwidth {
        self.classes
            .iter()
            .map(|c| Bandwidth::from_mbps_f64(c.nominal.as_mbps_f64() * (1.0 + c.deviation)))
            .max()
            .unwrap_or(Bandwidth::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_bandwidth_stays_in_cluster() {
        let class = TrafficClass::new(
            "hd",
            Bandwidth::from_mbps(200),
            0.2,
            Latency::UNCONSTRAINED,
            1.0,
        );
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..500 {
            let bw = class.sample_bandwidth(&mut rng).as_mbps_f64();
            assert!((160.0..=240.0).contains(&bw), "bw {bw} outside cluster");
        }
    }

    #[test]
    fn zero_deviation_is_exact() {
        let class = TrafficClass::new(
            "fix",
            Bandwidth::from_mbps(30),
            0.0,
            Latency::UNCONSTRAINED,
            1.0,
        );
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(class.sample_bandwidth(&mut rng), Bandwidth::from_mbps(30));
    }

    #[test]
    fn mix_samples_all_classes_eventually() {
        let mix = TrafficMix::video_soc();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..2000 {
            seen.insert(mix.sample_class(&mut rng).name.clone());
        }
        assert_eq!(seen.len(), mix.classes().len());
    }

    #[test]
    fn control_class_is_latency_critical() {
        let mix = TrafficMix::video_soc();
        let control = mix.classes().iter().find(|c| c.name == "control").unwrap();
        assert!(!control.latency.is_unconstrained());
        let hd = mix.classes().iter().find(|c| c.name == "hd-video").unwrap();
        assert!(hd.latency.is_unconstrained());
        assert!(hd.nominal > control.nominal);
    }

    #[test]
    fn max_bandwidth_covers_samples() {
        let mix = TrafficMix::video_soc();
        let cap = mix.max_bandwidth();
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let (bw, _) = mix.sample(&mut rng);
            assert!(bw <= cap);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mix = TrafficMix::video_soc();
        let seq_a: Vec<_> = {
            let mut rng = SmallRng::seed_from_u64(7);
            (0..50).map(|_| mix.sample(&mut rng)).collect()
        };
        let seq_b: Vec<_> = {
            let mut rng = SmallRng::seed_from_u64(7);
            (0..50).map(|_| mix.sample(&mut rng)).collect()
        };
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    #[should_panic(expected = "deviation")]
    fn invalid_deviation_rejected() {
        let _ = TrafficClass::new(
            "bad",
            Bandwidth::from_mbps(1),
            1.5,
            Latency::UNCONSTRAINED,
            1.0,
        );
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_mix_rejected() {
        let _ = TrafficMix::new(vec![]);
    }
}
