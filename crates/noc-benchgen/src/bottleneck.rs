//! Bottleneck-communication (Bot) synthetic benchmarks.
//!
//! "Bottleneck communication benchmarks (Bot), where there are one or more
//! bottleneck vertices to which most of the communication takes place.
//! These benchmarks characterize designs using shared memory/external
//! devices such as the set-top box example." — Section 6.1.

use noc_usecase::spec::{CoreId, SocSpec, UseCaseBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::clusters::TrafficMix;
use crate::pairs::sample_pairs;

/// Configuration of a Bot benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BottleneckConfig {
    /// Number of SoC cores.
    pub cores: u32,
    /// Number of use-cases to generate.
    pub use_cases: usize,
    /// Inclusive range of flow counts per use-case.
    pub flows_per_use_case: (usize, usize),
    /// How many of the first cores act as bottleneck hubs.
    pub hubs: u32,
    /// Fraction of flows that touch a hub.
    pub hub_fraction: f64,
    /// Traffic clusters for hub-bound flows (kept light: a hub's NI link
    /// carries them all).
    pub hub_mix: TrafficMix,
    /// Traffic clusters for the remaining spread flows.
    pub side_mix: TrafficMix,
    /// When `Some(n)`, all use-cases draw their pairs from one master
    /// pool of `n` pairs (stable physical connections, as in the D1/D2
    /// SoC designs); `None` samples pairs freely per use-case.
    pub pair_pool: Option<usize>,
    /// Fraction of pool pairs whose traffic class is re-drawn per
    /// use-case (versatile connections). Only meaningful with a pool.
    pub versatile_fraction: f64,
}

impl BottleneckConfig {
    /// The paper's synthetic setup: 20 cores, 60–100 flows per use-case,
    /// two shared-memory hubs attracting ~70 % of flows ("one or more
    /// bottleneck vertices to which most of the communication takes
    /// place"). Two hubs are needed because one hub of a 20-core SoC can
    /// touch at most 38 distinct pairs — fewer than a use-case's flows.
    pub fn paper(use_cases: usize) -> Self {
        BottleneckConfig {
            cores: 20,
            use_cases,
            flows_per_use_case: (60, 100),
            hubs: 2,
            hub_fraction: 0.7,
            hub_mix: TrafficMix::memory_hub(),
            side_mix: TrafficMix::video_soc(),
            pair_pool: None,
            versatile_fraction: 0.0,
        }
    }

    /// Ids of the hub cores.
    pub fn hub_cores(&self) -> Vec<CoreId> {
        (0..self.hubs).map(CoreId::new).collect()
    }

    /// Generates the benchmark deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (see [`SpreadConfig::generate`]
    /// for the analogous conditions, plus `hubs` must be in
    /// `1..cores` and `hub_fraction` in `[0, 1]`).
    ///
    /// [`SpreadConfig::generate`]: crate::SpreadConfig::generate
    pub fn generate(&self, seed: u64) -> SocSpec {
        assert!(
            self.cores >= 2,
            "bottleneck benchmark needs at least 2 cores"
        );
        assert!(
            self.use_cases > 0,
            "bottleneck benchmark needs at least one use-case"
        );
        assert!(
            self.hubs >= 1 && self.hubs < self.cores,
            "hub count must be in 1..cores"
        );
        assert!(
            (0.0..=1.0).contains(&self.hub_fraction),
            "hub fraction must be in [0, 1]"
        );
        let (lo, hi) = self.flows_per_use_case;
        assert!(lo > 0 && lo <= hi, "invalid flow range {lo}..={hi}");

        let hubs = self.hub_cores();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xB07);
        let pool = self.pair_pool.map(|n| {
            crate::pairs::PairPool::master(
                &mut rng,
                self.cores,
                n,
                &hubs,
                self.hub_fraction,
                &self.hub_mix,
                &self.side_mix,
                self.versatile_fraction,
            )
        });
        let mut soc = SocSpec::new(format!("bot-{}uc", self.use_cases));
        for u in 0..self.use_cases {
            let flow_count = rng.gen_range(lo..=hi);
            let mut builder = UseCaseBuilder::new(format!("bot-uc{u}"));
            match &pool {
                Some(p) => {
                    for ((src, dst), class) in p.sample(&mut rng, flow_count) {
                        let (bw, lat) = match class {
                            Some(c) => (c.sample_bandwidth(&mut rng), c.latency),
                            None => {
                                let touches_hub = hubs.contains(&src) || hubs.contains(&dst);
                                if touches_hub {
                                    self.hub_mix.sample(&mut rng)
                                } else {
                                    self.side_mix.sample(&mut rng)
                                }
                            }
                        };
                        builder
                            .add_flow(
                                noc_usecase::spec::Flow::new(src, dst, bw, lat)
                                    .expect("sampled flows are valid"),
                            )
                            .expect("pairs are distinct");
                    }
                }
                None => {
                    for (src, dst) in
                        sample_pairs(&mut rng, self.cores, flow_count, &hubs, self.hub_fraction)
                    {
                        let touches_hub = hubs.contains(&src) || hubs.contains(&dst);
                        let (bw, lat) = if touches_hub {
                            self.hub_mix.sample(&mut rng)
                        } else {
                            self.side_mix.sample(&mut rng)
                        };
                        builder
                            .add_flow(
                                noc_usecase::spec::Flow::new(src, dst, bw, lat)
                                    .expect("sampled flows are valid"),
                            )
                            .expect("pairs are distinct");
                    }
                }
            }
            soc.add_use_case(builder.build());
        }
        soc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::units::Bandwidth;

    #[test]
    fn paper_config_shape() {
        let soc = BottleneckConfig::paper(5).generate(1);
        assert_eq!(soc.use_case_count(), 5);
        for uc in soc.use_cases() {
            assert!((60..=100).contains(&uc.flow_count()));
        }
    }

    #[test]
    fn hubs_attract_most_traffic() {
        let cfg = BottleneckConfig::paper(4);
        let soc = cfg.generate(2);
        let hubs = cfg.hub_cores();
        for uc in soc.use_cases() {
            let hub_flows = uc
                .flows()
                .iter()
                .filter(|f| hubs.contains(&f.src()) || hubs.contains(&f.dst()))
                .count();
            let frac = hub_flows as f64 / uc.flow_count() as f64;
            assert!(frac > 0.5, "hubs should attract most flows, got {frac:.2}");
        }
    }

    #[test]
    fn hub_demand_fits_one_ni_link_per_use_case() {
        // A hub core's NI link at 500 MHz / 32 bits carries 2000 MB/s; the
        // generator must keep per-use-case hub demand well under that or
        // no mapping can ever exist.
        let cfg = BottleneckConfig::paper(10);
        let soc = cfg.generate(3);
        let hub = CoreId::new(0);
        for uc in soc.use_cases() {
            let incoming: Bandwidth = uc
                .flows()
                .iter()
                .filter(|f| f.dst() == hub)
                .map(|f| f.bandwidth())
                .sum();
            let outgoing: Bandwidth = uc
                .flows()
                .iter()
                .filter(|f| f.src() == hub)
                .map(|f| f.bandwidth())
                .sum();
            assert!(
                incoming < Bandwidth::from_mbps(1800),
                "hub ingress {incoming} too close to NI capacity"
            );
            assert!(
                outgoing < Bandwidth::from_mbps(1800),
                "hub egress {outgoing} too close to NI capacity"
            );
        }
    }

    #[test]
    fn deterministic() {
        let a = BottleneckConfig::paper(3).generate(11);
        let b = BottleneckConfig::paper(3).generate(11);
        assert_eq!(a, b);
    }

    #[test]
    fn multiple_hubs_supported() {
        let mut cfg = BottleneckConfig::paper(2);
        cfg.hubs = 2;
        let soc = cfg.generate(5);
        let h0 = CoreId::new(0);
        let h1 = CoreId::new(1);
        let uc = &soc.use_cases()[0];
        let touch0 = uc.flows().iter().any(|f| f.src() == h0 || f.dst() == h0);
        let touch1 = uc.flows().iter().any(|f| f.src() == h1 || f.dst() == h1);
        assert!(touch0 && touch1);
    }

    #[test]
    #[should_panic(expected = "hub count")]
    fn zero_hubs_rejected() {
        let mut cfg = BottleneckConfig::paper(2);
        cfg.hubs = 0;
        let _ = cfg.generate(1);
    }
}
