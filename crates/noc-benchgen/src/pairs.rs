//! Shared helpers for sampling communicating core pairs.

use noc_usecase::spec::CoreId;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::clusters::{TrafficClass, TrafficMix};

/// A fixed pool of candidate pairs shared by all use-cases of a design.
///
/// Real SoCs wire a stable set of physical connections; use-cases select
/// subsets of them (with different bandwidths). Sampling each use-case's
/// flows from a common pool keeps the worst-case *union* of pairs bounded
/// — which is why the WC baseline stays feasible on the D1–D4 designs
/// while still being over-provisioned. Purely synthetic Sp/Bot benchmarks
/// skip the pool to maximize cross-use-case variation instead.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PairPool {
    pairs: Vec<(CoreId, CoreId)>,
    /// The traffic class of each pair, where fixed. A physical
    /// connection's class (HD stream, control port, …) is usually a
    /// property of the wiring: use-cases vary the *rate* within the
    /// class, not the kind of traffic. This keeps the worst-case union
    /// realistic — without it, every pair eventually draws the heaviest
    /// class in some use-case and the WC spec becomes uniformly maximal,
    /// which no real SoC is. `None` marks a *versatile* connection whose
    /// class is re-drawn per use-case (a DSP port carrying HD video in
    /// one mode and audio in another); these are what makes the WC union
    /// degrade as use-cases accumulate.
    classes: Vec<Option<TrafficClass>>,
}

impl PairPool {
    /// Draws a master pool of `size` distinct pairs.
    ///
    /// Hub-free pools are degree-balanced: no core's in- or out-degree
    /// exceeds the average by more than one, mirroring how streaming
    /// pipelines spread connections evenly. (A lopsided pool would make
    /// the worst core's NI link infeasible for the WC baseline at *any*
    /// topology size, which is not how the paper's designs behave.)
    pub(crate) fn master<R: Rng + ?Sized>(
        rng: &mut R,
        cores: u32,
        size: usize,
        hubs: &[CoreId],
        hub_fraction: f64,
        hub_mix: &TrafficMix,
        side_mix: &TrafficMix,
        versatile_fraction: f64,
    ) -> Self {
        let pairs = if hubs.is_empty() {
            balanced_pairs(rng, cores, size)
        } else {
            sample_pairs(rng, cores, size, hubs, hub_fraction)
        };
        // Assign every pair a fixed class from the appropriate mix, drawn
        // from a shuffled weight-proportional deck so class shares match
        // the mix exactly; a `versatile_fraction` of pairs stay
        // class-free (re-drawn per use-case).
        let hub_pair = |p: &(CoreId, CoreId)| hubs.contains(&p.0) || hubs.contains(&p.1);
        let hub_count = pairs.iter().filter(|p| hub_pair(p)).count();
        let mut hub_deck = class_deck(rng, hub_mix, hub_count);
        let mut side_deck = class_deck(rng, side_mix, pairs.len() - hub_count);
        let classes = pairs
            .iter()
            .map(|p| {
                let class = if hub_pair(p) {
                    hub_deck.pop().expect("deck sized to hub pairs")
                } else {
                    side_deck.pop().expect("deck sized to side pairs")
                };
                if rng.gen_bool(versatile_fraction.clamp(0.0, 1.0)) {
                    None
                } else {
                    Some(class)
                }
            })
            .collect();
        PairPool { pairs, classes }
    }

    /// Samples `count` distinct pairs from the pool (clamped to the pool
    /// size) with each pair's class: its fixed class, or `None` for
    /// versatile pairs (caller draws from its mix per use-case).
    pub(crate) fn sample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
    ) -> Vec<((CoreId, CoreId), Option<TrafficClass>)> {
        let mut indexed: Vec<usize> = (0..self.pairs.len()).collect();
        indexed.shuffle(rng);
        indexed.truncate(count.min(self.pairs.len()));
        indexed
            .into_iter()
            .map(|i| (self.pairs[i], self.classes[i].clone()))
            .collect()
    }
}

/// A shuffled deck of `size` classes in proportion to the mix weights
/// (largest-remainder apportionment).
fn class_deck<R: Rng + ?Sized>(rng: &mut R, mix: &TrafficMix, size: usize) -> Vec<TrafficClass> {
    let total: f64 = mix.classes().iter().map(|c| c.weight).sum();
    let mut deck: Vec<TrafficClass> = Vec::with_capacity(size);
    let mut remainders: Vec<(f64, usize)> = Vec::new();
    for (i, class) in mix.classes().iter().enumerate() {
        let exact = size as f64 * class.weight / total;
        let whole = exact.floor() as usize;
        deck.extend(std::iter::repeat_with(|| class.clone()).take(whole));
        remainders.push((exact - whole as f64, i));
    }
    remainders.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut ri = 0;
    while deck.len() < size {
        let class = &mix.classes()[remainders[ri % remainders.len()].1];
        deck.push(class.clone());
        ri += 1;
    }
    deck.shuffle(rng);
    deck
}

/// Degree-balanced distinct pairs: no core's in- or out-degree exceeds
/// the average by more than one.
fn balanced_pairs<R: Rng + ?Sized>(rng: &mut R, cores: u32, size: usize) -> Vec<(CoreId, CoreId)> {
    let max_pairs = cores as usize * (cores as usize - 1);
    let size = size.min(max_pairs);
    let cap = size.div_ceil(cores as usize) + 1;
    let mut all: Vec<(u32, u32)> = (0..cores)
        .flat_map(|a| (0..cores).filter(move |&b| b != a).map(move |b| (a, b)))
        .collect();
    all.shuffle(rng);
    let mut out_deg = vec![0usize; cores as usize];
    let mut in_deg = vec![0usize; cores as usize];
    let mut taken = vec![false; all.len()];
    let mut pairs = Vec::with_capacity(size);
    // Two passes: strict caps first, then top up if the caps were too
    // tight to reach `size`.
    for pass in 0..2 {
        for (i, &(a, b)) in all.iter().enumerate() {
            if pairs.len() >= size {
                break;
            }
            if taken[i] {
                continue;
            }
            let within = out_deg[a as usize] < cap && in_deg[b as usize] < cap;
            if pass == 1 || within {
                taken[i] = true;
                out_deg[a as usize] += 1;
                in_deg[b as usize] += 1;
                pairs.push((CoreId::new(a), CoreId::new(b)));
            }
        }
    }
    pairs
}

/// Samples `count` distinct directed pairs over `cores` cores, optionally
/// biased so that roughly `hub_fraction` of pairs touch one of the `hubs`.
///
/// Pairs are distinct within one call (one flow per pair per use-case).
/// `count` is clamped to the number of available distinct pairs.
pub(crate) fn sample_pairs<R: Rng + ?Sized>(
    rng: &mut R,
    cores: u32,
    count: usize,
    hubs: &[CoreId],
    hub_fraction: f64,
) -> Vec<(CoreId, CoreId)> {
    assert!(cores >= 2, "need at least two cores to form pairs");
    let max_pairs = cores as usize * (cores as usize - 1);
    let count = count.min(max_pairs);
    let mut chosen = std::collections::BTreeSet::new();
    let hub_target = (count as f64 * hub_fraction).round() as usize;

    // Hub-touching pairs first (direction alternates to exercise both
    // request and response traffic).
    let mut non_hub: Vec<u32> = (0..cores)
        .filter(|c| !hubs.iter().any(|h| h.raw() == *c))
        .collect();
    non_hub.shuffle(rng);
    if !hubs.is_empty() {
        let mut i = 0;
        while chosen.len() < hub_target && i < 4 * hub_target {
            i += 1;
            let hub = hubs[rng.gen_range(0..hubs.len())];
            let other = match non_hub.choose(rng) {
                Some(&o) => CoreId::new(o),
                None => break,
            };
            let pair = if rng.gen_bool(0.5) {
                (other, hub)
            } else {
                (hub, other)
            };
            chosen.insert(pair);
        }
    }

    // Fill the rest with uniform random distinct pairs.
    let mut guard = 0;
    while chosen.len() < count && guard < 100 * max_pairs {
        guard += 1;
        let a = rng.gen_range(0..cores);
        let b = rng.gen_range(0..cores);
        if a != b {
            chosen.insert((CoreId::new(a), CoreId::new(b)));
        }
    }
    let mut pairs: Vec<_> = chosen.into_iter().collect();
    pairs.shuffle(rng);
    pairs.truncate(count);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pairs_are_distinct_and_not_self() {
        let mut rng = SmallRng::seed_from_u64(1);
        let pairs = sample_pairs(&mut rng, 20, 80, &[], 0.0);
        assert_eq!(pairs.len(), 80);
        let set: std::collections::BTreeSet<_> = pairs.iter().collect();
        assert_eq!(set.len(), 80);
        assert!(pairs.iter().all(|(a, b)| a != b));
    }

    #[test]
    fn hub_fraction_biases_pairs() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hub = CoreId::new(0);
        let pairs = sample_pairs(&mut rng, 20, 36, &[hub], 0.7);
        let hub_pairs = pairs.iter().filter(|(a, b)| *a == hub || *b == hub).count();
        assert!(
            hub_pairs >= 18,
            "expected most pairs to touch the hub, got {hub_pairs}/36"
        );
    }

    #[test]
    fn count_clamped_to_available_pairs() {
        let mut rng = SmallRng::seed_from_u64(3);
        let pairs = sample_pairs(&mut rng, 3, 100, &[], 0.0);
        assert_eq!(pairs.len(), 6); // 3 * 2 directed pairs
    }

    #[test]
    fn deterministic_for_seed() {
        let a = sample_pairs(&mut SmallRng::seed_from_u64(9), 20, 50, &[], 0.0);
        let b = sample_pairs(&mut SmallRng::seed_from_u64(9), 20, 50, &[], 0.0);
        assert_eq!(a, b);
    }

    mod pool {
        use super::*;
        use crate::clusters::TrafficMix;

        fn mk_pool(size: usize, versatile: f64) -> PairPool {
            let mut rng = SmallRng::seed_from_u64(5);
            PairPool::master(
                &mut rng,
                20,
                size,
                &[],
                0.0,
                &TrafficMix::video_soc(),
                &TrafficMix::video_soc(),
                versatile,
            )
        }

        #[test]
        fn balanced_pool_caps_degrees() {
            let pool = mk_pool(200, 0.0);
            assert_eq!(pool.pairs.len(), 200);
            let mut out = vec![0usize; 20];
            let mut inn = vec![0usize; 20];
            for &(a, b) in &pool.pairs {
                out[a.index()] += 1;
                inn[b.index()] += 1;
            }
            let cap = 200usize.div_ceil(20) + 1;
            assert!(out.iter().all(|&d| d <= cap), "out degrees {out:?}");
            assert!(inn.iter().all(|&d| d <= cap), "in degrees {inn:?}");
        }

        #[test]
        fn class_shares_match_mix_weights() {
            let pool = mk_pool(300, 0.0);
            let mix = TrafficMix::video_soc();
            let total_w: f64 = mix.classes().iter().map(|c| c.weight).sum();
            for class in mix.classes() {
                let count = pool
                    .classes
                    .iter()
                    .filter(|c| c.as_ref().is_some_and(|c| c.name == class.name))
                    .count();
                let expected = 300.0 * class.weight / total_w;
                assert!(
                    (count as f64 - expected).abs() <= 1.0,
                    "{}: {count} vs expected {expected:.1}",
                    class.name
                );
            }
        }

        #[test]
        fn versatile_fraction_zero_and_one() {
            assert!(mk_pool(100, 0.0).classes.iter().all(Option::is_some));
            assert!(mk_pool(100, 1.0).classes.iter().all(Option::is_none));
            let half = mk_pool(400, 0.5);
            let versatile = half.classes.iter().filter(|c| c.is_none()).count();
            assert!((120..=280).contains(&versatile), "got {versatile} of 400");
        }

        #[test]
        fn sample_returns_distinct_pool_pairs() {
            let pool = mk_pool(150, 0.3);
            let mut rng = SmallRng::seed_from_u64(6);
            let sampled = pool.sample(&mut rng, 80);
            assert_eq!(sampled.len(), 80);
            let distinct: std::collections::BTreeSet<_> = sampled.iter().map(|(p, _)| *p).collect();
            assert_eq!(distinct.len(), 80);
            for (p, _) in &sampled {
                assert!(pool.pairs.contains(p));
            }
            // Oversampling clamps to the pool.
            assert_eq!(pool.sample(&mut rng, 10_000).len(), 150);
        }

        #[test]
        fn hub_pools_use_hub_mix_classes() {
            let mut rng = SmallRng::seed_from_u64(7);
            let hub = CoreId::new(0);
            let pool = PairPool::master(
                &mut rng,
                20,
                60,
                &[hub],
                0.6,
                &TrafficMix::memory_hub(),
                &TrafficMix::video_soc(),
                0.0,
            );
            let hub_names: Vec<String> = TrafficMix::memory_hub()
                .classes()
                .iter()
                .map(|c| c.name.clone())
                .collect();
            for (pair, class) in pool.pairs.iter().zip(&pool.classes) {
                let class = class.as_ref().expect("versatile 0");
                let is_hub_pair = pair.0 == hub || pair.1 == hub;
                let from_hub_mix = hub_names.contains(&class.name);
                assert_eq!(
                    is_hub_pair, from_hub_mix,
                    "pair {pair:?} class {}",
                    class.name
                );
            }
        }
    }
}
