//! Multi-use-case benchmark generators.
//!
//! The paper evaluates on four SoC designs and two families of synthetic
//! benchmarks (Section 6.1):
//!
//! * **Sp** (*spread*) — every core talks to a few other cores; traffic is
//!   spread evenly, like the TV-processor designs with many small local
//!   memories ([`SpreadConfig`]),
//! * **Bot** (*bottleneck*) — one or more hub vertices (external memory,
//!   shared peripherals) attract most of the traffic, like the set-top box
//!   designs ([`BottleneckConfig`]),
//! * **D1–D4** — simplified set-top box (4 and 20 use-cases) and TV
//!   processor (8 and 20 use-cases) designs ([`soc`]).
//!
//! Traffic parameters follow the paper's observation that flow constraints
//! fall into a handful of clusters (HD video, SD video, audio, control) —
//! see [`TrafficClass`] — "with small deviations in the values within each
//! cluster".
//!
//! The proprietary Philips traffic specifications behind D1–D4 were never
//! published; [`soc`] synthesizes structurally faithful equivalents (hub-
//! shaped vs. stream-shaped, matching use-case counts and flow densities),
//! as recorded in `DESIGN.md`.
//!
//! All generators are deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use noc_benchgen::{SpreadConfig};
//!
//! let soc = SpreadConfig::paper(10).generate(42);
//! assert_eq!(soc.use_case_count(), 10);
//! assert_eq!(soc.core_count(), 20);
//! for uc in soc.use_cases() {
//!     assert!((60..=100).contains(&uc.flow_count()));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bottleneck;
pub mod clusters;
pub mod contention;
pub mod soc;
pub mod spread;

mod pairs;

pub use bottleneck::BottleneckConfig;
pub use clusters::{TrafficClass, TrafficMix};
pub use contention::{chained_chain, crossing_mesh, funnel_chain, route_between, BeRoute};
pub use soc::{SocDesign, SocDesignConfig};
pub use spread::SpreadConfig;
