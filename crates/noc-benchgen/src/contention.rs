//! Multi-hop best-effort contention patterns.
//!
//! The mapping methodology reserves resources only for GT flows; how the
//! *leftover* capacity behaves under best-effort load depends on how BE
//! paths overlap on interior mesh links. This module synthesizes the
//! canonical overlap shapes as deterministic route sets (no RNG — the
//! patterns are pure functions of their dimensions):
//!
//! * [`chained_chain`] — a sliding window of equal-length flows along a
//!   1×N chain; consecutive flows share `hops − 1` interior links.
//! * [`funnel_chain`] — every flow targets the chain's last switch, so
//!   all of them squeeze through a shared trunk of `hops` links (a
//!   hot-spot sink, like a shared external memory).
//! * [`crossing_mesh`] — XY-routed diagonal flows on a 2-D mesh whose
//!   row-0 spans nest inside each other before fanning out down
//!   distinct columns.
//!
//! The routes are plain `(CoreId, CoreId, Vec<LinkId>)` triples, so the
//! crate stays independent of the simulator; `noc-sim`'s
//! `BestEffortFlow` (or GT `Connection`) wraps them directly. The
//! `be_burst` suite in `noc-bench` sweeps these patterns against the
//! traffic models of `noc-sim`.
//!
//! # Example
//!
//! ```
//! use noc_benchgen::contention::chained_chain;
//!
//! let (mesh, routes) = chained_chain(3, 4);
//! assert_eq!(mesh.cols(), 7); // 3 flows + 4 hops
//! assert_eq!(routes.len(), 3);
//! for r in &routes {
//!     // NI→switch, 4 switch hops, switch→NI.
//!     assert_eq!(r.path.len(), 6);
//! }
//! ```

use noc_topology::{LinkId, Mesh, MeshBuilder, NodeId};
use noc_usecase::spec::CoreId;

/// One source-routed best-effort route: endpoint cores (row-major switch
/// index on the generating mesh, one core per NI) plus the full NI→NI
/// link path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeRoute {
    /// Source core (hosted on the NI of the route's first switch).
    pub src: CoreId,
    /// Destination core (hosted on the NI of the route's last switch).
    pub dst: CoreId,
    /// Links from source NI to destination NI.
    pub path: Vec<LinkId>,
}

impl BeRoute {
    /// Switch-to-switch hops of the route. Note this deliberately does
    /// **not** count the NI ingress/egress links — unlike
    /// `nocmap::Route::hops()`, which returns the full link count; use
    /// `path.len()` when computing latency bounds over the whole
    /// pipeline.
    pub fn switch_hops(&self) -> usize {
        self.path.len() - 2
    }
}

fn ni_of(mesh: &Mesh, switch: NodeId) -> NodeId {
    mesh.topology()
        .nis()
        .iter()
        .copied()
        .find(|&ni| mesh.topology().ni_switch(ni) == Some(switch))
        .expect("every mesh switch carries at least one NI")
}

fn core_at(mesh: &Mesh, row: u16, col: u16) -> CoreId {
    CoreId::new(u32::from(row) * u32::from(mesh.cols()) + u32::from(col))
}

/// The XY route (column-first along the source row, then down the
/// destination column) between the NIs at two mesh coordinates,
/// including the NI ingress and egress links.
///
/// # Panics
///
/// Panics if either coordinate is out of range or the endpoints
/// coincide.
///
/// ```
/// use noc_topology::MeshBuilder;
/// use noc_benchgen::contention::route_between;
///
/// let mesh = MeshBuilder::new(2, 3).nis_per_switch(1).build().unwrap();
/// let r = route_between(&mesh, (0, 0), (1, 2));
/// // NI→switch + 2 horizontal + 1 vertical + switch→NI.
/// assert_eq!(r.path.len(), 5);
/// assert_eq!(r.switch_hops(), 3);
/// ```
pub fn route_between(mesh: &Mesh, from: (u16, u16), to: (u16, u16)) -> BeRoute {
    assert_ne!(from, to, "route endpoints must differ");
    let topo = mesh.topology();
    let src_switch = mesh.switch_at(from.0, from.1);
    let dst_switch = mesh.switch_at(to.0, to.1);
    let mut path = vec![topo
        .link_between(ni_of(mesh, src_switch), src_switch)
        .expect("NI is attached to its switch")];
    let mut at = from;
    while at != to {
        let next = if at.1 != to.1 {
            (at.0, if at.1 < to.1 { at.1 + 1 } else { at.1 - 1 })
        } else {
            (if at.0 < to.0 { at.0 + 1 } else { at.0 - 1 }, at.1)
        };
        path.push(
            topo.link_between(mesh.switch_at(at.0, at.1), mesh.switch_at(next.0, next.1))
                .expect("mesh neighbours are connected"),
        );
        at = next;
    }
    path.push(
        topo.link_between(dst_switch, ni_of(mesh, dst_switch))
            .expect("NI is attached to its switch"),
    );
    BeRoute {
        src: core_at(mesh, from.0, from.1),
        dst: core_at(mesh, to.0, to.1),
        path,
    }
}

fn chain(flows: usize, hops: usize) -> Mesh {
    assert!(flows >= 1, "need at least one flow");
    assert!(hops >= 1, "need at least one hop");
    let cols = flows + hops;
    assert!(cols <= usize::from(u16::MAX), "chain too long");
    MeshBuilder::new(1, cols as u16)
        .nis_per_switch(1)
        .build()
        .expect("non-degenerate chain dimensions")
}

/// `flows` equal-length flows sliding along a 1×(`flows` + `hops`)
/// chain: flow `i` runs from column `i` to column `i + hops`, so
/// consecutive flows share `hops − 1` interior links and the overlap
/// builds multi-hop FIFO contention everywhere in the middle of the
/// chain.
///
/// # Panics
///
/// Panics if `flows` or `hops` is zero.
pub fn chained_chain(flows: usize, hops: usize) -> (Mesh, Vec<BeRoute>) {
    let mesh = chain(flows, hops);
    let routes = (0..flows)
        .map(|i| route_between(&mesh, (0, i as u16), (0, (i + hops) as u16)))
        .collect();
    (mesh, routes)
}

/// `flows` flows on a 1×(`flows` + `hops`) chain that all target the
/// last switch: flow `i` starts at column `i`, and every flow traverses
/// the shared trunk of the final `hops` links — the hot-spot sink
/// pattern of a shared external memory.
///
/// # Panics
///
/// Panics if `flows` or `hops` is zero.
///
/// ```
/// use noc_benchgen::contention::funnel_chain;
///
/// let (_, routes) = funnel_chain(4, 2);
/// // The last two switch links are shared by all four flows.
/// let trunk: Vec<_> = routes[3].path[1..3].to_vec();
/// for r in &routes {
///     let tail = &r.path[r.path.len() - 3..r.path.len() - 1];
///     assert_eq!(tail, &trunk[..]);
/// }
/// ```
pub fn funnel_chain(flows: usize, hops: usize) -> (Mesh, Vec<BeRoute>) {
    let mesh = chain(flows, hops);
    let last = (flows + hops - 1) as u16;
    let routes = (0..flows)
        .map(|i| route_between(&mesh, (0, i as u16), (0, last)))
        .collect();
    (mesh, routes)
}

/// `pairs` XY-routed diagonal flows on a `rows` × (2·`pairs`) mesh: flow
/// `i` runs from the top of column `i` to the bottom of column
/// 2·`pairs`−1−`i`, so the row-0 horizontal spans nest inside each other
/// (the innermost links carry every flow) before the flows fan out down
/// distinct columns.
///
/// # Panics
///
/// Panics if `pairs` is zero or `rows < 2`.
pub fn crossing_mesh(pairs: usize, rows: u16) -> (Mesh, Vec<BeRoute>) {
    assert!(pairs >= 1, "need at least one pair");
    assert!(rows >= 2, "crossing flows need at least two rows");
    let cols = 2 * pairs;
    assert!(cols <= usize::from(u16::MAX), "mesh too wide");
    let mesh = MeshBuilder::new(rows, cols as u16)
        .nis_per_switch(1)
        .build()
        .expect("non-degenerate mesh dimensions");
    let routes = (0..pairs)
        .map(|i| route_between(&mesh, (0, i as u16), (rows - 1, (cols - 1 - i) as u16)))
        .collect();
    (mesh, routes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Links in `r` that are switch-to-switch (the contention-relevant
    /// interior of the route).
    fn interior(r: &BeRoute) -> BTreeSet<LinkId> {
        r.path[1..r.path.len() - 1].iter().copied().collect()
    }

    fn assert_contiguous(mesh: &Mesh, r: &BeRoute) {
        let topo = mesh.topology();
        for pair in r.path.windows(2) {
            assert_eq!(
                topo.link(pair[0]).dst(),
                topo.link(pair[1]).src(),
                "links must chain head to tail"
            );
        }
        assert_eq!(
            topo.ni_switch(topo.link(r.path[0]).src()),
            Some(topo.link(r.path[0]).dst()),
            "route must start at an NI"
        );
    }

    #[test]
    fn chained_routes_are_contiguous_and_overlap() {
        let (mesh, routes) = chained_chain(3, 4);
        for r in &routes {
            assert_contiguous(&mesh, r);
            assert_eq!(r.switch_hops(), 4);
        }
        for pair in routes.windows(2) {
            let shared = interior(&pair[0]).intersection(&interior(&pair[1])).count();
            assert_eq!(shared, 3, "consecutive flows share hops-1 links");
        }
        // Non-adjacent flows overlap less.
        let far = interior(&routes[0])
            .intersection(&interior(&routes[2]))
            .count();
        assert_eq!(far, 2);
    }

    #[test]
    fn funnel_shares_the_full_trunk() {
        let (mesh, routes) = funnel_chain(4, 3);
        let trunk = interior(routes.last().unwrap());
        assert_eq!(trunk.len(), 3);
        for r in &routes {
            assert_contiguous(&mesh, r);
            assert!(
                trunk.is_subset(&interior(r)),
                "every flow must cross the whole trunk"
            );
        }
        assert_eq!(
            routes[0].switch_hops(),
            6,
            "farthest source walks the chain"
        );
    }

    #[test]
    fn crossing_spans_nest_on_row_zero() {
        let (mesh, routes) = crossing_mesh(3, 4);
        for r in &routes {
            assert_contiguous(&mesh, r);
        }
        // Flow 0 spans the whole row: its interior contains every other
        // flow's horizontal segment.
        let outer = interior(&routes[0]);
        let inner = interior(&routes[2]);
        let shared = outer.intersection(&inner).count();
        assert!(
            shared >= 1,
            "nested spans must share the innermost row links"
        );
        // Distinct destination columns: last switch links differ.
        let tails: BTreeSet<LinkId> = routes.iter().map(|r| r.path[r.path.len() - 2]).collect();
        assert_eq!(tails.len(), routes.len());
    }

    #[test]
    fn endpoint_cores_are_row_major_switch_indices() {
        let (_, routes) = chained_chain(2, 3);
        assert_eq!(routes[0].src, CoreId::new(0));
        assert_eq!(routes[0].dst, CoreId::new(3));
        assert_eq!(routes[1].src, CoreId::new(1));
        assert_eq!(routes[1].dst, CoreId::new(4));
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn degenerate_route_rejected() {
        let mesh = MeshBuilder::new(1, 2).nis_per_switch(1).build().unwrap();
        let _ = route_between(&mesh, (0, 0), (0, 0));
    }
}
