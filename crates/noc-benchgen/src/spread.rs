//! Spread-communication (Sp) synthetic benchmarks.
//!
//! "Spread communication benchmarks (Sp), where each core communicates to
//! few other cores. These benchmarks represent designs such as the TV
//! processor that has many small local memories with communication spread
//! evenly in the design." — Section 6.1.

use noc_usecase::spec::{SocSpec, UseCaseBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::clusters::TrafficMix;
use crate::pairs::sample_pairs;

/// Configuration of an Sp benchmark.
///
/// The paper's setup fixes 20 cores and 60–100 flows per use-case
/// ([`SpreadConfig::paper`]); every field can be overridden for wider
/// sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpreadConfig {
    /// Number of SoC cores.
    pub cores: u32,
    /// Number of use-cases to generate.
    pub use_cases: usize,
    /// Inclusive range of flow counts per use-case.
    pub flows_per_use_case: (usize, usize),
    /// Traffic clusters flows are drawn from.
    pub mix: TrafficMix,
    /// When `Some(n)`, all use-cases draw their pairs from one master
    /// pool of `n` pairs (stable physical connections, as in the D3/D4
    /// SoC designs); when `None`, every use-case samples pairs freely
    /// (maximum cross-use-case variation, the synthetic Sp setting).
    pub pair_pool: Option<usize>,
    /// Fraction of pool pairs whose traffic class is re-drawn per
    /// use-case (versatile connections). Only meaningful with a pool.
    pub versatile_fraction: f64,
}

impl SpreadConfig {
    /// The paper's synthetic setup: 20 cores, 60–100 flows per use-case,
    /// the 4-cluster video mix, `use_cases` use-cases.
    pub fn paper(use_cases: usize) -> Self {
        SpreadConfig {
            cores: 20,
            use_cases,
            flows_per_use_case: (60, 100),
            mix: TrafficMix::video_soc(),
            pair_pool: None,
            versatile_fraction: 0.0,
        }
    }

    /// Generates the benchmark deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (fewer than 2 cores, zero
    /// use-cases, or an empty flow range).
    pub fn generate(&self, seed: u64) -> SocSpec {
        assert!(self.cores >= 2, "spread benchmark needs at least 2 cores");
        assert!(
            self.use_cases > 0,
            "spread benchmark needs at least one use-case"
        );
        let (lo, hi) = self.flows_per_use_case;
        assert!(lo > 0 && lo <= hi, "invalid flow range {lo}..={hi}");
        let mut rng = SmallRng::seed_from_u64(seed);
        let pool = self.pair_pool.map(|n| {
            crate::pairs::PairPool::master(
                &mut rng,
                self.cores,
                n,
                &[],
                0.0,
                &self.mix,
                &self.mix,
                self.versatile_fraction,
            )
        });
        let mut soc = SocSpec::new(format!("sp-{}uc", self.use_cases));
        for u in 0..self.use_cases {
            let flow_count = rng.gen_range(lo..=hi);
            let mut builder = UseCaseBuilder::new(format!("sp-uc{u}"));
            match &pool {
                Some(p) => {
                    for ((src, dst), class) in p.sample(&mut rng, flow_count) {
                        let (bw, lat) = match class {
                            Some(c) => (c.sample_bandwidth(&mut rng), c.latency),
                            None => self.mix.sample(&mut rng),
                        };
                        builder
                            .add_flow(
                                noc_usecase::spec::Flow::new(src, dst, bw, lat)
                                    .expect("sampled flows are valid"),
                            )
                            .expect("pairs are distinct");
                    }
                }
                None => {
                    for (src, dst) in sample_pairs(&mut rng, self.cores, flow_count, &[], 0.0) {
                        let (bw, lat) = self.mix.sample(&mut rng);
                        builder
                            .add_flow(
                                noc_usecase::spec::Flow::new(src, dst, bw, lat)
                                    .expect("sampled flows are valid"),
                            )
                            .expect("pairs are distinct");
                    }
                }
            }
            soc.add_use_case(builder.build());
        }
        soc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::units::Bandwidth;

    #[test]
    fn paper_config_shape() {
        let soc = SpreadConfig::paper(5).generate(1);
        assert_eq!(soc.use_case_count(), 5);
        assert!(soc.core_count() <= 20);
        for uc in soc.use_cases() {
            assert!((60..=100).contains(&uc.flow_count()), "{}", uc.flow_count());
        }
    }

    #[test]
    fn deterministic() {
        let a = SpreadConfig::paper(3).generate(7);
        let b = SpreadConfig::paper(3).generate(7);
        assert_eq!(a, b);
        let c = SpreadConfig::paper(3).generate(8);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn traffic_is_spread_not_hubbed() {
        let soc = SpreadConfig::paper(4).generate(2);
        // No single core should attract more than ~35% of all flows.
        let mut touch = vec![0usize; 20];
        let mut total = 0usize;
        for uc in soc.use_cases() {
            for f in uc.flows() {
                touch[f.src().index()] += 1;
                touch[f.dst().index()] += 1;
                total += 2;
            }
        }
        let max = *touch.iter().max().unwrap();
        assert!(
            (max as f64) < 0.35 * total as f64,
            "core with {max} endpoints of {total} looks like a hub"
        );
    }

    #[test]
    fn bandwidths_fall_in_known_clusters() {
        let soc = SpreadConfig::paper(2).generate(3);
        let cap = TrafficMix::video_soc().max_bandwidth();
        for uc in soc.use_cases() {
            for f in uc.flows() {
                assert!(f.bandwidth() >= Bandwidth::from_mbps(1));
                assert!(f.bandwidth() <= cap);
            }
        }
    }

    #[test]
    fn use_cases_differ_from_each_other() {
        let soc = SpreadConfig::paper(2).generate(4);
        assert_ne!(soc.use_cases()[0], soc.use_cases()[1]);
    }

    #[test]
    #[should_panic(expected = "at least one use-case")]
    fn zero_use_cases_rejected() {
        let _ = SpreadConfig::paper(0).generate(1);
    }
}
