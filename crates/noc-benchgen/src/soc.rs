//! The four SoC designs of the paper's evaluation (Section 6.1):
//!
//! | Design | SoC | Use-cases | Traffic shape |
//! |---|---|---|---|
//! | D1 | set-top box (Viper2-class) | 4 | external-memory hub (bottleneck) |
//! | D2 | set-top box, scaled | 20 | external-memory hub (bottleneck) |
//! | D3 | TV processor | 8 | streaming, local memories (spread) |
//! | D4 | TV processor, scaled | 20 | streaming, local memories (spread) |
//!
//! The Philips traffic specifications behind these designs are
//! proprietary; this module synthesizes structurally faithful equivalents
//! — hub-shaped for the set-top designs ("the amount of data communicated
//! to the memory is very large when compared to the rest of the design"),
//! spread for the TV designs ("a streaming architecture with local
//! memories on the chip") — with the published use-case counts and the
//! published 50–150 communicating pairs per use-case. Generation is
//! deterministic: each design has a fixed seed.

use noc_usecase::spec::SocSpec;
use serde::{Deserialize, Serialize};

use crate::bottleneck::BottleneckConfig;
use crate::clusters::TrafficMix;
use crate::spread::SpreadConfig;

/// One of the paper's four SoC designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SocDesign {
    /// Set-top box SoC with 4 use-cases.
    D1,
    /// Set-top box SoC scaled to 20 use-cases.
    D2,
    /// TV-processor SoC with 8 use-cases.
    D3,
    /// TV-processor SoC scaled to 20 use-cases.
    D4,
}

/// How a design's traffic is shaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficShape {
    /// Hub-dominated: most flows touch a shared external memory.
    Bottleneck,
    /// Streaming: flows spread evenly over local memories.
    Spread,
}

/// The published parameters of a [`SocDesign`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SocDesignConfig {
    /// Design label (`"D1"` … `"D4"`).
    pub label: &'static str,
    /// Human-readable description.
    pub description: &'static str,
    /// Number of SoC cores.
    pub cores: u32,
    /// Number of use-cases.
    pub use_cases: usize,
    /// Inclusive range of communicating pairs per use-case.
    pub flows_per_use_case: (usize, usize),
    /// Traffic shape.
    pub shape: TrafficShape,
    /// Size of the design's stable physical connection pool (use-cases
    /// pick subsets of these pairs — SoC wiring does not change between
    /// use-cases, only the traffic on it does).
    pub pair_pool: usize,
    /// Fixed generation seed (reproducibility).
    pub seed: u64,
}

impl SocDesign {
    /// All four designs in paper order.
    pub const ALL: [SocDesign; 4] = [SocDesign::D1, SocDesign::D2, SocDesign::D3, SocDesign::D4];

    /// The design's label (`"D1"` … `"D4"`).
    pub fn label(self) -> &'static str {
        self.config().label
    }

    /// The design's published parameters.
    pub fn config(self) -> SocDesignConfig {
        match self {
            SocDesign::D1 => SocDesignConfig {
                label: "D1",
                description: "set-top box SoC, 4 use-cases, external-memory hub",
                cores: 26,
                use_cases: 4,
                flows_per_use_case: (50, 150),
                shape: TrafficShape::Bottleneck,
                pair_pool: 220,
                seed: 0xD1,
            },
            SocDesign::D2 => SocDesignConfig {
                label: "D2",
                description: "set-top box SoC scaled to 20 use-cases",
                cores: 26,
                use_cases: 20,
                flows_per_use_case: (50, 150),
                shape: TrafficShape::Bottleneck,
                pair_pool: 220,
                seed: 0xD2,
            },
            SocDesign::D3 => SocDesignConfig {
                label: "D3",
                description: "TV-processor SoC, 8 use-cases, streaming local memories",
                cores: 25,
                use_cases: 8,
                flows_per_use_case: (50, 150),
                shape: TrafficShape::Spread,
                pair_pool: 300,
                seed: 0xD3,
            },
            SocDesign::D4 => SocDesignConfig {
                label: "D4",
                description: "TV-processor SoC scaled to 20 use-cases",
                cores: 25,
                use_cases: 20,
                flows_per_use_case: (50, 150),
                shape: TrafficShape::Spread,
                pair_pool: 300,
                seed: 0xD4,
            },
        }
    }

    /// Generates the design's use-case specification.
    pub fn generate(self) -> SocSpec {
        let cfg = self.config();
        let soc = match cfg.shape {
            TrafficShape::Bottleneck => BottleneckConfig {
                cores: cfg.cores,
                use_cases: cfg.use_cases,
                flows_per_use_case: cfg.flows_per_use_case,
                hubs: 1,
                hub_fraction: 0.65,
                hub_mix: TrafficMix::memory_hub(),
                // Set-top boxes also stream video between processing
                // stages; the non-hub side of the design is TV-like.
                side_mix: TrafficMix::tv_streaming(),
                pair_pool: Some(cfg.pair_pool),
                versatile_fraction: 0.5,
            }
            .generate(cfg.seed),
            TrafficShape::Spread => SpreadConfig {
                cores: cfg.cores,
                use_cases: cfg.use_cases,
                flows_per_use_case: cfg.flows_per_use_case,
                mix: TrafficMix::tv_streaming(),
                pair_pool: Some(cfg.pair_pool),
                versatile_fraction: 0.35,
            }
            .generate(cfg.seed),
        };
        rename(soc, cfg.label)
    }
}

fn rename(soc: SocSpec, label: &str) -> SocSpec {
    let mut renamed = SocSpec::new(label.to_ascii_lowercase());
    for uc in soc.use_cases() {
        renamed.add_use_case(uc.clone());
    }
    renamed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_use_case_counts() {
        assert_eq!(SocDesign::D1.generate().use_case_count(), 4);
        assert_eq!(SocDesign::D2.generate().use_case_count(), 20);
        assert_eq!(SocDesign::D3.generate().use_case_count(), 8);
        assert_eq!(SocDesign::D4.generate().use_case_count(), 20);
    }

    #[test]
    fn flow_counts_in_published_range() {
        for d in SocDesign::ALL {
            let soc = d.generate();
            for uc in soc.use_cases() {
                assert!(
                    (50..=150).contains(&uc.flow_count()),
                    "{}: {} flows",
                    d.label(),
                    uc.flow_count()
                );
            }
        }
    }

    #[test]
    fn set_top_designs_are_hub_shaped() {
        // The external-memory hub must be touched by far more flows than
        // any ordinary core (it cannot exceed 50% of *flows* since a
        // 26-core hub only has 50 distinct pairs, but it dominates
        // endpoint counts).
        for d in [SocDesign::D1, SocDesign::D2] {
            let soc = d.generate();
            let cfg = d.config();
            let mut touch = vec![0usize; cfg.cores as usize];
            for uc in soc.use_cases() {
                for f in uc.flows() {
                    touch[f.src().index()] += 1;
                    touch[f.dst().index()] += 1;
                }
            }
            let hub_touch = touch[0];
            let rest_mean = touch[1..].iter().sum::<usize>() as f64 / (touch.len() - 1) as f64;
            assert!(
                hub_touch as f64 > 2.5 * rest_mean,
                "{}: hub endpoint count {hub_touch} vs mean {rest_mean:.1}",
                d.label()
            );
        }
    }

    #[test]
    fn tv_designs_are_spread() {
        for d in [SocDesign::D3, SocDesign::D4] {
            let soc = d.generate();
            let mut touch = vec![0usize; 25];
            let mut total = 0usize;
            for uc in soc.use_cases() {
                for f in uc.flows() {
                    touch[f.src().index()] += 1;
                    touch[f.dst().index()] += 1;
                    total += 2;
                }
            }
            let max = *touch.iter().max().unwrap();
            assert!(
                (max as f64) < 0.3 * total as f64,
                "{} should not have a hub",
                d.label()
            );
        }
    }

    #[test]
    fn generation_is_reproducible() {
        assert_eq!(SocDesign::D1.generate(), SocDesign::D1.generate());
        assert_ne!(SocDesign::D1.generate(), SocDesign::D2.generate());
    }

    #[test]
    fn scaled_designs_extend_base_counts() {
        // D2/D4 are "scaled versions of the designs D1 and D3 for
        // supporting more use-cases": same cores, more use-cases.
        assert_eq!(SocDesign::D1.config().cores, SocDesign::D2.config().cores);
        assert_eq!(SocDesign::D3.config().cores, SocDesign::D4.config().cores);
        assert!(SocDesign::D2.config().use_cases > SocDesign::D1.config().use_cases);
        assert!(SocDesign::D4.config().use_cases > SocDesign::D3.config().use_cases);
    }

    #[test]
    fn labels() {
        assert_eq!(SocDesign::D1.label(), "D1");
        assert_eq!(SocDesign::ALL.map(|d| d.label()), ["D1", "D2", "D3", "D4"]);
    }
}
