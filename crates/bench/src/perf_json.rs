//! `BENCH_nocmap.json` — the machine-readable perf trajectory.
//!
//! Every run of the `perf` suite can add one **run record** to a JSON
//! file at the repo root, so the committed file's history (and its
//! growing `trajectory` array) is a real perf trajectory future PRs
//! extend instead of optimising blind. One record per label: re-running
//! with an existing label replaces that record in place rather than
//! appending a duplicate. The offline `serde` shim has no format
//! backend, so the document is emitted (and spliced) by hand; the
//! layout is fixed — two header lines, one line per run record, two
//! footer lines — which is what makes [`append_run`] a safe textual
//! splice. `docs/PERFORMANCE.md` documents the schema.
//!
//! Determinism: within a run record, every `*_ops` field and `switches`
//! is identical at any `noc-par` thread count; only the `*_ms` fields
//! are machine- and load-dependent. CI regenerates the record at 1 and
//! 4 workers and diffs the deterministic fields
//! (`tools/check_bench_json.py`).

use noc_flow::runner::{FrontierPoint, PerfPoint, PerfSnapshot, ResiliencePoint, ServicePoint};

/// Schema version of the document (bump when fields change meaning).
pub const SCHEMA_VERSION: u32 = 1;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' | '\\' => {
                out.push('\\');
                out.push(c);
            }
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn ops_json(ops: &PerfSnapshot) -> String {
    format!(
        "{{\"path_queries\":{},\"dijkstra_pops\":{},\"scratch_allocs\":{},\
         \"group_routes\":{},\"full_maps\":{},\"groups_rerouted\":{},\
         \"groups_reused\":{},\"anneal_moves\":{},\"anneal_accepts\":{},\
         \"route_cache_hits\":{},\"route_cache_misses\":{},\
         \"conflict_word_tests\":{},\"legacy_slot_probes\":{},\
         \"trace_spans\":{},\"admissions\":{},\"rejections\":{},\
         \"displacement_evictions\":{},\"batch_flushes\":{},\
         \"faults_injected\":{},\"heals_attempted\":{},\
         \"heal_reroutes\":{},\"heal_evictions\":{}}}",
        ops.path_queries,
        ops.dijkstra_pops,
        ops.scratch_allocs,
        ops.group_routes,
        ops.full_maps,
        ops.groups_rerouted,
        ops.groups_reused,
        ops.anneal_moves,
        ops.anneal_accepts,
        ops.route_cache_hits,
        ops.route_cache_misses,
        ops.conflict_word_tests,
        ops.legacy_slot_probes,
        ops.trace_spans,
        ops.admissions,
        ops.rejections,
        ops.displacement_evictions,
        ops.batch_flushes,
        ops.faults_injected,
        ops.heals_attempted,
        ops.heal_reroutes,
        ops.heal_evictions,
    )
}

fn ms(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// One run record as a single JSON line: the run label, the worker
/// count, and one suite object per [`PerfPoint`].
pub fn run_record(label: &str, threads: usize, points: &[PerfPoint]) -> String {
    let suites: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"label\":\"{}\",\"switches\":{},\"map_ms\":{},\"anneal_ms\":{},\
                 \"trace_ms\":{},\"map_ops\":{},\"anneal_ops\":{}}}",
                escape(&p.label),
                p.switches.map_or("null".to_string(), |s| s.to_string()),
                ms(p.map_wall),
                ms(p.anneal_wall),
                ms(p.trace_wall),
                ops_json(&p.map_ops),
                ops_json(&p.anneal_ops),
            )
        })
        .collect();
    format!(
        "{{\"label\":\"{}\",\"threads\":{},\"suites\":[{}]}}",
        escape(label),
        threads,
        suites.join(",")
    )
}

/// One frontier run record as a single JSON line: the run label, the
/// worker count, and one row object per [`FrontierPoint`] (strategy
/// portfolio quality vs deterministic ops — see `docs/STRATEGIES.md`).
/// Unlike [`run_record`], **every** field here is deterministic: the
/// same record regenerated at any `noc-par` worker count is
/// byte-identical, which is what CI diffs.
pub fn frontier_record(label: &str, threads: usize, points: &[FrontierPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"bench\":\"{}\",\"strategy\":\"{}\",\"switches\":{},\
                 \"cost\":{},\"evictions\":{},\"nodes\":{},\"ops\":{}}}",
                escape(&p.bench),
                p.strategy.token(),
                p.switches,
                p.cost,
                p.evictions,
                p.nodes,
                ops_json(&p.ops),
            )
        })
        .collect();
    format!(
        "{{\"label\":\"{}\",\"threads\":{},\"frontier\":[{}]}}",
        escape(label),
        threads,
        rows.join(",")
    )
}

/// One service run record as a single JSON line: the run label, the
/// worker count, and one row object per [`ServicePoint`] (online
/// admission outcome + reconfiguration ops per fabric × mode — see
/// `docs/SERVICE.md`). Like [`frontier_record`], **every** field is
/// deterministic: the seeded request trace replays byte-identically at
/// any `noc-par` worker count, which is what CI diffs. The
/// incremental-vs-resolve contrast lives in the `ops` object
/// (`group_routes` / `full_maps`): resolve re-maps every live use-case
/// at each reconfiguration point, incremental routes only the admitted
/// group plus displacement-affected neighbours.
pub fn service_record(label: &str, threads: usize, points: &[ServicePoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"fabric\":\"{}\",\"mode\":\"{}\",\"admitted\":{},\
                 \"rejected\":{},\"displaced\":{},\"evictions\":{},\
                 \"flushes\":{},\"ops\":{}}}",
                escape(&p.fabric),
                p.mode.token(),
                p.stats.admitted,
                p.stats.rejected,
                p.stats.displaced,
                p.stats.evictions,
                p.stats.flushes,
                ops_json(&p.ops),
            )
        })
        .collect();
    format!(
        "{{\"label\":\"{}\",\"threads\":{},\"service\":[{}]}}",
        escape(label),
        threads,
        rows.join(",")
    )
}

/// One resilience run record as a single JSON line: the run label, the
/// worker count, and one row object per [`ResiliencePoint`]
/// (fault-injection outcome + self-healing repair ops per fabric — see
/// `docs/RESILIENCE.md`). Like [`service_record`], **every** field is
/// deterministic: the fault schedule is a pure function of
/// `(config, seed)`, so the record regenerated at any `noc-par` worker
/// count is byte-identical, which is what CI diffs. The
/// repair-is-incremental claim lives in the `ops` object
/// (`heal_reroutes` / `heal_evictions` vs `full_maps`).
pub fn resilience_record(label: &str, threads: usize, points: &[ResiliencePoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"fabric\":\"{}\",\"faults\":{},\"admitted\":{},\
                 \"rejected\":{},\"links_failed\":{},\"nis_failed\":{},\
                 \"degraded\":{},\"healed\":{},\"ops\":{}}}",
                escape(&p.fabric),
                p.faults,
                p.stats.admitted,
                p.stats.rejected,
                p.stats.links_failed,
                p.stats.nis_failed,
                p.stats.degraded,
                p.stats.healed,
                ops_json(&p.ops),
            )
        })
        .collect();
    format!(
        "{{\"label\":\"{}\",\"threads\":{},\"resilience\":[{}]}}",
        escape(label),
        threads,
        rows.join(",")
    )
}

/// The fixed document footer `append_run` splices at.
const FOOTER: &str = "\n  ]\n}";

/// Renders a whole document holding exactly the given run records.
pub fn document(records: &[String]) -> String {
    let mut out = format!("{{\n  \"schema\": {SCHEMA_VERSION},\n  \"trajectory\": [\n    ");
    out.push_str(&records.join(",\n    "));
    out.push_str(FOOTER);
    out.push('\n');
    out
}

/// The `{"label":"…"` prefix of a run-record line, up to and including
/// the label's closing quote. [`escape`] backslash-escapes every quote
/// inside a label, so the first bare `","threads":` in a record is
/// always the real field boundary — the prefix is a safe textual key
/// for label equality.
fn label_key(record: &str) -> Option<&str> {
    record.find("\",\"threads\":").map(|i| &record[..=i])
}

/// Inserts `record` (a [`run_record`] line) into the trajectory file at
/// `path`, creating the document if the file does not exist. A record
/// whose label already appears in the trajectory is **replaced in
/// place** (same position, so `trajectory[-1]` comparisons stay
/// meaningful); a new label is appended. Re-running
/// `nocmap_cli perf --label L` therefore updates L's record instead of
/// accumulating duplicates.
///
/// # Errors
///
/// I/O failures, a malformed record (no label field), or a file that is
/// not a trajectory document this module wrote (the splice markers are
/// missing).
pub fn append_run(path: &std::path::Path, record: &str) -> std::io::Result<()> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let key =
        label_key(record).ok_or_else(|| bad(format!("run record has no label field: {record}")))?;
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return std::fs::write(path, document(std::slice::from_ref(&record.to_string())));
        }
        Err(e) => return Err(e),
    };
    let not_doc = || {
        bad(format!(
            "{} is not a BENCH trajectory document",
            path.display()
        ))
    };
    let open = "\"trajectory\": [\n    ";
    let start = text.find(open).ok_or_else(not_doc)? + open.len();
    let end = text.rfind(FOOTER).ok_or_else(not_doc)?;
    let mut records: Vec<String> = text[start..end]
        .split(",\n    ")
        .map(str::to_string)
        .collect();
    let marker = format!("{key},");
    match records.iter().position(|r| r.starts_with(&marker)) {
        Some(i) => records[i] = record.to_string(),
        None => records.push(record.to_string()),
    }
    std::fs::write(path, document(&records))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_and_append_round_trip() {
        let dir = std::env::temp_dir().join("noc_perf_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let _ = std::fs::remove_file(&path);
        append_run(&path, "{\"label\":\"a\",\"threads\":1,\"suites\":[]}").unwrap();
        append_run(&path, "{\"label\":\"b\",\"threads\":4,\"suites\":[]}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("\"label\":").count(), 2);
        assert!(text.starts_with("{\n  \"schema\": 1,\n  \"trajectory\": [\n"));
        assert!(text.ends_with("\n  ]\n}\n"));
        // Appending keeps earlier records byte-for-byte.
        assert!(text.contains("{\"label\":\"a\",\"threads\":1,\"suites\":[]}"));
    }

    #[test]
    fn rerun_replaces_record_with_same_label() {
        let dir = std::env::temp_dir().join("noc_perf_json_replace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let _ = std::fs::remove_file(&path);
        append_run(&path, "{\"label\":\"a\",\"threads\":1,\"suites\":[]}").unwrap();
        append_run(&path, "{\"label\":\"b\",\"threads\":1,\"suites\":[]}").unwrap();
        append_run(&path, "{\"label\":\"a\",\"threads\":4,\"suites\":[]}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("\"label\":\"a\"").count(), 1, "{text}");
        // Replacement happens in place: 'a' still precedes 'b'.
        assert!(
            text.find("\"label\":\"a\",\"threads\":4").unwrap()
                < text.find("\"label\":\"b\"").unwrap()
        );
        // A label that merely *prefixes* another must not match it.
        append_run(&path, "{\"label\":\"ab\",\"threads\":1,\"suites\":[]}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("\"label\":").count(), 3);
    }

    #[test]
    fn labels_are_escaped() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("a\tb\nc"), "a\\u0009b\\u000ac");
    }
}
