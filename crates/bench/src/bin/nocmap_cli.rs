//! `nocmap-cli` — the design flow as a command-line tool.
//!
//! ```text
//! # generate a benchmark spec file
//! cargo run --release -p noc-bench --bin nocmap_cli -- gen d1 > d1.spec
//! cargo run --release -p noc-bench --bin nocmap_cli -- gen sp --use-cases 10 --seed 7 > sp.spec
//!
//! # run the design flow on a spec file
//! cargo run --release -p noc-bench --bin nocmap_cli -- design d1.spec --freq 500 --emit d1.cfg
//! ```
//!
//! Subcommands:
//!
//! * `gen {d1|d2|d3|d4|sp|bot} [--use-cases N] [--seed S]` — write a spec
//!   (text format of `noc_usecase::textio`) to stdout.
//! * `design SPEC [--freq MHZ] [--slots N] [--max-switches N] [--wc]
//!   [--emit FILE]` — design the smallest mesh, print the analytic
//!   report, optionally compare with the worst-case baseline and emit the
//!   configuration artifact.
//! * `be-burst` — run the best-effort burstiness × hop-count contention
//!   sweep (identical output to `experiments -- be_burst`; the
//!   simulation model is documented in `docs/SIMULATION.md`).
//!
//! Both subcommands accept a global `--threads N` to pin the `noc-par`
//! worker count (equivalent to `NOC_PAR_THREADS=N`; results are
//! identical at any setting, only wall-clock changes). `design` reports
//! its wall-clock and thread count.

use std::process::ExitCode;

use noc_benchgen::{BottleneckConfig, SocDesign, SpreadConfig};
use noc_tdma::TdmaSpec;
use noc_topology::units::{Frequency, LinkWidth};
use noc_usecase::spec::SocSpec;
use noc_usecase::UseCaseGroups;
use nocmap::design::design_smallest_mesh;
use nocmap::emit::emit_text;
use nocmap::report::SolutionReport;
use nocmap::wc::design_worst_case;
use nocmap::MapperOptions;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  nocmap_cli gen {{d1|d2|d3|d4|sp|bot}} [--use-cases N] [--seed S]\n  \
         nocmap_cli design SPEC [--freq MHZ] [--slots N] [--max-switches N] [--wc] [--emit FILE]\n  \
         nocmap_cli be-burst\n  \
         (global: --threads N — pin the noc-par worker count)"
    );
    ExitCode::FAILURE
}

/// Pulls `--name VALUE` out of `args`, parsing VALUE as `u64`.
fn take_opt(args: &mut Vec<String>, name: &str) -> Result<Option<u64>, String> {
    if let Some(pos) = args.iter().position(|a| a == name) {
        if pos + 1 >= args.len() {
            return Err(format!("{name} needs a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        value
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("invalid {name} '{value}'"))
    } else {
        Ok(None)
    }
}

fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == name) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn take_string(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == name) {
        if pos + 1 >= args.len() {
            return Err(format!("{name} needs a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn cmd_gen(mut args: Vec<String>) -> Result<(), String> {
    let use_cases = take_opt(&mut args, "--use-cases")?.unwrap_or(5) as usize;
    let seed = take_opt(&mut args, "--seed")?.unwrap_or(2006);
    let which = args.first().ok_or("gen needs a benchmark kind")?.as_str();
    let soc: SocSpec = match which {
        "d1" => SocDesign::D1.generate(),
        "d2" => SocDesign::D2.generate(),
        "d3" => SocDesign::D3.generate(),
        "d4" => SocDesign::D4.generate(),
        "sp" => SpreadConfig::paper(use_cases).generate(seed),
        "bot" => BottleneckConfig::paper(use_cases).generate(seed),
        other => return Err(format!("unknown benchmark '{other}'")),
    };
    print!("{}", noc_usecase::to_text(&soc));
    Ok(())
}

fn cmd_design(mut args: Vec<String>) -> Result<(), String> {
    let freq = take_opt(&mut args, "--freq")?.unwrap_or(500);
    let slots = take_opt(&mut args, "--slots")?.unwrap_or(128) as usize;
    let max_switches = take_opt(&mut args, "--max-switches")?.unwrap_or(400) as usize;
    let compare_wc = take_flag(&mut args, "--wc");
    let emit_path = take_string(&mut args, "--emit")?;
    let spec_path = args.first().ok_or("design needs a spec file")?;

    let text =
        std::fs::read_to_string(spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let soc = noc_usecase::from_text(&text).map_err(|e| format!("{spec_path}: {e}"))?;
    println!(
        "loaded '{}': {} cores, {} use-cases, {} flows",
        soc.name(),
        soc.core_count(),
        soc.use_case_count(),
        soc.total_flow_count()
    );

    let tdma = TdmaSpec::new(slots, Frequency::from_mhz(freq), LinkWidth::BITS_32);
    let options = MapperOptions::default();
    let groups = UseCaseGroups::singletons(soc.use_case_count());
    let t0 = std::time::Instant::now();
    let solution = design_smallest_mesh(&soc, &groups, tdma, &options, max_switches)
        .map_err(|e| format!("design failed: {e}"))?;
    let elapsed = t0.elapsed();
    solution
        .verify(&soc, &groups)
        .map_err(|e| format!("internal error, produced invalid solution: {e}"))?;

    println!(
        "designed in {elapsed:.2?} ({} noc-par worker{})",
        noc_par::current_threads(),
        if noc_par::current_threads() == 1 {
            ""
        } else {
            "s"
        }
    );
    println!("{}", SolutionReport::analyze(&solution));

    if compare_wc {
        match design_worst_case(&soc, tdma, &options, max_switches) {
            Ok(wc) => println!(
                "worst-case baseline: {} switches ({}x ours)",
                wc.switch_count(),
                wc.switch_count() as f64 / solution.switch_count() as f64
            ),
            Err(e) => println!("worst-case baseline: infeasible ({e})"),
        }
    }

    if let Some(path) = emit_path {
        let artifact = emit_text(&solution, &soc, &groups);
        std::fs::write(&path, &artifact).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "configuration artifact written to {path} ({} bytes)",
            artifact.len()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = match take_opt(&mut args, "--threads") {
        Ok(t) => t.map(|n| n as usize),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.is_empty() {
        return usage();
    }
    let cmd = args.remove(0);
    let run = || match cmd.as_str() {
        "gen" => Some(cmd_gen(args)),
        "design" => Some(cmd_design(args)),
        "be-burst" | "be_burst" => {
            print!("{}", noc_bench::format_be_burst(&noc_bench::be_burst()));
            Some(Ok(()))
        }
        _ => None,
    };
    let result = match threads {
        Some(n) => noc_par::with_threads(n, run),
        None => run(),
    };
    match result {
        None => usage(),
        Some(Ok(())) => ExitCode::SUCCESS,
        Some(Err(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
