//! `nocmap-cli` — the design flow as a command-line tool.
//!
//! ```text
//! # generate a benchmark spec file
//! cargo run --release -p noc-bench --bin nocmap_cli -- gen d1 > d1.spec
//! cargo run --release -p noc-bench --bin nocmap_cli -- gen sp --use-cases 10 --seed 7 > sp.spec
//!
//! # run the design flow on a spec file
//! cargo run --release -p noc-bench --bin nocmap_cli -- design d1.spec --freq 500 --emit d1.cfg
//!
//! # run a declared experiment or flow config (see docs/PIPELINE.md)
//! cargo run --release -p noc-bench --bin nocmap_cli -- flow run specs/flow_be_burst.flow
//! cargo run --release -p noc-bench --bin nocmap_cli -- flow run fig6a
//! ```
//!
//! Subcommands:
//!
//! * `gen {d1|d2|d3|d4|sp|bot} [--use-cases N] [--seed S]` — write a spec
//!   (text format of `noc_usecase::textio`) to stdout.
//! * `design SPEC [--freq MHZ] [--slots N] [--max-switches N] [--wc]
//!   [--anneal ITERxCHAINS] [--strategy greedy|displacement|bnb]
//!   [--emit FILE]` — run the design pipeline (map → \[anneal\] →
//!   verify, plus the worst-case baseline with `--wc`), print the
//!   analytic report, optionally emit the configuration artifact. The
//!   optional `--strategy` picks a mapping strategy from the
//!   `nocmap::strategy` portfolio (see `docs/STRATEGIES.md`).
//! * `flow run {FILE|NAME} [--spec SOCFILE]` — execute an experiment
//!   spec (a registry name, or a file in the `noc-flow` text format) via
//!   the generic runner; a `flow NAME` config file instead runs its
//!   stage list on the SoC spec given with `--spec`.
//! * `flow list` — list the registered experiments.
//! * `flow show NAME` — print a registry entry as a spec file (the
//!   format `flow run` accepts).
//! * `be-burst` — the best-effort burstiness × hop-count contention
//!   sweep (identical output to `experiments -- be_burst`; the
//!   simulation model is documented in `docs/SIMULATION.md`).
//! * `perf [--json FILE] [--label L]` — the perf-telemetry suite: map +
//!   anneal each standard benchmark, print the op-counter table, and
//!   (with `--json`) append a run record to the `BENCH_nocmap.json`
//!   trajectory (see `docs/PERFORMANCE.md`). The op-count fields are
//!   deterministic at any `--threads` setting; only wall times vary.
//! * `frontier [--json FILE] [--label L]` — the strategy-portfolio
//!   frontier suite: map every standard benchmark with each strategy
//!   (greedy, displacement, bounded branch-and-bound), print the
//!   quality-vs-ops table, and (with `--json`) append a frontier record
//!   to the trajectory. Every cell is deterministic — the record is
//!   byte-identical at any `--threads` setting (see
//!   `docs/STRATEGIES.md`).
//! * `serve [--port P] [--rows R] [--cols C] [--nis N] [--batch B]
//!   [--budget M] [--mode incremental|resolve] [--journal FILE]` — run
//!   the `nocd` online mapping daemon: a TCP line-protocol server
//!   admitting streaming use-case requests incrementally (see
//!   `docs/SERVICE.md`). With `--journal`, every request line is logged
//!   to FILE before it is applied and the engine is rebuilt from FILE
//!   on startup, so a restarted daemon resumes with the state it
//!   crashed with (see `docs/RESILIENCE.md`). Blocks until a client
//!   sends `shutdown`.
//! * `request --port P [--timeout-ms T] [--retries R] WORD...` — send
//!   one protocol line to a running daemon and print the framed
//!   response. `--timeout-ms` bounds the connect and each response
//!   read; `--retries` retries failed attempts with deterministic
//!   linear backoff.
//! * `replay [--requests N] [--seed S] [--rows R] [--cols C] [--nis N]
//!   [--batch B] [--budget M] [--mode incremental|resolve]
//!   [--transcript]` — the in-process deterministic replay: drive a
//!   seeded request trace through a fresh engine (no sockets), print
//!   the final admission report, and (with `--transcript`) the full
//!   request/response transcript — byte-identical at any `--threads`
//!   setting.
//! * `service [--json FILE] [--label L]` — the online-admission suite:
//!   replay the `service` registry trace per fabric × admission mode,
//!   print the blocking/reconfiguration-cost table, and (with `--json`)
//!   append a service record to the trajectory. Every cell is
//!   deterministic (see `docs/SERVICE.md`).
//! * `resilience [--json FILE] [--label L]` — the fault-injection
//!   suite: weave a seeded fault schedule into the request trace,
//!   replay it per fabric, print the degradation/self-healing table,
//!   and (with `--json`) append a resilience record to the trajectory.
//!   Every cell is deterministic (see `docs/RESILIENCE.md`).
//!
//! All subcommands accept a global `--threads N` to pin the `noc-par`
//! worker count (equivalent to `NOC_PAR_THREADS=N`; results are
//! identical at any setting, only wall-clock changes). `design` reports
//! its wall-clock and thread count.
//!
//! All subcommands also accept a global `--trace FILE [--trace-mode
//! ops|wall]` (env fallback: `NOC_TRACE` / `NOC_TRACE_MODE`) recording
//! a span trace of the run: Chrome trace-event JSON when FILE ends in
//! `.json`, an indented text tree otherwise. The default `ops` mode
//! timestamps spans with the deterministic op clock, so the trace is
//! byte-identical at any `--threads` setting; `wall` keeps real
//! timestamps. See `docs/OBSERVABILITY.md`. The status note goes to
//! stderr, so stdout stays byte-identical with and without a trace.

use std::process::ExitCode;

use noc_benchgen::{BottleneckConfig, SocDesign, SpreadConfig};
use noc_flow::cli::{
    take_flag, take_num, take_opt, take_string, take_threads, take_trace, write_trace,
};
use noc_flow::config::{experiment_to_text, spec_from_text, FlowConfig, SpecFile, StageConfig};
use noc_flow::{registry, render, run_spec, FlowError};
use noc_usecase::spec::SocSpec;
use noc_usecase::UseCaseGroups;
use nocmap::emit::emit_text;
use nocmap::report::SolutionReport;
use nocmap::strategy::StrategyKind;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  nocmap_cli gen {{d1|d2|d3|d4|sp|bot}} [--use-cases N] [--seed S]\n  \
         nocmap_cli design SPEC [--freq MHZ] [--slots N] [--max-switches N] [--wc] \
         [--anneal ITERxCHAINS] [--emit FILE]\n  \
         nocmap_cli flow {{run FILE|NAME [--spec SOCFILE] | list | show NAME}}\n  \
         nocmap_cli be-burst\n  \
         nocmap_cli perf [--json FILE] [--label L]\n  \
         nocmap_cli frontier [--json FILE] [--label L]\n  \
         nocmap_cli serve [--port P] [--rows R] [--cols C] [--nis N] [--batch B] \
         [--budget M] [--mode incremental|resolve] [--journal FILE]\n  \
         nocmap_cli request --port P [--timeout-ms T] [--retries R] WORD...\n  \
         nocmap_cli replay [--requests N] [--seed S] [--rows R] [--cols C] [--nis N] \
         [--batch B] [--budget M] [--mode incremental|resolve] [--transcript]\n  \
         nocmap_cli service [--json FILE] [--label L]\n  \
         nocmap_cli resilience [--json FILE] [--label L]\n  \
         (global: --threads N — pin the noc-par worker count;\n  \
          --trace FILE [--trace-mode ops|wall] — record a span trace)"
    );
    ExitCode::FAILURE
}

fn read_soc(path: &str) -> Result<SocSpec, FlowError> {
    let text = std::fs::read_to_string(path).map_err(|e| FlowError::Io {
        path: path.to_string(),
        message: format!("cannot read: {e}"),
    })?;
    noc_usecase::from_text(&text).map_err(|e| FlowError::Parse {
        line: 0,
        message: format!("{path}: {e}"),
    })
}

fn cmd_gen(mut args: Vec<String>) -> Result<(), FlowError> {
    let use_cases = take_opt(&mut args, "--use-cases")?.unwrap_or(5) as usize;
    let seed = take_opt(&mut args, "--seed")?.unwrap_or(2006);
    let which = args
        .first()
        .ok_or_else(|| FlowError::Usage("gen needs a benchmark kind".into()))?
        .as_str();
    let soc: SocSpec = match which {
        "d1" => SocDesign::D1.generate(),
        "d2" => SocDesign::D2.generate(),
        "d3" => SocDesign::D3.generate(),
        "d4" => SocDesign::D4.generate(),
        "sp" => SpreadConfig::paper(use_cases).generate(seed),
        "bot" => BottleneckConfig::paper(use_cases).generate(seed),
        other => return Err(FlowError::Usage(format!("unknown benchmark '{other}'"))),
    };
    print!("{}", noc_usecase::to_text(&soc));
    Ok(())
}

fn cmd_design(mut args: Vec<String>) -> Result<(), FlowError> {
    let freq = take_opt(&mut args, "--freq")?.unwrap_or(500);
    let slots = take_opt(&mut args, "--slots")?.unwrap_or(128) as usize;
    let max_switches = take_opt(&mut args, "--max-switches")?.unwrap_or(400) as usize;
    let compare_wc = take_flag(&mut args, "--wc");
    let anneal = take_string(&mut args, "--anneal")?;
    let strategy = match take_string(&mut args, "--strategy")? {
        Some(tok) => StrategyKind::parse(&tok).ok_or_else(|| {
            FlowError::Usage(format!(
                "invalid --strategy '{tok}' (expected greedy|displacement|bnb)"
            ))
        })?,
        None => StrategyKind::Greedy,
    };
    let emit_path = take_string(&mut args, "--emit")?;
    let spec_path = args
        .first()
        .ok_or_else(|| FlowError::Usage("design needs a spec file".into()))?;

    let soc = read_soc(spec_path)?;
    println!(
        "loaded '{}': {} cores, {} use-cases, {} flows",
        soc.name(),
        soc.core_count(),
        soc.use_case_count(),
        soc.total_flow_count()
    );

    // The whole subcommand is one FlowConfig: map → [anneal] → verify,
    // plus the worst-case baseline when requested.
    let mut config = FlowConfig {
        name: "design".to_string(),
        slots,
        freq_mhz: freq,
        max_switches,
        ..FlowConfig::design_defaults()
    };
    config.stages = vec![StageConfig::Map { strategy }];
    if let Some(spec) = &anneal {
        let (iterations, chains) = spec
            .split_once('x')
            .and_then(|(i, c)| Some((i.parse().ok()?, c.parse().ok()?)))
            .ok_or_else(|| {
                FlowError::Usage(format!("invalid --anneal '{spec}' (expected ITERxCHAINS)"))
            })?;
        let defaults = nocmap::anneal::AnnealConfig::default();
        config.stages.push(StageConfig::Anneal {
            iterations,
            chains,
            seed: defaults.seed,
            initial_temperature: defaults.initial_temperature,
            cooling: defaults.cooling,
        });
    }
    config.stages.push(StageConfig::Verify);
    if compare_wc {
        config.stages.push(StageConfig::WorstCase);
    }

    let groups = UseCaseGroups::singletons(soc.use_case_count());
    let t0 = std::time::Instant::now();
    let ctx = config.build().run(&soc, &groups)?;
    let elapsed = t0.elapsed();
    let solution = ctx.solution()?;

    println!(
        "designed in {elapsed:.2?} ({} noc-par worker{})",
        noc_par::current_threads(),
        if noc_par::current_threads() == 1 {
            ""
        } else {
            "s"
        }
    );
    println!("{}", SolutionReport::analyze(solution));

    if compare_wc {
        match ctx.wc.as_ref().expect("worst-case stage ran") {
            Ok(wc) => println!(
                "worst-case baseline: {} switches ({}x ours)",
                wc.switch_count(),
                wc.switch_count() as f64 / solution.switch_count() as f64
            ),
            Err(e) => println!("worst-case baseline: infeasible ({e})"),
        }
    }

    if let Some(path) = emit_path {
        let artifact = emit_text(solution, &soc, &groups);
        std::fs::write(&path, &artifact).map_err(|e| FlowError::Io {
            path: path.clone(),
            message: format!("cannot write: {e}"),
        })?;
        println!(
            "configuration artifact written to {path} ({} bytes)",
            artifact.len()
        );
    }
    Ok(())
}

/// Prints a flow-config run: the stage trace, the analytic report, and
/// summaries of whatever artifacts the stages produced.
fn print_flow_outcome(ctx: &noc_flow::FlowContext) -> Result<(), FlowError> {
    println!("flow: {}", ctx.trace.join(" -> "));
    let solution = ctx.solution()?;
    println!("{}", SolutionReport::analyze(solution));
    if let Some(wc) = &ctx.wc {
        match wc {
            Ok(wc) => println!(
                "worst-case baseline: {} switches ({}x ours)",
                wc.switch_count(),
                wc.switch_count() as f64 / solution.switch_count() as f64
            ),
            Err(e) => println!("worst-case baseline: infeasible ({e})"),
        }
    }
    if let Some(remapped) = &ctx.remapped {
        let moved: usize = remapped.moved.iter().map(Vec::len).sum();
        println!("remap: {moved} core relocation(s) across groups");
    }
    if !ctx.sim_reports.is_empty() {
        let contention: u64 = ctx
            .sim_reports
            .iter()
            .map(|r| r.contention_violations)
            .sum();
        let late: u64 = ctx.sim_reports.iter().map(|r| r.latency_violations).sum();
        let delivered = ctx.sim_reports.iter().all(|r| r.all_flows_delivered());
        println!(
            "simulated {} use-case(s): contention {contention}, late words {late}, delivered {}",
            ctx.sim_reports.len(),
            if delivered { "yes" } else { "NO" }
        );
    }
    Ok(())
}

fn cmd_flow(mut args: Vec<String>) -> Result<(), FlowError> {
    let soc_path = take_string(&mut args, "--spec")?;
    let sub = args
        .first()
        .cloned()
        .ok_or_else(|| FlowError::Usage("flow needs a subcommand (run|list|show)".into()))?;
    match sub.as_str() {
        "list" => {
            for spec in registry::registry() {
                println!("{:<10} {}", spec.name, spec.title);
            }
            Ok(())
        }
        "show" => {
            let name = args
                .get(1)
                .ok_or_else(|| FlowError::Usage("flow show needs an experiment name".into()))?;
            print!("{}", experiment_to_text(&registry::find(name)?));
            Ok(())
        }
        "run" => {
            let target = args.get(1).ok_or_else(|| {
                FlowError::Usage("flow run needs a file or experiment name".into())
            })?;
            // An existing file (noc-flow text format) wins over a
            // registry name of the same spelling, so a local spec can
            // never be shadowed by a built-in experiment.
            let file = if std::path::Path::new(target).exists() {
                let text = std::fs::read_to_string(target).map_err(|e| FlowError::Io {
                    path: target.clone(),
                    message: format!("cannot read: {e}"),
                })?;
                spec_from_text(&text)?
            } else {
                SpecFile::Experiment(registry::find(target).map_err(|_| {
                    FlowError::Usage(format!(
                        "'{target}' is neither a spec file nor a registered experiment \
                         (see 'flow list')"
                    ))
                })?)
            };
            match file {
                SpecFile::Experiment(spec) => {
                    if soc_path.is_some() {
                        return Err(FlowError::Usage(
                            "--spec only applies to 'flow NAME' config documents; an \
                             experiment spec declares its own benchmarks"
                                .into(),
                        ));
                    }
                    let output = run_spec(&spec)?;
                    print!("{}", render::render(&output));
                    Ok(())
                }
                SpecFile::Flow(config) => {
                    let soc_path = soc_path.ok_or_else(|| {
                        FlowError::Usage(
                            "running a flow config needs --spec SOCFILE (the design input)".into(),
                        )
                    })?;
                    let soc = read_soc(&soc_path)?;
                    let groups = UseCaseGroups::singletons(soc.use_case_count());
                    let ctx = config.build().run(&soc, &groups)?;
                    print_flow_outcome(&ctx)
                }
            }
        }
        other => Err(FlowError::Usage(format!(
            "unknown flow subcommand '{other}'"
        ))),
    }
}

fn cmd_perf(mut args: Vec<String>) -> Result<(), FlowError> {
    let json_path = take_string(&mut args, "--json")?;
    let label = take_string(&mut args, "--label")?.unwrap_or_else(|| "local".to_string());
    let points = noc_bench::perf();
    print!("{}", noc_bench::format_perf(&points));
    if let Some(path) = json_path {
        let record = noc_bench::perf_json::run_record(&label, noc_par::current_threads(), &points);
        noc_bench::perf_json::append_run(std::path::Path::new(&path), &record).map_err(|e| {
            FlowError::Io {
                path: path.clone(),
                message: format!("cannot write trajectory: {e}"),
            }
        })?;
        println!("perf record '{label}' appended to {path}");
    }
    Ok(())
}

fn cmd_frontier(mut args: Vec<String>) -> Result<(), FlowError> {
    let json_path = take_string(&mut args, "--json")?;
    let label = take_string(&mut args, "--label")?.unwrap_or_else(|| "local".to_string());
    let points = noc_bench::frontier()?;
    print!("{}", noc_bench::format_frontier(&points));
    if let Some(path) = json_path {
        let record =
            noc_bench::perf_json::frontier_record(&label, noc_par::current_threads(), &points);
        noc_bench::perf_json::append_run(std::path::Path::new(&path), &record).map_err(|e| {
            FlowError::Io {
                path: path.clone(),
                message: format!("cannot write trajectory: {e}"),
            }
        })?;
        println!("frontier record '{label}' appended to {path}");
    }
    Ok(())
}

/// Consumes the shared engine-configuration options (`serve` and
/// `replay` accept the same fabric/policy knobs over
/// [`noc_service::EngineConfig::default`]).
fn take_engine_config(args: &mut Vec<String>) -> Result<noc_service::EngineConfig, FlowError> {
    let defaults = noc_service::EngineConfig::default();
    let mode = match take_string(args, "--mode")? {
        Some(tok) => noc_service::AdmitMode::parse(&tok).ok_or_else(|| {
            FlowError::Usage(format!(
                "invalid --mode '{tok}' (expected incremental|resolve)"
            ))
        })?,
        None => defaults.mode,
    };
    Ok(noc_service::EngineConfig {
        rows: take_num(args, "--rows", defaults.rows)?,
        cols: take_num(args, "--cols", defaults.cols)?,
        nis_per_switch: take_num(args, "--nis", defaults.nis_per_switch)?,
        batch: take_num(args, "--batch", defaults.batch)?,
        budget: take_num(args, "--budget", defaults.budget)?,
        mode,
        ..defaults
    })
}

fn cmd_serve(mut args: Vec<String>) -> Result<(), FlowError> {
    let port: u16 = take_num(&mut args, "--port", 0)?;
    let journal = take_string(&mut args, "--journal")?;
    let cfg = take_engine_config(&mut args)?;
    let io_err = |e: std::io::Error| FlowError::Io {
        path: format!("port {port}"),
        message: format!("daemon failed: {e}"),
    };
    let server = match &journal {
        Some(path) => {
            let server = noc_service::Server::bind_with_journal(cfg, port, path).map_err(io_err)?;
            eprintln!("nocd journaling to {path} (recovered on startup)");
            server
        }
        None => noc_service::Server::bind(cfg, port).map_err(io_err)?,
    };
    // Status on stderr so scripted stdout parsing stays clean.
    eprintln!(
        "nocd listening on 127.0.0.1:{} (send 'shutdown' to stop)",
        server.port().map_err(io_err)?
    );
    server.run().map_err(io_err)
}

fn cmd_request(mut args: Vec<String>) -> Result<(), FlowError> {
    let port: u16 = take_num(&mut args, "--port", 0)?;
    let timeout_ms: Option<u64> = take_opt(&mut args, "--timeout-ms")?;
    let retries: u32 = take_num(&mut args, "--retries", 0)?;
    if port == 0 {
        return Err(FlowError::Usage("request needs --port P".into()));
    }
    if args.is_empty() {
        return Err(FlowError::Usage(
            "request needs a protocol line (e.g. request --port P add u0 flow 0 1 200)".into(),
        ));
    }
    let line = args.join(" ");
    let policy = noc_service::RetryPolicy {
        timeout: timeout_ms.map(std::time::Duration::from_millis),
        retries,
        ..noc_service::RetryPolicy::default()
    };
    let addr = std::net::SocketAddr::from(([127, 0, 0, 1], port));
    let response = noc_service::request(addr, &line, &policy).map_err(|e| FlowError::Io {
        path: format!("127.0.0.1:{port}"),
        message: format!("request failed: {e}"),
    })?;
    print!("{response}");
    Ok(())
}

fn cmd_replay(mut args: Vec<String>) -> Result<(), FlowError> {
    let requests: u64 = take_num(&mut args, "--requests", 200)?;
    let seed: u64 = take_num(&mut args, "--seed", 2006)?;
    let transcript = take_flag(&mut args, "--transcript");
    let cfg = take_engine_config(&mut args)?;
    let mode = cfg.mode;
    let replay = noc_service::replay(cfg, requests, seed).map_err(|m| FlowError::Parse {
        line: 0,
        message: m,
    })?;
    if transcript {
        print!("{}", replay.transcript);
    }
    let s = replay.stats;
    println!(
        "replayed {requests} requests (seed {seed}, mode {}): admitted={} rejected={} \
         blocking={:.4} displaced={} evictions={} flushes={}",
        mode.token(),
        s.admitted,
        s.rejected,
        s.blocking(),
        s.displaced,
        s.evictions,
        s.flushes
    );
    Ok(())
}

fn cmd_service(mut args: Vec<String>) -> Result<(), FlowError> {
    let json_path = take_string(&mut args, "--json")?;
    let label = take_string(&mut args, "--label")?.unwrap_or_else(|| "local".to_string());
    let points = noc_bench::service()?;
    print!("{}", noc_bench::format_service(&points));
    if let Some(path) = json_path {
        let record =
            noc_bench::perf_json::service_record(&label, noc_par::current_threads(), &points);
        noc_bench::perf_json::append_run(std::path::Path::new(&path), &record).map_err(|e| {
            FlowError::Io {
                path: path.clone(),
                message: format!("cannot write trajectory: {e}"),
            }
        })?;
        println!("service record '{label}' appended to {path}");
    }
    Ok(())
}

fn cmd_resilience(mut args: Vec<String>) -> Result<(), FlowError> {
    let json_path = take_string(&mut args, "--json")?;
    let label = take_string(&mut args, "--label")?.unwrap_or_else(|| "local".to_string());
    let points = noc_bench::resilience()?;
    print!("{}", noc_bench::format_resilience(&points));
    if let Some(path) = json_path {
        let record =
            noc_bench::perf_json::resilience_record(&label, noc_par::current_threads(), &points);
        noc_bench::perf_json::append_run(std::path::Path::new(&path), &record).map_err(|e| {
            FlowError::Io {
                path: path.clone(),
                message: format!("cannot write trajectory: {e}"),
            }
        })?;
        println!("resilience record '{label}' appended to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = match take_threads(&mut args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match take_trace(&mut args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.is_empty() {
        return usage();
    }
    let cmd = args.remove(0);
    if let Some(req) = &trace {
        noc_obs::install(req.mode);
    }
    let run = || match cmd.as_str() {
        "gen" => Some(cmd_gen(args)),
        "design" => Some(cmd_design(args)),
        "flow" => Some(cmd_flow(args)),
        "be-burst" | "be_burst" => {
            print!("{}", noc_bench::format_be_burst(&noc_bench::be_burst()));
            Some(Ok(()))
        }
        "perf" => Some(cmd_perf(args)),
        "frontier" => Some(cmd_frontier(args)),
        "serve" => Some(cmd_serve(args)),
        "request" => Some(cmd_request(args)),
        "replay" => Some(cmd_replay(args)),
        "service" => Some(cmd_service(args)),
        "resilience" => Some(cmd_resilience(args)),
        _ => None,
    };
    let result = match threads {
        Some(n) => noc_par::with_threads(n, run),
        None => run(),
    };
    if let Some(req) = &trace {
        if let Some(finished) = noc_obs::finish() {
            match write_trace(req, &finished) {
                // Status on stderr: stdout stays byte-identical with
                // and without a trace.
                Ok(()) => eprintln!(
                    "trace written to {} ({} spans)",
                    req.path,
                    finished.span_count()
                ),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    match result {
        None => usage(),
        Some(Ok(())) => ExitCode::SUCCESS,
        Some(Err(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
