//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p noc-bench --bin experiments -- all
//! cargo run --release -p noc-bench --bin experiments -- fig6a fig7b
//! ```
//!
//! Every experiment is an `ExperimentSpec` in the `noc-flow` registry,
//! executed by the generic runner and printed by the shared renderer —
//! this binary only resolves names. Valid names: `fig6a`, `fig6b`,
//! `fig6c`, `fig7a`, `fig7b`, `fig7c`, `verify`, `ablation`, `runtime`,
//! `be_burst`, `headline`, `perf`, `frontier`, `service`, `all`.
//! `fig6b`/`fig6c`
//! accept the paper's prose 40-use-case extension with `fig6b+` /
//! `fig6c+`. `be_burst` sweeps best-effort traffic burstiness against
//! multi-hop chain contention (see `docs/SIMULATION.md`); `perf` prints
//! the hot-path op-counter table behind the `BENCH_nocmap.json`
//! trajectory (see `docs/PERFORMANCE.md`; it is excluded from `all`
//! because its wall-time cells are machine-dependent); `frontier`
//! prints the strategy-portfolio quality-vs-ops table (all cells
//! deterministic, see `docs/STRATEGIES.md`; excluded from `all` to
//! keep the legacy aggregate output stable); `service` prints the
//! online-admission blocking/reconfiguration-cost table (all cells
//! deterministic, see `docs/SERVICE.md`; also excluded from `all`).
//! The pipeline itself is documented in `docs/PIPELINE.md`.
//!
//! A global `--threads N` pins the `noc-par` worker count (same effect
//! as `NOC_PAR_THREADS=N`); every experiment produces identical numbers
//! at any setting, only wall-clock changes. The `runtime` experiment
//! additionally reports the measured 1-thread vs N-thread speedup.
//!
//! A global `--trace FILE [--trace-mode ops|wall]` (env fallback:
//! `NOC_TRACE` / `NOC_TRACE_MODE`) records a span trace of the run —
//! same semantics as `nocmap_cli` (see `docs/OBSERVABILITY.md`); the
//! status note goes to stderr so stdout stays byte-identical.

use noc_flow::cli::{take_threads, take_trace, write_trace};
use noc_flow::{registry, render, run_spec};

fn run(name: &str) {
    let spec = match registry::find(name) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{e}");
            return;
        }
    };
    match run_spec(&spec) {
        Ok(output) => print!("{}", render::render(&output)),
        Err(e) => println!("{name} failed: {e}"),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = match take_threads(&mut args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let trace = match take_trace(&mut args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if let Some(req) = &trace {
        noc_obs::install(req.mode);
    }
    let run_all = move || {
        if args.is_empty() || args.iter().any(|a| a == "all") {
            for name in [
                "fig6a", "fig6b+", "fig6c+", "fig7a", "fig7b", "fig7c", "verify", "ablation",
                "runtime", "be_burst", "headline",
            ] {
                run(name);
            }
        } else {
            for name in &args {
                run(name);
            }
        }
    };
    match threads {
        Some(n) => noc_par::with_threads(n, run_all),
        None => run_all(),
    }
    if let Some(req) = &trace {
        if let Some(finished) = noc_obs::finish() {
            match write_trace(req, &finished) {
                // Stderr keeps stdout byte-identical with and without
                // a trace.
                Ok(()) => eprintln!(
                    "trace written to {} ({} spans)",
                    req.path,
                    finished.span_count()
                ),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
