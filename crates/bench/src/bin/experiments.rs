//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p noc-bench --bin experiments -- all
//! cargo run --release -p noc-bench --bin experiments -- fig6a fig7b
//! ```
//!
//! Valid experiment names: `fig6a`, `fig6b`, `fig6c`, `fig7a`, `fig7b`,
//! `fig7c`, `verify`, `ablation`, `runtime`, `be_burst`, `headline`,
//! `all`. `fig6b`/`fig6c` accept the paper's prose 40-use-case
//! extension with `fig6b+` / `fig6c+`. `be_burst` sweeps best-effort
//! traffic burstiness against multi-hop chain contention (see
//! `docs/SIMULATION.md`).
//!
//! A global `--threads N` pins the `noc-par` worker count (same effect
//! as `NOC_PAR_THREADS=N`); every experiment produces identical numbers
//! at any setting, only wall-clock changes. The `runtime` experiment
//! additionally reports the measured 1-thread vs N-thread speedup.

use noc_bench::{
    ablations, be_burst, fig6a, fig6b, fig6c, fig7a, fig7b, fig7c, format_be_burst, headline,
    runtime_speedups, runtimes, verify_designs, Comparison,
};

fn print_comparisons(title: &str, comps: &[Comparison]) {
    println!("\n== {title} ==");
    println!("{:<8} {:>8} {:>8} {:>12}", "bench", "ours", "WC", "ours/WC");
    for c in comps {
        let fmt = |v: Option<usize>| v.map_or("fail".to_string(), |n| n.to_string());
        let norm = c
            .normalized()
            .map_or("-".to_string(), |n| format!("{n:.3}"));
        println!(
            "{:<8} {:>8} {:>8} {:>12}",
            c.label,
            fmt(c.ours),
            fmt(c.wc),
            norm
        );
    }
}

fn run(name: &str) {
    match name {
        "fig6a" => print_comparisons("Fig 6(a): SoC designs, switch count ours vs WC", &fig6a()),
        "fig6b" | "fig6b+" => print_comparisons(
            "Fig 6(b): Sp benchmarks, switch count ours vs WC",
            &fig6b(name.ends_with('+')),
        ),
        "fig6c" | "fig6c+" => print_comparisons(
            "Fig 6(c): Bot benchmarks, switch count ours vs WC",
            &fig6c(name.ends_with('+')),
        ),
        "fig7a" => {
            println!("\n== Fig 7(a): area-frequency trade-off, D1 ==");
            println!("{:>10} {:>10} {:>12}", "MHz", "switches", "area (mm2)");
            for p in fig7a() {
                let s = p.switches.map_or("fail".into(), |n: usize| n.to_string());
                let a = p.area_mm2.map_or("-".into(), |a| format!("{a:.3}"));
                println!("{:>10} {:>10} {:>12}", p.frequency.as_mhz_f64(), s, a);
            }
        }
        "fig7b" => match fig7b() {
            Ok(points) => {
                println!("\n== Fig 7(b): DVS/DFS power savings ==");
                println!("{:<8} {:>12} per-use-case min MHz", "design", "savings");
                for p in points {
                    let mhz: Vec<String> = p
                        .per_use_case_mhz
                        .iter()
                        .map(|f| format!("{f:.0}"))
                        .collect();
                    println!(
                        "{:<8} {:>11.1}% [{}]",
                        p.label,
                        100.0 * p.savings,
                        mhz.join(", ")
                    );
                }
            }
            Err(e) => println!("fig7b failed: {e}"),
        },
        "fig7c" => match fig7c() {
            Ok(points) => {
                println!("\n== Fig 7(c): frequency vs parallel use-cases (Sp, 10 UC) ==");
                println!("{:>10} {:>14}", "parallel", "min MHz");
                for p in points {
                    let f = p
                        .frequency
                        .map_or("infeasible".into(), |f| format!("{:.0}", f.as_mhz_f64()));
                    println!("{:>10} {:>14}", p.parallel, f);
                }
            }
            Err(e) => println!("fig7c failed: {e}"),
        },
        "verify" => match verify_designs() {
            Ok(points) => {
                println!("\n== Phase-4 verification (analytical + simulation) ==");
                println!(
                    "{:<8} {:>10} {:>12} {:>11} {:>11} {:>10}",
                    "design", "use-cases", "connections", "contention", "late words", "delivered"
                );
                for p in points {
                    println!(
                        "{:<8} {:>10} {:>12} {:>11} {:>11} {:>10}",
                        p.label,
                        p.use_cases,
                        p.connections,
                        p.contention,
                        p.late_words,
                        if p.all_delivered { "yes" } else { "NO" }
                    );
                }
            }
            Err(e) => println!("verify failed: {e}"),
        },
        "ablation" => {
            println!("\n== Ablations (Sp, 5 use-cases) ==");
            println!("{:<24} {:>9} {:>16}", "variant", "switches", "comm cost");
            for p in ablations() {
                let s = p.switches.map_or("fail".into(), |n| n.to_string());
                let cc = p.comm_cost.map_or("-".into(), |v| format!("{v:.0}"));
                println!("{:<24} {:>9} {:>16}", p.label, s, cc);
            }
        }
        "runtime" => {
            println!("\n== Runtime (paper: 'less than few minutes' per benchmark) ==");
            println!("{:<8} {:>12} {:>12}", "bench", "ours", "WC");
            for r in runtimes() {
                println!("{:<8} {:>12?} {:>12?}", r.label, r.ours, r.wc);
            }
            let speedups = runtime_speedups();
            let threads = speedups.first().map_or(1, |s| s.threads);
            println!("\n-- parallel speedup (1 thread vs {threads} threads) --");
            println!(
                "{:<8} {:>12} {:>12} {:>9}",
                "bench", "1 thread", "parallel", "speedup"
            );
            for s in speedups {
                println!(
                    "{:<8} {:>12?} {:>12?} {:>8.2}x",
                    s.label,
                    s.sequential,
                    s.parallel,
                    s.speedup()
                );
            }
        }
        "be_burst" => print!("{}", format_be_burst(&be_burst())),
        "headline" => match headline() {
            Ok(h) => {
                println!("\n== Headline numbers (abstract) ==");
                println!(
                    "mean NoC area (switch) reduction vs WC: {:.1}% (paper: ~80%)",
                    100.0 * h.mean_area_reduction
                );
                println!(
                    "mean DVS/DFS power saving:              {:.1}% (paper: ~54%)",
                    100.0 * h.mean_power_saving
                );
            }
            Err(e) => println!("headline failed: {e}"),
        },
        other => eprintln!("unknown experiment '{other}'"),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = None;
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        if pos + 1 >= args.len() {
            eprintln!("error: --threads needs a value");
            std::process::exit(1);
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        match value.parse::<usize>() {
            Ok(n) => threads = Some(n),
            Err(_) => {
                eprintln!("error: invalid --threads '{value}'");
                std::process::exit(1);
            }
        }
    }
    let run_all = move || {
        if args.is_empty() || args.iter().any(|a| a == "all") {
            for name in [
                "fig6a", "fig6b+", "fig6c+", "fig7a", "fig7b", "fig7c", "verify", "ablation",
                "runtime", "be_burst", "headline",
            ] {
                run(name);
            }
        } else {
            for name in &args {
                run(name);
            }
        }
    };
    match threads {
        Some(n) => noc_par::with_threads(n, run_all),
        None => run_all(),
    }
}
