//! Experiment harness regenerating every figure of the paper.
//!
//! Each `figN` function reproduces one artifact of the evaluation section
//! (Section 6) and returns its data points; the `experiments` binary
//! prints them as tables. `EXPERIMENTS.md` records these outputs next to
//! the paper's reported values.
//!
//! | Function | Paper artifact |
//! |---|---|
//! | [`fig6a`] | Fig. 6(a): normalized switch count, SoC designs D1–D4 |
//! | [`fig6b`] | Fig. 6(b): normalized switch count vs use-cases, Sp |
//! | [`fig6c`] | Fig. 6(c): normalized switch count vs use-cases, Bot |
//! | [`fig7a`] | Fig. 7(a): area–frequency trade-off for D1 |
//! | [`fig7b`] | Fig. 7(b): DVS/DFS power savings for D1–D4 |
//! | [`fig7c`] | Fig. 7(c): NoC frequency vs parallel use-cases |
//! | [`headline`] | §1/§6 aggregates: mean area & power reduction |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use noc_benchgen::{BottleneckConfig, SocDesign, SpreadConfig};
use noc_sim::{simulate_mixed, BestEffortFlow, Connection, TrafficModel};
use noc_tdma::TdmaSpec;
use noc_topology::units::{Bandwidth, Frequency, LinkWidth};
use noc_topology::{AreaModel, DvsModel};
use noc_usecase::spec::SocSpec;
use noc_usecase::UseCaseGroups;
use nocmap::design::design_smallest_mesh;
use nocmap::dvs::{dvs_savings, parallel_min_frequency};
use nocmap::wc::design_worst_case;
use nocmap::{MapError, MapperOptions, MappingSolution};

/// Growth cap used everywhere: the paper reports WC failing "even onto a
/// 20 × 20 mesh topology", so 400 switches is the search bound.
pub const MAX_SWITCHES: usize = 400;

/// Default seed for synthetic benchmarks (results are deterministic).
pub const SEED: u64 = 2006;

/// Outcome of one ours-vs-WC comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Benchmark label (design name or use-case count).
    pub label: String,
    /// Switches used by the multi-use-case method.
    pub ours: Option<usize>,
    /// Switches used by the worst-case baseline.
    pub wc: Option<usize>,
}

impl Comparison {
    /// `ours / wc`, when both methods succeeded — the y-axis of Figure 6.
    pub fn normalized(&self) -> Option<f64> {
        match (self.ours, self.wc) {
            (Some(a), Some(b)) if b > 0 => Some(a as f64 / b as f64),
            _ => None,
        }
    }
}

fn run_pair(label: impl Into<String>, soc: &SocSpec) -> Comparison {
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    let groups = UseCaseGroups::singletons(soc.use_case_count());
    // The two methods are independent design flows — fork them.
    let (ours, wc) = noc_par::join(
        || {
            design_smallest_mesh(soc, &groups, spec, &opts, MAX_SWITCHES)
                .ok()
                .map(|s| s.switch_count())
        },
        || {
            design_worst_case(soc, spec, &opts, MAX_SWITCHES)
                .ok()
                .map(|s| s.switch_count())
        },
    );
    Comparison {
        label: label.into(),
        ours,
        wc,
    }
}

/// Figure 6(a): switch counts for the four SoC designs, ours vs WC.
pub fn fig6a() -> Vec<Comparison> {
    noc_par::par_map(SocDesign::ALL.to_vec(), |_, d| {
        run_pair(d.label(), &d.generate())
    })
}

/// Figure 6(b): Sp benchmarks, 20 cores, varying use-case counts.
///
/// `extended` additionally runs the 40-use-case point the paper describes
/// in prose (ours: 2×2; WC: fails at 20×20).
pub fn fig6b(extended: bool) -> Vec<Comparison> {
    let mut counts = vec![2usize, 5, 10, 15, 20];
    if extended {
        counts.push(40);
    }
    noc_par::par_map(counts, |_, n| {
        run_pair(
            format!("{n}"),
            &SpreadConfig::paper(n).generate(SEED + n as u64),
        )
    })
}

/// Figure 6(c): Bot benchmarks, 20 cores, varying use-case counts.
pub fn fig6c(extended: bool) -> Vec<Comparison> {
    let mut counts = vec![2usize, 5, 10, 15, 20];
    if extended {
        counts.push(40);
    }
    noc_par::par_map(counts, |_, n| {
        run_pair(
            format!("{n}"),
            &BottleneckConfig::paper(n).generate(SEED + n as u64),
        )
    })
}

/// One point of the area–frequency Pareto curve.
#[derive(Debug, Clone)]
pub struct AreaPoint {
    /// NoC clock frequency.
    pub frequency: Frequency,
    /// Switch count of the smallest valid mesh, if any.
    pub switches: Option<usize>,
    /// Total switch area (mm²) of that mesh.
    pub area_mm2: Option<f64>,
}

/// Figure 7(a): area–frequency trade-off for the D1 design.
pub fn fig7a() -> Vec<AreaPoint> {
    let soc = SocDesign::D1.generate();
    let groups = UseCaseGroups::singletons(soc.use_case_count());
    let opts = MapperOptions::default();
    let area = AreaModel::cmos130();
    let sweep = vec![
        100u64, 150, 200, 250, 300, 350, 400, 500, 650, 800, 1000, 1250, 1500, 1750, 2000,
    ];
    noc_par::par_map(sweep, |_, mhz| {
        let f = Frequency::from_mhz(mhz);
        let sol = design_smallest_mesh(
            &soc,
            &groups,
            TdmaSpec::paper_default().at_frequency(f),
            &opts,
            MAX_SWITCHES,
        )
        .ok();
        AreaPoint {
            frequency: f,
            switches: sol.as_ref().map(MappingSolution::switch_count),
            area_mm2: sol.as_ref().map(|s| s.area_mm2(&area)),
        }
    })
}

/// One design's DVS/DFS saving.
#[derive(Debug, Clone)]
pub struct DvsPoint {
    /// Design label.
    pub label: String,
    /// Power-saving fraction (Figure 7(b) plots this as a percentage).
    pub savings: f64,
    /// Per-use-case minimum frequencies (MHz) behind the saving.
    pub per_use_case_mhz: Vec<f64>,
}

/// Figure 7(b): DVS/DFS power savings for D1–D4.
///
/// # Errors
///
/// Propagates [`MapError`] if any design cannot be mapped at 500 MHz.
pub fn fig7b() -> Result<Vec<DvsPoint>, MapError> {
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    let dvs = DvsModel::cmos130();
    noc_par::try_par_map(SocDesign::ALL.to_vec(), |_, d| {
        let soc = d.generate();
        let groups = UseCaseGroups::singletons(soc.use_case_count());
        let sol = design_smallest_mesh(&soc, &groups, spec, &opts, MAX_SWITCHES)?;
        let report = dvs_savings(&soc, &groups, &sol, &opts, &dvs, Frequency::from_mhz(10))?;
        Ok(DvsPoint {
            label: d.label().to_string(),
            savings: report.savings_fraction(),
            per_use_case_mhz: report
                .per_use_case
                .iter()
                .map(|(_, f)| f.as_mhz_f64())
                .collect(),
        })
    })
}

/// One point of the parallel-use-case frequency study.
#[derive(Debug, Clone)]
pub struct ParallelPoint {
    /// Number of use-cases running in parallel.
    pub parallel: usize,
    /// Minimum NoC frequency supporting the compound mode, if feasible on
    /// the base mesh.
    pub frequency: Option<Frequency>,
}

/// Figure 7(c): required NoC frequency vs number of parallel use-cases,
/// for a 20-core 10-use-case Sp benchmark.
///
/// # Errors
///
/// Propagates [`MapError`] if the base design cannot be mapped.
pub fn fig7c() -> Result<Vec<ParallelPoint>, MapError> {
    // Parallel use-cases in a real SoC share physical connections (that
    // is what makes compound modes expensive): use the pooled variant of
    // the Sp benchmark so same-pair bandwidths genuinely add up.
    let mut cfg = SpreadConfig::paper(10);
    cfg.pair_pool = Some(150);
    cfg.versatile_fraction = 0.3;
    let soc = cfg.generate(SEED);
    let groups = UseCaseGroups::singletons(soc.use_case_count());
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    let base = design_smallest_mesh(&soc, &groups, spec, &opts, MAX_SWITCHES)?;
    Ok(noc_par::par_map((1..=4).collect(), |_, k| {
        let f = parallel_min_frequency(
            &soc,
            k,
            base.topology(),
            spec,
            &opts,
            Frequency::from_mhz(10),
            Frequency::from_ghz(4),
        )
        .ok()
        .map(|(f, _)| f);
        ParallelPoint {
            parallel: k,
            frequency: f,
        }
    }))
}

/// One row of the runtime study.
#[derive(Debug, Clone)]
pub struct RuntimePoint {
    /// Benchmark label.
    pub label: String,
    /// Wall-clock time of the full multi-use-case design flow.
    pub ours: std::time::Duration,
    /// Wall-clock time of the WC design flow (including failures).
    pub wc: std::time::Duration,
}

/// Runtime study backing the paper's Section 6.2 remark that "both the
/// methods produced the results in less than few minutes on a Linux
/// workstation": wall-clock per benchmark for both methods.
pub fn runtimes() -> Vec<RuntimePoint> {
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    let mut rows = Vec::new();
    let mut run = |label: String, soc: &SocSpec| {
        let groups = UseCaseGroups::singletons(soc.use_case_count());
        let t0 = std::time::Instant::now();
        let _ = design_smallest_mesh(soc, &groups, spec, &opts, MAX_SWITCHES);
        let ours = t0.elapsed();
        let t1 = std::time::Instant::now();
        let _ = design_worst_case(soc, spec, &opts, MAX_SWITCHES);
        let wc = t1.elapsed();
        rows.push(RuntimePoint { label, ours, wc });
    };
    for d in SocDesign::ALL {
        run(d.label().to_string(), &d.generate());
    }
    for n in [10usize, 20, 40] {
        run(
            format!("sp{n}"),
            &SpreadConfig::paper(n).generate(SEED + n as u64),
        );
    }
    rows
}

/// One row of the parallel-speedup study: the same design flow timed at
/// one worker and at the ambient `noc-par` thread count.
#[derive(Debug, Clone)]
pub struct SpeedupPoint {
    /// Benchmark label.
    pub label: String,
    /// Wall-clock with the effective thread count pinned to 1.
    pub sequential: std::time::Duration,
    /// Wall-clock at the ambient thread count.
    pub parallel: std::time::Duration,
    /// The ambient thread count the parallel run used.
    pub threads: usize,
}

impl SpeedupPoint {
    /// `sequential / parallel` — how much faster the parallel run was.
    pub fn speedup(&self) -> f64 {
        let par = self.parallel.as_secs_f64();
        if par <= 0.0 {
            1.0
        } else {
            self.sequential.as_secs_f64() / par
        }
    }
}

/// Times the multi-use-case design flow on multi-group suites at one
/// worker vs the ambient thread count (`NOC_PAR_THREADS` or a
/// [`noc_par::with_threads`] override). The solutions of both runs are
/// asserted identical — the determinism contract made visible — and the
/// speedup backs the runtime report of the `experiments` binary.
///
/// The suites use a shared pair pool (like the Figure 7(c) study), so
/// the same core pairs communicate in many use-cases: that is the
/// workload whose per-group routing the mapper parallelizes. Speedup
/// requires idle cores — on a single-core host expect ≈ 1.0x (the
/// parallel pass is work-conserving, never speculative).
pub fn runtime_speedups() -> Vec<SpeedupPoint> {
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    let threads = noc_par::current_threads();
    let mut rows = Vec::new();
    for n in [10usize, 20, 40] {
        let mut cfg = SpreadConfig::paper(n);
        cfg.pair_pool = Some(150);
        cfg.versatile_fraction = 0.3;
        let soc = cfg.generate(SEED + n as u64);
        let groups = UseCaseGroups::singletons(soc.use_case_count());
        let run = || {
            let t0 = std::time::Instant::now();
            let sol = design_smallest_mesh(&soc, &groups, spec, &opts, MAX_SWITCHES).ok();
            (t0.elapsed(), sol)
        };
        let (sequential, seq_sol) = noc_par::with_threads(1, run);
        let (parallel, par_sol) = run();
        assert_eq!(
            seq_sol, par_sol,
            "thread count must not change the solution (sp{n})"
        );
        rows.push(SpeedupPoint {
            label: format!("sp{n}"),
            sequential,
            parallel,
            threads,
        });
    }
    rows
}

/// Verification outcome for one design: the paper's phase-4 check
/// (analytical + simulation) over every use-case.
#[derive(Debug, Clone)]
pub struct VerifyPoint {
    /// Design label.
    pub label: String,
    /// Use-cases simulated.
    pub use_cases: usize,
    /// GT connections configured across all groups.
    pub connections: usize,
    /// Slot-contention events observed (must be 0).
    pub contention: u64,
    /// Words that exceeded their analytical latency bound (must be 0).
    pub late_words: u64,
    /// Whether every injected word was delivered or still in flight.
    pub all_delivered: bool,
}

/// Phase 4 of the methodology across the four SoC designs: map, verify
/// analytically, then replay every use-case on the cycle-level simulator.
///
/// # Errors
///
/// Propagates [`MapError`] if a design fails to map or verify.
pub fn verify_designs() -> Result<Vec<VerifyPoint>, MapError> {
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    noc_par::try_par_map(SocDesign::ALL.to_vec(), |_, d| {
        let soc = d.generate();
        let groups = UseCaseGroups::singletons(soc.use_case_count());
        let sol = design_smallest_mesh(&soc, &groups, spec, &opts, MAX_SWITCHES)?;
        sol.verify(&soc, &groups).map_err(MapError::Inconsistent)?;
        // Replay every use-case on the simulator, in parallel; the
        // aggregates are integer sums and an `and`, so reduction order
        // cannot change them.
        let reports = noc_par::par_map((0..soc.use_case_count()).collect(), |_, uc| {
            noc_sim::simulate_use_case(
                &sol,
                &soc,
                &groups,
                uc,
                &noc_sim::SimConfig {
                    cycles: 4096,
                    ..Default::default()
                },
            )
        });
        let contention = reports.iter().map(|r| r.contention_violations).sum();
        let late = reports.iter().map(|r| r.latency_violations).sum();
        let delivered = reports.iter().all(|r| r.all_flows_delivered());
        Ok(VerifyPoint {
            label: d.label().to_string(),
            use_cases: soc.use_case_count(),
            connections: sol.connection_count(),
            contention,
            late_words: late,
            all_delivered: delivered,
        })
    })
}

/// Quality outcome of one ablation variant.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Variant label.
    pub label: String,
    /// Switches of the smallest feasible mesh, if any.
    pub switches: Option<usize>,
    /// Bandwidth-weighted hop cost of the solution.
    pub comm_cost: Option<f64>,
}

/// Quality ablations of the design choices DESIGN.md calls out, on a
/// 5-use-case Sp benchmark: the paper's heuristic ingredients
/// (bandwidth-sorted processing, unified placement, per-use-case resource
/// states) against naive baselines, plus annealing refinement.
pub fn ablations() -> Vec<AblationPoint> {
    use nocmap::anneal::{refine, AnnealConfig};
    use nocmap::Placement;

    let soc = SpreadConfig::paper(5).generate(11);
    let spec = TdmaSpec::paper_default();
    let groups = UseCaseGroups::singletons(5);
    let run = |label: &str, groups: &UseCaseGroups, opts: &MapperOptions| {
        let sol = design_smallest_mesh(&soc, groups, spec, opts, MAX_SWITCHES).ok();
        AblationPoint {
            label: label.to_string(),
            switches: sol.as_ref().map(MappingSolution::switch_count),
            comm_cost: sol.as_ref().map(MappingSolution::comm_cost),
        }
    };

    let paper = MapperOptions::default();
    let single = UseCaseGroups::single_group(5);
    let variants: Vec<(&str, &UseCaseGroups, MapperOptions)> = vec![
        ("paper-defaults", &groups, paper.clone()),
        (
            "unsorted-flows",
            &groups,
            MapperOptions {
                sort_by_bandwidth: false,
                prefer_mapped: false,
                ..paper.clone()
            },
        ),
        (
            "round-robin-placement",
            &groups,
            MapperOptions {
                placement: Placement::RoundRobin,
                ..paper.clone()
            },
        ),
        ("single-shared-config", &single, paper.clone()),
    ];
    let mut points = noc_par::par_map(variants, |_, (label, groups, opts)| {
        run(label, groups, &opts)
    });
    // Annealing refinement of the paper-default solution, with a small
    // multi-chain portfolio (chains are themselves parallelized).
    if let Ok(base) = design_smallest_mesh(&soc, &groups, spec, &paper, MAX_SWITCHES) {
        let refined = refine(
            &soc,
            &groups,
            &paper,
            &base,
            &AnnealConfig {
                iterations: 100,
                chains: 2,
                ..Default::default()
            },
        )
        .ok();
        points.push(AblationPoint {
            label: "with-annealing".to_string(),
            switches: refined.as_ref().map(MappingSolution::switch_count),
            comm_cost: refined.as_ref().map(MappingSolution::comm_cost),
        });
    }
    points
}

/// One point of the BE burstiness × hop-count sweep: a fixed traffic
/// shape and chain depth, with the aggregate best-effort outcome.
#[derive(Debug, Clone)]
pub struct BeBurstPoint {
    /// Traffic-model label (`constant`, `onoff-1/2`, …).
    pub model: String,
    /// Switch-to-switch hops of each chained BE flow.
    pub hops: usize,
    /// Words injected across all BE flows.
    pub injected: u64,
    /// Words delivered across all BE flows.
    pub delivered: u64,
    /// Words still queued or in flight when the window closed.
    pub backlog: u64,
    /// Delivery-weighted mean BE word latency in cycles.
    pub mean_latency_cycles: f64,
    /// Worst BE word latency in cycles.
    pub max_latency_cycles: u64,
    /// Deepest per-flow outstanding backlog observed at any cycle.
    pub peak_backlog_words: u64,
    /// Deepest per-link BE queue observed at any cycle.
    pub max_queue_depth: usize,
}

/// The scenario behind one [`BeBurstPoint`]: three chained BE flows
/// (consecutive flows overlap on `hops − 1` interior links) riding the
/// leftover capacity of a GT trunk that spans the whole chain and owns
/// half the slot table. Every flow injects 200 MB/s on average; only the
/// burst shape varies.
fn be_burst_point(label: &str, model: &TrafficModel, hops: usize) -> BeBurstPoint {
    const FLOWS: usize = 3;
    let spec = TdmaSpec::new(16, Frequency::from_mhz(500), LinkWidth::BITS_32);
    let (mesh, routes) = noc_benchgen::chained_chain(FLOWS, hops);
    let trunk = noc_benchgen::route_between(&mesh, (0, 0), (0, mesh.cols() - 1));
    let base_slots: Vec<usize> = (0..spec.slots() / 2).collect();
    let bound = spec.worst_case_latency_cycles(&base_slots, trunk.path.len());
    let gt = Connection {
        key: (trunk.src, trunk.dst),
        path: trunk.path.clone(),
        base_slots,
        // Half the table at a 2000 MB/s link = 1000 MB/s provisioned.
        inject_bandwidth: Bandwidth::from_mbps(1000),
        traffic: TrafficModel::Constant,
        latency_bound_cycles: Some(bound),
    };
    let be: Vec<BestEffortFlow> = routes
        .iter()
        .map(|r| BestEffortFlow {
            key: (r.src, r.dst),
            path: r.path.clone(),
            inject_bandwidth: Bandwidth::from_mbps(200),
            traffic: model.clone(),
        })
        .collect();
    let report = simulate_mixed(&spec, &[gt], &be, 16_384);
    assert_eq!(
        report.guaranteed.contention_violations, 0,
        "the GT trunk owns its slots exclusively"
    );
    let (mut injected, mut delivered, mut backlog) = (0u64, 0u64, 0u64);
    let (mut lat_total, mut lat_max, mut peak) = (0u64, 0u64, 0u64);
    for stats in report.best_effort.values() {
        injected += stats.injected_words;
        delivered += stats.delivered_words;
        backlog += stats.backlog_words;
        lat_total += stats.total_latency_cycles;
        lat_max = lat_max.max(stats.max_latency_cycles);
        peak = peak.max(stats.peak_backlog_words);
    }
    BeBurstPoint {
        model: label.to_string(),
        hops,
        injected,
        delivered,
        backlog,
        mean_latency_cycles: if delivered == 0 {
            0.0
        } else {
            lat_total as f64 / delivered as f64
        },
        max_latency_cycles: lat_max,
        peak_backlog_words: peak,
        max_queue_depth: report.max_be_queue_depth,
    }
}

/// The burstiness × hop-count sweep over multi-hop BE contention chains:
/// four traffic shapes at one average rate (smooth, two on/off duty
/// cycles, and a seeded MMPP-style random-burst source) crossed with
/// four chain depths. Points are evaluated in parallel via [`noc_par`];
/// every statistic is an integer aggregate (the mean is one final
/// division), so the table is byte-identical at any thread count.
pub fn be_burst() -> Vec<BeBurstPoint> {
    let models: Vec<(&str, TrafficModel)> = vec![
        ("constant", TrafficModel::Constant),
        (
            "onoff-1/2",
            TrafficModel::OnOff {
                period: 64,
                on: 32,
                phase: 0,
            },
        ),
        (
            "onoff-1/8",
            TrafficModel::OnOff {
                period: 256,
                on: 32,
                phase: 0,
            },
        ),
        (
            "mmpp-1/8",
            TrafficModel::RandomBursts {
                mean_on: 32,
                mean_off: 224,
                seed: SEED,
            },
        ),
    ];
    let points: Vec<(&str, TrafficModel, usize)> = models
        .into_iter()
        .flat_map(|(label, model)| {
            [2usize, 4, 6, 8]
                .into_iter()
                .map(move |hops| (label, model.clone(), hops))
        })
        .collect();
    noc_par::par_map(points, |_, (label, model, hops)| {
        be_burst_point(label, &model, hops)
    })
}

/// Renders the [`be_burst`] sweep as the fixed-width table both CLIs
/// print — one shared formatter so `experiments -- be_burst` and
/// `nocmap_cli be-burst` emit byte-identical output.
pub fn format_be_burst(points: &[BeBurstPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n== BE burst sweep (3 chained BE flows @ 200 MB/s avg, GT trunk owns 8/16 slots) =="
    );
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>9} {:>10} {:>8} {:>9} {:>8} {:>10} {:>10}",
        "model",
        "hops",
        "injected",
        "delivered",
        "backlog",
        "mean lat",
        "max lat",
        "peak blog",
        "max queue"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:<10} {:>5} {:>9} {:>10} {:>8} {:>9.1} {:>8} {:>10} {:>10}",
            p.model,
            p.hops,
            p.injected,
            p.delivered,
            p.backlog,
            p.mean_latency_cycles,
            p.max_latency_cycles,
            p.peak_backlog_words,
            p.max_queue_depth
        );
    }
    out
}

/// Headline aggregates the abstract quotes: mean NoC area reduction
/// (switch count, ours vs WC) and mean DVS/DFS power saving over the SoC
/// designs.
#[derive(Debug, Clone)]
pub struct Headline {
    /// Mean `1 - ours/wc` over benchmarks where both methods succeed.
    pub mean_area_reduction: f64,
    /// Mean DVS/DFS saving over D1–D4.
    pub mean_power_saving: f64,
}

/// Computes the headline numbers from the Figure 6(a) and 7(b) data.
///
/// # Errors
///
/// Propagates [`MapError`] from the underlying experiments.
pub fn headline() -> Result<Headline, MapError> {
    let comps = fig6a();
    let reductions: Vec<f64> = comps
        .iter()
        .filter_map(Comparison::normalized)
        .map(|n| 1.0 - n)
        .collect();
    let mean_area_reduction = if reductions.is_empty() {
        0.0
    } else {
        reductions.iter().sum::<f64>() / reductions.len() as f64
    };
    let savings = fig7b()?;
    let mean_power_saving =
        savings.iter().map(|p| p.savings).sum::<f64>() / savings.len().max(1) as f64;
    Ok(Headline {
        mean_area_reduction,
        mean_power_saving,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_normalization() {
        let c = Comparison {
            label: "x".into(),
            ours: Some(4),
            wc: Some(16),
        };
        assert_eq!(c.normalized(), Some(0.25));
        let c = Comparison {
            label: "x".into(),
            ours: Some(4),
            wc: None,
        };
        assert_eq!(c.normalized(), None);
    }

    #[test]
    fn be_burst_point_shapes_order_by_burstiness() {
        // At one average rate, the duty-1/8 burst source must queue
        // deeper and wait longer than the smooth source on the same
        // 4-hop chain.
        let smooth = be_burst_point("constant", &TrafficModel::Constant, 4);
        let bursty = be_burst_point(
            "onoff-1/8",
            &TrafficModel::OnOff {
                period: 256,
                on: 32,
                phase: 0,
            },
            4,
        );
        assert!(smooth.injected > 0 && bursty.injected > 0);
        assert_eq!(
            smooth.injected, bursty.injected,
            "equal average rate over whole periods"
        );
        assert!(bursty.peak_backlog_words > smooth.peak_backlog_words);
        assert!(bursty.mean_latency_cycles > smooth.mean_latency_cycles);
        let table = format_be_burst(&[smooth, bursty]);
        assert!(table.contains("constant") && table.contains("onoff-1/8"));
    }

    #[test]
    fn fig6b_small_point_runs() {
        // Smoke-test the smallest Sp point end to end (2 use-cases).
        let soc = SpreadConfig::paper(2).generate(SEED + 2);
        let comp = run_pair("2", &soc);
        let ours = comp.ours.expect("multi-use-case mapping must succeed");
        assert!(ours >= 1);
        if let Some(n) = comp.normalized() {
            assert!(
                n <= 1.0 + 1e-9,
                "ours must not need more switches than WC, got {n}"
            );
        }
    }
}
