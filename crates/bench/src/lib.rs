//! Experiment harness regenerating every figure of the paper.
//!
//! Since the `noc-flow` redesign this crate is a thin façade: every
//! suite below is an [`ExperimentSpec`](noc_flow::ExperimentSpec) in
//! the [`noc_flow::registry`] executed by the generic runner
//! ([`noc_flow::run_spec`]); the entry points here keep the historical
//! names and return the typed points. The point types themselves
//! ([`Comparison`], [`AreaPoint`], …) are re-exported from
//! [`noc_flow::runner`]. `EXPERIMENTS.md` records these outputs next to
//! the paper's reported values.
//!
//! | Function | Paper artifact |
//! |---|---|
//! | [`fig6a`] | Fig. 6(a): normalized switch count, SoC designs D1–D4 |
//! | [`fig6b`] | Fig. 6(b): normalized switch count vs use-cases, Sp |
//! | [`fig6c`] | Fig. 6(c): normalized switch count vs use-cases, Bot |
//! | [`fig7a`] | Fig. 7(a): area–frequency trade-off for D1 |
//! | [`fig7b`] | Fig. 7(b): DVS/DFS power savings for D1–D4 |
//! | [`fig7c`] | Fig. 7(c): NoC frequency vs parallel use-cases |
//! | [`headline`] | §1/§6 aggregates: mean area & power reduction |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf_json;

use noc_flow::{registry, run_spec, ExperimentOutput, FlowError};

pub use noc_flow::registry::{MAX_SWITCHES, SEED};
pub use noc_flow::runner::{
    AblationPoint, AreaPoint, BeBurstPoint, Comparison, DvsPoint, FrontierPoint, Headline,
    ParallelPoint, PerfPoint, PerfSnapshot, ResiliencePoint, RuntimePoint, ServicePoint,
    SpeedupPoint, VerifyPoint,
};

/// Runs a registry entry that cannot fail (its failures are recorded
/// per point).
fn run_infallible(name: &str) -> ExperimentOutput {
    let spec = registry::find(name).expect("registered experiment");
    run_spec(&spec).expect("infallible experiment family")
}

/// Figure 6(a): switch counts for the four SoC designs, ours vs WC.
pub fn fig6a() -> Vec<Comparison> {
    match run_infallible("fig6a") {
        ExperimentOutput::Comparison { points, .. } => points,
        _ => unreachable!("fig6a is a comparison"),
    }
}

/// Figure 6(b): Sp benchmarks, 20 cores, varying use-case counts.
///
/// `extended` additionally runs the 40-use-case point the paper describes
/// in prose (ours: 2×2; WC: fails at 20×20).
pub fn fig6b(extended: bool) -> Vec<Comparison> {
    match run_infallible(if extended { "fig6b+" } else { "fig6b" }) {
        ExperimentOutput::Comparison { points, .. } => points,
        _ => unreachable!("fig6b is a comparison"),
    }
}

/// Figure 6(c): Bot benchmarks, 20 cores, varying use-case counts.
pub fn fig6c(extended: bool) -> Vec<Comparison> {
    match run_infallible(if extended { "fig6c+" } else { "fig6c" }) {
        ExperimentOutput::Comparison { points, .. } => points,
        _ => unreachable!("fig6c is a comparison"),
    }
}

/// Figure 7(a): area–frequency trade-off for the D1 design.
pub fn fig7a() -> Vec<AreaPoint> {
    match run_infallible("fig7a") {
        ExperimentOutput::AreaFrequency { points, .. } => points,
        _ => unreachable!("fig7a is an area sweep"),
    }
}

/// Figure 7(b): DVS/DFS power savings for D1–D4.
///
/// # Errors
///
/// Propagates the mapper failure (as [`FlowError`]) if any design has
/// no feasible frequency.
pub fn fig7b() -> Result<Vec<DvsPoint>, FlowError> {
    match run_spec(&registry::find("fig7b")?)? {
        ExperimentOutput::DvsSavings { points, .. } => Ok(points),
        _ => unreachable!("fig7b is a DVS study"),
    }
}

/// Figure 7(c): required NoC frequency vs number of parallel use-cases,
/// for a 20-core 10-use-case Sp benchmark.
///
/// # Errors
///
/// Propagates the mapper failure (as [`FlowError`]) if the base design
/// cannot be mapped.
pub fn fig7c() -> Result<Vec<ParallelPoint>, FlowError> {
    match run_spec(&registry::find("fig7c")?)? {
        ExperimentOutput::ParallelFrequency { points, .. } => Ok(points),
        _ => unreachable!("fig7c is a parallel-frequency study"),
    }
}

/// Runtime study backing the paper's Section 6.2 remark that "both the
/// methods produced the results in less than few minutes on a Linux
/// workstation": wall-clock per benchmark for both methods, plus the
/// 1-vs-N worker speedup rows of the same registry entry.
pub fn runtimes() -> (Vec<RuntimePoint>, Vec<SpeedupPoint>) {
    match run_infallible("runtime") {
        ExperimentOutput::Runtimes { rows, speedups, .. } => (rows, speedups),
        _ => unreachable!("runtime is a runtime study"),
    }
}

/// Phase 4 of the methodology across the four SoC designs: map, verify
/// analytically, then replay every use-case on the cycle-level simulator.
///
/// # Errors
///
/// Propagates the mapper failure (as [`FlowError`]) if a design fails
/// to map or verify.
pub fn verify_designs() -> Result<Vec<VerifyPoint>, FlowError> {
    match run_spec(&registry::find("verify")?)? {
        ExperimentOutput::VerifyDesigns { points, .. } => Ok(points),
        _ => unreachable!("verify is a verification study"),
    }
}

/// Quality ablations of the design choices DESIGN.md calls out, on a
/// 5-use-case Sp benchmark: the paper's heuristic ingredients
/// (bandwidth-sorted processing, unified placement, per-use-case resource
/// states) against naive baselines, plus annealing refinement.
pub fn ablations() -> Vec<AblationPoint> {
    match run_infallible("ablation") {
        ExperimentOutput::Ablations { points, .. } => points,
        _ => unreachable!("ablation is an ablation study"),
    }
}

/// The burstiness × hop-count sweep over multi-hop BE contention chains:
/// four traffic shapes at one average rate crossed with four chain
/// depths (see `docs/SIMULATION.md`).
pub fn be_burst() -> Vec<BeBurstPoint> {
    match run_infallible("be_burst") {
        ExperimentOutput::BeBurst { points, .. } => points,
        _ => unreachable!("be_burst is a burst sweep"),
    }
}

/// Renders the [`be_burst`] sweep as the fixed-width table both CLIs
/// print (the shared `noc-flow` renderer).
pub fn format_be_burst(points: &[BeBurstPoint]) -> String {
    let spec = registry::find("be_burst").expect("registered experiment");
    noc_flow::render::render_be_burst(&spec.title, points)
}

/// The perf-telemetry suite: map + anneal op counters and wall time per
/// benchmark (the `perf` registry entry backing `BENCH_nocmap.json`;
/// see `docs/PERFORMANCE.md`).
pub fn perf() -> Vec<PerfPoint> {
    match run_infallible("perf") {
        ExperimentOutput::Perf { points, .. } => points,
        _ => unreachable!("perf is a perf study"),
    }
}

/// Renders the [`perf`] points as the fixed-width table both CLIs print.
pub fn format_perf(points: &[PerfPoint]) -> String {
    let spec = registry::find("perf").expect("registered experiment");
    noc_flow::render::render_perf(&spec.title, points)
}

/// The strategy-portfolio frontier suite: every benchmark of the
/// `frontier` registry entry mapped by every `nocmap` strategy, with
/// quality and deterministic op totals per row (see
/// `docs/STRATEGIES.md`).
///
/// # Errors
///
/// Propagates the mapper failure (as [`FlowError`]) if any benchmark
/// fails to map under any strategy.
pub fn frontier() -> Result<Vec<FrontierPoint>, FlowError> {
    match run_spec(&registry::find("frontier")?)? {
        ExperimentOutput::Frontier { points, .. } => Ok(points),
        _ => unreachable!("frontier is a frontier study"),
    }
}

/// Renders the [`frontier`] points as the fixed-width table both CLIs
/// print. Every cell is deterministic, so this rendering is pinned as
/// a golden (`tests/goldens/frontier.txt`).
pub fn format_frontier(points: &[FrontierPoint]) -> String {
    let spec = registry::find("frontier").expect("registered experiment");
    noc_flow::render::render_frontier(&spec.title, points)
}

/// The online-service admission suite: the `service` registry entry's
/// seeded request trace replayed per fabric × admission mode, with
/// blocking probability and reconfiguration cost per row (see
/// `docs/SERVICE.md`).
///
/// # Errors
///
/// Propagates an engine-configuration failure (as [`FlowError`]).
pub fn service() -> Result<Vec<ServicePoint>, FlowError> {
    match run_spec(&registry::find("service")?)? {
        ExperimentOutput::Service { points, .. } => Ok(points),
        _ => unreachable!("service is an admission study"),
    }
}

/// Renders the [`service`] points as the fixed-width table both CLIs
/// print. Every cell is deterministic, so this rendering is pinned as
/// a golden (`tests/goldens/service.txt`).
pub fn format_service(points: &[ServicePoint]) -> String {
    let spec = registry::find("service").expect("registered experiment");
    noc_flow::render::render_service(&spec.title, points)
}

/// The fault-injection resilience suite: the `resilience` registry
/// entry's seeded fault schedule woven into a request trace and
/// replayed per fabric, with degradation and self-healing repair cost
/// per row (see `docs/RESILIENCE.md`).
///
/// # Errors
///
/// Propagates an engine-configuration failure (as [`FlowError`]).
pub fn resilience() -> Result<Vec<ResiliencePoint>, FlowError> {
    match run_spec(&registry::find("resilience")?)? {
        ExperimentOutput::Resilience { points, .. } => Ok(points),
        _ => unreachable!("resilience is a fault-injection study"),
    }
}

/// Renders the [`resilience`] points as the fixed-width table both CLIs
/// print. Every cell is deterministic, so this rendering is pinned as
/// a golden (`tests/goldens/resilience.txt`).
pub fn format_resilience(points: &[ResiliencePoint]) -> String {
    let spec = registry::find("resilience").expect("registered experiment");
    noc_flow::render::render_resilience(&spec.title, points)
}

/// Computes the headline numbers from the Figure 6(a) and 7(b) data.
///
/// # Errors
///
/// Propagates failures (as [`FlowError`]) from the underlying
/// experiments.
pub fn headline() -> Result<Headline, FlowError> {
    match run_spec(&registry::find("headline")?)? {
        ExperimentOutput::Headline { headline, .. } => Ok(headline),
        _ => unreachable!("headline is an aggregate"),
    }
}
