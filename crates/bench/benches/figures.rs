//! Criterion wrappers around the figure-regeneration experiments, so
//! `cargo bench` exercises every artifact of the paper end to end.
//!
//! The heavyweight sweeps (`fig6b+`, `fig6c+`, `fig7a`) run once per
//! sample with a reduced sample count; the `experiments` binary remains
//! the tool of record for the actual numbers (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use noc_bench::{fig6a, fig7c};
use noc_benchgen::SocDesign;
use noc_tdma::TdmaSpec;
use noc_topology::units::Frequency;
use noc_topology::DvsModel;
use noc_usecase::UseCaseGroups;
use nocmap::design::design_smallest_mesh;
use nocmap::dvs::dvs_savings;
use nocmap::MapperOptions;

fn bench_fig6a(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig6a", |b| b.iter(fig6a));
    g.finish();
}

/// The DVS study on D1 only — the full fig7b over all four designs is
/// minutes of work per iteration and is exercised by the `experiments`
/// binary instead.
fn bench_fig7b_d1(c: &mut Criterion) {
    let soc = SocDesign::D1.generate();
    let groups = UseCaseGroups::singletons(soc.use_case_count());
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    let sol = design_smallest_mesh(&soc, &groups, spec, &opts, 400).expect("D1 maps at 500 MHz");
    let dvs = DvsModel::cmos130();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig7b-d1", |b| {
        b.iter(|| {
            dvs_savings(&soc, &groups, &sol, &opts, &dvs, Frequency::from_mhz(10))
                .expect("D1 DVS study runs")
        })
    });
    g.finish();
}

fn bench_fig7c(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig7c", |b| b.iter(|| fig7c().expect("base design maps")));
    g.finish();
}

criterion_group!(benches, bench_fig6a, bench_fig7b_d1, bench_fig7c);
criterion_main!(benches);
