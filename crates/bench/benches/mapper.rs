//! Criterion benchmarks of the mapping engine itself: runtime of
//! Algorithm 2 vs use-case count ("both the methods produced the results
//! in less than few minutes", Section 6.2 — ours runs in milliseconds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_benchgen::SpreadConfig;
use noc_tdma::TdmaSpec;
use noc_usecase::UseCaseGroups;
use nocmap::design::design_smallest_mesh;
use nocmap::MapperOptions;

fn bench_mapper_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_smallest_mesh/sp");
    group.sample_size(10);
    for use_cases in [2usize, 5, 10] {
        let soc = SpreadConfig::paper(use_cases).generate(7);
        let groups = UseCaseGroups::singletons(use_cases);
        group.bench_with_input(
            BenchmarkId::from_parameter(use_cases),
            &use_cases,
            |b, _| {
                b.iter(|| {
                    design_smallest_mesh(
                        &soc,
                        &groups,
                        TdmaSpec::paper_default(),
                        &MapperOptions::default(),
                        400,
                    )
                    .expect("sp benchmarks are feasible")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mapper_scaling);
criterion_main!(benches);
