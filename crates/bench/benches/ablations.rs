//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * `unified` vs `round-robin` placement (is unified mapping+routing
//!   worth it?),
//! * bandwidth-sorted vs unsorted flow processing,
//! * grouping (per-use-case states) vs a single shared configuration,
//! * annealing refinement on/off.
//!
//! Besides runtime, each ablation asserts the *quality* relation the
//! paper's argument depends on (e.g. unified placement must not lose to
//! round-robin on communication cost) so regressions fail the bench run.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_benchgen::SpreadConfig;
use noc_tdma::TdmaSpec;
use noc_usecase::UseCaseGroups;
use nocmap::anneal::{refine, AnnealConfig};
use nocmap::design::design_smallest_mesh;
use nocmap::{map_multi_usecase, MapperOptions, Placement};

fn soc5() -> noc_usecase::spec::SocSpec {
    SpreadConfig::paper(5).generate(11)
}

fn bench_placement(c: &mut Criterion) {
    let soc = soc5();
    let groups = UseCaseGroups::singletons(5);
    let spec = TdmaSpec::paper_default();
    let unified = MapperOptions::default();
    let rr = MapperOptions {
        placement: Placement::RoundRobin,
        ..Default::default()
    };

    // Quality gate: unified placement must not lose on comm cost at the
    // unified solution's own mesh size.
    let u = design_smallest_mesh(&soc, &groups, spec, &unified, 400).expect("feasible");
    if let Ok(r) = map_multi_usecase(&soc, &groups, u.topology(), spec, &rr) {
        assert!(
            u.comm_cost() <= r.comm_cost() * 1.05,
            "unified placement lost to round-robin: {} vs {}",
            u.comm_cost(),
            r.comm_cost()
        );
    }

    let mut g = c.benchmark_group("ablation/placement");
    g.sample_size(10);
    g.bench_function("unified", |b| {
        b.iter(|| design_smallest_mesh(&soc, &groups, spec, &unified, 400).expect("feasible"))
    });
    g.bench_function("round-robin", |b| {
        b.iter(|| design_smallest_mesh(&soc, &groups, spec, &rr, 400).expect("feasible"))
    });
    g.finish();
}

fn bench_ordering(c: &mut Criterion) {
    let soc = soc5();
    let groups = UseCaseGroups::singletons(5);
    let spec = TdmaSpec::paper_default();
    let sorted = MapperOptions::default();
    let unsorted = MapperOptions {
        sort_by_bandwidth: false,
        prefer_mapped: false,
        ..Default::default()
    };

    // Quality gate: sorted processing must not need a bigger mesh.
    let a = design_smallest_mesh(&soc, &groups, spec, &sorted, 400).expect("feasible");
    let b = design_smallest_mesh(&soc, &groups, spec, &unsorted, 400).expect("feasible");
    assert!(
        a.switch_count() <= b.switch_count(),
        "bandwidth-sorted ordering regressed: {} vs {} switches",
        a.switch_count(),
        b.switch_count()
    );

    let mut g = c.benchmark_group("ablation/ordering");
    g.sample_size(10);
    g.bench_function("bw-sorted", |bch| {
        bch.iter(|| design_smallest_mesh(&soc, &groups, spec, &sorted, 400).expect("feasible"))
    });
    g.bench_function("unsorted", |bch| {
        bch.iter(|| design_smallest_mesh(&soc, &groups, spec, &unsorted, 400).expect("feasible"))
    });
    g.finish();
}

fn bench_grouping(c: &mut Criterion) {
    let soc = soc5();
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    let split = UseCaseGroups::singletons(5);
    let merged = UseCaseGroups::single_group(5);

    // Quality gate: per-use-case states must not need a bigger mesh than
    // the shared-configuration (WC-like) alternative.
    let a = design_smallest_mesh(&soc, &split, spec, &opts, 400).expect("feasible");
    if let Ok(b) = design_smallest_mesh(&soc, &merged, spec, &opts, 400) {
        assert!(
            a.switch_count() <= b.switch_count(),
            "reconfiguration freedom regressed: {} vs {} switches",
            a.switch_count(),
            b.switch_count()
        );
    }

    let mut g = c.benchmark_group("ablation/grouping");
    g.sample_size(10);
    g.bench_function("singleton-groups", |b| {
        b.iter(|| design_smallest_mesh(&soc, &split, spec, &opts, 400).expect("feasible"))
    });
    g.bench_function("single-group", |b| {
        b.iter(|| design_smallest_mesh(&soc, &merged, spec, &opts, 400).ok())
    });
    g.finish();
}

fn bench_annealing(c: &mut Criterion) {
    let soc = soc5();
    let groups = UseCaseGroups::singletons(5);
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    let initial = design_smallest_mesh(&soc, &groups, spec, &opts, 400).expect("feasible");
    let cfg = AnnealConfig {
        iterations: 30,
        ..Default::default()
    };

    // Quality gate: refinement never worsens the solution.
    let refined = refine(&soc, &groups, &opts, &initial, &cfg).expect("refine runs");
    assert!(refined.comm_cost() <= initial.comm_cost());

    let mut g = c.benchmark_group("ablation/annealing");
    g.sample_size(10);
    g.bench_function("refine-30-moves", |b| {
        b.iter(|| refine(&soc, &groups, &opts, &initial, &cfg).expect("refine runs"))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_placement,
    bench_ordering,
    bench_grouping,
    bench_annealing
);
criterion_main!(benches);
