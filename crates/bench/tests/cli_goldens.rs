//! End-to-end byte-identity tests for both CLI binaries.
//!
//! The library-level golden tests (`tests/flow_goldens.rs` at the
//! workspace root) pin the renderers; these spawn the **actual
//! binaries** so argument plumbing, registry lookup, `--threads`
//! handling and stdout wiring are covered too. Goldens are the
//! pre-redesign captures under `tests/goldens/`.

use std::path::Path;
use std::process::Command;

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/goldens")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"))
}

fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .env_remove("NOC_PAR_THREADS")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{bin} {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn experiments_binary_matches_goldens() {
    let out = run(
        env!("CARGO_BIN_EXE_experiments"),
        &["fig6a", "ablation", "be_burst"],
    );
    let expected = format!(
        "{}{}{}",
        golden("fig6a.txt"),
        golden("ablation.txt"),
        golden("be_burst.txt")
    );
    assert_eq!(out, expected);
}

#[test]
fn experiments_binary_is_identical_at_4_threads() {
    let out = run(
        env!("CARGO_BIN_EXE_experiments"),
        &["--threads", "4", "fig6a", "be_burst"],
    );
    let expected = format!("{}{}", golden("fig6a.txt"), golden("be_burst.txt"));
    assert_eq!(out, expected);
}

#[test]
fn nocmap_cli_be_burst_matches_experiments() {
    let out = run(env!("CARGO_BIN_EXE_nocmap_cli"), &["be-burst"]);
    assert_eq!(out, golden("be_burst.txt"));
}

#[test]
fn nocmap_cli_flow_run_executes_the_checked_in_spec() {
    let spec = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs/flow_be_burst.flow");
    let out = run(
        env!("CARGO_BIN_EXE_nocmap_cli"),
        &["flow", "run", spec.to_str().unwrap()],
    );
    assert_eq!(out, golden("be_burst.txt"));
    // Registry names work directly too.
    let by_name = run(env!("CARGO_BIN_EXE_nocmap_cli"), &["flow", "run", "fig6a"]);
    assert_eq!(by_name, golden("fig6a.txt"));
}

#[test]
fn nocmap_cli_flow_show_round_trips_through_flow_run() {
    // `flow show` output is itself a runnable spec file.
    let shown = run(env!("CARGO_BIN_EXE_nocmap_cli"), &["flow", "show", "fig6a"]);
    let dir = std::env::temp_dir().join("noc_flow_show_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig6a.flow");
    std::fs::write(&path, shown).unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_nocmap_cli"),
        &["flow", "run", path.to_str().unwrap()],
    );
    assert_eq!(out, golden("fig6a.txt"));
}
