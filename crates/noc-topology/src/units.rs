//! Strongly-typed physical quantities used throughout the workspace.
//!
//! The paper specifies traffic in MB/s, link widths in bits, frequencies in
//! MHz and latency constraints in (micro/nano)seconds. Newtypes keep these
//! from being confused ([C-NEWTYPE]) and give every quantity an unambiguous
//! base unit:
//!
//! * [`Bandwidth`] — bytes per second (`u64`),
//! * [`Frequency`] — hertz (`u64`),
//! * [`Latency`] — nanoseconds (`u64`),
//! * [`LinkWidth`] — bits (`u32`).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A bandwidth quantity, stored in bytes per second.
///
/// The paper quotes flow bandwidths in MB/s (decimal megabytes); use
/// [`Bandwidth::from_mbps`] for those.
///
/// ```
/// use noc_topology::units::Bandwidth;
///
/// let hd_stream = Bandwidth::from_mbps(200);
/// assert_eq!(hd_stream.as_bytes_per_sec(), 200_000_000);
/// assert_eq!(format!("{hd_stream}"), "200 MB/s");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// The zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Creates a bandwidth from raw bytes per second.
    pub const fn from_bytes_per_sec(bytes: u64) -> Self {
        Bandwidth(bytes)
    }

    /// Creates a bandwidth from decimal megabytes per second, the unit used
    /// throughout the paper's use-case specifications.
    pub const fn from_mbps(mbps: u64) -> Self {
        Bandwidth(mbps * 1_000_000)
    }

    /// Creates a bandwidth from a fractional MB/s value, rounding to the
    /// nearest byte per second. Negative values saturate to zero.
    pub fn from_mbps_f64(mbps: f64) -> Self {
        if mbps <= 0.0 {
            Bandwidth(0)
        } else {
            Bandwidth((mbps * 1e6).round() as u64)
        }
    }

    /// Returns the bandwidth in bytes per second.
    pub const fn as_bytes_per_sec(self) -> u64 {
        self.0
    }

    /// Returns the bandwidth in decimal MB/s as a float (for reporting).
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns `true` if this is the zero bandwidth.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: residual capacity never underflows.
    pub const fn saturating_sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    pub const fn checked_add(self, rhs: Bandwidth) -> Option<Bandwidth> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Bandwidth(v)),
            None => None,
        }
    }

    /// Divides this bandwidth into `parts` equal shares (integer division).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    pub const fn div(self, parts: u64) -> Bandwidth {
        Bandwidth(self.0 / parts)
    }

    /// Multiplies the bandwidth by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, factor: u64) -> Bandwidth {
        Bandwidth(self.0.saturating_mul(factor))
    }

    /// Returns the fraction `self / total` as a float in `[0, +inf)`.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn fraction_of(self, total: Bandwidth) -> f64 {
        assert!(!total.is_zero(), "fraction_of: total bandwidth is zero");
        self.0 as f64 / total.0 as f64
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 - rhs.0)
    }
}

impl SubAssign for Bandwidth {
    fn sub_assign(&mut self, rhs: Bandwidth) {
        self.0 -= rhs.0;
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, Add::add)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % 1_000_000 == 0 {
            write!(f, "{} MB/s", self.0 / 1_000_000)
        } else {
            write!(f, "{:.3} MB/s", self.as_mbps_f64())
        }
    }
}

/// A clock frequency, stored in hertz.
///
/// ```
/// use noc_topology::units::Frequency;
///
/// let f = Frequency::from_mhz(500);
/// assert_eq!(f.as_hz(), 500_000_000);
/// assert_eq!(format!("{f}"), "500 MHz");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Frequency(u64);

impl Frequency {
    /// The zero frequency (useful as a lower bound in sweeps).
    pub const ZERO: Frequency = Frequency(0);

    /// Creates a frequency from hertz.
    pub const fn from_hz(hz: u64) -> Self {
        Frequency(hz)
    }

    /// Creates a frequency from megahertz.
    pub const fn from_mhz(mhz: u64) -> Self {
        Frequency(mhz * 1_000_000)
    }

    /// Creates a frequency from gigahertz.
    pub const fn from_ghz(ghz: u64) -> Self {
        Frequency(ghz * 1_000_000_000)
    }

    /// Returns the frequency in hertz.
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// Returns the frequency in MHz as a float (for reporting).
    pub fn as_mhz_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the clock period in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    pub fn period_ns(self) -> f64 {
        assert!(self.0 != 0, "period of zero frequency");
        1e9 / self.0 as f64
    }

    /// Returns `true` if this is the zero frequency.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Ratio `self / other` as a float.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio(self, other: Frequency) -> f64 {
        assert!(other.0 != 0, "ratio with zero frequency");
        self.0 as f64 / other.0 as f64
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % 1_000_000 == 0 {
            write!(f, "{} MHz", self.0 / 1_000_000)
        } else {
            write!(f, "{} Hz", self.0)
        }
    }
}

/// A latency quantity, stored in nanoseconds.
///
/// Flow latency *constraints* are upper bounds: a flow's worst-case packet
/// delay must not exceed its [`Latency`].
///
/// ```
/// use noc_topology::units::Latency;
///
/// let deadline = Latency::from_us(1);
/// assert_eq!(deadline.as_ns(), 1_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Latency(u64);

impl Latency {
    /// Zero latency (unsatisfiable as a constraint except on-core).
    pub const ZERO: Latency = Latency(0);

    /// A latency so large it never constrains anything.
    pub const UNCONSTRAINED: Latency = Latency(u64::MAX);

    /// Creates a latency from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Latency(ns)
    }

    /// Creates a latency from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Latency(us * 1_000)
    }

    /// Creates a latency from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Latency(ms * 1_000_000)
    }

    /// Returns the latency in nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns `true` if this latency never constrains a flow.
    pub const fn is_unconstrained(self) -> bool {
        self.0 == u64::MAX
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unconstrained() {
            write!(f, "unconstrained")
        } else if self.0 % 1_000_000 == 0 && self.0 > 0 {
            write!(f, "{} ms", self.0 / 1_000_000)
        } else if self.0 % 1_000 == 0 && self.0 > 0 {
            write!(f, "{} us", self.0 / 1_000)
        } else {
            write!(f, "{} ns", self.0)
        }
    }
}

/// A link data width in bits.
///
/// The paper fixes links to 32 bits for the switch-count comparison
/// (Section 6.2); [`LinkWidth::BITS_32`] is that default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkWidth(u32);

impl LinkWidth {
    /// The 32-bit link width used in the paper's evaluation.
    pub const BITS_32: LinkWidth = LinkWidth(32);

    /// A 64-bit link width, for wider-datapath exploration.
    pub const BITS_64: LinkWidth = LinkWidth(64);

    /// Creates a link width from a bit count.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or not a multiple of 8 (links carry whole
    /// bytes per cycle).
    pub fn from_bits(bits: u32) -> Self {
        assert!(
            bits > 0 && bits % 8 == 0,
            "link width must be a positive multiple of 8 bits"
        );
        LinkWidth(bits)
    }

    /// Returns the width in bits.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Returns the width in bytes.
    pub const fn bytes(self) -> u32 {
        self.0 / 8
    }

    /// Raw link capacity at clock `freq`: one word of [`Self::bytes`] bytes
    /// per cycle.
    ///
    /// ```
    /// use noc_topology::units::{Frequency, LinkWidth};
    ///
    /// let cap = LinkWidth::BITS_32.capacity(Frequency::from_mhz(500));
    /// assert_eq!(cap.as_mbps_f64(), 2000.0);
    /// ```
    pub fn capacity(self, freq: Frequency) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(freq.as_hz().saturating_mul(self.bytes() as u64))
    }
}

impl Default for LinkWidth {
    fn default() -> Self {
        LinkWidth::BITS_32
    }
}

impl fmt::Display for LinkWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bits", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_constructors_agree() {
        assert_eq!(
            Bandwidth::from_mbps(50),
            Bandwidth::from_bytes_per_sec(50_000_000)
        );
        assert_eq!(Bandwidth::from_mbps_f64(50.0), Bandwidth::from_mbps(50));
        assert_eq!(Bandwidth::from_mbps_f64(-3.0), Bandwidth::ZERO);
    }

    #[test]
    fn bandwidth_arithmetic() {
        let a = Bandwidth::from_mbps(100);
        let b = Bandwidth::from_mbps(30);
        assert_eq!(a + b, Bandwidth::from_mbps(130));
        assert_eq!(a - b, Bandwidth::from_mbps(70));
        assert_eq!(b.saturating_sub(a), Bandwidth::ZERO);
        assert_eq!(a.div(4), Bandwidth::from_mbps(25));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn bandwidth_sum_and_ordering() {
        let flows = [
            Bandwidth::from_mbps(50),
            Bandwidth::from_mbps(150),
            Bandwidth::from_mbps(100),
        ];
        let total: Bandwidth = flows.iter().copied().sum();
        assert_eq!(total, Bandwidth::from_mbps(300));
        assert!(flows[1] > flows[2] && flows[2] > flows[0]);
    }

    #[test]
    fn bandwidth_fraction() {
        let part = Bandwidth::from_mbps(500);
        let total = Bandwidth::from_mbps(2000);
        assert!((part.fraction_of(total) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "total bandwidth is zero")]
    fn bandwidth_fraction_of_zero_panics() {
        let _ = Bandwidth::from_mbps(1).fraction_of(Bandwidth::ZERO);
    }

    #[test]
    fn frequency_units() {
        assert_eq!(Frequency::from_mhz(500).as_hz(), 500_000_000);
        assert_eq!(Frequency::from_ghz(2), Frequency::from_mhz(2000));
        assert!((Frequency::from_mhz(500).period_ns() - 2.0).abs() < 1e-12);
        assert!((Frequency::from_ghz(1).ratio(Frequency::from_mhz(500)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn latency_units_and_display() {
        assert_eq!(Latency::from_us(3).as_ns(), 3_000);
        assert_eq!(Latency::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(format!("{}", Latency::from_ns(7)), "7 ns");
        assert_eq!(format!("{}", Latency::from_us(7)), "7 us");
        assert_eq!(format!("{}", Latency::from_ms(7)), "7 ms");
        assert_eq!(format!("{}", Latency::UNCONSTRAINED), "unconstrained");
        assert!(Latency::UNCONSTRAINED.is_unconstrained());
        assert!(!Latency::from_ns(1).is_unconstrained());
    }

    #[test]
    fn link_capacity_matches_paper_setup() {
        // Section 6.2 fixes 500 MHz / 32-bit links: 2 GB/s raw capacity.
        let cap = LinkWidth::BITS_32.capacity(Frequency::from_mhz(500));
        assert_eq!(cap, Bandwidth::from_mbps(2000));
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn link_width_rejects_non_byte_widths() {
        let _ = LinkWidth::from_bits(12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Bandwidth::from_mbps(200)), "200 MB/s");
        assert_eq!(
            format!("{}", Bandwidth::from_bytes_per_sec(1_500_000)),
            "1.500 MB/s"
        );
        assert_eq!(format!("{}", Frequency::from_mhz(500)), "500 MHz");
        assert_eq!(format!("{}", Frequency::from_hz(1234)), "1234 Hz");
        assert_eq!(format!("{}", LinkWidth::BITS_32), "32 bits");
    }
}
