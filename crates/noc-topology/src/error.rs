use std::error::Error;
use std::fmt;

use crate::graph::NodeId;

/// Errors raised while constructing NoC topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// An NI was attached to a node that is not a switch.
    NotASwitch {
        /// The offending node.
        node: NodeId,
    },
    /// A directed link between the two nodes already exists.
    DuplicateLink {
        /// Link source.
        src: NodeId,
        /// Link destination.
        dst: NodeId,
    },
    /// A link from a node to itself was requested.
    SelfLoop {
        /// The node.
        node: NodeId,
    },
    /// A mesh dimension or NI count was zero.
    EmptyDimension {
        /// Human-readable name of the offending parameter.
        what: &'static str,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NotASwitch { node } => {
                write!(f, "node {node} is not a switch")
            }
            TopologyError::DuplicateLink { src, dst } => {
                write!(f, "link {src} -> {dst} already exists")
            }
            TopologyError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not allowed")
            }
            TopologyError::EmptyDimension { what } => {
                write!(f, "{what} must be non-zero")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyBuilder;

    #[test]
    fn errors_display_lowercase_without_punctuation() {
        let mut b = TopologyBuilder::new();
        let s = b.add_switch(0, 0);
        let msg = TopologyError::NotASwitch { node: s }.to_string();
        assert!(msg.starts_with(char::is_lowercase) || msg.starts_with("node"));
        assert!(!msg.ends_with('.'));
        let msg = TopologyError::EmptyDimension { what: "rows" }.to_string();
        assert_eq!(msg, "rows must be non-zero");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<TopologyError>();
    }
}
