//! Fault model: failed links and NIs composed onto a [`Topology`].
//!
//! A [`FaultSet`] records which directed links and which NIs have
//! failed, bit-mask backed like the TDMA `SlotMask` so membership
//! tests are O(1) and the set is cheap to clone. It is *composable*:
//! the topology itself stays immutable, and [`Topology::degraded`]
//! yields a [`DegradedView`] that answers reachability questions over
//! the surviving resources only. Unreachable pairs surface as a typed
//! [`PathError`] — never a panic — so callers can degrade gracefully.

use std::collections::{BTreeSet, VecDeque};
use std::error::Error;
use std::fmt;

use crate::graph::{LinkId, NodeId, Topology};

fn word_set(words: &mut Vec<u64>, idx: usize) -> bool {
    let w = idx / 64;
    if words.len() <= w {
        words.resize(w + 1, 0);
    }
    let bit = 1u64 << (idx % 64);
    let newly = words[w] & bit == 0;
    words[w] |= bit;
    newly
}

fn word_get(words: &[u64], idx: usize) -> bool {
    words
        .get(idx / 64)
        .map_or(false, |w| w & (1u64 << (idx % 64)) != 0)
}

/// A set of failed resources: directed links and NIs.
///
/// Failing an NI implicitly fails every link incident to it (the NI
/// can neither send nor receive), which [`DegradedView::link_usable`]
/// and [`FaultSet::banned_links`] account for. Fault sets only grow —
/// repairs are modeled by building a new set — so two sets compare
/// equal iff they name the same failed resources.
///
/// ```
/// use noc_topology::{FaultSet, MeshBuilder};
///
/// # fn main() -> Result<(), noc_topology::TopologyError> {
/// let mesh = MeshBuilder::new(2, 2).build()?;
/// let topo = mesh.topology();
/// let mut faults = FaultSet::default();
/// faults.fail_link(topo.links()[0].id());
/// assert_eq!(faults.failed_link_count(), 1);
/// assert!(!faults.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSet {
    link_words: Vec<u64>,
    ni_words: Vec<u64>,
    links_failed: usize,
    nis_failed: usize,
}

impl FaultSet {
    /// Creates an empty fault set (every resource healthy).
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a directed link as failed. Returns `true` if it was not
    /// already failed.
    pub fn fail_link(&mut self, link: LinkId) -> bool {
        let newly = word_set(&mut self.link_words, link.index());
        if newly {
            self.links_failed += 1;
        }
        newly
    }

    /// Marks an NI as failed. Returns `true` if it was not already
    /// failed.
    pub fn fail_ni(&mut self, ni: NodeId) -> bool {
        let newly = word_set(&mut self.ni_words, ni.index());
        if newly {
            self.nis_failed += 1;
        }
        newly
    }

    /// Whether the directed link has failed (explicitly; links killed
    /// transitively by a failed NI are reported by
    /// [`DegradedView::link_usable`]).
    pub fn link_failed(&self, link: LinkId) -> bool {
        word_get(&self.link_words, link.index())
    }

    /// Whether the NI has failed.
    pub fn ni_failed(&self, ni: NodeId) -> bool {
        word_get(&self.ni_words, ni.index())
    }

    /// `true` when no resource has failed.
    pub fn is_empty(&self) -> bool {
        self.links_failed == 0 && self.nis_failed == 0
    }

    /// Number of explicitly failed links.
    pub fn failed_link_count(&self) -> usize {
        self.links_failed
    }

    /// Number of failed NIs.
    pub fn failed_ni_count(&self) -> usize {
        self.nis_failed
    }

    /// Indices of explicitly failed links, ascending.
    pub fn failed_link_indices(&self) -> Vec<usize> {
        bit_indices(&self.link_words)
    }

    /// Indices of failed NIs (node ids), ascending.
    pub fn failed_ni_indices(&self) -> Vec<usize> {
        bit_indices(&self.ni_words)
    }

    /// Every link of `topo` that is unusable under this fault set:
    /// explicitly failed links plus all links incident to a failed NI.
    pub fn banned_links(&self, topo: &Topology) -> BTreeSet<LinkId> {
        let mut banned = BTreeSet::new();
        for link in topo.links() {
            if self.link_failed(link.id())
                || self.ni_failed(link.src())
                || self.ni_failed(link.dst())
            {
                banned.insert(link.id());
            }
        }
        banned
    }
}

fn bit_indices(words: &[u64]) -> Vec<usize> {
    let mut out = Vec::new();
    for (w, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            out.push(w * 64 + b);
            bits &= bits - 1;
        }
    }
    out
}

/// Why no path exists between two nodes of a degraded topology.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PathError {
    /// An endpoint of the query has itself failed.
    NodeFailed {
        /// The failed endpoint.
        node: NodeId,
    },
    /// Both endpoints are alive but every route between them crosses
    /// a failed resource.
    Unreachable {
        /// Query source.
        src: NodeId,
        /// Query destination.
        dst: NodeId,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::NodeFailed { node } => {
                write!(f, "node {node} has failed")
            }
            PathError::Unreachable { src, dst } => {
                write!(f, "no surviving path from {src} to {dst}")
            }
        }
    }
}

impl Error for PathError {}

/// A [`Topology`] seen through a [`FaultSet`]: the surviving graph.
///
/// Borrowed, not copied — build one with [`Topology::degraded`].
#[derive(Debug, Clone, Copy)]
pub struct DegradedView<'a> {
    topo: &'a Topology,
    faults: &'a FaultSet,
}

impl<'a> DegradedView<'a> {
    /// The underlying (undegraded) topology.
    pub fn topology(&self) -> &'a Topology {
        self.topo
    }

    /// The fault set this view applies.
    pub fn faults(&self) -> &'a FaultSet {
        self.faults
    }

    /// Whether the link survives: neither explicitly failed nor
    /// incident to a failed NI.
    pub fn link_usable(&self, link: LinkId) -> bool {
        if self.faults.link_failed(link) {
            return false;
        }
        let l = self.topo.link(link);
        !self.faults.ni_failed(l.src()) && !self.faults.ni_failed(l.dst())
    }

    /// Whether the node survives (switches never fail in this model;
    /// only NIs and links do).
    pub fn node_usable(&self, node: NodeId) -> bool {
        !self.faults.ni_failed(node)
    }

    /// The surviving NIs, in topology order.
    pub fn usable_nis(&self) -> Vec<NodeId> {
        self.topo
            .nis()
            .iter()
            .copied()
            .filter(|&ni| self.node_usable(ni))
            .collect()
    }

    /// Minimum hop distance over surviving links, as a typed result.
    ///
    /// # Errors
    ///
    /// [`PathError::NodeFailed`] when either endpoint has failed,
    /// [`PathError::Unreachable`] when no surviving path exists.
    pub fn hop_distance(&self, from: NodeId, to: NodeId) -> Result<usize, PathError> {
        if !self.node_usable(from) {
            return Err(PathError::NodeFailed { node: from });
        }
        if !self.node_usable(to) {
            return Err(PathError::NodeFailed { node: to });
        }
        if from == to {
            return Ok(0);
        }
        let mut dist = vec![usize::MAX; self.topo.node_count()];
        dist[from.index()] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(from);
        while let Some(n) = queue.pop_front() {
            let d = dist[n.index()];
            for &l in self.topo.outgoing(n) {
                if !self.link_usable(l) {
                    continue;
                }
                let m = self.topo.link(l).dst();
                if dist[m.index()] == usize::MAX {
                    dist[m.index()] = d + 1;
                    if m == to {
                        return Ok(d + 1);
                    }
                    queue.push_back(m);
                }
            }
        }
        Err(PathError::Unreachable { src: from, dst: to })
    }
}

impl Topology {
    /// Views this topology through a fault set.
    pub fn degraded<'a>(&'a self, faults: &'a FaultSet) -> DegradedView<'a> {
        DegradedView { topo: self, faults }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MeshBuilder;

    fn mesh_2x2() -> Topology {
        MeshBuilder::new(2, 2)
            .nis_per_switch(1)
            .build()
            .unwrap()
            .topology()
            .clone()
    }

    #[test]
    fn empty_set_degrades_nothing() {
        let topo = mesh_2x2();
        let faults = FaultSet::default();
        let view = topo.degraded(&faults);
        assert!(faults.is_empty());
        assert!(faults.banned_links(&topo).is_empty());
        assert_eq!(view.usable_nis(), topo.nis().to_vec());
        for link in topo.links() {
            assert!(view.link_usable(link.id()));
        }
        let (a, b) = (topo.nis()[0], topo.nis()[3]);
        assert_eq!(
            view.hop_distance(a, b),
            Ok(topo.hop_distance(a, b).unwrap())
        );
    }

    #[test]
    fn failed_link_is_banned_and_idempotent() {
        let topo = mesh_2x2();
        let mut faults = FaultSet::default();
        let l = topo.links()[5].id();
        assert!(faults.fail_link(l));
        assert!(!faults.fail_link(l));
        assert_eq!(faults.failed_link_count(), 1);
        assert!(faults.link_failed(l));
        assert_eq!(faults.failed_link_indices(), vec![l.index()]);
        let view = topo.degraded(&faults);
        assert!(!view.link_usable(l));
        assert!(faults.banned_links(&topo).contains(&l));
    }

    #[test]
    fn failed_ni_kills_incident_links() {
        let topo = mesh_2x2();
        let mut faults = FaultSet::default();
        let ni = topo.nis()[0];
        assert!(faults.fail_ni(ni));
        let view = topo.degraded(&faults);
        assert!(!view.node_usable(ni));
        for &l in topo.outgoing(ni).iter().chain(topo.incoming(ni)) {
            assert!(!view.link_usable(l));
            assert!(faults.banned_links(&topo).contains(&l));
        }
        assert_eq!(view.usable_nis().len(), topo.ni_count() - 1);
        let other = topo.nis()[1];
        assert_eq!(
            view.hop_distance(ni, other),
            Err(PathError::NodeFailed { node: ni })
        );
        assert_eq!(
            view.hop_distance(other, ni),
            Err(PathError::NodeFailed { node: ni })
        );
    }

    #[test]
    fn unreachable_is_typed_not_a_panic() {
        let topo = mesh_2x2();
        let src = topo.nis()[0];
        let dst = topo.nis()[3];
        let mut faults = FaultSet::default();
        // Sever the NI from its switch in the outbound direction.
        for &l in topo.outgoing(src) {
            faults.fail_link(l);
        }
        let view = topo.degraded(&faults);
        assert_eq!(
            view.hop_distance(src, dst),
            Err(PathError::Unreachable { src, dst })
        );
        // Inbound direction still works.
        assert!(view.hop_distance(dst, src).is_ok());
    }

    #[test]
    fn equality_tracks_contents_not_construction_order() {
        let topo = mesh_2x2();
        let (la, lb) = (topo.links()[1].id(), topo.links()[7].id());
        let mut f1 = FaultSet::default();
        f1.fail_link(la);
        f1.fail_link(lb);
        let mut f2 = FaultSet::default();
        f2.fail_link(lb);
        f2.fail_link(la);
        assert_eq!(f1, f2);
        f2.fail_ni(topo.nis()[2]);
        assert_ne!(f1, f2);
        assert_eq!(f2.failed_ni_indices(), vec![topo.nis()[2].index()]);
    }

    #[test]
    fn path_errors_display_lowercase() {
        let topo = mesh_2x2();
        let n = topo.nis()[0];
        let msg = PathError::NodeFailed { node: n }.to_string();
        assert!(!msg.ends_with('.'));
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<PathError>();
    }
}
