//! NoC power model and dynamic voltage/frequency scaling (DVS/DFS).
//!
//! Section 6.4 of the paper scales the NoC frequency (and voltage) during
//! use-case switching to match each use-case's communication needs, using a
//! "conservative model for voltage scaling, where … the square of the
//! voltage scales linearly with the frequency" (citing Rabaey et al.).
//!
//! Dynamic CMOS power is `P = C_eff · f · V²`. Under the paper's rule
//! `V² ∝ f`, power at a scaled frequency `f` relative to the maximum
//! design frequency `f_max` is
//!
//! ```text
//! P(f) / P(f_max) = (f / f_max)²
//! ```
//!
//! which is exactly what [`DvsModel::relative_power`] computes. The
//! absolute model in [`PowerModel`] exists so reports can also quote mW
//! figures; all paper comparisons (Figure 7(b)) are relative.

use serde::{Deserialize, Serialize};

use crate::graph::Topology;
use crate::units::Frequency;

/// An operating point: a frequency and its (derived) supply voltage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Clock frequency.
    pub frequency: Frequency,
    /// Supply voltage in volts.
    pub voltage: f64,
}

/// The paper's conservative DVS rule: `V² ∝ f`, anchored at a nominal
/// (frequency, voltage) pair.
///
/// ```
/// use noc_topology::{DvsModel, units::Frequency};
///
/// let dvs = DvsModel::nominal(Frequency::from_mhz(500), 1.2);
/// let op = dvs.operating_point(Frequency::from_mhz(125));
/// // V² scales by 1/4, so V scales by 1/2.
/// assert!((op.voltage - 0.6).abs() < 1e-12);
/// // Power scales by (f/f0)² = 1/16.
/// assert!((dvs.relative_power(Frequency::from_mhz(125), Frequency::from_mhz(500)) - 1.0 / 16.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvsModel {
    nominal_freq: Frequency,
    nominal_voltage: f64,
    /// Lowest voltage the process supports; scaling clamps here.
    min_voltage: f64,
}

impl DvsModel {
    /// Creates a DVS model anchored at (`nominal_freq`, `nominal_voltage`).
    ///
    /// # Panics
    ///
    /// Panics if the nominal frequency is zero or the voltage non-positive.
    pub fn nominal(nominal_freq: Frequency, nominal_voltage: f64) -> Self {
        assert!(
            !nominal_freq.is_zero(),
            "nominal frequency must be non-zero"
        );
        assert!(nominal_voltage > 0.0, "nominal voltage must be positive");
        DvsModel {
            nominal_freq,
            nominal_voltage,
            min_voltage: 0.0,
        }
    }

    /// The default 0.13 µm anchor: 1.2 V at 500 MHz with a 0.6 V floor.
    pub fn cmos130() -> Self {
        DvsModel {
            nominal_freq: Frequency::from_mhz(500),
            nominal_voltage: 1.2,
            min_voltage: 0.6,
        }
    }

    /// Sets the minimum supply voltage the regulator can reach.
    #[must_use]
    pub fn with_min_voltage(mut self, volts: f64) -> Self {
        self.min_voltage = volts.max(0.0);
        self
    }

    /// Voltage (and frequency) for running at `freq` under `V² ∝ f`.
    pub fn operating_point(&self, freq: Frequency) -> OperatingPoint {
        let scale = freq.as_hz() as f64 / self.nominal_freq.as_hz() as f64;
        let voltage = (self.nominal_voltage * self.nominal_voltage * scale)
            .sqrt()
            .max(self.min_voltage);
        OperatingPoint {
            frequency: freq,
            voltage,
        }
    }

    /// Power at `freq` relative to power at `reference`: `(f/f_ref)²`
    /// (until the voltage floor bites, after which it decays only linearly).
    ///
    /// # Panics
    ///
    /// Panics if `reference` is zero.
    pub fn relative_power(&self, freq: Frequency, reference: Frequency) -> f64 {
        assert!(!reference.is_zero(), "reference frequency must be non-zero");
        let p = self.absolute_factor(freq);
        let p_ref = self.absolute_factor(reference);
        p / p_ref
    }

    /// `f · V(f)²` up to a constant — the dynamic-power proportionality.
    fn absolute_factor(&self, freq: Frequency) -> f64 {
        let v = self.operating_point(freq).voltage;
        freq.as_hz() as f64 * v * v
    }
}

impl Default for DvsModel {
    fn default() -> Self {
        DvsModel::cmos130()
    }
}

/// Absolute dynamic-power model for a NoC instance.
///
/// `P = Σ_switches c_sw(ports) · f · V² + links · c_link · f · V²`, with
/// coefficients loosely calibrated so a 2×2 mesh at 500 MHz / 1.2 V draws
/// on the order of tens of mW — consistent with published Æthereal figures.
/// Only *relative* numbers are used in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Switch capacitance coefficient, mW per (GHz · V² · port).
    pub switch_mw_per_ghz_v2_port: f64,
    /// Link capacitance coefficient, mW per (GHz · V² · link).
    pub link_mw_per_ghz_v2: f64,
    /// DVS rule used to derive voltages from frequencies.
    pub dvs: DvsModel,
}

impl PowerModel {
    /// Default 0.13 µm calibration.
    pub fn cmos130() -> Self {
        PowerModel {
            switch_mw_per_ghz_v2_port: 2.0,
            link_mw_per_ghz_v2: 0.8,
            dvs: DvsModel::cmos130(),
        }
    }

    /// Dynamic power (mW) of `topo` clocked at `freq`.
    pub fn power_mw(&self, topo: &Topology, freq: Frequency) -> f64 {
        let op = self.dvs.operating_point(freq);
        let f_ghz = freq.as_hz() as f64 / 1e9;
        let v2 = op.voltage * op.voltage;
        let switch_ports: usize = topo.switches().iter().map(|&s| topo.switch_ports(s)).sum();
        let p_sw = self.switch_mw_per_ghz_v2_port * switch_ports as f64 * f_ghz * v2;
        let p_link = self.link_mw_per_ghz_v2 * topo.link_count() as f64 * f_ghz * v2;
        p_sw + p_link
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::cmos130()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::MeshBuilder;

    #[test]
    fn voltage_scales_as_sqrt_of_frequency() {
        let dvs = DvsModel::nominal(Frequency::from_mhz(500), 1.2);
        let half = dvs.operating_point(Frequency::from_mhz(250)).voltage;
        assert!((half - 1.2 / 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn relative_power_is_quadratic_above_floor() {
        let dvs = DvsModel::nominal(Frequency::from_mhz(500), 1.2);
        let r = dvs.relative_power(Frequency::from_mhz(250), Frequency::from_mhz(500));
        assert!((r - 0.25).abs() < 1e-9);
        let r = dvs.relative_power(Frequency::from_mhz(500), Frequency::from_mhz(500));
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn voltage_floor_limits_scaling() {
        let dvs = DvsModel::cmos130(); // floor 0.6 V
        let op = dvs.operating_point(Frequency::from_mhz(10));
        assert!(
            (op.voltage - 0.6).abs() < 1e-12,
            "voltage clamps at the floor"
        );
        // Below the floor, power decays linearly (f · V_min²), not quadratically.
        let r10 = dvs.relative_power(Frequency::from_mhz(10), Frequency::from_mhz(500));
        let r20 = dvs.relative_power(Frequency::from_mhz(20), Frequency::from_mhz(500));
        assert!((r20 / r10 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn power_model_scales_with_topology_and_frequency() {
        let pm = PowerModel::cmos130();
        let small = MeshBuilder::new(2, 2).nis_per_switch(2).build().unwrap();
        let large = MeshBuilder::new(4, 4).nis_per_switch(2).build().unwrap();
        let f = Frequency::from_mhz(500);
        assert!(pm.power_mw(large.topology(), f) > pm.power_mw(small.topology(), f));
        assert!(
            pm.power_mw(small.topology(), Frequency::from_ghz(1))
                > pm.power_mw(small.topology(), f)
        );
        let p = pm.power_mw(small.topology(), f);
        assert!(
            p > 1.0 && p < 1000.0,
            "2x2 mesh should draw O(10-100) mW, got {p}"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_nominal_rejected() {
        let _ = DvsModel::nominal(Frequency::ZERO, 1.2);
    }
}
