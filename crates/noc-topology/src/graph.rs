//! The NoC topology graph: switches and network interfaces (NIs) connected
//! by unidirectional links.
//!
//! The mapping algorithm places SoC cores on NIs; every NI hangs off exactly
//! one switch. Links are directed — a bidirectional physical channel is two
//! [`Link`]s — because TDMA slot tables are per-direction resources.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TopologyError;

/// Identifier of a node (switch or NI) inside one [`Topology`].
///
/// Ids are dense indices assigned in insertion order; they are only
/// meaningful within the topology that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Returns the dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) const fn new(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a directed link inside one [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(u32);

impl LinkId {
    /// Returns the dense index of this link.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) const fn new(index: usize) -> Self {
        LinkId(index as u32)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// What a topology node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A packet switch (router). `x`/`y` are grid coordinates for mesh
    /// topologies and are informational for irregular ones.
    Switch {
        /// Column coordinate.
        x: u16,
        /// Row coordinate.
        y: u16,
    },
    /// A network interface attached to `switch`. Cores are mapped onto NIs.
    Ni {
        /// The switch this NI hangs off.
        switch: NodeId,
        /// Index of this NI among its switch's NIs.
        local_index: u16,
    },
}

/// A node of the NoC graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    kind: NodeKind,
}

impl Node {
    /// The node's id.
    pub const fn id(&self) -> NodeId {
        self.id
    }

    /// The node's kind.
    pub const fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Returns `true` if the node is a switch.
    pub const fn is_switch(&self) -> bool {
        matches!(self.kind, NodeKind::Switch { .. })
    }

    /// Returns `true` if the node is an NI.
    pub const fn is_ni(&self) -> bool {
        matches!(self.kind, NodeKind::Ni { .. })
    }
}

/// A unidirectional link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    id: LinkId,
    src: NodeId,
    dst: NodeId,
}

impl Link {
    /// The link's id.
    pub const fn id(&self) -> LinkId {
        self.id
    }

    /// Source node.
    pub const fn src(&self) -> NodeId {
        self.src
    }

    /// Destination node.
    pub const fn dst(&self) -> NodeId {
        self.dst
    }
}

/// An immutable NoC topology graph.
///
/// Construct one with [`TopologyBuilder`] or the mesh convenience
/// [`crate::MeshBuilder`].
///
/// ```
/// use noc_topology::{TopologyBuilder};
///
/// # fn main() -> Result<(), noc_topology::TopologyError> {
/// let mut b = TopologyBuilder::new();
/// let s0 = b.add_switch(0, 0);
/// let s1 = b.add_switch(1, 0);
/// let ni = b.add_ni(s0)?;
/// b.connect_bidir(s0, s1)?;
/// let topo = b.build();
/// assert_eq!(topo.switch_count(), 2);
/// assert_eq!(topo.ni_count(), 1);
/// assert_eq!(topo.link_count(), 4); // s0<->s1 and s0<->ni
/// assert_eq!(topo.ni_switch(ni), Some(s0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Outgoing link ids per node.
    out_adj: Vec<Vec<LinkId>>,
    /// Incoming link ids per node.
    in_adj: Vec<Vec<LinkId>>,
    switches: Vec<NodeId>,
    nis: Vec<NodeId>,
}

impl Topology {
    /// All nodes, in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links, in id order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Node lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Link lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Number of nodes (switches + NIs).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Ids of all switches, in insertion order.
    pub fn switches(&self) -> &[NodeId] {
        &self.switches
    }

    /// Ids of all NIs, in insertion order.
    pub fn nis(&self) -> &[NodeId] {
        &self.nis
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of NIs.
    pub fn ni_count(&self) -> usize {
        self.nis.len()
    }

    /// Outgoing links of `node`.
    pub fn outgoing(&self, node: NodeId) -> &[LinkId] {
        &self.out_adj[node.index()]
    }

    /// Incoming links of `node`.
    pub fn incoming(&self, node: NodeId) -> &[LinkId] {
        &self.in_adj[node.index()]
    }

    /// The switch an NI hangs off, or `None` if `node` is not an NI.
    pub fn ni_switch(&self, node: NodeId) -> Option<NodeId> {
        match self.node(node).kind() {
            NodeKind::Ni { switch, .. } => Some(switch),
            NodeKind::Switch { .. } => None,
        }
    }

    /// The number of ports of a switch: max(in-degree, out-degree).
    ///
    /// Port count drives the crossbar term of the area model.
    ///
    /// # Panics
    ///
    /// Panics if `switch` is not a switch node.
    pub fn switch_ports(&self, switch: NodeId) -> usize {
        assert!(
            self.node(switch).is_switch(),
            "switch_ports called on non-switch node {switch}"
        );
        self.out_adj[switch.index()]
            .len()
            .max(self.in_adj[switch.index()].len())
    }

    /// Grid coordinates of a switch (meshes set these; irregular topologies
    /// may reuse them as labels).
    pub fn switch_coords(&self, switch: NodeId) -> Option<(u16, u16)> {
        match self.node(switch).kind() {
            NodeKind::Switch { x, y } => Some((x, y)),
            NodeKind::Ni { .. } => None,
        }
    }

    /// Finds the directed link from `src` to `dst`, if one exists.
    pub fn link_between(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.out_adj[src.index()]
            .iter()
            .copied()
            .find(|&l| self.link(l).dst() == dst)
    }

    /// Minimum hop distance (in links) between two nodes via BFS, or `None`
    /// if unreachable. Used for lower-bounding path latencies.
    pub fn hop_distance(&self, from: NodeId, to: NodeId) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.node_count()];
        dist[from.index()] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        while let Some(n) = queue.pop_front() {
            let d = dist[n.index()];
            for &l in self.outgoing(n) {
                let m = self.link(l).dst();
                if dist[m.index()] == usize::MAX {
                    dist[m.index()] = d + 1;
                    if m == to {
                        return Some(d + 1);
                    }
                    queue.push_back(m);
                }
            }
        }
        None
    }

    /// Checks that every node can reach every other node (strong
    /// connectivity), which valid NoC topologies must satisfy.
    pub fn is_strongly_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let start = self.nodes[0].id();
        self.reachable_count_from(start) == self.node_count()
            && self.reverse_reachable_count_from(start) == self.node_count()
    }

    fn reachable_count_from(&self, start: NodeId) -> usize {
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        let mut count = 0;
        while let Some(n) = stack.pop() {
            count += 1;
            for &l in self.outgoing(n) {
                let m = self.link(l).dst();
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    stack.push(m);
                }
            }
        }
        count
    }

    fn reverse_reachable_count_from(&self, start: NodeId) -> usize {
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        let mut count = 0;
        while let Some(n) = stack.pop() {
            count += 1;
            for &l in self.incoming(n) {
                let m = self.link(l).src();
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    stack.push(m);
                }
            }
        }
        count
    }
}

/// Incremental builder for [`Topology`].
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
    out_adj: Vec<Vec<LinkId>>,
    in_adj: Vec<Vec<LinkId>>,
    switches: Vec<NodeId>,
    nis: Vec<NodeId>,
    ni_counts: Vec<u16>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a switch at grid coordinates `(x, y)` and returns its id.
    pub fn add_switch(&mut self, x: u16, y: u16) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(Node {
            id,
            kind: NodeKind::Switch { x, y },
        });
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        self.switches.push(id);
        self.ni_counts.push(0);
        id
    }

    /// Adds an NI attached to `switch` (with bidirectional links to it) and
    /// returns the NI's id.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NotASwitch`] if `switch` is not a switch.
    pub fn add_ni(&mut self, switch: NodeId) -> Result<NodeId, TopologyError> {
        let sw_pos = self
            .switches
            .iter()
            .position(|&s| s == switch)
            .ok_or(TopologyError::NotASwitch { node: switch })?;
        let local_index = self.ni_counts[sw_pos];
        self.ni_counts[sw_pos] += 1;
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(Node {
            id,
            kind: NodeKind::Ni {
                switch,
                local_index,
            },
        });
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        self.nis.push(id);
        self.connect_bidir(switch, id)?;
        Ok(id)
    }

    /// Adds a directed link `src -> dst`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DuplicateLink`] if the link already exists,
    /// or [`TopologyError::SelfLoop`] if `src == dst`.
    pub fn connect(&mut self, src: NodeId, dst: NodeId) -> Result<LinkId, TopologyError> {
        if src == dst {
            return Err(TopologyError::SelfLoop { node: src });
        }
        if self.out_adj[src.index()]
            .iter()
            .any(|&l| self.links[l.index()].dst() == dst)
        {
            return Err(TopologyError::DuplicateLink { src, dst });
        }
        let id = LinkId::new(self.links.len());
        self.links.push(Link { id, src, dst });
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        Ok(id)
    }

    /// Adds a pair of opposite directed links between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TopologyBuilder::connect`], for either direction.
    pub fn connect_bidir(
        &mut self,
        a: NodeId,
        b: NodeId,
    ) -> Result<(LinkId, LinkId), TopologyError> {
        let ab = self.connect(a, b)?;
        let ba = self.connect(b, a)?;
        Ok((ab, ba))
    }

    /// Finishes the build.
    pub fn build(self) -> Topology {
        Topology {
            nodes: self.nodes,
            links: self.links,
            out_adj: self.out_adj,
            in_adj: self.in_adj,
            switches: self.switches,
            nis: self.nis,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_switch_topo() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(0, 0);
        let s1 = b.add_switch(1, 0);
        let n0 = b.add_ni(s0).unwrap();
        let n1 = b.add_ni(s1).unwrap();
        b.connect_bidir(s0, s1).unwrap();
        (b.build(), s0, s1, n0, n1)
    }

    #[test]
    fn builder_constructs_expected_shape() {
        let (t, s0, s1, n0, n1) = two_switch_topo();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.switch_count(), 2);
        assert_eq!(t.ni_count(), 2);
        // 2 links per NI attachment + 2 inter-switch links.
        assert_eq!(t.link_count(), 6);
        assert_eq!(t.ni_switch(n0), Some(s0));
        assert_eq!(t.ni_switch(n1), Some(s1));
        assert_eq!(t.ni_switch(s0), None);
        assert!(t.node(s0).is_switch());
        assert!(t.node(n0).is_ni());
    }

    #[test]
    fn adjacency_is_consistent() {
        let (t, s0, s1, n0, _n1) = two_switch_topo();
        // s0 connects out to n0 and s1.
        let outs: Vec<NodeId> = t.outgoing(s0).iter().map(|&l| t.link(l).dst()).collect();
        assert!(outs.contains(&n0) && outs.contains(&s1));
        assert_eq!(t.outgoing(s0).len(), 2);
        assert_eq!(t.incoming(s0).len(), 2);
        // NI has exactly one in and one out.
        assert_eq!(t.outgoing(n0).len(), 1);
        assert_eq!(t.incoming(n0).len(), 1);
    }

    #[test]
    fn link_between_finds_directed_links() {
        let (t, s0, s1, n0, n1) = two_switch_topo();
        assert!(t.link_between(s0, s1).is_some());
        assert!(t.link_between(s1, s0).is_some());
        assert!(t.link_between(n0, s0).is_some());
        assert!(t.link_between(n0, n1).is_none());
    }

    #[test]
    fn hop_distance_bfs() {
        let (t, s0, _s1, n0, n1) = two_switch_topo();
        assert_eq!(t.hop_distance(n0, n0), Some(0));
        assert_eq!(t.hop_distance(n0, s0), Some(1));
        // n0 -> s0 -> s1 -> n1
        assert_eq!(t.hop_distance(n0, n1), Some(3));
    }

    #[test]
    fn hop_distance_unreachable() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(0, 0);
        let s1 = b.add_switch(1, 0);
        // One-directional only: s0 -> s1.
        b.connect(s0, s1).unwrap();
        let t = b.build();
        assert_eq!(t.hop_distance(s0, s1), Some(1));
        assert_eq!(t.hop_distance(s1, s0), None);
        assert!(!t.is_strongly_connected());
    }

    #[test]
    fn strongly_connected_mesh_like() {
        let (t, ..) = two_switch_topo();
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn switch_ports_counts_degree() {
        let (t, s0, ..) = two_switch_topo();
        // s0: out to {n0, s1}, in from {n0, s1} -> 2 ports.
        assert_eq!(t.switch_ports(s0), 2);
    }

    #[test]
    #[should_panic(expected = "non-switch")]
    fn switch_ports_panics_on_ni() {
        let (t, _, _, n0, _) = two_switch_topo();
        let _ = t.switch_ports(n0);
    }

    #[test]
    fn builder_rejects_duplicates_and_self_loops() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(0, 0);
        let s1 = b.add_switch(1, 0);
        b.connect(s0, s1).unwrap();
        assert!(matches!(
            b.connect(s0, s1),
            Err(TopologyError::DuplicateLink { .. })
        ));
        assert!(matches!(
            b.connect(s0, s0),
            Err(TopologyError::SelfLoop { .. })
        ));
    }

    #[test]
    fn add_ni_rejects_non_switch_parent() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(0, 0);
        let ni = b.add_ni(s0).unwrap();
        assert!(matches!(
            b.add_ni(ni),
            Err(TopologyError::NotASwitch { .. })
        ));
    }

    #[test]
    fn ids_display() {
        let (t, s0, ..) = two_switch_topo();
        assert_eq!(format!("{}", s0), "n0");
        assert_eq!(format!("{}", t.links()[0].id()), "l0");
    }
}
