//! NoC architecture substrate for the multi-use-case mapping methodology of
//! Murali et al., *"A Methodology for Mapping Multiple Use-Cases onto
//! Networks on Chips"*, DATE 2006.
//!
//! This crate models the physical side of an Æthereal-style network on chip:
//!
//! * [`Topology`] — a directed graph of switches and network interfaces
//!   (NIs) connected by unidirectional links,
//! * [`MeshBuilder`] — the regular 2-D mesh topologies the paper evaluates,
//! * [`units`] — strongly-typed bandwidth / frequency / latency quantities,
//! * [`AreaModel`] — a switch area model calibrated against 0.13 µm
//!   Æthereal layouts, used for the area–frequency Pareto exploration
//!   (Figure 7(a) of the paper),
//! * [`PowerModel`] and [`DvsModel`] — activity-based power with the
//!   conservative `V² ∝ f` voltage-scaling rule the paper adopts from
//!   Rabaey et al. (Figure 7(b)),
//! * [`FaultSet`] — failed links / NIs composed onto any topology as a
//!   [`DegradedView`] that routing queries answer over the surviving
//!   resources only ([`fault`]).
//!
//! # Example
//!
//! Build a 2×2 mesh with two NIs per switch and inspect its capacity:
//!
//! ```
//! use noc_topology::{MeshBuilder, units::{Frequency, LinkWidth}};
//!
//! # fn main() -> Result<(), noc_topology::TopologyError> {
//! let mesh = MeshBuilder::new(2, 2).nis_per_switch(2).build()?;
//! let topo = mesh.topology();
//! assert_eq!(topo.switch_count(), 4);
//! assert_eq!(topo.ni_count(), 8);
//!
//! let cap = LinkWidth::BITS_32.capacity(Frequency::from_mhz(500));
//! assert_eq!(cap.as_mbps_f64(), 2000.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod fault;
pub mod graph;
pub mod mesh;
pub mod power;
pub mod units;

mod error;

pub use area::AreaModel;
pub use error::TopologyError;
pub use fault::{DegradedView, FaultSet, PathError};
pub use graph::{Link, LinkId, Node, NodeId, NodeKind, Topology, TopologyBuilder};
pub use mesh::{Mesh, MeshBuilder};
pub use power::{DvsModel, OperatingPoint, PowerModel};
