//! Switch area model.
//!
//! The paper obtains switch areas "from layouts with back-annotated
//! worst-case timing in 0.13 µm technology" (Section 6.3) and takes NoC
//! area to be the sum of switch areas (NI area is counted as core area).
//! Those layouts are not public, so this module substitutes an analytic
//! model with the same structure as published Æthereal router breakdowns:
//!
//! * a quadratic crossbar term in the port count,
//! * a linear per-port term (buffers, slot-table column, arbitration),
//! * a fixed control overhead,
//! * a frequency derating factor — meeting a faster clock costs area
//!   (wider gates, deeper pipelining), modelled linearly in `f`.
//!
//! The default calibration puts a 5-port switch at 500 MHz at ≈ 0.175 mm²,
//! in line with the DATE'03 Æthereal GT–BE router report, which is the
//! router family the paper targets.

use serde::{Deserialize, Serialize};

use crate::graph::Topology;
use crate::units::Frequency;

/// Analytic switch area model (mm², 0.13 µm).
///
/// ```
/// use noc_topology::{AreaModel, units::Frequency};
///
/// let model = AreaModel::cmos130();
/// let a = model.switch_area_mm2(5, Frequency::from_mhz(500));
/// assert!((a - 0.175).abs() < 0.02, "5-port @ 500 MHz should be ~0.175 mm², got {a}");
/// // Faster clocks cost area.
/// assert!(model.switch_area_mm2(5, Frequency::from_ghz(2)) > a);
/// // More ports cost area superlinearly.
/// assert!(model.switch_area_mm2(10, Frequency::from_mhz(500)) > 2.0 * a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Fixed control overhead per switch (mm²).
    pub base_mm2: f64,
    /// Per-port buffer/arbiter cost (mm²/port).
    pub per_port_mm2: f64,
    /// Crossbar cost (mm²/port²).
    pub per_port_sq_mm2: f64,
    /// Frequency at which the base calibration holds.
    pub ref_freq: Frequency,
    /// Fractional area increase per GHz above/below `ref_freq`.
    pub freq_slope_per_ghz: f64,
}

impl AreaModel {
    /// The default 0.13 µm calibration used throughout the reproduction.
    pub fn cmos130() -> Self {
        AreaModel {
            base_mm2: 0.020,
            per_port_mm2: 0.016,
            per_port_sq_mm2: 0.003,
            ref_freq: Frequency::from_mhz(500),
            freq_slope_per_ghz: 0.2,
        }
    }

    /// Area of one switch with `ports` ports synthesized for clock `freq`.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn switch_area_mm2(&self, ports: usize, freq: Frequency) -> f64 {
        assert!(ports > 0, "a switch must have at least one port");
        let p = ports as f64;
        let structural = self.base_mm2 + self.per_port_mm2 * p + self.per_port_sq_mm2 * p * p;
        let delta_ghz = (freq.as_hz() as f64 - self.ref_freq.as_hz() as f64) / 1e9;
        // Derating never drops below 60% of the reference-area figure: even a
        // slow clock needs the full crossbar wiring.
        let derate = (1.0 + self.freq_slope_per_ghz * delta_ghz).max(0.6);
        structural * derate
    }

    /// Total NoC area: the sum of all switch areas (NI area is attributed
    /// to the cores, as in the paper).
    pub fn topology_area_mm2(&self, topo: &Topology, freq: Frequency) -> f64 {
        topo.switches()
            .iter()
            .map(|&s| self.switch_area_mm2(topo.switch_ports(s), freq))
            .sum()
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::cmos130()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::MeshBuilder;

    #[test]
    fn calibration_point() {
        let m = AreaModel::cmos130();
        let a = m.switch_area_mm2(5, Frequency::from_mhz(500));
        assert!((a - 0.175).abs() < 0.02, "got {a}");
    }

    #[test]
    fn area_monotone_in_ports_and_frequency() {
        let m = AreaModel::cmos130();
        let f = Frequency::from_mhz(500);
        let mut prev = 0.0;
        for ports in 1..=16 {
            let a = m.switch_area_mm2(ports, f);
            assert!(a > prev);
            prev = a;
        }
        let mut prev = 0.0;
        for mhz in [100u64, 300, 500, 800, 1200, 2000] {
            let a = m.switch_area_mm2(5, Frequency::from_mhz(mhz));
            assert!(a >= prev, "area should not shrink with frequency");
            prev = a;
        }
    }

    #[test]
    fn derate_floor_applies_at_very_low_frequency() {
        let m = AreaModel::cmos130();
        let slow = m.switch_area_mm2(5, Frequency::from_mhz(1));
        let ref_a = m.switch_area_mm2(5, m.ref_freq);
        assert!(slow >= 0.6 * ref_a / (1.0), "floor should hold");
        assert!(slow < ref_a);
    }

    #[test]
    fn topology_area_sums_switches() {
        let m = AreaModel::cmos130();
        let f = Frequency::from_mhz(500);
        let mesh = MeshBuilder::new(2, 2).nis_per_switch(1).build().unwrap();
        let t = mesh.topology();
        // Every switch in a 2x2 with 1 NI has 2 mesh neighbours + 1 NI = 3 ports.
        let expected = 4.0 * m.switch_area_mm2(3, f);
        assert!((m.topology_area_mm2(t, f) - expected).abs() < 1e-12);
    }

    #[test]
    fn bigger_mesh_has_more_area() {
        let m = AreaModel::cmos130();
        let f = Frequency::from_mhz(500);
        let small = MeshBuilder::new(2, 2).nis_per_switch(2).build().unwrap();
        let large = MeshBuilder::new(4, 4).nis_per_switch(2).build().unwrap();
        assert!(
            m.topology_area_mm2(large.topology(), f) > m.topology_area_mm2(small.topology(), f)
        );
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_panics() {
        let _ = AreaModel::cmos130().switch_area_mm2(0, Frequency::from_mhz(500));
    }
}
