//! Regular 2-D mesh topologies.
//!
//! The paper's Algorithm 2 grows a mesh from one switch until a valid
//! mapping exists ("increase the topology size and go to step 1"); this
//! module provides the mesh generator for that outer loop, plus the size
//! enumeration order used there (1×1, 1×2, 2×2, 2×3, 3×3, …).

use serde::{Deserialize, Serialize};

use crate::error::TopologyError;
use crate::graph::{NodeId, Topology, TopologyBuilder};

/// A built 2-D mesh: the [`Topology`] plus its grid metadata.
///
/// ```
/// use noc_topology::MeshBuilder;
///
/// # fn main() -> Result<(), noc_topology::TopologyError> {
/// let mesh = MeshBuilder::new(3, 2).nis_per_switch(2).build()?;
/// assert_eq!(mesh.rows(), 3);
/// assert_eq!(mesh.cols(), 2);
/// assert_eq!(mesh.topology().switch_count(), 6);
/// assert_eq!(mesh.topology().ni_count(), 12);
/// // XY hop distance between opposite corner switches: (3-1)+(2-1) = 3.
/// let a = mesh.switch_at(0, 0);
/// let b = mesh.switch_at(2, 1);
/// assert_eq!(mesh.topology().hop_distance(a, b), Some(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    rows: u16,
    cols: u16,
    nis_per_switch: u16,
    topology: Topology,
    /// switch ids in row-major order
    switch_grid: Vec<NodeId>,
}

impl Mesh {
    /// Number of rows of switches.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of columns of switches.
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// NIs attached to every switch.
    pub fn nis_per_switch(&self) -> u16 {
        self.nis_per_switch
    }

    /// The underlying topology graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Consumes the mesh, returning the topology.
    pub fn into_topology(self) -> Topology {
        self.topology
    }

    /// The switch at grid position (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn switch_at(&self, row: u16, col: u16) -> NodeId {
        assert!(
            row < self.rows && col < self.cols,
            "mesh coordinates out of range"
        );
        self.switch_grid[row as usize * self.cols as usize + col as usize]
    }

    /// Total number of switches (`rows × cols`).
    pub fn switch_count(&self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// A short label like `"3x2"` for reports.
    pub fn dims_label(&self) -> String {
        format!("{}x{}", self.rows, self.cols)
    }
}

/// Builder for [`Mesh`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshBuilder {
    rows: u16,
    cols: u16,
    nis_per_switch: u16,
    torus: bool,
}

impl MeshBuilder {
    /// Starts a mesh of `rows × cols` switches with one NI per switch.
    pub fn new(rows: u16, cols: u16) -> Self {
        MeshBuilder {
            rows,
            cols,
            nis_per_switch: 1,
            torus: false,
        }
    }

    /// Sets how many NIs hang off each switch (each NI hosts one core).
    #[must_use]
    pub fn nis_per_switch(mut self, nis: u16) -> Self {
        self.nis_per_switch = nis;
        self
    }

    /// Adds wraparound links, turning the mesh into a 2-D torus.
    /// Wraparound is only created along dimensions of length ≥ 3 (for
    /// length 2 the links already exist; for length 1 they would be
    /// self-loops).
    #[must_use]
    pub fn torus(mut self, enabled: bool) -> Self {
        self.torus = enabled;
        self
    }

    /// Builds the mesh.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::EmptyDimension`] if any dimension or the NI
    /// count is zero.
    pub fn build(self) -> Result<Mesh, TopologyError> {
        if self.rows == 0 {
            return Err(TopologyError::EmptyDimension { what: "mesh rows" });
        }
        if self.cols == 0 {
            return Err(TopologyError::EmptyDimension { what: "mesh cols" });
        }
        if self.nis_per_switch == 0 {
            return Err(TopologyError::EmptyDimension {
                what: "NIs per switch",
            });
        }
        let mut b = TopologyBuilder::new();
        let mut grid = Vec::with_capacity(self.rows as usize * self.cols as usize);
        for r in 0..self.rows {
            for c in 0..self.cols {
                grid.push(b.add_switch(c, r));
            }
        }
        let at = |r: u16, c: u16| grid[r as usize * self.cols as usize + c as usize];
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c + 1 < self.cols {
                    b.connect_bidir(at(r, c), at(r, c + 1))?;
                }
                if r + 1 < self.rows {
                    b.connect_bidir(at(r, c), at(r + 1, c))?;
                }
            }
        }
        if self.torus {
            if self.cols >= 3 {
                for r in 0..self.rows {
                    b.connect_bidir(at(r, self.cols - 1), at(r, 0))?;
                }
            }
            if self.rows >= 3 {
                for c in 0..self.cols {
                    b.connect_bidir(at(self.rows - 1, c), at(0, c))?;
                }
            }
        }
        for &sw in &grid {
            for _ in 0..self.nis_per_switch {
                b.add_ni(sw)?;
            }
        }
        Ok(Mesh {
            rows: self.rows,
            cols: self.cols,
            nis_per_switch: self.nis_per_switch,
            topology: b.build(),
            switch_grid: grid,
        })
    }
}

/// Enumerates near-square mesh dimensions in non-decreasing switch count:
/// (1,1), (1,2), (2,2), (2,3), (3,3), (3,4), …
///
/// This is the growth order of Algorithm 2's outer loop. The iterator is
/// infinite; cap it with [`Iterator::take`] or a size bound.
///
/// ```
/// let sizes: Vec<(u16, u16)> = noc_topology::mesh::mesh_sizes().take(5).collect();
/// assert_eq!(sizes, vec![(1, 1), (1, 2), (2, 2), (2, 3), (3, 3)]);
/// ```
pub fn mesh_sizes() -> impl Iterator<Item = (u16, u16)> {
    // i = 0, 1, 2, ... -> (1,1), (1,2), (2,2), (2,3), (3,3), ...
    (0u32..).map(|i| ((i / 2 + 1) as u16, ((i + 1) / 2 + 1) as u16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_counts() {
        let mesh = MeshBuilder::new(4, 4).nis_per_switch(3).build().unwrap();
        let t = mesh.topology();
        assert_eq!(t.switch_count(), 16);
        assert_eq!(t.ni_count(), 48);
        // Inter-switch links: 2 * (rows*(cols-1) + cols*(rows-1)) = 2*24 = 48.
        // NI links: 2 * 48 = 96.
        assert_eq!(t.link_count(), 48 + 96);
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn single_switch_mesh() {
        let mesh = MeshBuilder::new(1, 1).nis_per_switch(20).build().unwrap();
        let t = mesh.topology();
        assert_eq!(t.switch_count(), 1);
        assert_eq!(t.ni_count(), 20);
        assert_eq!(t.switch_ports(t.switches()[0]), 20);
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn xy_distances_match_manhattan() {
        let mesh = MeshBuilder::new(3, 3).build().unwrap();
        let t = mesh.topology();
        for r0 in 0..3u16 {
            for c0 in 0..3u16 {
                for r1 in 0..3u16 {
                    for c1 in 0..3u16 {
                        let d = t
                            .hop_distance(mesh.switch_at(r0, c0), mesh.switch_at(r1, c1))
                            .unwrap();
                        let manhattan = (r0 as i32 - r1 as i32).unsigned_abs() as usize
                            + (c0 as i32 - c1 as i32).unsigned_abs() as usize;
                        assert_eq!(d, manhattan);
                    }
                }
            }
        }
    }

    #[test]
    fn corner_and_center_ports() {
        let mesh = MeshBuilder::new(3, 3).nis_per_switch(2).build().unwrap();
        let t = mesh.topology();
        // Corner: 2 mesh neighbours + 2 NIs = 4 ports.
        assert_eq!(t.switch_ports(mesh.switch_at(0, 0)), 4);
        // Center: 4 mesh neighbours + 2 NIs = 6 ports.
        assert_eq!(t.switch_ports(mesh.switch_at(1, 1)), 6);
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(MeshBuilder::new(0, 3).build().is_err());
        assert!(MeshBuilder::new(3, 0).build().is_err());
        assert!(MeshBuilder::new(3, 3).nis_per_switch(0).build().is_err());
    }

    #[test]
    fn mesh_sizes_are_non_decreasing_and_near_square() {
        let sizes: Vec<(u16, u16)> = mesh_sizes().take(12).collect();
        assert_eq!(
            sizes,
            vec![
                (1, 1),
                (1, 2),
                (2, 2),
                (2, 3),
                (3, 3),
                (3, 4),
                (4, 4),
                (4, 5),
                (5, 5),
                (5, 6),
                (6, 6),
                (6, 7)
            ]
        );
        let mut prev = 0;
        for (r, c) in sizes {
            let n = r as usize * c as usize;
            assert!(n >= prev);
            assert!(c as i32 - r as i32 <= 1);
            prev = n;
        }
    }

    #[test]
    fn dims_label() {
        let mesh = MeshBuilder::new(2, 3).build().unwrap();
        assert_eq!(mesh.dims_label(), "2x3");
    }

    #[test]
    fn torus_wraps_both_dimensions() {
        let mesh = MeshBuilder::new(4, 4).torus(true).build().unwrap();
        let t = mesh.topology();
        // Mesh links 2*(4*3+4*3)=48 + wraparound 2*(4+4)=16.
        assert_eq!(t.link_count() - 2 * t.ni_count(), 48 + 16);
        // Opposite edge switches are now adjacent.
        assert_eq!(
            t.hop_distance(mesh.switch_at(0, 0), mesh.switch_at(0, 3)),
            Some(1)
        );
        assert_eq!(
            t.hop_distance(mesh.switch_at(0, 0), mesh.switch_at(3, 0)),
            Some(1)
        );
        // Every switch has degree 4 + NIs.
        for &sw in t.switches() {
            assert_eq!(t.switch_ports(sw), 4 + 1);
        }
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn torus_skips_short_dimensions() {
        // 2-long dimension: wraparound would duplicate the existing link.
        let small = MeshBuilder::new(2, 3).torus(true).build().unwrap();
        let t = small.topology();
        // Mesh links 2*(2*2+3*1)=14 + column wrap only (cols=3): 2*2=4.
        assert_eq!(t.link_count() - 2 * t.ni_count(), 14 + 4);
        // 1-long dimension: nothing to wrap.
        let line = MeshBuilder::new(1, 4).torus(true).build().unwrap();
        let lt = line.topology();
        assert_eq!(lt.link_count() - 2 * lt.ni_count(), 6 + 2);
        assert!(lt.is_strongly_connected());
    }

    #[test]
    fn torus_shortens_worst_case_distance() {
        let mesh = MeshBuilder::new(5, 5).build().unwrap();
        let torus = MeshBuilder::new(5, 5).torus(true).build().unwrap();
        let d_mesh = mesh
            .topology()
            .hop_distance(mesh.switch_at(0, 0), mesh.switch_at(4, 4))
            .unwrap();
        let d_torus = torus
            .topology()
            .hop_distance(torus.switch_at(0, 0), torus.switch_at(4, 4))
            .unwrap();
        assert_eq!(d_mesh, 8);
        assert_eq!(d_torus, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn switch_at_bounds() {
        let mesh = MeshBuilder::new(2, 2).build().unwrap();
        let _ = mesh.switch_at(2, 0);
    }
}
