//! Property-based tests of the topology substrate.

use noc_topology::units::{Bandwidth, Frequency, Latency, LinkWidth};
use noc_topology::{mesh::mesh_sizes, AreaModel, DvsModel, MeshBuilder, PowerModel};
use proptest::prelude::*;

proptest! {
    /// Meshes are strongly connected and have the expected counts.
    #[test]
    fn mesh_structure(rows in 1u16..6, cols in 1u16..6, nis in 1u16..5) {
        let mesh = MeshBuilder::new(rows, cols).nis_per_switch(nis).build().unwrap();
        let t = mesh.topology();
        let switches = rows as usize * cols as usize;
        prop_assert_eq!(t.switch_count(), switches);
        prop_assert_eq!(t.ni_count(), switches * nis as usize);
        let mesh_links = 2 * (rows as usize * (cols as usize - 1)
            + cols as usize * (rows as usize - 1));
        prop_assert_eq!(t.link_count(), mesh_links + 2 * t.ni_count());
        prop_assert!(t.is_strongly_connected());
    }

    /// BFS distance between switches equals Manhattan distance.
    #[test]
    fn mesh_distances(
        rows in 1u16..5,
        cols in 1u16..5,
        r0 in 0u16..5, c0 in 0u16..5, r1 in 0u16..5, c1 in 0u16..5,
    ) {
        let (r0, c0, r1, c1) = (r0 % rows, c0 % cols, r1 % rows, c1 % cols);
        let mesh = MeshBuilder::new(rows, cols).build().unwrap();
        let d = mesh
            .topology()
            .hop_distance(mesh.switch_at(r0, c0), mesh.switch_at(r1, c1))
            .unwrap();
        let manhattan = (r0 as i32 - r1 as i32).unsigned_abs() as usize
            + (c0 as i32 - c1 as i32).unsigned_abs() as usize;
        prop_assert_eq!(d, manhattan);
    }

    /// Every link's endpoints agree with the adjacency lists.
    #[test]
    fn adjacency_consistency(rows in 1u16..5, cols in 1u16..5, nis in 1u16..4) {
        let mesh = MeshBuilder::new(rows, cols).nis_per_switch(nis).build().unwrap();
        let t = mesh.topology();
        for link in t.links() {
            prop_assert!(t.outgoing(link.src()).contains(&link.id()));
            prop_assert!(t.incoming(link.dst()).contains(&link.id()));
            prop_assert_eq!(t.link_between(link.src(), link.dst()), Some(link.id()));
        }
        for node in t.nodes() {
            for &l in t.outgoing(node.id()) {
                prop_assert_eq!(t.link(l).src(), node.id());
            }
            for &l in t.incoming(node.id()) {
                prop_assert_eq!(t.link(l).dst(), node.id());
            }
        }
    }

    /// Area grows monotonically with port count and never goes negative.
    #[test]
    fn area_monotone(ports in 1usize..20, mhz in 50u64..3000) {
        let model = AreaModel::cmos130();
        let f = Frequency::from_mhz(mhz);
        let a = model.switch_area_mm2(ports, f);
        prop_assert!(a > 0.0);
        prop_assert!(model.switch_area_mm2(ports + 1, f) > a);
    }

    /// DVS relative power is within (0, 1] for any frequency at or below
    /// the reference, and monotone in frequency.
    #[test]
    fn dvs_relative_power_bounds(mhz in 1u64..500) {
        let dvs = DvsModel::cmos130();
        let ref_f = Frequency::from_mhz(500);
        let r = dvs.relative_power(Frequency::from_mhz(mhz), ref_f);
        prop_assert!(r > 0.0 && r <= 1.0 + 1e-12, "r = {r}");
        let r2 = dvs.relative_power(Frequency::from_mhz(mhz + 1), ref_f);
        prop_assert!(r2 >= r);
    }

    /// Power model scales monotonically with frequency.
    #[test]
    fn power_monotone_in_frequency(mhz in 50u64..2000) {
        let pm = PowerModel::cmos130();
        let mesh = MeshBuilder::new(2, 2).nis_per_switch(2).build().unwrap();
        let p1 = pm.power_mw(mesh.topology(), Frequency::from_mhz(mhz));
        let p2 = pm.power_mw(mesh.topology(), Frequency::from_mhz(mhz + 50));
        prop_assert!(p2 > p1);
    }

    /// Bandwidth arithmetic: sum and saturating_sub are consistent.
    #[test]
    fn bandwidth_arithmetic(a in 0u64..10_000, b in 0u64..10_000) {
        let ba = Bandwidth::from_mbps(a);
        let bb = Bandwidth::from_mbps(b);
        let sum = ba + bb;
        prop_assert_eq!(sum.saturating_sub(bb), ba);
        prop_assert_eq!(sum.saturating_sub(sum), Bandwidth::ZERO);
        prop_assert!(sum >= ba && sum >= bb);
    }

    /// Link capacity scales linearly with frequency and width.
    #[test]
    fn capacity_linear(mhz in 1u64..4000) {
        let f = Frequency::from_mhz(mhz);
        let w32 = LinkWidth::BITS_32.capacity(f);
        let w64 = LinkWidth::BITS_64.capacity(f);
        prop_assert_eq!(w64.as_bytes_per_sec(), 2 * w32.as_bytes_per_sec());
        let f2 = Frequency::from_mhz(2 * mhz);
        prop_assert_eq!(
            LinkWidth::BITS_32.capacity(f2).as_bytes_per_sec(),
            2 * w32.as_bytes_per_sec()
        );
    }

    /// Latency constructors agree across units.
    #[test]
    fn latency_units(us in 0u64..1_000_000) {
        prop_assert_eq!(Latency::from_us(us).as_ns(), us * 1000);
        prop_assert_eq!(Latency::from_ms(us).as_ns(), Latency::from_us(us * 1000).as_ns());
    }
}

#[test]
fn mesh_sizes_monotone_prefix() {
    let sizes: Vec<(u16, u16)> = mesh_sizes().take(40).collect();
    let mut prev = 0usize;
    for (r, c) in sizes {
        let n = r as usize * c as usize;
        assert!(n >= prev);
        assert!((c as i32 - r as i32).abs() <= 1, "near-square: {r}x{c}");
        prev = n;
    }
}
