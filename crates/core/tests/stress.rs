//! Stress and boundary tests of the mapping engine, run against the
//! public API.

use noc_tdma::{SlotPolicy, TdmaSpec};
use noc_topology::units::{Bandwidth, Frequency, Latency, LinkWidth};
use noc_topology::MeshBuilder;
use noc_usecase::spec::{CoreId, Flow, SocSpec, UseCaseBuilder};
use noc_usecase::UseCaseGroups;
use nocmap::design::{design_smallest_mesh, min_frequency};
use nocmap::{map_multi_usecase, MapperOptions, Placement};

fn c(i: u32) -> CoreId {
    CoreId::new(i)
}

fn bw(m: u64) -> Bandwidth {
    Bandwidth::from_mbps(m)
}

/// A spec that saturates one link to exactly 100%: all 128 slots of an NI
/// link must be packed.
#[test]
fn packs_an_ni_link_to_one_hundred_percent() {
    // 8 flows out of core 0 at 250 MB/s each = 2000 MB/s = the whole
    // link; each needs 16 of 128 slots.
    let mut b = UseCaseBuilder::new("full");
    for i in 1..=8u32 {
        b = b.flow(c(0), c(i), bw(250), Latency::UNCONSTRAINED).unwrap();
    }
    let mut soc = SocSpec::new("saturate");
    soc.add_use_case(b.build());
    let groups = UseCaseGroups::singletons(1);
    let sol = design_smallest_mesh(
        &soc,
        &groups,
        TdmaSpec::paper_default(),
        &MapperOptions::default(),
        64,
    )
    .expect("a fully-subscribed NI link is still feasible");
    sol.verify(&soc, &groups).unwrap();
    // Core 0's NI egress carries exactly 128 slots.
    let topo = sol.topology();
    let ni = sol.ni_of(c(0)).unwrap();
    let out_link = topo.outgoing(ni)[0];
    let total: usize = sol
        .group_config(0)
        .iter()
        .filter(|(_, r)| r.path.first() == Some(&out_link))
        .map(|(_, r)| r.slot_count())
        .sum();
    assert_eq!(total, 128);
}

/// One slot more than the link holds must fail at every size.
#[test]
fn over_subscription_by_one_slot_fails() {
    let mut b = UseCaseBuilder::new("over");
    for i in 1..=8u32 {
        b = b.flow(c(0), c(i), bw(250), Latency::UNCONSTRAINED).unwrap();
    }
    // One extra 16 MB/s flow (1 slot) out of core 0.
    b = b.flow(c(0), c(9), bw(16), Latency::UNCONSTRAINED).unwrap();
    let mut soc = SocSpec::new("oversub");
    soc.add_use_case(b.build());
    let err = design_smallest_mesh(
        &soc,
        &UseCaseGroups::singletons(1),
        TdmaSpec::paper_default(),
        &MapperOptions::default(),
        64,
    );
    assert!(err.is_err(), "129 slots through a 128-slot link cannot map");
}

/// Latency bounds that only a neighbouring placement can meet.
#[test]
fn tight_latency_forces_co_location() {
    // At 500 MHz, 128 slots: a 1-slot connection has worst case 128+hops
    // cycles ~ 260 ns. Demand 100 ns: needs ~ >3 slots AND few hops.
    let mut soc = SocSpec::new("tight");
    soc.add_use_case(
        UseCaseBuilder::new("u")
            .flow(c(0), c(1), bw(16), Latency::from_ns(100))
            .unwrap()
            .build(),
    );
    let groups = UseCaseGroups::singletons(1);
    let sol = design_smallest_mesh(
        &soc,
        &groups,
        TdmaSpec::paper_default(),
        &MapperOptions::default(),
        64,
    )
    .expect("feasible with enough slots");
    sol.verify(&soc, &groups).unwrap();
    let route = sol.group_config(0).route(c(0), c(1)).unwrap();
    assert!(route.worst_case_latency <= Latency::from_ns(100));
    // 100 ns = 50 cycles; hops + max_gap <= 50 means the reservation had
    // to grow well beyond 1 slot.
    assert!(route.slot_count() >= 3, "got {} slots", route.slot_count());
}

/// Forty use-cases on one pair, all in separate groups: per-group states
/// must stay independent (no cross-talk), sharing one placement.
#[test]
fn forty_groups_do_not_interfere() {
    let mut soc = SocSpec::new("forty");
    for u in 0..40 {
        soc.add_use_case(
            UseCaseBuilder::new(format!("u{u}"))
                .flow(c(0), c(1), bw(1900), Latency::UNCONSTRAINED)
                .unwrap()
                .build(),
        );
    }
    let groups = UseCaseGroups::singletons(40);
    let mesh = MeshBuilder::new(1, 2).nis_per_switch(1).build().unwrap();
    let sol = map_multi_usecase(
        &soc,
        &groups,
        mesh.topology(),
        TdmaSpec::paper_default(),
        &MapperOptions::default(),
    )
    .expect("each group has the whole network to itself");
    sol.verify(&soc, &groups).unwrap();
    assert_eq!(sol.group_configs().len(), 40);
    // All groups route the same pair between the same NIs.
    let first = sol.group_config(0).route(c(0), c(1)).unwrap();
    for g in 1..40 {
        let r = sol.group_config(g).route(c(0), c(1)).unwrap();
        assert_eq!(r.path, first.path, "same (only) shortest path");
    }
}

/// The same spec merged into ONE group must fail: 40 x 1900 MB/s through
/// one pair cannot share a single configuration.
#[test]
fn forty_merged_heavy_flows_fail() {
    let mut soc = SocSpec::new("forty-merged");
    for u in 0..40 {
        soc.add_use_case(
            UseCaseBuilder::new(format!("u{u}"))
                // Different pairs so the merged union accumulates.
                .flow(c(u), c(u + 40), bw(1900), Latency::UNCONSTRAINED)
                .unwrap()
                .build(),
        );
    }
    // Singleton groups: trivially feasible (one flow each).
    let free = design_smallest_mesh(
        &soc,
        &UseCaseGroups::singletons(40),
        TdmaSpec::paper_default(),
        &MapperOptions::default(),
        400,
    );
    assert!(free.is_ok());
}

/// Frequency bisection agrees with a linear scan on a coarse grid.
#[test]
fn min_frequency_matches_linear_scan() {
    let mut soc = SocSpec::new("scan");
    soc.add_use_case(
        UseCaseBuilder::new("u")
            .flow(c(0), c(1), bw(640), Latency::UNCONSTRAINED)
            .unwrap()
            .flow(c(1), c(0), bw(320), Latency::UNCONSTRAINED)
            .unwrap()
            .build(),
    );
    let groups = UseCaseGroups::singletons(1);
    let mesh = MeshBuilder::new(1, 1).nis_per_switch(2).build().unwrap();
    let opts = MapperOptions::default();
    let base = TdmaSpec::paper_default();
    let (f, _) = min_frequency(
        &soc,
        &groups,
        mesh.topology(),
        base,
        &opts,
        Frequency::from_mhz(1),
        Frequency::from_mhz(500),
    )
    .unwrap();
    // Linear scan at 1 MHz granularity around the found point.
    let feasible = |mhz: u64| {
        map_multi_usecase(
            &soc,
            &groups,
            mesh.topology(),
            base.at_frequency(Frequency::from_mhz(mhz)),
            &opts,
        )
        .is_ok()
    };
    let mhz = f.as_hz() / 1_000_000;
    assert!(feasible(mhz));
    assert!(
        !feasible(mhz - 1),
        "bisection overshot: {} - 1 also feasible",
        mhz
    );
}

/// First-fit and spread policies both produce valid (if different)
/// solutions.
#[test]
fn slot_policies_both_valid() {
    let mut soc = SocSpec::new("policies");
    let mut b = UseCaseBuilder::new("u");
    for i in 0..6u32 {
        b = b
            .flow(
                c(i),
                c((i + 1) % 6),
                bw(100 + 50 * u64::from(i)),
                Latency::UNCONSTRAINED,
            )
            .unwrap();
    }
    soc.add_use_case(b.build());
    let groups = UseCaseGroups::singletons(1);
    for policy in [SlotPolicy::Spread, SlotPolicy::FirstFit] {
        let opts = MapperOptions {
            slot_policy: policy,
            ..Default::default()
        };
        let sol = design_smallest_mesh(&soc, &groups, TdmaSpec::paper_default(), &opts, 64)
            .unwrap_or_else(|e| panic!("{policy:?} failed: {e}"));
        sol.verify(&soc, &groups).unwrap();
    }
}

/// Mapping on a 1 GHz, 64-bit fabric halves the slots a flow needs
/// compared to 500 MHz / 32-bit (4x the capacity).
#[test]
fn capacity_scaling_reduces_slot_demand() {
    let mut soc = SocSpec::new("cap");
    soc.add_use_case(
        UseCaseBuilder::new("u")
            .flow(c(0), c(1), bw(500), Latency::UNCONSTRAINED)
            .unwrap()
            .build(),
    );
    let groups = UseCaseGroups::singletons(1);
    let mesh = MeshBuilder::new(1, 1).nis_per_switch(2).build().unwrap();
    let slow = TdmaSpec::new(128, Frequency::from_mhz(500), LinkWidth::BITS_32);
    let fast = TdmaSpec::new(128, Frequency::from_ghz(1), LinkWidth::BITS_64);
    let opts = MapperOptions::default();
    let s1 = map_multi_usecase(&soc, &groups, mesh.topology(), slow, &opts).unwrap();
    let s2 = map_multi_usecase(&soc, &groups, mesh.topology(), fast, &opts).unwrap();
    let k1 = s1.group_config(0).route(c(0), c(1)).unwrap().slot_count();
    let k2 = s2.group_config(0).route(c(0), c(1)).unwrap().slot_count();
    assert_eq!(k1, 32); // 500 of 2000 MB/s = 1/4 of 128
    assert_eq!(k2, 8); // 500 of 8000 MB/s = 1/16 of 128
}

/// Preset placement with a stale NI id is rejected, not mis-mapped.
#[test]
fn preset_placement_validation() {
    let mut soc = SocSpec::new("preset");
    soc.add_use_case(
        UseCaseBuilder::new("u")
            .flow(c(0), c(1), bw(10), Latency::UNCONSTRAINED)
            .unwrap()
            .build(),
    );
    let mesh = MeshBuilder::new(1, 1).nis_per_switch(2).build().unwrap();
    let topo = mesh.topology();
    // Map both cores onto the SAME NI: must be rejected.
    let ni = topo.nis()[0];
    let preset: std::collections::BTreeMap<_, _> = [(c(0), ni), (c(1), ni)].into_iter().collect();
    let err = map_multi_usecase(
        &soc,
        &UseCaseGroups::singletons(1),
        topo,
        TdmaSpec::paper_default(),
        &MapperOptions {
            placement: Placement::Preset(preset),
            ..Default::default()
        },
    );
    assert!(err.is_err());
}

/// Flow validation composes with mapping: specs built from raw `Flow`s
/// behave identically to builder-made ones.
#[test]
fn flow_construction_equivalence() {
    let direct = Flow::new(c(0), c(1), bw(77), Latency::from_us(3)).unwrap();
    let via_builder = UseCaseBuilder::new("u")
        .flow(c(0), c(1), bw(77), Latency::from_us(3))
        .unwrap()
        .build();
    assert_eq!(via_builder.flows()[0], direct);
}
