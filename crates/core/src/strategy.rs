//! The mapping-strategy portfolio: greedy, displacement local search,
//! and bounded branch-and-bound behind one selector.
//!
//! The paper's flow is greedy-plus-refinement only; production use wants
//! to trade solution quality against mapping latency per spec (ROADMAP
//! item 2, modeled on the PDCCH allocator's greedy /
//! shuffle-with-displacement / exhaustive-search comparison). Every
//! strategy here starts from the same greedy design
//! ([`design_smallest_fabric`]) so the fabric size is identical across
//! the portfolio and quality differences show up purely as communication
//! cost ([`MappingSolution::comm_cost_bytes_hops`]):
//!
//! * [`StrategyKind::Greedy`] — the existing path, returned unchanged
//!   (byte- and op-identical to calling [`design_smallest_fabric`]).
//! * [`StrategyKind::Displacement`] — deterministic first-improvement
//!   local search over core re-placements: move a core to a better NI
//!   and, when the NI is occupied, **evict and re-place the blocking
//!   core** — under the move budget of [`RemapConfig`], counting each
//!   eviction. Candidates are evaluated by delta re-routes whose slot
//!   conflict probes are the `combined_occupancy` word folds of PR 6.
//! * [`StrategyKind::BranchAndBound`] — depth-first search over core →
//!   NI assignments that prunes on an admissible lower bound (each
//!   merged pair costs at least `bandwidth × shortest NI distance`) and
//!   stops after a deterministic node budget, keeping the greedy
//!   solution as the starting incumbent — so its cost can never exceed
//!   greedy's.
//!
//! All three share the [`RouteCache`]: candidate placements are routed
//! through [`reroute_preset_groups_cached`], so a group whose placement
//! signature was already routed is spliced from the cache
//! (`route_cache_hits` in [`crate::perf`]) instead of re-routed.
//! Everything is a pure function of its inputs — no RNG, no wall clock —
//! so strategy outputs are byte-identical at any `noc-par` width
//! (`tests/parallel_determinism.rs`) and the `frontier` suite's table is
//! goldenable. The differential contract (validity via a naive per-slot
//! shadow scan, branch-and-bound ≤ greedy, eviction budgets respected)
//! is pinned by `tests/strategy_differential.rs`; see
//! `docs/STRATEGIES.md` for the full writeup.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use noc_tdma::TdmaSpec;
use noc_topology::NodeId;
use noc_usecase::spec::{CoreId, SocSpec};
use noc_usecase::UseCaseGroups;

use crate::design::{design_smallest_fabric, FabricKind};
use crate::error::MapError;
use crate::mapper::{
    map_multi_usecase, reroute_preset_groups_cached, MapperOptions, Placement, RouteCache,
};
use crate::merge::{merged_group_flows, MergedFlow};
use crate::remap::RemapConfig;
use crate::result::MappingSolution;

/// Which mapping strategy a flow (or the `frontier` suite) runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum StrategyKind {
    /// The paper's greedy construction (plus whatever refinement stages
    /// the flow composes after it). The default — flows that do not name
    /// a strategy behave exactly as before.
    #[default]
    Greedy,
    /// Displacement local search on top of the greedy solution.
    Displacement,
    /// Bounded branch-and-bound seeded with the greedy incumbent.
    BranchAndBound,
}

impl StrategyKind {
    /// Every strategy, in portfolio (and frontier-table) order.
    pub const ALL: [StrategyKind; 3] = [
        StrategyKind::Greedy,
        StrategyKind::Displacement,
        StrategyKind::BranchAndBound,
    ];

    /// The spec-grammar token (`stage map <token>`).
    pub fn token(self) -> &'static str {
        match self {
            StrategyKind::Greedy => "greedy",
            StrategyKind::Displacement => "displacement",
            StrategyKind::BranchAndBound => "bnb",
        }
    }

    /// Parses a spec-grammar token ([`Self::token`]).
    pub fn parse(token: &str) -> Option<StrategyKind> {
        StrategyKind::ALL.into_iter().find(|k| k.token() == token)
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// A solved strategy run: the solution plus the strategy's own work
/// accounting (deterministic, so the differential tests can pin budget
/// compliance and the frontier table can print it).
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyOutcome {
    /// The best solution the strategy found.
    pub solution: MappingSolution,
    /// Displacement only: cores evicted from an occupied NI and
    /// re-placed. Always `<=` [`Self::eviction_budget`].
    pub evictions: u64,
    /// Displacement only: the move budget in force
    /// ([`displacement_eviction_budget`]); 0 for other strategies.
    pub eviction_budget: u64,
    /// Branch-and-bound only: search nodes expanded. Always `<=`
    /// [`BNB_NODE_BUDGET`].
    pub nodes_expanded: u64,
}

/// Deterministic node budget of [`StrategyKind::BranchAndBound`]: the
/// depth-first search stops expanding after this many core→NI assignment
/// nodes, whatever the instance size — bounded latency by construction.
pub const BNB_NODE_BUDGET: u64 = 3000;

/// Scan cap of [`StrategyKind::Displacement`]: only the top-N cores by
/// total merged bandwidth are considered for re-placement each round
/// (moving a heavy core is where the cost is; scanning every core of a
/// big design would make the strategy's latency quadratic for tail-end
/// gains).
pub const DISPLACEMENT_SCAN_CORES: usize = 8;

/// The displacement move budget, borrowed from [`RemapConfig`]'s default
/// hill-climb semantics: at most `max_moved_cores × rounds` evictions
/// total, in at most `rounds` scan rounds.
pub fn displacement_eviction_budget() -> u64 {
    let cfg = RemapConfig::default();
    (cfg.max_moved_cores * cfg.rounds) as u64
}

/// Designs the smallest fabric greedily, then refines the mapping with
/// the selected strategy on that fabric. [`StrategyKind::Greedy`]
/// returns the greedy design unchanged (same bytes, same op counts);
/// the other strategies keep its fabric and only re-place/re-route, so
/// `switch_count` is identical across the portfolio and
/// `comm_cost_bytes_hops` is `<=` greedy's for every strategy.
///
/// # Errors
///
/// As [`design_smallest_fabric`]; the refinement phases themselves only
/// reject candidates, never fail the design.
pub fn design_with_strategy(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    spec: TdmaSpec,
    options: &MapperOptions,
    max_switches: usize,
    fabric: FabricKind,
    kind: StrategyKind,
) -> Result<StrategyOutcome, MapError> {
    let greedy = design_smallest_fabric(soc, groups, spec, options, max_switches, fabric)?;
    match kind {
        StrategyKind::Greedy => Ok(StrategyOutcome {
            solution: greedy,
            evictions: 0,
            eviction_budget: 0,
            nodes_expanded: 0,
        }),
        StrategyKind::Displacement => displacement_search(soc, groups, options, greedy),
        StrategyKind::BranchAndBound => branch_and_bound(soc, groups, options, greedy),
    }
}

/// The preset-pure twin of `solution`: the same placement fully
/// re-routed with [`Placement::Preset`], which is the only valid splice
/// base for delta re-routes (see
/// [`crate::mapper::reroute_preset_groups`]).
fn preset_twin(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    options: &MapperOptions,
    solution: &MappingSolution,
) -> Result<MappingSolution, MapError> {
    map_multi_usecase(
        soc,
        groups,
        solution.topology(),
        solution.spec(),
        &MapperOptions {
            placement: Placement::Preset(solution.core_mapping().clone()),
            ..options.clone()
        },
    )
}

/// Total merged demand per core (bytes/s summed over every group pair it
/// appears in) — the deterministic priority both refinement strategies
/// order cores by.
fn core_weights(merged: &[BTreeMap<(CoreId, CoreId), MergedFlow>]) -> BTreeMap<CoreId, u128> {
    let mut weights: BTreeMap<CoreId, u128> = BTreeMap::new();
    for flows in merged {
        for (&(src, dst), flow) in flows {
            let bw = flow.bandwidth.as_bytes_per_sec() as u128;
            *weights.entry(src).or_default() += bw;
            *weights.entry(dst).or_default() += bw;
        }
    }
    weights
}

fn displacement_search(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    options: &MapperOptions,
    greedy: MappingSolution,
) -> Result<StrategyOutcome, MapError> {
    let merged = merged_group_flows(soc, groups);
    let group_count = groups.group_count();
    let rerouted = preset_twin(soc, groups, options, &greedy)?;
    let mut cache = RouteCache::new(&merged);
    cache.seed(&rerouted);

    let weights = core_weights(&merged);
    let mut cores: Vec<CoreId> = rerouted.core_mapping().keys().copied().collect();
    cores.sort_by_key(|&c| (Reverse(weights.get(&c).copied().unwrap_or(0)), c));
    cores.truncate(DISPLACEMENT_SCAN_CORES);
    let nis = rerouted.topology().nis().to_vec();

    let rounds = RemapConfig::default().rounds;
    let budget = displacement_eviction_budget();
    let mut evictions: u64 = 0;
    let mut current = rerouted;
    let mut mapping = current.core_mapping().clone();

    'search: for _round in 0..rounds {
        let mut improved = false;
        for &a in &cores {
            let ni_a = mapping[&a];
            for &target in &nis {
                if target == ni_a {
                    continue;
                }
                // The blocking allocation, if the target NI is occupied:
                // evict it onto the NI `a` vacates (one budgeted move).
                let evicted = mapping
                    .iter()
                    .find(|&(_, &ni)| ni == target)
                    .map(|(&core, _)| core);
                if evicted.is_some() && evictions >= budget {
                    continue;
                }
                mapping.insert(a, target);
                if let Some(b) = evicted {
                    mapping.insert(b, ni_a);
                }
                let mut affected = vec![false; group_count];
                for (g, flows) in merged.iter().enumerate() {
                    let touches = |core: CoreId| flows.keys().any(|&(s, d)| s == core || d == core);
                    if touches(a) || evicted.is_some_and(touches) {
                        affected[g] = true;
                    }
                }
                let candidate = reroute_preset_groups_cached(
                    soc, groups, &current, options, &mapping, &affected, &merged, &mut cache,
                );
                match candidate {
                    Ok(candidate)
                        if candidate.comm_cost_bytes_hops() < current.comm_cost_bytes_hops() =>
                    {
                        current = candidate;
                        improved = true;
                        if evicted.is_some() {
                            evictions += 1;
                        }
                        break;
                    }
                    _ => {
                        mapping.insert(a, ni_a);
                        if let Some(b) = evicted {
                            mapping.insert(b, target);
                        }
                    }
                }
            }
        }
        if !improved {
            break 'search;
        }
    }

    let solution = if greedy.comm_cost_bytes_hops() <= current.comm_cost_bytes_hops() {
        greedy
    } else {
        current
    };
    Ok(StrategyOutcome {
        solution,
        evictions,
        eviction_budget: budget,
        nodes_expanded: 0,
    })
}

/// Search state of the bounded branch-and-bound.
struct Bnb<'a> {
    soc: &'a SocSpec,
    groups: &'a UseCaseGroups,
    options: &'a MapperOptions,
    merged: &'a [BTreeMap<(CoreId, CoreId), MergedFlow>],
    /// Preset-pure splice base for leaf evaluation (all groups affected,
    /// so nothing is ever spliced from it — it only provides topology and
    /// spec).
    base: &'a MappingSolution,
    cores: &'a [CoreId],
    nis: &'a [NodeId],
    /// Every `(src, dst, bytes/s)` merged pair, once per group it costs
    /// in.
    pairs: &'a [(CoreId, CoreId, u128)],
    dist: &'a BTreeMap<(NodeId, NodeId), u128>,
    min_from: &'a BTreeMap<NodeId, u128>,
    global_min: u128,
    all_groups: Vec<bool>,
    cache: RouteCache,
    assign: BTreeMap<CoreId, NodeId>,
    used: BTreeSet<NodeId>,
    incumbent: MappingSolution,
    incumbent_cost: u128,
    nodes: u64,
}

impl Bnb<'_> {
    /// Admissible lower bound of any completion of the current partial
    /// assignment: every merged pair costs at least `bandwidth × hops` of
    /// the shortest NI-to-NI distance compatible with what is placed —
    /// the worst-case-analysis floor a routed solution can never beat
    /// (routes are link paths, so `hops >= hop_distance`).
    fn lower_bound(&self) -> u128 {
        self.pairs
            .iter()
            .map(|&(src, dst, bw)| {
                let hops = match (self.assign.get(&src), self.assign.get(&dst)) {
                    (Some(&a), Some(&b)) => self.dist.get(&(a, b)).copied().unwrap_or(0),
                    (Some(&a), None) | (None, Some(&a)) => {
                        self.min_from.get(&a).copied().unwrap_or(0)
                    }
                    (None, None) => self.global_min,
                };
                bw * hops
            })
            .sum()
    }

    /// Deterministic value ordering for core `c`: NIs scored by the bound
    /// increment against already-placed partners, so the first dives are
    /// greedy-like and tight incumbents arrive early.
    fn score(&self, c: CoreId, target: NodeId) -> u128 {
        self.pairs
            .iter()
            .filter(|&&(src, dst, _)| src == c || dst == c)
            .map(|&(src, dst, bw)| {
                let partner = if src == c { dst } else { src };
                match self.assign.get(&partner) {
                    Some(&p) => {
                        let key = if src == c { (target, p) } else { (p, target) };
                        bw * self.dist.get(&key).copied().unwrap_or(0)
                    }
                    None => bw * self.min_from.get(&target).copied().unwrap_or(0),
                }
            })
            .sum()
    }

    fn dfs(&mut self, depth: usize) {
        if depth == self.cores.len() {
            let candidate = reroute_preset_groups_cached(
                self.soc,
                self.groups,
                self.base,
                self.options,
                &self.assign,
                &self.all_groups,
                self.merged,
                &mut self.cache,
            );
            if let Ok(candidate) = candidate {
                let cost = candidate.comm_cost_bytes_hops();
                if cost < self.incumbent_cost {
                    self.incumbent = candidate;
                    self.incumbent_cost = cost;
                }
            }
            return;
        }
        let c = self.cores[depth];
        let mut candidates: Vec<(u128, NodeId)> = self
            .nis
            .iter()
            .filter(|t| !self.used.contains(t))
            .map(|&t| (self.score(c, t), t))
            .collect();
        candidates.sort_unstable();
        for (_, target) in candidates {
            if self.nodes >= BNB_NODE_BUDGET {
                return;
            }
            self.nodes += 1;
            self.assign.insert(c, target);
            self.used.insert(target);
            if self.lower_bound() < self.incumbent_cost {
                self.dfs(depth + 1);
            }
            self.assign.remove(&c);
            self.used.remove(&target);
        }
    }
}

fn branch_and_bound(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    options: &MapperOptions,
    greedy: MappingSolution,
) -> Result<StrategyOutcome, MapError> {
    let merged = merged_group_flows(soc, groups);
    let rerouted = preset_twin(soc, groups, options, &greedy)?;
    let mut cache = RouteCache::new(&merged);
    cache.seed(&rerouted);

    let topo = rerouted.topology().clone();
    let nis = topo.nis().to_vec();
    let mut dist: BTreeMap<(NodeId, NodeId), u128> = BTreeMap::new();
    let mut min_from: BTreeMap<NodeId, u128> = BTreeMap::new();
    let mut global_min = u128::MAX;
    for &a in &nis {
        let mut best = u128::MAX;
        for &b in &nis {
            if a == b {
                continue;
            }
            let d = topo.hop_distance(a, b).unwrap_or(0) as u128;
            dist.insert((a, b), d);
            best = best.min(d);
            global_min = global_min.min(d);
        }
        min_from.insert(a, if best == u128::MAX { 0 } else { best });
    }
    if global_min == u128::MAX {
        global_min = 0;
    }

    let pairs: Vec<(CoreId, CoreId, u128)> = merged
        .iter()
        .flat_map(|flows| {
            flows
                .iter()
                .map(|(&(s, d), f)| (s, d, f.bandwidth.as_bytes_per_sec() as u128))
        })
        .collect();
    let weights = core_weights(&merged);
    let mut cores: Vec<CoreId> = rerouted.core_mapping().keys().copied().collect();
    cores.sort_by_key(|&c| (Reverse(weights.get(&c).copied().unwrap_or(0)), c));

    let (incumbent, incumbent_cost) =
        if greedy.comm_cost_bytes_hops() <= rerouted.comm_cost_bytes_hops() {
            let cost = greedy.comm_cost_bytes_hops();
            (greedy, cost)
        } else {
            let cost = rerouted.comm_cost_bytes_hops();
            (rerouted.clone(), cost)
        };

    let mut bnb = Bnb {
        soc,
        groups,
        options,
        merged: &merged,
        base: &rerouted,
        cores: &cores,
        nis: &nis,
        pairs: &pairs,
        dist: &dist,
        min_from: &min_from,
        global_min,
        all_groups: vec![true; groups.group_count()],
        cache,
        assign: BTreeMap::new(),
        used: BTreeSet::new(),
        incumbent,
        incumbent_cost,
        nodes: 0,
    };
    bnb.dfs(0);
    Ok(StrategyOutcome {
        solution: bnb.incumbent,
        evictions: 0,
        eviction_budget: 0,
        nodes_expanded: bnb.nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::units::{Bandwidth, Latency};
    use noc_usecase::spec::UseCaseBuilder;

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    fn chatty_soc() -> SocSpec {
        let mut soc = SocSpec::new("chatty");
        soc.add_use_case(
            UseCaseBuilder::new("u")
                .flow(
                    c(0),
                    c(1),
                    Bandwidth::from_mbps(500),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .flow(
                    c(2),
                    c(3),
                    Bandwidth::from_mbps(500),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .flow(c(0), c(2), Bandwidth::from_mbps(5), Latency::UNCONSTRAINED)
                .unwrap()
                .build(),
        );
        soc
    }

    #[test]
    fn token_round_trip() {
        for kind in StrategyKind::ALL {
            assert_eq!(StrategyKind::parse(kind.token()), Some(kind));
        }
        assert_eq!(StrategyKind::parse("annealed"), None);
        assert_eq!(StrategyKind::default(), StrategyKind::Greedy);
        assert_eq!(StrategyKind::BranchAndBound.to_string(), "bnb");
    }

    #[test]
    fn greedy_outcome_is_the_plain_design() {
        let soc = chatty_soc();
        let groups = UseCaseGroups::singletons(1);
        let opts = MapperOptions::default();
        let spec = TdmaSpec::paper_default();
        let plain =
            design_smallest_fabric(&soc, &groups, spec, &opts, 64, FabricKind::Mesh).unwrap();
        let outcome = design_with_strategy(
            &soc,
            &groups,
            spec,
            &opts,
            64,
            FabricKind::Mesh,
            StrategyKind::Greedy,
        )
        .unwrap();
        assert_eq!(outcome.solution, plain);
        assert_eq!((outcome.evictions, outcome.nodes_expanded), (0, 0));
    }

    #[test]
    fn portfolio_never_loses_to_greedy() {
        let soc = chatty_soc();
        let groups = UseCaseGroups::singletons(1);
        let opts = MapperOptions::default();
        let spec = TdmaSpec::paper_default();
        let greedy = design_with_strategy(
            &soc,
            &groups,
            spec,
            &opts,
            64,
            FabricKind::Mesh,
            StrategyKind::Greedy,
        )
        .unwrap();
        for kind in [StrategyKind::Displacement, StrategyKind::BranchAndBound] {
            let outcome =
                design_with_strategy(&soc, &groups, spec, &opts, 64, FabricKind::Mesh, kind)
                    .unwrap();
            assert!(
                outcome.solution.comm_cost_bytes_hops() <= greedy.solution.comm_cost_bytes_hops(),
                "{kind} lost to greedy"
            );
            assert_eq!(
                outcome.solution.switch_count(),
                greedy.solution.switch_count()
            );
            outcome.solution.verify(&soc, &groups).unwrap();
            assert!(outcome.evictions <= outcome.eviction_budget || outcome.eviction_budget == 0);
            assert!(outcome.nodes_expanded <= BNB_NODE_BUDGET);
        }
    }
}
