//! Independent re-validation of mapping solutions.
//!
//! The paper verifies GT performance analytically after configuration
//! ("The NoC performance for the GT connections is also verified
//! analytically in this step", Section 3, phase 4). This module is that
//! analytical check: it re-derives every property a valid configuration
//! must have, sharing no state with the mapper. The cycle-accurate
//! counterpart lives in the `noc-sim` crate.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use noc_tdma::{ConnId, NetworkSlots};
use noc_topology::units::{Bandwidth, Latency};
use noc_topology::NodeId;
use noc_usecase::spec::{CoreId, SocSpec, UseCaseId};
use noc_usecase::UseCaseGroups;

use crate::result::MappingSolution;

/// A violated property of a mapping solution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// A core of the spec has no NI assignment.
    UnmappedCore {
        /// The unplaced core.
        core: CoreId,
    },
    /// Two cores share one NI.
    SharedNi {
        /// First core.
        a: CoreId,
        /// Second core.
        b: CoreId,
        /// The double-booked NI.
        ni: NodeId,
    },
    /// A core is mapped to a node that is not an NI.
    NotAnNi {
        /// The core.
        core: CoreId,
        /// The non-NI node.
        node: NodeId,
    },
    /// A use-case flow has no route in its group's configuration.
    MissingRoute {
        /// Use-case owning the flow.
        uc: UseCaseId,
        /// Flow source.
        src: CoreId,
        /// Flow destination.
        dst: CoreId,
    },
    /// A route's path is empty, discontiguous, or passes through an NI.
    BrokenPath {
        /// Group owning the route.
        group: usize,
        /// Flow source.
        src: CoreId,
        /// Flow destination.
        dst: CoreId,
        /// Human-readable defect.
        reason: &'static str,
    },
    /// A route does not start/end at the NIs its cores are mapped to.
    WrongEndpoints {
        /// Group owning the route.
        group: usize,
        /// Flow source.
        src: CoreId,
        /// Flow destination.
        dst: CoreId,
    },
    /// Two routes of one group collide on a slot (contention).
    SlotConflict {
        /// Group whose configuration conflicts.
        group: usize,
        /// Description from the TDMA layer.
        detail: String,
    },
    /// A route reserves too few slots for its bandwidth.
    InsufficientSlots {
        /// Group owning the route.
        group: usize,
        /// Flow source.
        src: CoreId,
        /// Flow destination.
        dst: CoreId,
        /// Slots reserved.
        reserved: usize,
        /// Slots required.
        required: usize,
    },
    /// A flow's latency bound is violated by the configured route.
    LatencyViolated {
        /// Use-case owning the flow.
        uc: UseCaseId,
        /// Flow source.
        src: CoreId,
        /// Flow destination.
        dst: CoreId,
        /// The configured worst case.
        worst_case: Latency,
        /// The flow's bound.
        bound: Latency,
    },
    /// A route under-provisions a member flow's bandwidth.
    BandwidthViolated {
        /// Use-case owning the flow.
        uc: UseCaseId,
        /// Flow source.
        src: CoreId,
        /// Flow destination.
        dst: CoreId,
        /// The route's provisioned bandwidth.
        provisioned: Bandwidth,
        /// The flow's demand.
        demand: Bandwidth,
    },
    /// The recorded worst-case latency does not match recomputation.
    StaleLatencyRecord {
        /// Group owning the route.
        group: usize,
        /// Flow source.
        src: CoreId,
        /// Flow destination.
        dst: CoreId,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnmappedCore { core } => write!(f, "{core} is not mapped to any NI"),
            VerifyError::SharedNi { a, b, ni } => {
                write!(f, "{a} and {b} are both mapped to NI {ni}")
            }
            VerifyError::NotAnNi { core, node } => {
                write!(f, "{core} is mapped to {node}, which is not an NI")
            }
            VerifyError::MissingRoute { uc, src, dst } => {
                write!(f, "flow {src} -> {dst} of {uc} has no configured route")
            }
            VerifyError::BrokenPath {
                group,
                src,
                dst,
                reason,
            } => {
                write!(
                    f,
                    "route {src} -> {dst} in group {group} is broken: {reason}"
                )
            }
            VerifyError::WrongEndpoints { group, src, dst } => write!(
                f,
                "route {src} -> {dst} in group {group} does not connect the mapped NIs"
            ),
            VerifyError::SlotConflict { group, detail } => {
                write!(f, "slot conflict in group {group}: {detail}")
            }
            VerifyError::InsufficientSlots {
                group,
                src,
                dst,
                reserved,
                required,
            } => write!(
                f,
                "route {src} -> {dst} in group {group} reserves {reserved} slots, needs {required}"
            ),
            VerifyError::LatencyViolated {
                uc,
                src,
                dst,
                worst_case,
                bound,
            } => write!(
                f,
                "flow {src} -> {dst} of {uc} has worst case {worst_case}, bound {bound}"
            ),
            VerifyError::BandwidthViolated {
                uc,
                src,
                dst,
                provisioned,
                demand,
            } => write!(
                f,
                "flow {src} -> {dst} of {uc} demands {demand}, provisioned {provisioned}"
            ),
            VerifyError::StaleLatencyRecord { group, src, dst } => write!(
                f,
                "route {src} -> {dst} in group {group} records a stale worst-case latency"
            ),
        }
    }
}

impl Error for VerifyError {}

/// Checks every property of `solution` against `soc` and `groups`.
///
/// # Errors
///
/// Returns the first violation found, in deterministic order: mapping
/// sanity, then per-group configuration integrity, then per-flow
/// constraint satisfaction.
pub fn verify_solution(
    solution: &MappingSolution,
    soc: &SocSpec,
    groups: &UseCaseGroups,
) -> Result<(), VerifyError> {
    let topo = solution.topology();
    let spec = solution.spec();

    // --- Core mapping sanity -------------------------------------------
    let mut ni_owner: BTreeMap<NodeId, CoreId> = BTreeMap::new();
    for core in soc.cores() {
        let ni = solution
            .ni_of(core)
            .ok_or(VerifyError::UnmappedCore { core })?;
        if !topo.node(ni).is_ni() {
            return Err(VerifyError::NotAnNi { core, node: ni });
        }
        if let Some(&other) = ni_owner.get(&ni) {
            return Err(VerifyError::SharedNi {
                a: other,
                b: core,
                ni,
            });
        }
        ni_owner.insert(ni, core);
    }

    // --- Per-group configuration integrity -----------------------------
    for (g, config) in solution.group_configs().iter().enumerate() {
        let mut slots = NetworkSlots::new(topo, &spec);
        for (seq, (&(src, dst), route)) in config.iter().enumerate() {
            // Path shape.
            if route.path.is_empty() {
                return Err(VerifyError::BrokenPath {
                    group: g,
                    src,
                    dst,
                    reason: "empty path",
                });
            }
            for w in route.path.windows(2) {
                if topo.link(w[0]).dst() != topo.link(w[1]).src() {
                    return Err(VerifyError::BrokenPath {
                        group: g,
                        src,
                        dst,
                        reason: "discontiguous links",
                    });
                }
            }
            for &l in &route.path[..route.path.len() - 1] {
                if topo.node(topo.link(l).dst()).is_ni() {
                    return Err(VerifyError::BrokenPath {
                        group: g,
                        src,
                        dst,
                        reason: "interior NI",
                    });
                }
            }
            // Endpoints match the shared core mapping.
            let start = topo.link(route.path[0]).src();
            let end = topo.link(route.path[route.path.len() - 1]).dst();
            if solution.ni_of(src) != Some(start) || solution.ni_of(dst) != Some(end) {
                return Err(VerifyError::WrongEndpoints { group: g, src, dst });
            }
            // Slot sufficiency for the provisioned bandwidth.
            let required = spec.slots_for_bandwidth(route.bandwidth);
            if route.slot_count() < required {
                return Err(VerifyError::InsufficientSlots {
                    group: g,
                    src,
                    dst,
                    reserved: route.slot_count(),
                    required,
                });
            }
            // Contention-freedom: replay all reservations of the group.
            let conn = ConnId::from_usecase_flow(g as u32, seq as u32);
            if let Err(e) = slots.reserve(&route.path, &route.base_slots, conn) {
                return Err(VerifyError::SlotConflict {
                    group: g,
                    detail: e.to_string(),
                });
            }
            // Latency record consistency.
            let recomputed = spec.worst_case_latency(&route.base_slots, route.hops());
            if recomputed != route.worst_case_latency {
                return Err(VerifyError::StaleLatencyRecord { group: g, src, dst });
            }
        }
    }

    // --- Per-flow constraint satisfaction ------------------------------
    for uc_id in soc.use_case_ids() {
        let g = groups.group_of(uc_id);
        for flow in soc.use_case(uc_id).flows() {
            let (src, dst) = flow.endpoints();
            let route =
                solution
                    .group_config(g)
                    .route(src, dst)
                    .ok_or(VerifyError::MissingRoute {
                        uc: uc_id,
                        src,
                        dst,
                    })?;
            if route.bandwidth < flow.bandwidth() {
                return Err(VerifyError::BandwidthViolated {
                    uc: uc_id,
                    src,
                    dst,
                    provisioned: route.bandwidth,
                    demand: flow.bandwidth(),
                });
            }
            if !flow.latency().is_unconstrained() && route.worst_case_latency > flow.latency() {
                return Err(VerifyError::LatencyViolated {
                    uc: uc_id,
                    src,
                    dst,
                    worst_case: route.worst_case_latency,
                    bound: flow.latency(),
                });
            }
        }
    }
    Ok(())
}

/// A set of disjoint (non-conflicting) checks exposed for tests and
/// external tools: ensures two different solutions use equal core
/// mappings — the paper requires all use-cases to share one mapping, and
/// reconfiguration only ever changes paths and slot tables.
pub fn same_core_mapping(a: &MappingSolution, b: &MappingSolution) -> bool {
    a.core_mapping() == b.core_mapping()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{map_multi_usecase, MapperOptions};
    use crate::result::Route;
    use noc_tdma::TdmaSpec;
    use noc_topology::MeshBuilder;
    use noc_usecase::spec::UseCaseBuilder;

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    fn solved() -> (SocSpec, UseCaseGroups, MappingSolution) {
        let mut soc = SocSpec::new("v");
        soc.add_use_case(
            UseCaseBuilder::new("u0")
                .flow(
                    c(0),
                    c(1),
                    Bandwidth::from_mbps(100),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .flow(c(1), c(2), Bandwidth::from_mbps(200), Latency::from_us(1))
                .unwrap()
                .build(),
        );
        let groups = UseCaseGroups::singletons(1);
        let mesh = MeshBuilder::new(1, 2).nis_per_switch(2).build().unwrap();
        let sol = map_multi_usecase(
            &soc,
            &groups,
            mesh.topology(),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
        )
        .unwrap();
        (soc, groups, sol)
    }

    #[test]
    fn valid_solution_passes() {
        let (soc, groups, sol) = solved();
        assert_eq!(verify_solution(&sol, &soc, &groups), Ok(()));
    }

    #[test]
    fn detects_missing_route() {
        let (_, groups, sol) = solved();
        // A spec with a flow the solution never saw.
        let extra = UseCaseBuilder::new("u0")
            .flow(
                c(0),
                c(1),
                Bandwidth::from_mbps(100),
                Latency::UNCONSTRAINED,
            )
            .unwrap()
            .flow(c(2), c(0), Bandwidth::from_mbps(10), Latency::UNCONSTRAINED)
            .unwrap()
            .build();
        let mut soc = SocSpec::new("v");
        soc.add_use_case(extra);
        let err = verify_solution(&sol, &soc, &groups).unwrap_err();
        assert!(matches!(err, VerifyError::MissingRoute { .. }));
    }

    #[test]
    fn detects_bandwidth_violation() {
        let (_, groups, sol) = solved();
        let mut soc2 = SocSpec::new("v");
        soc2.add_use_case(
            UseCaseBuilder::new("u0")
                .flow(
                    c(0),
                    c(1),
                    Bandwidth::from_mbps(1999),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .flow(c(1), c(2), Bandwidth::from_mbps(200), Latency::from_us(1))
                .unwrap()
                .build(),
        );
        let err = verify_solution(&sol, &soc2, &groups).unwrap_err();
        assert!(matches!(err, VerifyError::BandwidthViolated { .. }));
    }

    #[test]
    fn detects_latency_violation() {
        let (_, groups, sol) = solved();
        let mut soc2 = SocSpec::new("v");
        soc2.add_use_case(
            UseCaseBuilder::new("u0")
                .flow(c(0), c(1), Bandwidth::from_mbps(100), Latency::from_ns(1))
                .unwrap()
                .flow(c(1), c(2), Bandwidth::from_mbps(200), Latency::from_us(1))
                .unwrap()
                .build(),
        );
        let err = verify_solution(&sol, &soc2, &groups).unwrap_err();
        assert!(matches!(err, VerifyError::LatencyViolated { .. }));
    }

    #[test]
    fn detects_slot_conflicts() {
        let (soc, groups, sol) = solved();
        // Clone a route onto a new pair with the same slots: replaying
        // both must collide.
        let mut broken = sol.clone();
        let cfg = broken.group_configs()[0].clone();
        let (_, route) = cfg.iter().next().unwrap();
        let mut tampered = cfg.clone();
        // Overwrite the second route with a copy of the first (same path
        // AND same slots -> conflict), keeping its pair key.
        let pairs: Vec<(CoreId, CoreId)> = cfg.iter().map(|(&p, _)| p).collect();
        if pairs.len() >= 2 {
            tampered.insert(pairs[1].0, pairs[1].1, route.clone());
            broken = MappingSolution::new(
                sol.topology().clone(),
                sol.label(),
                sol.spec(),
                sol.core_mapping().clone(),
                vec![tampered],
            );
            let err = verify_solution(&broken, &soc, &groups).unwrap_err();
            // Either endpoints mismatch or slots conflict depending on
            // which pair was overwritten; both are valid detections.
            assert!(matches!(
                err,
                VerifyError::SlotConflict { .. } | VerifyError::WrongEndpoints { .. }
            ));
        }
    }

    #[test]
    fn detects_stale_latency() {
        let (soc, groups, sol) = solved();
        let cfg = sol.group_configs()[0].clone();
        let mut tampered = cfg.clone();
        let (&(src, dst), route) = cfg.iter().next().unwrap();
        let bogus = Route {
            worst_case_latency: Latency::from_ns(1),
            ..route.clone()
        };
        tampered.insert(src, dst, bogus);
        let broken = MappingSolution::new(
            sol.topology().clone(),
            sol.label(),
            sol.spec(),
            sol.core_mapping().clone(),
            vec![tampered],
        );
        let err = verify_solution(&broken, &soc, &groups).unwrap_err();
        assert!(matches!(err, VerifyError::StaleLatencyRecord { .. }));
    }

    #[test]
    fn detects_unmapped_core() {
        let (soc, groups, sol) = solved();
        let mut mapping = sol.core_mapping().clone();
        mapping.remove(&c(0));
        let broken = MappingSolution::new(
            sol.topology().clone(),
            sol.label(),
            sol.spec(),
            mapping,
            sol.group_configs().to_vec(),
        );
        let err = verify_solution(&broken, &soc, &groups).unwrap_err();
        assert_eq!(err, VerifyError::UnmappedCore { core: c(0) });
    }

    #[test]
    fn detects_shared_ni() {
        let (soc, groups, sol) = solved();
        let mut mapping = sol.core_mapping().clone();
        let ni0 = mapping[&c(0)];
        mapping.insert(c(1), ni0);
        let broken = MappingSolution::new(
            sol.topology().clone(),
            sol.label(),
            sol.spec(),
            mapping,
            sol.group_configs().to_vec(),
        );
        let err = verify_solution(&broken, &soc, &groups).unwrap_err();
        assert!(matches!(err, VerifyError::SharedNi { .. }));
    }

    #[test]
    fn same_core_mapping_helper() {
        let (_, _, sol) = solved();
        assert!(same_core_mapping(&sol, &sol));
    }
}
