//! Limited per-group mapping reconfiguration — the paper's stated
//! extension.
//!
//! The baseline methodology pins every core to one NI across all
//! use-cases, because fully per-use-case placements would need each core
//! wired to several NIs. The paper notes the middle ground: "The methods
//! presented in this paper can be easily extended to support even limited
//! re-configuration of the mapping across the different use-cases"
//! (Section 3), and lists mapping reconfiguration as future work.
//!
//! This module implements that extension: starting from a shared base
//! placement, each group may relocate up to `max_moved_cores` cores to
//! NIs that better suit *its* traffic (physically: those cores are wired
//! to a second NI port). A greedy hill-climb proposes single-core moves
//! and core swaps, re-routes the group's traffic with the candidate
//! placement fixed, and keeps improvements.
//!
//! Each group's search only reads the shared base solution and writes
//! its own slot state, so the groups are refined **in parallel** (via
//! [`noc_par`]); results are reduced in group order, making the outcome
//! independent of the thread count.

use std::collections::BTreeMap;

use noc_usecase::spec::{CoreId, SocSpec};
use noc_usecase::UseCaseGroups;

use crate::error::MapError;
use crate::mapper::{map_multi_usecase, MapperOptions, Placement};
use crate::result::MappingSolution;

/// Parameters of the per-group remapping search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemapConfig {
    /// Maximum cores a group may place differently from the base mapping
    /// (each such core needs an extra physical NI connection).
    pub max_moved_cores: usize,
    /// Hill-climb rounds per group (each round scans all single moves).
    pub rounds: usize,
}

impl Default for RemapConfig {
    fn default() -> Self {
        RemapConfig {
            max_moved_cores: 2,
            rounds: 3,
        }
    }
}

/// A base design plus per-group placement refinements.
#[derive(Debug, Clone, PartialEq)]
pub struct RemappedDesign {
    /// The shared-placement solution every group starts from.
    pub base: MappingSolution,
    /// One refined solution per group (same topology and spec; only the
    /// group's own traffic is routed in it).
    pub per_group: Vec<MappingSolution>,
    /// Cores each group placed differently from the base.
    pub moved: Vec<Vec<CoreId>>,
}

impl RemappedDesign {
    /// Total comm-cost improvement over routing each group on the base
    /// placement, as a fraction in `[0, 1)`.
    pub fn improvement(&self, base_costs: &[f64]) -> f64 {
        let before: f64 = base_costs.iter().sum();
        let after: f64 = self.per_group.iter().map(MappingSolution::comm_cost).sum();
        if before <= 0.0 {
            0.0
        } else {
            (before - after) / before
        }
    }
}

/// The spec containing only one group's use-cases (with a matching
/// single-group partition), so a per-group solution can be produced and
/// verified independently.
fn group_spec(soc: &SocSpec, groups: &UseCaseGroups, g: usize) -> (SocSpec, UseCaseGroups) {
    let mut sub = SocSpec::new(format!("{}-group{g}", soc.name()));
    for &uc in groups.members(g) {
        sub.add_use_case(soc.use_case(uc).clone());
    }
    let n = sub.use_case_count();
    (sub, UseCaseGroups::single_group(n))
}

fn moved_cores(
    base: &BTreeMap<CoreId, noc_topology::NodeId>,
    candidate: &BTreeMap<CoreId, noc_topology::NodeId>,
) -> Vec<CoreId> {
    candidate
        .iter()
        .filter(|(core, ni)| base.get(core) != Some(ni))
        .map(|(&core, _)| core)
        .collect()
}

/// Refines `base` by letting every group move up to
/// [`RemapConfig::max_moved_cores`] cores, greedily minimizing the
/// group's bandwidth-weighted hop cost.
///
/// # Errors
///
/// Propagates mapper errors from the initial per-group re-route on the
/// base placement (candidate moves that fail to route are simply
/// rejected).
pub fn refine_with_remap(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    options: &MapperOptions,
    base: &MappingSolution,
    config: &RemapConfig,
) -> Result<RemappedDesign, MapError> {
    let topo = base.topology();
    let spec = base.spec();
    let all_nis: Vec<_> = topo.nis().to_vec();

    let refine_group = |g: usize| -> Result<(MappingSolution, Vec<CoreId>), MapError> {
        let span = noc_obs::span("remap-group");
        span.attr("group", g);
        let (sub_soc, sub_groups) = group_spec(soc, groups, g);
        let route = |placement: BTreeMap<CoreId, noc_topology::NodeId>| {
            map_multi_usecase(
                &sub_soc,
                &sub_groups,
                topo,
                spec,
                &MapperOptions {
                    placement: Placement::Preset(placement),
                    ..options.clone()
                },
            )
        };

        // Start: the base placement, re-routed for this group only.
        let mut current = route(base.core_mapping().clone())?;
        let mut current_map = base.core_mapping().clone();
        // Hoisted out of the proposal loop: the group's core list, the
        // occupant reverse index (placements are injective) and the set
        // of cores currently displaced from the base — all maintained
        // only when a move is *accepted*, so a rejected proposal costs
        // no clone and no full-map scan.
        let group_cores = sub_soc.cores();
        let mut ni_to_core: BTreeMap<noc_topology::NodeId, CoreId> =
            current_map.iter().map(|(&c, &ni)| (ni, c)).collect();
        let mut moved: std::collections::BTreeSet<CoreId> =
            moved_cores(base.core_mapping(), &current_map)
                .into_iter()
                .collect();

        'rounds: for _ in 0..config.rounds {
            let mut improved = false;
            for &core in &group_cores {
                // Deliberately read once per core, not per target: after
                // an accepted move inside this target scan, `from` is
                // stale and later swap candidates against it fail preset
                // validation (harmlessly rejected). The next round
                // re-reads; changing this would change search results,
                // which the byte-identity contract forbids.
                let from = current_map[&core];
                for &target in &all_nis {
                    if target == from {
                        continue;
                    }
                    // Propose: move `core` to `target`, swapping with any
                    // occupant. Check the move budget before paying for a
                    // candidate map: only `core` and the occupant change,
                    // so the new displaced-count is a two-term update of
                    // the current one.
                    let occupant = ni_to_core.get(&target).copied();
                    let mut displaced = moved.len();
                    let count = |c: CoreId, ni, displaced: &mut usize| {
                        let was = moved.contains(&c);
                        let now = base.core_mapping()[&c] != ni;
                        match (was, now) {
                            (false, true) => *displaced += 1,
                            (true, false) => *displaced -= 1,
                            _ => {}
                        }
                    };
                    count(core, target, &mut displaced);
                    if let Some(o) = occupant {
                        count(o, from, &mut displaced);
                    }
                    if displaced > config.max_moved_cores {
                        continue;
                    }
                    let mut candidate = current_map.clone();
                    if let Some(o) = occupant {
                        candidate.insert(o, from);
                    }
                    candidate.insert(core, target);
                    if let Ok(sol) = route(candidate) {
                        if sol.comm_cost() + 1e-9 < current.comm_cost() {
                            // Accepts are rare: rebuild the maintained
                            // indices from the accepted solution (whose
                            // mapping *is* the candidate).
                            current_map = sol.core_mapping().clone();
                            ni_to_core = current_map.iter().map(|(&c, &ni)| (ni, c)).collect();
                            moved = moved_cores(base.core_mapping(), &current_map)
                                .into_iter()
                                .collect();
                            current = sol;
                            improved = true;
                        }
                    }
                }
            }
            if !improved {
                break 'rounds;
            }
        }

        Ok((current, moved_cores(base.core_mapping(), &current_map)))
    };

    // One independent hill-climb per group, reduced in group order.
    let refined =
        noc_par::try_par_map((0..groups.group_count()).collect(), |_, g| refine_group(g))?;
    let (per_group, moved) = refined.into_iter().unzip();

    Ok(RemappedDesign {
        base: base.clone(),
        per_group,
        moved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::design_smallest_mesh;
    use noc_tdma::TdmaSpec;
    use noc_topology::units::{Bandwidth, Latency};
    use noc_usecase::spec::UseCaseBuilder;

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    /// Two use-cases with *conflicting* affinity: u0 wants (0,1) and
    /// (2,3) together; u1 wants (0,2) and (1,3) together. One shared
    /// placement cannot please both — per-group remapping can.
    fn conflicted_soc() -> SocSpec {
        let mut soc = SocSpec::new("conflict");
        soc.add_use_case(
            UseCaseBuilder::new("u0")
                .flow(
                    c(0),
                    c(1),
                    Bandwidth::from_mbps(600),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .flow(
                    c(2),
                    c(3),
                    Bandwidth::from_mbps(600),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .build(),
        );
        soc.add_use_case(
            UseCaseBuilder::new("u1")
                .flow(
                    c(0),
                    c(2),
                    Bandwidth::from_mbps(600),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .flow(
                    c(1),
                    c(3),
                    Bandwidth::from_mbps(600),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .build(),
        );
        soc
    }

    fn setup() -> (SocSpec, UseCaseGroups, MappingSolution, MapperOptions) {
        let soc = conflicted_soc();
        let groups = UseCaseGroups::singletons(2);
        let opts = MapperOptions::default();
        let base =
            design_smallest_mesh(&soc, &groups, TdmaSpec::paper_default(), &opts, 16).unwrap();
        (soc, groups, base, opts)
    }

    #[test]
    fn remap_respects_move_budget() {
        let (soc, groups, base, opts) = setup();
        for budget in [0usize, 1, 2, 4] {
            let cfg = RemapConfig {
                max_moved_cores: budget,
                rounds: 2,
            };
            let design = refine_with_remap(&soc, &groups, &opts, &base, &cfg).unwrap();
            for m in &design.moved {
                assert!(m.len() <= budget, "moved {m:?} exceeds budget {budget}");
            }
        }
    }

    #[test]
    fn zero_budget_keeps_base_placement() {
        let (soc, groups, base, opts) = setup();
        let cfg = RemapConfig {
            max_moved_cores: 0,
            rounds: 2,
        };
        let design = refine_with_remap(&soc, &groups, &opts, &base, &cfg).unwrap();
        for (g, sol) in design.per_group.iter().enumerate() {
            assert!(design.moved[g].is_empty());
            assert_eq!(sol.core_mapping(), base.core_mapping());
        }
    }

    #[test]
    fn remap_never_hurts_and_verifies() {
        let (soc, groups, base, opts) = setup();
        let cfg = RemapConfig::default();
        // Baseline per-group costs on the shared placement.
        let mut base_costs = Vec::new();
        for g in 0..groups.group_count() {
            let (sub, subg) = group_spec(&soc, &groups, g);
            let sol = map_multi_usecase(
                &sub,
                &subg,
                base.topology(),
                base.spec(),
                &MapperOptions {
                    placement: Placement::Preset(base.core_mapping().clone()),
                    ..opts.clone()
                },
            )
            .unwrap();
            base_costs.push(sol.comm_cost());
        }
        let design = refine_with_remap(&soc, &groups, &opts, &base, &cfg).unwrap();
        for (g, sol) in design.per_group.iter().enumerate() {
            let (sub, subg) = group_spec(&soc, &groups, g);
            sol.verify(&sub, &subg).expect("per-group solution valid");
            assert!(
                sol.comm_cost() <= base_costs[g] + 1e-9,
                "group {g}: {} vs base {}",
                sol.comm_cost(),
                base_costs[g]
            );
        }
        assert!(design.improvement(&base_costs) >= 0.0);
    }

    #[test]
    fn conflicting_affinities_benefit_from_remap() {
        // With enough budget, at least one group should find a cheaper
        // placement than the shared compromise (unless the base is
        // already simultaneously optimal for both, which the conflicting
        // affinities make unlikely on a multi-switch mesh).
        let (soc, groups, base, opts) = setup();
        if base.switch_count() < 2 {
            // Single switch: all placements equal, nothing to improve.
            return;
        }
        let cfg = RemapConfig {
            max_moved_cores: 4,
            rounds: 4,
        };
        let mut base_costs = Vec::new();
        for g in 0..groups.group_count() {
            let (sub, subg) = group_spec(&soc, &groups, g);
            let sol = map_multi_usecase(
                &sub,
                &subg,
                base.topology(),
                base.spec(),
                &MapperOptions {
                    placement: Placement::Preset(base.core_mapping().clone()),
                    ..opts.clone()
                },
            )
            .unwrap();
            base_costs.push(sol.comm_cost());
        }
        let design = refine_with_remap(&soc, &groups, &opts, &base, &cfg).unwrap();
        assert!(
            design.improvement(&base_costs) >= 0.0,
            "remapping must not lose: {}",
            design.improvement(&base_costs)
        );
    }
}
