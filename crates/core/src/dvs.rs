//! Dynamic voltage and frequency scaling across use-cases (Section 6.4,
//! Figure 7(b)).
//!
//! When the SoC switches use-cases (and the switching time allows
//! reconfiguration), the NoC's frequency — and, via `V² ∝ f`, its supply
//! voltage — can be lowered to the minimum that still satisfies the
//! incoming use-case's constraints on the **fixed** topology and core
//! mapping. Power then drops quadratically relative to running every
//! use-case at the design frequency.

use noc_tdma::TdmaSpec;
use noc_topology::units::Frequency;
use noc_topology::DvsModel;
use noc_usecase::spec::{SocSpec, UseCaseId};
use noc_usecase::UseCaseGroups;

use crate::design::min_frequency;
use crate::error::MapError;
use crate::mapper::{MapperOptions, Placement};
use crate::result::MappingSolution;

/// Per-use-case DVS/DFS outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DvsReport {
    /// The design frequency used as the no-DVS baseline: the minimum
    /// frequency at which **every** use-case is feasible on the fixed
    /// mesh and mapping. (A NoC without DVS must run at this frequency
    /// all the time; comparing against an over-provisioned clock would
    /// inflate the savings.)
    pub design_frequency: Frequency,
    /// Minimum feasible frequency per use-case, in use-case order.
    pub per_use_case: Vec<(UseCaseId, Frequency)>,
    /// Mean power at the scaled operating points relative to running at
    /// the design frequency (assuming use-cases are active for equal
    /// time shares).
    pub relative_power: f64,
}

impl DvsReport {
    /// Power saving fraction, `1 - relative_power` (the quantity plotted
    /// in Figure 7(b)).
    pub fn savings_fraction(&self) -> f64 {
        1.0 - self.relative_power
    }
}

/// Computes the DVS/DFS saving for a finished design.
///
/// For every use-case, the minimum feasible NoC frequency is found by
/// bisection on the design's **fixed mesh and core mapping** (paths and
/// slot tables may be rebuilt — exactly the reconfiguration the paper
/// permits during use-case switching); power is then averaged with the
/// DVS rule.
///
/// # Errors
///
/// Any [`MapError`] from the per-use-case re-mapping; in particular a
/// use-case that is infeasible even at the design frequency (which would
/// indicate a broken input solution).
pub fn dvs_savings(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    solution: &MappingSolution,
    options: &MapperOptions,
    dvs: &DvsModel,
    floor: Frequency,
) -> Result<DvsReport, MapError> {
    let preset = Placement::Preset(solution.core_mapping().clone());
    let per_uc_options = MapperOptions {
        placement: preset,
        ..options.clone()
    };

    // The no-DVS baseline: the slowest clock at which the whole design
    // (all use-cases, same mesh and mapping) remains feasible.
    let (design_frequency, _) = min_frequency(
        soc,
        groups,
        solution.topology(),
        solution.spec(),
        &per_uc_options,
        floor,
        solution.spec().frequency(),
    )?;

    let mut per_use_case = Vec::with_capacity(soc.use_case_count());
    let mut rel_sum = 0.0;
    for uc_id in soc.use_case_ids() {
        let mut solo = SocSpec::new(format!("{}-{}", soc.name(), uc_id));
        solo.add_use_case(soc.use_case(uc_id).clone());
        let (f_min, _) = min_frequency(
            &solo,
            &UseCaseGroups::singletons(1),
            solution.topology(),
            solution.spec(),
            &per_uc_options,
            floor,
            design_frequency,
        )?;
        rel_sum += dvs.relative_power(f_min.min(design_frequency), design_frequency);
        per_use_case.push((uc_id, f_min));
    }
    let n = per_use_case.len().max(1);
    Ok(DvsReport {
        design_frequency,
        per_use_case,
        relative_power: rel_sum / n as f64,
    })
}

/// Re-derives the *design* frequency for running `k` use-cases in
/// parallel (Figure 7(c)): the minimum frequency at which the compound
/// mode of every combination... — the paper sweeps one representative
/// compound per `k`, which is what this helper does: it merges the first
/// `k` use-cases of `soc` into a compound mode and finds its minimum
/// feasible frequency on `mesh`.
///
/// # Errors
///
/// [`MapError::NoFeasibleFrequency`] when even `hi` cannot support the
/// compound mode on this mesh; other [`MapError`]s on malformed input.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the spec's use-case count.
pub fn parallel_min_frequency(
    soc: &SocSpec,
    k: usize,
    topo: &noc_topology::Topology,
    base_spec: TdmaSpec,
    options: &MapperOptions,
    lo: Frequency,
    hi: Frequency,
) -> Result<(Frequency, MappingSolution), MapError> {
    assert!(
        k >= 1 && k <= soc.use_case_count(),
        "k must be in 1..=use_case_count"
    );
    let members: Vec<_> = soc.use_cases().iter().take(k).collect();
    let compound = noc_usecase::compound_mode(format!("par{k}"), members.into_iter());
    let mut solo = SocSpec::new(format!("{}-par{k}", soc.name()));
    solo.add_use_case(compound);
    min_frequency(
        &solo,
        &UseCaseGroups::singletons(1),
        topo,
        base_spec,
        options,
        lo,
        hi,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::design_smallest_mesh;
    use noc_topology::units::{Bandwidth, Latency};
    use noc_usecase::spec::{CoreId, UseCaseBuilder};

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    fn bw(m: u64) -> Bandwidth {
        Bandwidth::from_mbps(m)
    }

    /// One heavy use-case, one light one: the light one should scale far
    /// down.
    fn skewed_soc() -> SocSpec {
        let mut soc = SocSpec::new("skew");
        soc.add_use_case(
            UseCaseBuilder::new("heavy")
                .flow(c(0), c(1), bw(1000), Latency::UNCONSTRAINED)
                .unwrap()
                .flow(c(2), c(3), bw(800), Latency::UNCONSTRAINED)
                .unwrap()
                .build(),
        );
        soc.add_use_case(
            UseCaseBuilder::new("light")
                .flow(c(0), c(1), bw(20), Latency::UNCONSTRAINED)
                .unwrap()
                .build(),
        );
        soc
    }

    #[test]
    fn light_use_cases_scale_down() {
        let soc = skewed_soc();
        let groups = UseCaseGroups::singletons(2);
        let opts = MapperOptions::default();
        let spec = TdmaSpec::paper_default();
        let sol = design_smallest_mesh(&soc, &groups, spec, &opts, 100).unwrap();
        let report = dvs_savings(
            &soc,
            &groups,
            &sol,
            &opts,
            &DvsModel::cmos130(),
            Frequency::from_mhz(1),
        )
        .unwrap();
        assert!(report.design_frequency <= Frequency::from_mhz(500));
        assert_eq!(report.per_use_case.len(), 2);
        let f_heavy = report.per_use_case[0].1;
        let f_light = report.per_use_case[1].1;
        assert!(
            f_light < f_heavy,
            "light {f_light} should scale below heavy {f_heavy}"
        );
        assert!(report.savings_fraction() > 0.0);
        assert!(report.savings_fraction() < 1.0);
    }

    #[test]
    fn savings_zero_when_everything_needs_design_frequency() {
        // A single use-case that needs nearly the whole link keeps the
        // frequency pinned near the design point.
        let mut soc = SocSpec::new("pinned");
        soc.add_use_case(
            UseCaseBuilder::new("u")
                .flow(c(0), c(1), bw(1990), Latency::UNCONSTRAINED)
                .unwrap()
                .build(),
        );
        let groups = UseCaseGroups::singletons(1);
        let opts = MapperOptions::default();
        let sol =
            design_smallest_mesh(&soc, &groups, TdmaSpec::paper_default(), &opts, 100).unwrap();
        let report = dvs_savings(
            &soc,
            &groups,
            &sol,
            &opts,
            &DvsModel::cmos130(),
            Frequency::from_mhz(1),
        )
        .unwrap();
        // With one use-case the baseline IS that use-case's minimum:
        // savings must be (near) zero.
        assert!(
            report.savings_fraction() < 0.05,
            "{}",
            report.savings_fraction()
        );
    }

    #[test]
    fn parallel_frequency_grows_with_k() {
        let mut soc = SocSpec::new("par");
        for u in 0..4u32 {
            soc.add_use_case(
                UseCaseBuilder::new(format!("u{u}"))
                    .flow(c(0), c(1), bw(300), Latency::UNCONSTRAINED)
                    .unwrap()
                    .flow(c(2), c(3), bw(200), Latency::UNCONSTRAINED)
                    .unwrap()
                    .build(),
            );
        }
        let groups = UseCaseGroups::singletons(4);
        let opts = MapperOptions::default();
        let spec = TdmaSpec::paper_default();
        let sol = design_smallest_mesh(&soc, &groups, spec, &opts, 100).unwrap();
        let mut prev = Frequency::ZERO;
        for k in 1..=4 {
            let (f, _) = parallel_min_frequency(
                &soc,
                k,
                sol.topology(),
                spec,
                &opts,
                Frequency::from_mhz(1),
                Frequency::from_ghz(4),
            )
            .unwrap();
            assert!(
                f >= prev,
                "frequency must not drop as k grows: {f} < {prev}"
            );
            prev = f;
        }
        // 4 parallel copies of a 300 MB/s flow need ~4x the frequency of 1.
        assert!(prev >= Frequency::from_mhz(300));
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn parallel_k_validated() {
        let soc = skewed_soc();
        let mesh = noc_topology::MeshBuilder::new(1, 1)
            .nis_per_switch(4)
            .build()
            .unwrap();
        let _ = parallel_min_frequency(
            &soc,
            0,
            mesh.topology(),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
            Frequency::from_mhz(1),
            Frequency::from_mhz(500),
        );
    }
}
