//! The outer design flow: topology-size growth (step 1/8 of Algorithm 2)
//! and frequency searches for the paper's trade-off studies.

use noc_tdma::TdmaSpec;
use noc_topology::mesh::mesh_sizes;
use noc_topology::units::Frequency;
use noc_topology::{Mesh, MeshBuilder, Topology};
use noc_usecase::spec::SocSpec;
use noc_usecase::UseCaseGroups;

use crate::error::MapError;
use crate::mapper::{map_multi_usecase, MapperOptions};
use crate::result::MappingSolution;

/// The regular fabric family the growth loop enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FabricKind {
    /// 2-D mesh (the paper's evaluation fabric).
    #[default]
    Mesh,
    /// 2-D torus: wraparound links halve worst-case distances at the cost
    /// of two extra ports per switch.
    Torus,
}

/// Builds the candidate fabric for a given size: near-square
/// `rows × cols` with just enough NIs per switch to host all cores.
fn candidate_mesh(
    rows: u16,
    cols: u16,
    cores: usize,
    max_ports: usize,
    kind: FabricKind,
) -> Option<Mesh> {
    let switches = rows as usize * cols as usize;
    let nis = cores.div_ceil(switches).max(1);
    // The busiest switch has up to `mesh_degree` inter-switch ports plus
    // its NIs; skip sizes whose switches would exceed the arity limit.
    let dim_degree = |len: u16| -> usize {
        match (kind, len) {
            (_, 0..=1) => 0,
            (FabricKind::Mesh, 2) | (FabricKind::Torus, 2) => 1,
            (FabricKind::Mesh, _) => 2,
            (FabricKind::Torus, _) => 2, // wraparound keeps degree 2 per dimension
        }
    };
    let mesh_degree = dim_degree(rows) + dim_degree(cols);
    if nis + mesh_degree > max_ports {
        return None;
    }
    Some(
        MeshBuilder::new(rows, cols)
            .nis_per_switch(nis as u16)
            .torus(kind == FabricKind::Torus)
            .build()
            .expect("non-zero dimensions"),
    )
}

/// Finds the smallest mesh (by switch count, near-square growth order
/// 1×1, 1×2, 2×2, …) on which Algorithm 2 produces a valid mapping.
///
/// This is the paper's outer loop: "Generate a NoC topology with one
/// switch … If a valid mapping is not possible, increase the topology
/// size and go to step 1."
///
/// # Errors
///
/// * [`MapError::NoFeasibleSize`] if no mesh up to `max_switches` works,
/// * [`MapError::FlowExceedsLinkCapacity`] immediately when a single flow
///   cannot fit a link at this frequency (growth cannot fix that),
/// * input-validation errors from [`map_multi_usecase`].
pub fn design_smallest_mesh(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    spec: TdmaSpec,
    options: &MapperOptions,
    max_switches: usize,
) -> Result<MappingSolution, MapError> {
    design_smallest_fabric(soc, groups, spec, options, max_switches, FabricKind::Mesh)
}

/// [`design_smallest_mesh`] generalized over the fabric family: the same
/// growth loop on meshes or tori.
///
/// # Errors
///
/// Same conditions as [`design_smallest_mesh`].
pub fn design_smallest_fabric(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    spec: TdmaSpec,
    options: &MapperOptions,
    max_switches: usize,
    kind: FabricKind,
) -> Result<MappingSolution, MapError> {
    // The growth loop itself stays sequential: failed attempts abort at
    // the first unroutable pair (cheap), so the final successful attempt
    // dominates the cost and speculatively mapping larger sizes would
    // mostly duplicate that expensive success. Parallelism lives
    // *inside* each attempt instead — `map_multi_usecase` routes
    // use-case groups concurrently.
    let cores = soc.cores().len();
    let mut last_err = None;
    for (rows, cols) in mesh_sizes() {
        let switches = rows as usize * cols as usize;
        if switches > max_switches {
            break;
        }
        let Some(mesh) = candidate_mesh(rows, cols, cores, options.max_switch_ports, kind) else {
            continue;
        };
        match map_multi_usecase(soc, groups, mesh.topology(), spec, options) {
            Ok(mut solution) => {
                let suffix = match kind {
                    FabricKind::Mesh => "",
                    FabricKind::Torus => " torus",
                };
                solution.set_label(format!("{}{}", mesh.dims_label(), suffix));
                return Ok(solution);
            }
            Err(e @ MapError::Unroutable { .. }) => last_err = Some(e),
            // Structural errors don't improve with size.
            Err(e @ MapError::FlowExceedsLinkCapacity { .. }) => return Err(e),
            Err(e @ MapError::EmptySpec) => return Err(e),
            Err(e @ MapError::GroupMismatch { .. }) => return Err(e),
            Err(e) => last_err = Some(e),
        }
    }
    let _ = last_err;
    Err(MapError::NoFeasibleSize { max_switches })
}

/// Finds the minimum NoC frequency (to 1 MHz granularity, by bisection)
/// at which the design maps onto the **fixed** mesh `mesh`.
///
/// Feasibility is monotone in frequency — more bandwidth per slot and
/// more cycles inside every latency bound — so bisection is exact up to
/// heuristic noise of the mapper.
///
/// Used for the DVS/DFS study (Figure 7(b)) and the parallel-use-case
/// frequency study (Figure 7(c)).
///
/// # Errors
///
/// [`MapError::NoFeasibleFrequency`] when even `hi` fails.
pub fn min_frequency(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    topo: &Topology,
    base_spec: TdmaSpec,
    options: &MapperOptions,
    lo: Frequency,
    hi: Frequency,
) -> Result<(Frequency, MappingSolution), MapError> {
    let mut lo_mhz = (lo.as_hz() / 1_000_000).max(1);
    let mut hi_mhz = (hi.as_hz() / 1_000_000).max(lo_mhz);
    let attempt = |mhz: u64| {
        map_multi_usecase(
            soc,
            groups,
            topo,
            base_spec.at_frequency(Frequency::from_mhz(mhz)),
            options,
        )
    };
    let mut best = match attempt(hi_mhz) {
        Ok(sol) => sol,
        Err(_) => return Err(MapError::NoFeasibleFrequency),
    };
    let mut best_mhz = hi_mhz;
    while lo_mhz < hi_mhz {
        let mid = lo_mhz + (hi_mhz - lo_mhz) / 2;
        match attempt(mid) {
            Ok(sol) => {
                best = sol;
                best_mhz = mid;
                hi_mhz = mid;
            }
            Err(_) => lo_mhz = mid + 1,
        }
    }
    Ok((Frequency::from_mhz(best_mhz), best))
}

/// Convenience for the area–frequency Pareto sweep (Figure 7(a)): the
/// smallest valid mesh at each frequency of `sweep`.
///
/// Infeasible frequencies yield `None` entries (e.g. when a flow exceeds
/// the link capacity at a low clock).
pub fn area_frequency_sweep(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    base_spec: TdmaSpec,
    options: &MapperOptions,
    max_switches: usize,
    sweep: &[Frequency],
) -> Vec<(Frequency, Option<MappingSolution>)> {
    sweep
        .iter()
        .map(|&f| {
            let sol = design_smallest_mesh(
                soc,
                groups,
                base_spec.at_frequency(f),
                options,
                max_switches,
            )
            .ok();
            (f, sol)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::units::{Bandwidth, Latency};
    use noc_usecase::spec::{CoreId, UseCaseBuilder};

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    fn bw(m: u64) -> Bandwidth {
        Bandwidth::from_mbps(m)
    }

    /// 8 cores in a ring of heavy flows: too much for one switch's worth
    /// of NIs at paper defaults? (One switch CAN host 8 NIs; demand is
    /// what forces growth.)
    fn ring_soc(mbps: u64) -> SocSpec {
        let mut soc = SocSpec::new("ring");
        let mut b = UseCaseBuilder::new("u0");
        for i in 0..8u32 {
            b = b
                .flow(c(i), c((i + 1) % 8), bw(mbps), Latency::UNCONSTRAINED)
                .unwrap();
        }
        soc.add_use_case(b.build());
        soc
    }

    #[test]
    fn small_demand_fits_one_switch() {
        let soc = ring_soc(50);
        let groups = UseCaseGroups::singletons(1);
        let sol = design_smallest_mesh(
            &soc,
            &groups,
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
            100,
        )
        .unwrap();
        assert_eq!(sol.switch_count(), 1);
        sol.verify(&soc, &groups).unwrap();
    }

    #[test]
    fn heavy_demand_forces_growth() {
        // 8 flows x 1500 MB/s: a single switch (8 NIs) would carry 12000
        // MB/s over... NI links carry 1 flow each (1500 <= 2000), but a
        // 1-switch config routes each flow over 2 NI links only — actually
        // feasible. The pressure point is slot capacity: each flow needs
        // 12 of 16 slots; NI links hold 1 flow each; switch crossbar is
        // not modelled as a resource. So a single switch still works! Use
        // per-core fan-out instead: two flows out of each core share one
        // NI link: 2 x 12 slots > 16 -> must grow? No — growth does not
        // change NI-link sharing. So test growth with many cores instead:
        // 40 cores on up to 8 NIs per switch.
        let mut soc = SocSpec::new("many");
        let mut b = UseCaseBuilder::new("u0");
        for i in 0..40u32 {
            b = b
                .flow(c(i), c((i + 1) % 40), bw(400), Latency::UNCONSTRAINED)
                .unwrap();
        }
        soc.add_use_case(b.build());
        let groups = UseCaseGroups::singletons(1);
        let sol = design_smallest_mesh(
            &soc,
            &groups,
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
            100,
        )
        .unwrap();
        sol.verify(&soc, &groups).unwrap();
        // 40 cores x 400 MB/s in+out per core; a 1x1 mesh hosts 40 NIs on
        // one switch and actually routes everything through that switch —
        // valid. The interesting property: the solution is the *smallest*
        // valid size, and larger demand never yields a smaller mesh.
        let smaller_demand = {
            let mut s = SocSpec::new("light");
            let mut b = UseCaseBuilder::new("u0");
            for i in 0..40u32 {
                b = b
                    .flow(c(i), c((i + 1) % 40), bw(10), Latency::UNCONSTRAINED)
                    .unwrap();
            }
            s.add_use_case(b.build());
            design_smallest_mesh(
                &s,
                &UseCaseGroups::singletons(1),
                TdmaSpec::paper_default(),
                &MapperOptions::default(),
                100,
            )
            .unwrap()
        };
        assert!(smaller_demand.switch_count() <= sol.switch_count());
    }

    #[test]
    fn capacity_error_short_circuits() {
        let soc = ring_soc(2500); // single flow > 2 GB/s link
        let err = design_smallest_mesh(
            &soc,
            &UseCaseGroups::singletons(1),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
            100,
        )
        .unwrap_err();
        assert!(matches!(err, MapError::FlowExceedsLinkCapacity { .. }));
    }

    #[test]
    fn size_cap_reported() {
        let soc = ring_soc(1500);
        // Cap of 0 switches: nothing fits.
        let err = design_smallest_mesh(
            &soc,
            &UseCaseGroups::singletons(1),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
            0,
        )
        .unwrap_err();
        assert_eq!(err, MapError::NoFeasibleSize { max_switches: 0 });
    }

    #[test]
    fn min_frequency_bisects() {
        let soc = ring_soc(200);
        let groups = UseCaseGroups::singletons(1);
        let mesh = candidate_mesh(1, 1, 8, 10, FabricKind::Mesh)
            .unwrap()
            .into_topology();
        let (f, sol) = min_frequency(
            &soc,
            &groups,
            &mesh,
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
            Frequency::from_mhz(1),
            Frequency::from_mhz(500),
        )
        .unwrap();
        sol.verify(&soc, &groups).unwrap();
        // 200 MB/s flows, two per NI link share 16 slots: need 2*k slots
        // with k = ceil(200 / (f*4/16)). Must be well under 500 MHz.
        assert!(f < Frequency::from_mhz(500));
        assert!(f >= Frequency::from_mhz(1));
        // And the reported frequency is actually feasible while f-50MHz
        // is materially smaller demand coverage (sanity of monotonicity).
        let again = map_multi_usecase(
            &soc,
            &groups,
            &mesh,
            TdmaSpec::paper_default().at_frequency(f),
            &MapperOptions::default(),
        );
        assert!(again.is_ok());
    }

    #[test]
    fn min_frequency_unreachable() {
        let soc = ring_soc(2500);
        let err = min_frequency(
            &soc,
            &UseCaseGroups::singletons(1),
            &candidate_mesh(1, 1, 8, 10, FabricKind::Mesh)
                .unwrap()
                .into_topology(),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
            Frequency::from_mhz(1),
            Frequency::from_mhz(100),
        )
        .unwrap_err();
        assert_eq!(err, MapError::NoFeasibleFrequency);
    }

    #[test]
    fn torus_fabric_designs_and_verifies() {
        let soc = ring_soc(300);
        let groups = UseCaseGroups::singletons(1);
        let mesh = design_smallest_fabric(
            &soc,
            &groups,
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
            100,
            FabricKind::Mesh,
        )
        .unwrap();
        let torus = design_smallest_fabric(
            &soc,
            &groups,
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
            100,
            FabricKind::Torus,
        )
        .unwrap();
        torus.verify(&soc, &groups).unwrap();
        // Wraparound capacity never needs a bigger fabric than the mesh.
        assert!(torus.switch_count() <= mesh.switch_count());
        if torus.switch_count() > 2 {
            assert!(torus.label().contains("torus"));
        }
    }

    #[test]
    fn area_sweep_shape() {
        let soc = ring_soc(300);
        let groups = UseCaseGroups::singletons(1);
        let sweep: Vec<Frequency> = [100u64, 250, 500, 1000]
            .into_iter()
            .map(Frequency::from_mhz)
            .collect();
        let results = area_frequency_sweep(
            &soc,
            &groups,
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
            100,
            &sweep,
        );
        assert_eq!(results.len(), 4);
        // Feasible points' switch counts never increase with frequency.
        let counts: Vec<Option<usize>> = results
            .iter()
            .map(|(_, s)| s.as_ref().map(|s| s.switch_count()))
            .collect();
        let feasible: Vec<usize> = counts.iter().flatten().copied().collect();
        for w in feasible.windows(2) {
            assert!(
                w[1] <= w[0],
                "switch count must not grow with frequency: {counts:?}"
            );
        }
    }
}
