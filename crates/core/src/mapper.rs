//! Algorithm 2: unified mapping, path selection and slot allocation for
//! multiple use-cases.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

use noc_tdma::{ConnId, NetworkSlots, SlotPolicy, TdmaSpec};
use noc_topology::units::{Bandwidth, Latency};
use noc_topology::{FaultSet, LinkId, NodeId, Topology};
use noc_usecase::spec::{CoreId, SocSpec};
use noc_usecase::UseCaseGroups;

use crate::error::MapError;
use crate::merge::{merged_group_flows, MergedFlow};
use crate::path::{PathQuery, PathScratch, Target};
use crate::perf;
use crate::result::{GroupConfig, MappingSolution, Route};

/// How cores are placed onto NIs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Placement {
    /// The paper's unified scheme: a core is placed on an NI at the end of
    /// the least-cost path chosen for its first (largest) flow.
    #[default]
    Unified,
    /// Decoupled baseline for the ablation benches: cores are assigned to
    /// NIs round-robin *before* any routing happens; routing then has no
    /// say in placement.
    RoundRobin,
    /// A fixed, externally supplied core → NI assignment. Used by the
    /// DVS/DFS study and annealing moves, which re-route on a mapping that
    /// must not change.
    Preset(std::collections::BTreeMap<CoreId, NodeId>),
}

/// Tunable knobs of the mapping heuristic. [`MapperOptions::default`] is
/// the paper's configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapperOptions {
    /// Slot-selection policy for GT reservations.
    pub slot_policy: SlotPolicy,
    /// Process pairs in decreasing order of bandwidth (step 2 of
    /// Algorithm 2). Disabling this is the `ablation_order` baseline.
    pub sort_by_bandwidth: bool,
    /// Prefer pairs whose endpoints are already mapped (step 3).
    pub prefer_mapped: bool,
    /// Congestion weight of the path cost, in thousandths of a hop for a
    /// fully-loaded link.
    pub load_penalty_millis: u64,
    /// How many times to retry path selection (banning the bottleneck
    /// link) when contention-free slot allocation fails on the chosen
    /// path.
    pub path_retries: usize,
    /// Core-placement scheme.
    pub placement: Placement,
    /// Maximum ports a switch may have (crossbar arity limit of the
    /// target library; Æthereal routers are small-arity). The design flow
    /// only proposes meshes whose switches respect this, which is what
    /// keeps a single huge switch from trivially "solving" every design.
    pub max_switch_ports: usize,
    /// Failed links / NIs the mapper must route around (empty by
    /// default). Failed links (and links incident to failed NIs) are
    /// banned from every path search; failed NIs are never offered as
    /// placement targets, and presetting a core onto one is a typed
    /// [`MapError::NiFailed`]. The `heal` entry point drives this.
    pub faults: FaultSet,
}

impl Default for MapperOptions {
    fn default() -> Self {
        MapperOptions {
            slot_policy: SlotPolicy::Spread,
            sort_by_bandwidth: true,
            prefer_mapped: true,
            load_penalty_millis: 500,
            path_retries: 4,
            placement: Placement::Unified,
            max_switch_ports: 10,
            faults: FaultSet::default(),
        }
    }
}

/// One `(src, dst)` pair with its per-group merged constraints, ordered
/// so the group with the largest bandwidth is routed (and thus placed)
/// first.
#[derive(Debug)]
struct PairTask {
    src: CoreId,
    dst: CoreId,
    /// `(group, merged constraint)` sorted by decreasing bandwidth.
    demands: Vec<(usize, MergedFlow)>,
    max_bw: Bandwidth,
}

/// Routing state private to one use-case group: its slot table ("each
/// use-case maintains separate data structures", scoped to groups since
/// group members share one configuration) plus its connection-id
/// sequence and its path-search scratch buffer. All are per group so
/// that different groups can be routed in parallel without shared
/// mutable state whose contents would depend on cross-group scheduling.
///
/// The slot state is mask-backed (`noc_tdma::SlotMask`): per-link
/// occupancy is one bit per slot, so the conflict probes inside
/// `route_in_group`'s k-growth loop are rotated-word folds rather than
/// per-slot scans, and cloning this state per group costs `S` bits plus
/// the live reservations per link.
struct GroupState {
    slots: NetworkSlots,
    conn_seq: u32,
    scratch: PathScratch,
}

/// Mutable mapping state shared across the run. Core placement is only
/// ever mutated between parallel regions (by the sequential task loop),
/// while each group's [`GroupState`] sits behind its own lock so a
/// pair's demands in *different* groups can be routed concurrently.
struct MapState<'a> {
    topo: &'a Topology,
    spec: TdmaSpec,
    options: &'a MapperOptions,
    /// `None` for groups a filtered run skips (see `run_mapping`).
    group_states: Vec<Mutex<Option<GroupState>>>,
    core_to_ni: BTreeMap<CoreId, NodeId>,
    /// Occupancy flags indexed by node id (only NI entries are used).
    /// Failed NIs are pre-marked occupied so no placement lands on one.
    ni_occupied: Vec<bool>,
    /// All usable NI ids, cached.
    free_nis: Vec<NodeId>,
    /// Links unusable under `options.faults`, pre-expanded once (failed
    /// links plus links incident to failed NIs); every path search
    /// starts from this ban set.
    banned_base: BTreeSet<LinkId>,
}

impl<'a> MapState<'a> {
    fn place(&mut self, core: CoreId, ni: NodeId) {
        debug_assert!(!self.ni_occupied[ni.index()], "NI {ni} double-booked");
        self.core_to_ni.insert(core, ni);
        self.ni_occupied[ni.index()] = true;
        self.free_nis.retain(|&n| n != ni);
    }

    fn max_hops_for(&self, latency: Latency) -> usize {
        let bound = self.topo.node_count();
        if latency.is_unconstrained() {
            return bound;
        }
        // Worst-case GT latency is (gap + hops) cycles with gap >= 1, so a
        // path is only admissible when hops <= lat_cycles - 1.
        let lat_cycles = (latency.as_ns() as u128 * self.spec.frequency().as_hz() as u128
            / 1_000_000_000u128) as usize;
        lat_cycles.saturating_sub(1).min(bound)
    }

    /// Path and slot search for `(src, dst)` inside `gs`, one group's
    /// private routing state (step 4 of Algorithm 2). Placement is read
    /// but never written: on success the NIs at the ends of the chosen
    /// path are returned so the (sequential) caller can commit any
    /// placements. Taking `&self` plus one group's state keeps this
    /// callable from parallel workers — different groups share nothing
    /// but read-only context.
    fn route_in_group(
        &self,
        group: usize,
        gs: &mut GroupState,
        src: CoreId,
        dst: CoreId,
        demand: MergedFlow,
    ) -> Result<(Route, NodeId, NodeId), MapError> {
        perf::inc(&perf::GROUP_ROUTES);
        let needed = self.spec.slots_for_bandwidth(demand.bandwidth);
        debug_assert!(needed >= 1);
        let max_hops = self.max_hops_for(demand.latency);
        let topo = self.topo;
        let mut banned: BTreeSet<LinkId> = self.banned_base.clone();

        for _attempt in 0..=self.options.path_retries {
            let query = PathQuery::new(
                topo,
                &gs.slots,
                needed,
                max_hops,
                self.options.load_penalty_millis,
                &banned,
            );
            let src_ni = self.core_to_ni.get(&src).copied();
            let dst_ni = self.core_to_ni.get(&dst).copied();
            // Borrow the source set instead of cloning the free-NI list
            // per attempt — this runs once per (pair, group, retry).
            let src_buf;
            let sources: &[NodeId] = match src_ni {
                Some(ni) => {
                    src_buf = [ni];
                    &src_buf
                }
                None => &self.free_nis,
            };
            if sources.is_empty() {
                break;
            }
            let target = match dst_ni {
                Some(ni) => Target::Ni(ni),
                None => Target::AnyFreeNi {
                    occupied: &self.ni_occupied,
                },
            };
            let Some(found) = query.shortest_with(&mut gs.scratch, sources, target) else {
                break;
            };

            // Contention-free slot allocation, growing the reservation
            // until the worst-case latency bound is met.
            let mut alloc = None;
            let mut k = needed;
            while k <= self.spec.slots() {
                match gs
                    .slots
                    .find_base_slots(&found.links, k, self.options.slot_policy)
                {
                    None => break,
                    Some(slots) => {
                        let wc = self.spec.worst_case_latency(&slots, found.hops());
                        if demand.latency.is_unconstrained() || wc <= demand.latency {
                            alloc = Some((slots, wc));
                            break;
                        }
                        k += 1;
                    }
                }
            }

            match alloc {
                Some((slots, wc)) => {
                    // Commit the reservation; the conn id comes from the
                    // group's own sequence, so it is independent of how
                    // routing interleaves across groups.
                    let conn = ConnId::from_usecase_flow(group as u32, gs.conn_seq);
                    gs.conn_seq += 1;
                    gs.slots
                        .reserve(&found.links, &slots, conn)
                        .expect("slots were found free");
                    let route = Route {
                        path: found.links,
                        base_slots: slots,
                        bandwidth: demand.bandwidth,
                        worst_case_latency: wc,
                    };
                    return Ok((route, found.src_ni, found.dst_ni));
                }
                None => {
                    // Ban the path's bottleneck link and search again.
                    let bottleneck = found
                        .links
                        .iter()
                        .copied()
                        .min_by_key(|&l| gs.slots.free_slot_count(l))
                        .expect("paths are non-empty");
                    if !banned.insert(bottleneck) {
                        break; // no progress to be made
                    }
                }
            }
        }
        Err(MapError::Unroutable { src, dst, group })
    }

    /// Routes `(src, dst)` in `group`'s state, placing unmapped endpoints
    /// on the NIs at the ends of the chosen path (step 4 of Algorithm 2).
    fn route_pair(
        &mut self,
        group: usize,
        src: CoreId,
        dst: CoreId,
        demand: MergedFlow,
    ) -> Result<Route, MapError> {
        let (route, src_ni, dst_ni) = {
            let mut gs = self.group_states[group].lock().expect("no poisoned groups");
            let gs = gs.as_mut().expect("routed groups are active");
            self.route_in_group(group, gs, src, dst, demand)?
        };
        if !self.core_to_ni.contains_key(&src) {
            self.place(src, src_ni);
        }
        if !self.core_to_ni.contains_key(&dst) {
            self.place(dst, dst_ni);
        }
        Ok(route)
    }
}

/// How `run_mapping` resolves core placement: the [`Placement`] options
/// with the preset map *borrowed*, so delta re-routes need not clone the
/// caller's placement per evaluation.
enum EffectivePlacement<'p> {
    Unified,
    RoundRobin,
    Preset(&'p BTreeMap<CoreId, NodeId>),
}

/// The mapping engine behind [`map_multi_usecase`] and
/// [`reroute_preset_groups`]: routes every group whose `active` flag is
/// set (all of them when `active` is `None`) and returns the placement
/// plus per-group configs (`None` for skipped groups).
///
/// Group filtering is only sound with a **full preset placement**: each
/// group's configuration is then a pure function of its own cores'
/// placements — routing order inside a group, its private slot state and
/// its connection-id sequence are all independent of the other groups —
/// so skipping an unaffected group and splicing its previous config back
/// in is byte-identical to re-routing it.
#[allow(clippy::too_many_arguments)]
fn run_mapping(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    topo: &Topology,
    spec: TdmaSpec,
    options: &MapperOptions,
    placement: EffectivePlacement<'_>,
    active: Option<&[bool]>,
    merged: &[BTreeMap<(CoreId, CoreId), MergedFlow>],
) -> Result<(BTreeMap<CoreId, NodeId>, Vec<Option<GroupConfig>>), MapError> {
    debug_assert!(
        active.is_none() || matches!(placement, EffectivePlacement::Preset(_)),
        "group filtering requires a full preset placement"
    );
    if soc.total_flow_count() == 0 {
        return Err(MapError::EmptySpec);
    }
    if groups.use_case_count() != soc.use_case_count() {
        return Err(MapError::GroupMismatch {
            spec_use_cases: soc.use_case_count(),
            group_use_cases: groups.use_case_count(),
        });
    }
    let cores = soc.cores();
    if cores.len() > topo.ni_count() {
        return Err(MapError::TooManyCores {
            cores: cores.len(),
            nis: topo.ni_count(),
        });
    }

    debug_assert_eq!(
        merged.len(),
        groups.group_count(),
        "merged flows must come from merged_group_flows(soc, groups)"
    );

    // Upfront capacity sanity: a merged flow larger than a whole link is
    // unroutable at any size.
    for (g, flows) in merged.iter().enumerate() {
        let _ = g;
        for (&(src, dst), f) in flows {
            let needed = spec.slots_for_bandwidth(f.bandwidth);
            if needed > spec.slots() {
                return Err(MapError::FlowExceedsLinkCapacity {
                    src,
                    dst,
                    needed,
                    available: spec.slots(),
                });
            }
        }
    }

    // Assemble pair tasks across groups.
    let mut by_pair: BTreeMap<(CoreId, CoreId), Vec<(usize, MergedFlow)>> = BTreeMap::new();
    for (g, flows) in merged.iter().enumerate() {
        for (&pair, &f) in flows {
            by_pair.entry(pair).or_default().push((g, f));
        }
    }
    let mut tasks: Vec<PairTask> = by_pair
        .into_iter()
        .map(|((src, dst), mut demands)| {
            demands.sort_by(|a, b| b.1.bandwidth.cmp(&a.1.bandwidth).then(a.0.cmp(&b.0)));
            let max_bw = demands[0].1.bandwidth;
            PairTask {
                src,
                dst,
                demands,
                max_bw,
            }
        })
        .collect();
    if options.sort_by_bandwidth {
        tasks.sort_by(|a, b| {
            b.max_bw
                .cmp(&a.max_bw)
                .then(a.src.cmp(&b.src))
                .then(a.dst.cmp(&b.dst))
        });
    }

    let is_active = |g: usize| active.is_none_or(|a| a[g]);
    // Failed NIs are taken out of play up front: marked occupied (so
    // `Target::AnyFreeNi` skips them) and dropped from the free list.
    let mut ni_occupied = vec![false; topo.node_count()];
    let mut free_nis = Vec::with_capacity(topo.ni_count());
    for &ni in topo.nis() {
        if options.faults.ni_failed(ni) {
            ni_occupied[ni.index()] = true;
        } else {
            free_nis.push(ni);
        }
    }
    let banned_base = if options.faults.is_empty() {
        BTreeSet::new()
    } else {
        options.faults.banned_links(topo)
    };
    let mut state = MapState {
        topo,
        spec,
        options,
        // Skipped groups never route, so don't pay their
        // `O(links × slots)` slot tables — that allocation is exactly
        // what the annealer's delta re-route exists to avoid.
        group_states: (0..groups.group_count())
            .map(|g| {
                Mutex::new(is_active(g).then(|| GroupState {
                    slots: NetworkSlots::new(topo, &spec),
                    conn_seq: 0,
                    scratch: PathScratch::new(),
                }))
            })
            .collect(),
        core_to_ni: BTreeMap::new(),
        ni_occupied,
        free_nis,
        banned_base,
    };

    match placement {
        EffectivePlacement::Unified => {}
        EffectivePlacement::RoundRobin => {
            let nis = state.free_nis.clone();
            for (core, ni) in cores.iter().zip(nis) {
                state.place(*core, ni);
            }
        }
        EffectivePlacement::Preset(assignment) => {
            for (&core, &ni) in assignment {
                if options.faults.ni_failed(ni) {
                    return Err(MapError::NiFailed { core, ni });
                }
                if !topo.node(ni).is_ni() || state.ni_occupied[ni.index()] {
                    return Err(MapError::TooManyCores {
                        cores: cores.len(),
                        nis: topo.ni_count(),
                    });
                }
                state.place(core, ni);
            }
        }
    }

    let mut configs: Vec<Option<GroupConfig>> = (0..groups.group_count())
        .map(|g| is_active(g).then(GroupConfig::new))
        .collect();
    // Demands deferred to the parallel per-group pass, in placement-pass
    // processing order (each group's routing order must not depend on
    // scheduling).
    let mut deferred: Vec<Vec<(CoreId, CoreId, MergedFlow)>> =
        vec![Vec::new(); groups.group_count()];
    let mut done = vec![false; tasks.len()];
    for _round in 0..tasks.len() {
        // Step 3: pick the largest-bandwidth pending pair, preferring
        // pairs with already-mapped endpoints.
        let mut best: Option<(usize, (u8, Bandwidth))> = None;
        for (i, t) in tasks.iter().enumerate() {
            if done[i] {
                continue;
            }
            if !options.prefer_mapped {
                best = Some((i, (0, t.max_bw)));
                break; // tasks are in processing order already
            }
            let mapped = state.core_to_ni.contains_key(&t.src) as u8
                + state.core_to_ni.contains_key(&t.dst) as u8;
            let key = (mapped, t.max_bw);
            if best.is_none_or(|(_, bk)| key > bk) {
                best = Some((i, key));
            }
        }
        let (idx, _) = best.expect("one pending task per round");
        done[idx] = true;
        let task = &tasks[idx];

        // Step 4 (placement pass): route the pair in its largest-demand
        // group, placing unmapped endpoint cores on the NIs at the ends
        // of the chosen path. The same pair's demands in *other* groups
        // don't influence placement — they are deferred to the parallel
        // per-group pass below. A filtered run only ever skips routing
        // work: placement is already complete (full preset), so skipped
        // groups cannot change what the active ones observe.
        let (&(g0, d0), rest) = task.demands.split_first().expect("tasks have >= 1 demand");
        if is_active(g0) {
            let route = state.route_pair(g0, task.src, task.dst, d0)?;
            configs[g0]
                .as_mut()
                .expect("active groups have configs")
                .insert(task.src, task.dst, route);
        }
        for &(g, demand) in rest {
            if is_active(g) {
                deferred[g].push((task.src, task.dst, demand));
            }
        }
    }

    // Steps 5-6 (group pass): with every core placed, each group's
    // remaining demands touch only that group's own slot state, so the
    // groups are routed **in parallel** — one coarse task per group, in
    // the placement pass's processing order within each group. Ordered
    // reduction (and `try_par_map`'s smallest-index error rule) makes
    // the outcome independent of the thread count.
    let state_ref = &state;
    let group_work: Vec<(usize, Vec<(CoreId, CoreId, MergedFlow)>)> = deferred
        .into_iter()
        .enumerate()
        .filter(|(_, demands)| !demands.is_empty())
        .collect();
    let routed = noc_par::try_par_map(group_work, |_, (g, demands)| {
        let span = noc_obs::span("route-group");
        span.attr("group", g);
        span.attr("demands", demands.len());
        let mut gs = state_ref.group_states[g]
            .lock()
            .expect("no poisoned groups");
        let gs = gs.as_mut().expect("deferred groups are active");
        let mut routes = Vec::with_capacity(demands.len());
        for (src, dst, demand) in demands {
            let (route, _, _) = state_ref.route_in_group(g, gs, src, dst, demand)?;
            routes.push((src, dst, route));
        }
        Ok::<_, MapError>((g, routes))
    })?;
    for (g, routes) in routed {
        let config = configs[g].as_mut().expect("active groups have configs");
        for (src, dst, route) in routes {
            config.insert(src, dst, route);
        }
    }

    Ok((state.core_to_ni, configs))
}

/// Runs Algorithm 2 on a fixed mesh.
///
/// `groups` is the partition produced by phase 2 (Algorithm 1); use
/// [`UseCaseGroups::singletons`] when every use-case may be freely
/// reconfigured and [`UseCaseGroups::single_group`] to forbid
/// reconfiguration entirely.
///
/// # Errors
///
/// * [`MapError::EmptySpec`] / [`MapError::GroupMismatch`] /
///   [`MapError::TooManyCores`] on malformed inputs,
/// * [`MapError::FlowExceedsLinkCapacity`] when a single merged flow
///   cannot fit a slot table at this frequency (growing the mesh will not
///   help),
/// * [`MapError::Unroutable`] when the heuristic finds no feasible
///   path/slots for some pair — the caller should try a larger mesh.
pub fn map_multi_usecase(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    topo: &Topology,
    spec: TdmaSpec,
    options: &MapperOptions,
) -> Result<MappingSolution, MapError> {
    perf::inc(&perf::FULL_MAPS);
    let placement = match &options.placement {
        Placement::Unified => EffectivePlacement::Unified,
        Placement::RoundRobin => EffectivePlacement::RoundRobin,
        Placement::Preset(assignment) => EffectivePlacement::Preset(assignment),
    };
    // Validate before merging: `merged_group_flows` panics on a
    // mismatched partition, while this entry point reports it.
    if groups.use_case_count() != soc.use_case_count() {
        return Err(MapError::GroupMismatch {
            spec_use_cases: soc.use_case_count(),
            group_use_cases: groups.use_case_count(),
        });
    }
    let merged = merged_group_flows(soc, groups);
    let (core_to_ni, configs) =
        run_mapping(soc, groups, topo, spec, options, placement, None, &merged)?;
    Ok(MappingSolution::new(
        topo.clone(),
        format!("{}sw", topo.switch_count()),
        spec,
        core_to_ni,
        configs
            .into_iter()
            .map(|c| c.expect("unfiltered runs route every group"))
            .collect(),
    ))
}

/// Delta re-route for placement moves: re-routes only the groups marked
/// in `affected` under `placement` (which must place **every** core, as
/// annealing moves do), splicing the configs of untouched groups
/// verbatim from `base`.
///
/// Byte-identical to a full [`map_multi_usecase`] with
/// [`Placement::Preset`] because, with placement fixed up front, each
/// group's configuration is a pure function of its own cores' NIs: pair
/// processing order is placement-independent, slot state and connection
/// ids are group-private, and unmapped-endpoint logic never fires. The
/// annealer leans on this to evaluate a two-core swap by re-routing only
/// the groups whose traffic touches either core — `base` **must** carry
/// per-group configs equal to a full preset re-route of its own
/// placement, which holds for any solution this function or
/// [`map_multi_usecase`] produced.
///
/// `options.placement` is ignored; the borrowed `placement` wins.
/// `merged` must be `merged_group_flows(soc, groups)`, precomputed by
/// the caller — the annealer hoists it out of its walk so a proposed
/// move does not re-merge every flow of every group.
///
/// # Errors
///
/// As [`map_multi_usecase`], restricted to the affected groups.
///
/// # Panics
///
/// When `affected.len() != groups.group_count()`.
#[allow(clippy::too_many_arguments)]
pub fn reroute_preset_groups(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    base: &MappingSolution,
    options: &MapperOptions,
    placement: &BTreeMap<CoreId, NodeId>,
    affected: &[bool],
    merged: &[BTreeMap<(CoreId, CoreId), MergedFlow>],
) -> Result<MappingSolution, MapError> {
    assert_eq!(
        affected.len(),
        groups.group_count(),
        "one affected flag per group"
    );
    let topo = base.topology();
    let spec = base.spec();
    let rerouted = affected.iter().filter(|&&a| a).count() as u64;
    perf::add(&perf::GROUPS_REROUTED, rerouted);
    perf::add(&perf::GROUPS_REUSED, affected.len() as u64 - rerouted);
    let (core_to_ni, configs) = run_mapping(
        soc,
        groups,
        topo,
        spec,
        options,
        EffectivePlacement::Preset(placement),
        Some(affected),
        merged,
    )?;
    Ok(MappingSolution::new(
        topo.clone(),
        format!("{}sw", topo.switch_count()),
        spec,
        core_to_ni,
        configs
            .into_iter()
            .enumerate()
            .map(|(g, c)| c.unwrap_or_else(|| base.group_configs()[g].clone()))
            .collect(),
    ))
}

/// Memoizes per-group configurations by **placement signature** — the
/// route cache behind cached delta re-routes
/// ([`reroute_preset_groups_cached`]).
///
/// Soundness rests on the invariant documented on
/// [`reroute_preset_groups`]: with placement fixed up front, each group's
/// configuration is a pure function of its own cores' NIs (pair order,
/// slot state and connection ids are all group-private). The cache key
/// for group `g` is therefore the NI assignment of exactly the cores
/// appearing in `merged[g]`, in sorted core order; topology, TDMA spec
/// and mapper options must stay fixed for the cache's lifetime, which is
/// why search strategies own one cache per (chain, search) rather than
/// sharing a global one — per-unit caches also keep the hit/miss
/// counters schedule-independent.
#[derive(Debug, Clone)]
pub struct RouteCache {
    /// Per group: the sorted cores its configuration depends on.
    group_cores: Vec<Vec<CoreId>>,
    /// Per group: placement signature → routed config.
    configs: Vec<BTreeMap<Vec<NodeId>, GroupConfig>>,
}

impl RouteCache {
    /// Creates an empty cache for the given merged per-group flows
    /// (`merged_group_flows(soc, groups)`).
    pub fn new(merged: &[BTreeMap<(CoreId, CoreId), MergedFlow>]) -> Self {
        let group_cores: Vec<Vec<CoreId>> = merged
            .iter()
            .map(|flows| {
                let cores: BTreeSet<CoreId> = flows.keys().flat_map(|&(s, d)| [s, d]).collect();
                cores.into_iter().collect()
            })
            .collect();
        let configs = vec![BTreeMap::new(); group_cores.len()];
        RouteCache {
            group_cores,
            configs,
        }
    }

    /// The signature of group `g` under `placement`: its cores' NIs in
    /// sorted core order. `None` when a core is unplaced (never cached).
    fn signature(&self, g: usize, placement: &BTreeMap<CoreId, NodeId>) -> Option<Vec<NodeId>> {
        self.group_cores[g]
            .iter()
            .map(|c| placement.get(c).copied())
            .collect()
    }

    /// Seeds the cache with `solution`'s per-group configs under its own
    /// placement (the solution must be preset-pure, i.e. produced by a
    /// full preset re-route — see [`reroute_preset_groups`]).
    pub fn seed(&mut self, solution: &MappingSolution) {
        for g in 0..self.group_cores.len() {
            if let Some(sig) = self.signature(g, solution.core_mapping()) {
                self.configs[g]
                    .entry(sig)
                    .or_insert_with(|| solution.group_configs()[g].clone());
            }
        }
    }

    /// Total cached configs across all groups.
    pub fn len(&self) -> usize {
        self.configs.iter().map(BTreeMap::len).sum()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The signature of group `g` under `placement` — the key
    /// [`reroute_preset_groups_cached`] would use (see the type docs).
    /// `None` when a core of the group is unplaced.
    ///
    /// # Panics
    ///
    /// When `g` is out of range for the partition the cache was built on.
    pub fn signature_of(
        &self,
        g: usize,
        placement: &BTreeMap<CoreId, NodeId>,
    ) -> Option<Vec<NodeId>> {
        self.signature(g, placement)
    }

    /// Inserts a routed config for group `g` under an explicit signature
    /// (as returned by [`Self::signature_of`]). Long-running callers —
    /// the online mapping service — use this to re-seed a fresh cache
    /// from configs exported by [`Self::group_entries`] on an earlier
    /// cache whose group indices have since shifted. The config must be
    /// the pure routing of the group under that signature; inserting
    /// anything else breaks the splice soundness invariant.
    ///
    /// # Panics
    ///
    /// When `g` is out of range for the partition the cache was built on.
    pub fn insert(&mut self, g: usize, sig: Vec<NodeId>, config: GroupConfig) {
        self.configs[g].insert(sig, config);
    }

    /// All cached `signature → config` entries for group `g`, for export
    /// into a longer-lived store (see [`Self::insert`]).
    ///
    /// # Panics
    ///
    /// When `g` is out of range for the partition the cache was built on.
    pub fn group_entries(&self, g: usize) -> &BTreeMap<Vec<NodeId>, GroupConfig> {
        &self.configs[g]
    }
}

/// [`reroute_preset_groups`] with a [`RouteCache`]: affected groups whose
/// placement signature is cached are spliced from the cache
/// (`route_cache_hits`) instead of being re-routed; re-routed groups are
/// inserted (`route_cache_misses`). Byte-identical to the uncached call
/// because cached configs are pure functions of the signature — pinned by
/// `tests/perf_counters.rs` and the strategy differential tests.
///
/// # Errors
///
/// As [`reroute_preset_groups`].
///
/// # Panics
///
/// When `affected.len() != groups.group_count()`, or when `cache` was
/// built for a different group count.
#[allow(clippy::too_many_arguments)]
pub fn reroute_preset_groups_cached(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    base: &MappingSolution,
    options: &MapperOptions,
    placement: &BTreeMap<CoreId, NodeId>,
    affected: &[bool],
    merged: &[BTreeMap<(CoreId, CoreId), MergedFlow>],
    cache: &mut RouteCache,
) -> Result<MappingSolution, MapError> {
    assert_eq!(
        affected.len(),
        groups.group_count(),
        "one affected flag per group"
    );
    assert_eq!(
        cache.group_cores.len(),
        groups.group_count(),
        "cache built for this partition"
    );
    // Split the affected set into cache hits (spliced below) and misses
    // (re-routed through the plain delta path).
    let mut to_route = vec![false; affected.len()];
    let mut hits: Vec<(usize, Vec<NodeId>)> = Vec::new();
    let mut misses: Vec<(usize, Vec<NodeId>)> = Vec::new();
    for (g, &a) in affected.iter().enumerate() {
        if !a {
            continue;
        }
        match cache.signature(g, placement) {
            Some(sig) if cache.configs[g].contains_key(&sig) => hits.push((g, sig)),
            Some(sig) => {
                to_route[g] = true;
                misses.push((g, sig));
            }
            // Unplaced cores never occur on the preset paths that use the
            // cache; route them uncached to keep behavior identical.
            None => to_route[g] = true,
        }
    }
    perf::add(&perf::ROUTE_CACHE_HITS, hits.len() as u64);
    perf::add(&perf::ROUTE_CACHE_MISSES, misses.len() as u64);
    let sol = reroute_preset_groups(soc, groups, base, options, placement, &to_route, merged)?;
    for (g, sig) in misses {
        cache.configs[g].insert(sig, sol.group_configs()[g].clone());
    }
    if hits.is_empty() {
        return Ok(sol);
    }
    let mut configs = sol.group_configs().to_vec();
    for (g, sig) in hits {
        configs[g] = cache.configs[g][&sig].clone();
    }
    Ok(MappingSolution::new(
        sol.topology().clone(),
        sol.label(),
        sol.spec(),
        sol.core_mapping().clone(),
        configs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::{Mesh, MeshBuilder};
    use noc_usecase::spec::UseCaseBuilder;

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    fn bw(m: u64) -> Bandwidth {
        Bandwidth::from_mbps(m)
    }

    fn small_soc() -> SocSpec {
        // Figure 5 of the paper: two use-cases over 4 cores.
        let mut soc = SocSpec::new("figure5");
        soc.add_use_case(
            UseCaseBuilder::new("uc1")
                .flow(c(2), c(3), bw(100), Latency::UNCONSTRAINED)
                .unwrap()
                .flow(c(0), c(1), bw(10), Latency::UNCONSTRAINED)
                .unwrap()
                .flow(c(1), c(2), bw(75), Latency::UNCONSTRAINED)
                .unwrap()
                .build(),
        );
        soc.add_use_case(
            UseCaseBuilder::new("uc2")
                .flow(c(2), c(3), bw(42), Latency::UNCONSTRAINED)
                .unwrap()
                .flow(c(0), c(3), bw(11), Latency::UNCONSTRAINED)
                .unwrap()
                .flow(c(1), c(3), bw(52), Latency::UNCONSTRAINED)
                .unwrap()
                .build(),
        );
        soc
    }

    fn mesh(r: u16, co: u16, nis: u16) -> Mesh {
        MeshBuilder::new(r, co).nis_per_switch(nis).build().unwrap()
    }

    #[test]
    fn maps_figure5_example_on_2x2() {
        let soc = small_soc();
        let groups = UseCaseGroups::singletons(2);
        let m = mesh(2, 2, 1);
        let sol = map_multi_usecase(
            &soc,
            &groups,
            m.topology(),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
        )
        .unwrap();
        // All four cores placed on distinct NIs.
        let nis: BTreeSet<NodeId> = soc.cores().iter().map(|&c| sol.ni_of(c).unwrap()).collect();
        assert_eq!(nis.len(), 4);
        // Both use-cases have all their flows configured.
        assert_eq!(sol.group_configs()[0].len(), 3);
        assert_eq!(sol.group_configs()[1].len(), 3);
        sol.verify(&soc, &groups).unwrap();
    }

    #[test]
    fn single_switch_suffices_for_tiny_demand() {
        let soc = small_soc();
        let groups = UseCaseGroups::singletons(2);
        let m = mesh(1, 1, 4);
        let sol = map_multi_usecase(
            &soc,
            &groups,
            m.topology(),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
        )
        .unwrap();
        assert_eq!(sol.switch_count(), 1);
        sol.verify(&soc, &groups).unwrap();
    }

    #[test]
    fn shared_group_uses_identical_route() {
        let soc = small_soc();
        let groups = UseCaseGroups::single_group(2);
        let m = mesh(2, 2, 1);
        let sol = map_multi_usecase(
            &soc,
            &groups,
            m.topology(),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
        )
        .unwrap();
        // One shared config; the (2,3) pair is sized for the max (100).
        assert_eq!(sol.group_configs().len(), 1);
        let r = sol.group_config(0).route(c(2), c(3)).unwrap();
        assert_eq!(r.bandwidth, bw(100));
        sol.verify(&soc, &groups).unwrap();
    }

    #[test]
    fn separate_groups_may_take_different_paths() {
        // Two use-cases with a heavy same-pair flow each: with separate
        // states both route fine even on a small mesh; the second group's
        // state is untouched by the first's reservations.
        let mut soc = SocSpec::new("two-heavy");
        for name in ["a", "b"] {
            soc.add_use_case(
                UseCaseBuilder::new(name)
                    .flow(c(0), c(1), bw(1800), Latency::UNCONSTRAINED)
                    .unwrap()
                    .build(),
            );
        }
        let groups = UseCaseGroups::singletons(2);
        let m = mesh(1, 2, 1);
        let sol = map_multi_usecase(
            &soc,
            &groups,
            m.topology(),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
        )
        .unwrap();
        sol.verify(&soc, &groups).unwrap();
        // Same pair in one *merged* group would need 2x1800 MB/s through
        // one NI link (2000 MB/s): infeasible at any mesh size.
        let err = map_multi_usecase(
            &soc,
            &UseCaseGroups::single_group(2),
            m.topology(),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
        );
        // Merged max is 1800 (same pair), which still fits; to see the WC
        // blow-up two *different* heavy pairs per use-case are needed —
        // covered in the wc module tests. Here merged must succeed too.
        assert!(err.is_ok());
    }

    #[test]
    fn latency_constraint_grows_reservation() {
        let mut soc = SocSpec::new("lat");
        soc.add_use_case(
            UseCaseBuilder::new("u")
                // 125 MB/s needs 1 of 16 slots; a 1-slot reservation has
                // worst-case gap 16 cycles = 32 ns at 500 MHz; demanding
                // < 32 ns forces extra slots.
                .flow(c(0), c(1), bw(125), Latency::from_ns(24))
                .unwrap()
                .build(),
        );
        let groups = UseCaseGroups::singletons(1);
        let m = mesh(1, 1, 2);
        let sol = map_multi_usecase(
            &soc,
            &groups,
            m.topology(),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
        )
        .unwrap();
        let r = sol.group_config(0).route(c(0), c(1)).unwrap();
        assert!(r.slot_count() > 1, "latency bound must force extra slots");
        assert!(r.worst_case_latency <= Latency::from_ns(24));
        sol.verify(&soc, &groups).unwrap();
    }

    #[test]
    fn impossible_latency_is_unroutable() {
        let mut soc = SocSpec::new("lat2");
        soc.add_use_case(
            UseCaseBuilder::new("u")
                .flow(c(0), c(1), bw(10), Latency::from_ns(2)) // 1 cycle: impossible
                .unwrap()
                .build(),
        );
        let err = map_multi_usecase(
            &soc,
            &UseCaseGroups::singletons(1),
            mesh(1, 1, 2).topology(),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, MapError::Unroutable { .. }));
    }

    #[test]
    fn oversized_flow_reports_capacity_error() {
        let mut soc = SocSpec::new("big");
        soc.add_use_case(
            UseCaseBuilder::new("u")
                .flow(c(0), c(1), bw(2500), Latency::UNCONSTRAINED) // > 2000 MB/s link
                .unwrap()
                .build(),
        );
        let err = map_multi_usecase(
            &soc,
            &UseCaseGroups::singletons(1),
            mesh(2, 2, 1).topology(),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, MapError::FlowExceedsLinkCapacity { .. }));
    }

    #[test]
    fn too_many_cores_rejected() {
        let soc = small_soc(); // 4 cores
        let err = map_multi_usecase(
            &soc,
            &UseCaseGroups::singletons(2),
            mesh(1, 1, 3).topology(),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, MapError::TooManyCores { cores: 4, nis: 3 }));
    }

    #[test]
    fn empty_spec_rejected() {
        let soc = SocSpec::new("none");
        let err = map_multi_usecase(
            &soc,
            &UseCaseGroups::singletons(0),
            mesh(1, 1, 1).topology(),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, MapError::EmptySpec);
    }

    #[test]
    fn group_mismatch_rejected() {
        let soc = small_soc();
        let err = map_multi_usecase(
            &soc,
            &UseCaseGroups::singletons(5),
            mesh(2, 2, 1).topology(),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, MapError::GroupMismatch { .. }));
    }

    #[test]
    fn round_robin_placement_still_routes() {
        let soc = small_soc();
        let groups = UseCaseGroups::singletons(2);
        let m = mesh(2, 2, 1);
        let opts = MapperOptions {
            placement: Placement::RoundRobin,
            ..Default::default()
        };
        let sol = map_multi_usecase(
            &soc,
            &groups,
            m.topology(),
            TdmaSpec::paper_default(),
            &opts,
        )
        .unwrap();
        sol.verify(&soc, &groups).unwrap();
        // Round-robin: cores 0..3 land on NIs in id order.
        let nis = m.topology().nis().to_vec();
        for (i, core) in soc.cores().into_iter().enumerate() {
            assert_eq!(sol.ni_of(core), Some(nis[i]));
        }
    }

    #[test]
    fn unified_beats_round_robin_on_comm_cost() {
        // With unified placement, hot pairs are co-located; round-robin
        // ignores traffic. Compare the bandwidth-weighted hop cost.
        let soc = small_soc();
        let groups = UseCaseGroups::singletons(2);
        let m = mesh(2, 2, 1);
        let unified = map_multi_usecase(
            &soc,
            &groups,
            m.topology(),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
        )
        .unwrap();
        let rr = map_multi_usecase(
            &soc,
            &groups,
            m.topology(),
            TdmaSpec::paper_default(),
            &MapperOptions {
                placement: Placement::RoundRobin,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            unified.comm_cost() <= rr.comm_cost(),
            "unified {} should not exceed round-robin {}",
            unified.comm_cost(),
            rr.comm_cost()
        );
    }

    #[test]
    fn deterministic_output() {
        let soc = small_soc();
        let groups = UseCaseGroups::singletons(2);
        let m = mesh(2, 2, 1);
        let a = map_multi_usecase(
            &soc,
            &groups,
            m.topology(),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
        )
        .unwrap();
        let b = map_multi_usecase(
            &soc,
            &groups,
            m.topology(),
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
