use std::error::Error;
use std::fmt;

use noc_topology::NodeId;
use noc_usecase::spec::CoreId;

use crate::verify::VerifyError;

/// Errors raised by the mapping flow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MapError {
    /// The SoC spec has no flows at all.
    EmptySpec,
    /// More cores than NIs on the candidate topology.
    TooManyCores {
        /// Cores to place.
        cores: usize,
        /// NIs available.
        nis: usize,
    },
    /// No feasible path (with slots and latency) for a pair in a group at
    /// this topology size — the caller should grow the topology.
    Unroutable {
        /// Flow source core.
        src: CoreId,
        /// Flow destination core.
        dst: CoreId,
        /// Group whose resource state ran out.
        group: usize,
    },
    /// A flow needs more slots than a whole slot table holds — infeasible
    /// at this frequency regardless of topology size.
    FlowExceedsLinkCapacity {
        /// Flow source core.
        src: CoreId,
        /// Flow destination core.
        dst: CoreId,
        /// Slots needed.
        needed: usize,
        /// Slots per table.
        available: usize,
    },
    /// The growth loop hit its size cap without finding a valid mapping.
    NoFeasibleSize {
        /// Largest switch count tried.
        max_switches: usize,
    },
    /// No frequency within the searched range made the design feasible.
    NoFeasibleFrequency,
    /// The groups partition does not cover the spec's use-cases.
    GroupMismatch {
        /// Use-cases in the spec.
        spec_use_cases: usize,
        /// Use-cases covered by the partition.
        group_use_cases: usize,
    },
    /// A preset placement seats a core on an NI that has failed
    /// (`MapperOptions::faults`); the caller must move or degrade it.
    NiFailed {
        /// The core whose seat is gone.
        core: CoreId,
        /// The failed NI.
        ni: NodeId,
    },
    /// A produced solution failed verification (internal error).
    Inconsistent(VerifyError),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::EmptySpec => write!(f, "specification contains no flows"),
            MapError::TooManyCores { cores, nis } => {
                write!(f, "{cores} cores cannot be placed on {nis} NIs")
            }
            MapError::Unroutable { src, dst, group } => {
                write!(f, "no feasible path for {src} -> {dst} in group {group}")
            }
            MapError::FlowExceedsLinkCapacity { src, dst, needed, available } => write!(
                f,
                "flow {src} -> {dst} needs {needed} slots but a table has only {available}"
            ),
            MapError::NoFeasibleSize { max_switches } => {
                write!(f, "no valid mapping up to {max_switches} switches")
            }
            MapError::NoFeasibleFrequency => {
                write!(f, "no frequency in the searched range yields a valid mapping")
            }
            MapError::GroupMismatch { spec_use_cases, group_use_cases } => write!(
                f,
                "group partition covers {group_use_cases} use-cases but the spec has {spec_use_cases}"
            ),
            MapError::NiFailed { core, ni } => {
                write!(f, "core {core} is preset onto failed NI {ni}")
            }
            MapError::Inconsistent(e) => write!(f, "produced solution fails verification: {e}"),
        }
    }
}

impl Error for MapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MapError::Inconsistent(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VerifyError> for MapError {
    fn from(e: VerifyError) -> Self {
        MapError::Inconsistent(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_trait_bounds() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<MapError>();
    }

    #[test]
    fn display() {
        let e = MapError::TooManyCores { cores: 20, nis: 16 };
        assert_eq!(e.to_string(), "20 cores cannot be placed on 16 NIs");
    }
}
