//! The worst-case (WC) baseline of Murali et al., ASPDAC 2006 — the
//! method this paper improves upon.
//!
//! The WC method "is based on building a synthetic worst-case use-case
//! that includes the constraints of all the use-cases and to design and
//! optimize the NoC based on the worst-case use-case" (Section 2). For
//! every `(src, dst)` pair it takes the **maximum** bandwidth and
//! **minimum** latency over all use-cases, then runs the single-use-case
//! design flow. The result satisfies everything but is heavily
//! over-specified once use-cases are numerous or diverse.

use noc_tdma::TdmaSpec;
use noc_topology::units::Bandwidth;
use noc_usecase::spec::{Flow, SocSpec, UseCase, UseCaseBuilder};
use noc_usecase::UseCaseGroups;

use crate::design::design_smallest_mesh;
use crate::error::MapError;
use crate::mapper::MapperOptions;
use crate::merge::merged_group_flows;
use crate::result::MappingSolution;

/// Builds the synthetic worst-case use-case of `soc`: per pair, the
/// maximum bandwidth and minimum latency over all use-cases.
///
/// ```
/// use noc_topology::units::{Bandwidth, Latency};
/// use noc_usecase::spec::{CoreId, SocSpec, UseCaseBuilder};
/// use nocmap::wc::worst_case_use_case;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = |i| CoreId::new(i);
/// let mut soc = SocSpec::new("s");
/// soc.add_use_case(UseCaseBuilder::new("a")
///     .flow(c(0), c(1), Bandwidth::from_mbps(100), Latency::from_us(2))?.build());
/// soc.add_use_case(UseCaseBuilder::new("b")
///     .flow(c(0), c(1), Bandwidth::from_mbps(30), Latency::from_us(1))?
///     .flow(c(1), c(2), Bandwidth::from_mbps(70), Latency::UNCONSTRAINED)?.build());
/// let wc = worst_case_use_case(&soc);
/// assert_eq!(wc.flow_count(), 2);
/// let f = wc.flow_between(c(0), c(1)).unwrap();
/// assert_eq!(f.bandwidth(), Bandwidth::from_mbps(100)); // max
/// assert_eq!(f.latency(), Latency::from_us(1));          // min
/// # Ok(())
/// # }
/// ```
pub fn worst_case_use_case(soc: &SocSpec) -> UseCase {
    let merged = merged_group_flows(soc, &UseCaseGroups::single_group(soc.use_case_count()));
    let mut builder = UseCaseBuilder::new(format!("wc({})", soc.name()));
    if let Some(m) = merged.first() {
        for (&(src, dst), f) in m {
            let flow =
                Flow::new(src, dst, f.bandwidth, f.latency).expect("merged flows inherit validity");
            builder.add_flow(flow).expect("merged pairs are unique");
        }
    }
    builder.build()
}

/// Wraps the worst-case use-case as a single-use-case spec.
pub fn worst_case_soc(soc: &SocSpec) -> SocSpec {
    let mut wc = SocSpec::new(format!("wc-{}", soc.name()));
    wc.add_use_case(worst_case_use_case(soc));
    wc
}

/// Runs the WC design flow: smallest mesh that maps the worst-case
/// use-case.
///
/// # Errors
///
/// Same as [`design_smallest_mesh`]; with many diverse use-cases the
/// typical outcome is [`MapError::NoFeasibleSize`] or
/// [`MapError::FlowExceedsLinkCapacity`] — the over-specification the
/// paper reports.
pub fn design_worst_case(
    soc: &SocSpec,
    spec: TdmaSpec,
    options: &MapperOptions,
    max_switches: usize,
) -> Result<MappingSolution, MapError> {
    let wc = worst_case_soc(soc);
    design_smallest_mesh(
        &wc,
        &UseCaseGroups::singletons(1),
        spec,
        options,
        max_switches,
    )
}

/// Aggregate demand of the worst-case use-case, a quick gauge of
/// over-specification: the ratio of this to any single use-case's demand
/// grows with use-case count and diversity.
pub fn worst_case_total_bandwidth(soc: &SocSpec) -> Bandwidth {
    worst_case_use_case(soc).total_bandwidth()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::units::Latency;
    use noc_usecase::spec::CoreId;

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    fn bw(m: u64) -> Bandwidth {
        Bandwidth::from_mbps(m)
    }

    fn diverse_soc(use_cases: u32) -> SocSpec {
        // Each use-case stresses a different pair heavily: the WC union
        // accumulates all of them.
        let mut soc = SocSpec::new("diverse");
        for u in 0..use_cases {
            let a = c(2 * u);
            let b = c(2 * u + 1);
            soc.add_use_case(
                UseCaseBuilder::new(format!("u{u}"))
                    .flow(a, b, bw(800), Latency::UNCONSTRAINED)
                    .unwrap()
                    .flow(b, a, bw(400), Latency::UNCONSTRAINED)
                    .unwrap()
                    .build(),
            );
        }
        soc
    }

    #[test]
    fn wc_accumulates_all_pairs() {
        let soc = diverse_soc(5);
        let wc = worst_case_use_case(&soc);
        assert_eq!(wc.flow_count(), 10);
        assert_eq!(worst_case_total_bandwidth(&soc), bw(5 * 1200));
    }

    #[test]
    fn wc_takes_max_bw_min_lat() {
        let mut soc = SocSpec::new("s");
        soc.add_use_case(
            UseCaseBuilder::new("a")
                .flow(c(0), c(1), bw(10), Latency::from_us(9))
                .unwrap()
                .build(),
        );
        soc.add_use_case(
            UseCaseBuilder::new("b")
                .flow(c(0), c(1), bw(90), Latency::from_us(3))
                .unwrap()
                .build(),
        );
        let wc = worst_case_use_case(&soc);
        let f = wc.flow_between(c(0), c(1)).unwrap();
        assert_eq!(f.bandwidth(), bw(90));
        assert_eq!(f.latency(), Latency::from_us(3));
    }

    #[test]
    fn wc_design_needs_more_switches_than_multi_use_case() {
        let soc = diverse_soc(6); // 12 cores, per-UC demand tiny, union heavy
        let spec = TdmaSpec::paper_default();
        let opts = MapperOptions::default();
        let ours =
            design_smallest_mesh(&soc, &UseCaseGroups::singletons(6), spec, &opts, 400).unwrap();
        let wc = design_worst_case(&soc, spec, &opts, 400).unwrap();
        assert!(
            wc.switch_count() >= ours.switch_count(),
            "WC ({}) should not beat multi-use-case ({})",
            wc.switch_count(),
            ours.switch_count()
        );
    }

    #[test]
    fn wc_of_single_use_case_matches_it() {
        let mut soc = SocSpec::new("one");
        soc.add_use_case(
            UseCaseBuilder::new("a")
                .flow(c(0), c(1), bw(100), Latency::from_us(2))
                .unwrap()
                .flow(c(1), c(2), bw(50), Latency::UNCONSTRAINED)
                .unwrap()
                .build(),
        );
        let wc = worst_case_use_case(&soc);
        assert_eq!(wc.flow_count(), 2);
        for f in soc.use_cases()[0].flows() {
            let g = wc.flow_between(f.src(), f.dst()).unwrap();
            assert_eq!(g.bandwidth(), f.bandwidth());
            assert_eq!(g.latency(), f.latency());
        }
    }

    #[test]
    fn empty_spec_yields_empty_wc() {
        let soc = SocSpec::new("empty");
        let wc = worst_case_use_case(&soc);
        assert_eq!(wc.flow_count(), 0);
    }
}
