//! Simulated-annealing refinement of the core placement.
//!
//! "Once the initial mapping step is performed, the solution space can be
//! explored further by considering swapping of vertices using simulated
//! annealing or tabu search, as performed in \[19\]." — Section 5.
//!
//! A move swaps the NIs of two cores (or moves a core to a free NI); all
//! paths and slot tables are rebuilt with the placement fixed. Moves that
//! lower the bandwidth-weighted hop cost ([`MappingSolution::comm_cost`])
//! are always accepted; uphill moves are accepted with the Metropolis
//! probability under a geometrically cooling temperature.
//!
//! With [`AnnealConfig::chains`] > 1, that search runs as several
//! **independent chains in parallel** (via [`noc_par`]), each seeded
//! deterministically from `(seed, chain index)`; the winner is picked by
//! `(cost, chain index)`, so results are bit-identical at any thread
//! count and `chains = 1` reproduces the historical single-chain walk
//! exactly.
//!
//! # Delta evaluation
//!
//! A swap move relocates at most two cores, and with placement fixed
//! each group's configuration is a pure function of its own cores' NIs
//! (see [`reroute_preset_groups`]). The inner loop therefore re-routes
//! **only the groups whose traffic touches a moved core**, splices the
//! rest from the current solution, and rolls a rejected move back in
//! place — no full re-route, no per-iteration clone of the core mapping
//! or re-collection of the core list. The walk (RNG stream, accepted
//! solutions, final winner) is byte-identical to the historical
//! full-re-route implementation; `tests/perf_counters.rs` pins the op
//! counts, the goldens pin the bytes.

use noc_usecase::spec::SocSpec;
use noc_usecase::UseCaseGroups;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::MapError;
use crate::mapper::{
    map_multi_usecase, reroute_preset_groups, reroute_preset_groups_cached, MapperOptions,
    Placement, RouteCache,
};
use crate::merge::merged_group_flows;
use crate::perf;
use crate::result::MappingSolution;

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    /// Number of proposed moves.
    pub iterations: usize,
    /// Initial temperature, in cost units (comm-cost is MB/s·hops, so a
    /// temperature of e.g. 500 accepts early uphill moves of a few
    /// hundred MB/s·hops).
    pub initial_temperature: f64,
    /// Geometric cooling factor per iteration, in `(0, 1)`.
    pub cooling: f64,
    /// RNG seed (annealing is deterministic given the seed).
    pub seed: u64,
    /// Number of independent chains to run (in parallel when the
    /// effective `noc-par` thread count allows). Chain `i` walks with
    /// seed `chain_seed(seed, i)` where chain 0 reuses `seed` itself, so
    /// the default of 1 is exactly the historical behavior.
    pub chains: usize,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            iterations: 200,
            initial_temperature: 500.0,
            cooling: 0.97,
            seed: 1,
            chains: 1,
        }
    }
}

/// The RNG seed of chain `chain` under base seed `seed`: chain 0 keeps
/// the base seed, later chains stride by the 64-bit golden ratio (the
/// splitmix64 increment), which cannot collide for chain counts below
/// 2^64.
pub fn chain_seed(seed: u64, chain: usize) -> u64 {
    seed.wrapping_add((chain as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Refines `initial` by annealing over core swaps, returning the best
/// verified solution found (which is `initial` itself if no move helps).
///
/// # Errors
///
/// Propagates mapper errors only for the *initial* re-route sanity pass;
/// failed candidate moves are simply rejected.
pub fn refine(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    options: &MapperOptions,
    initial: &MappingSolution,
    config: &AnnealConfig,
) -> Result<MappingSolution, MapError> {
    refine_impl(soc, groups, options, initial, config, false)
}

/// [`refine`] with the route cache enabled: each chain owns a
/// [`RouteCache`] seeded from the starting solution, so a move whose
/// affected groups revisit an already-seen placement signature splices
/// the memoized configs instead of re-routing (`route_cache_hits` /
/// `route_cache_misses` in [`crate::perf`]). The walk — RNG stream,
/// accepted solutions, final winner — is **byte-identical** to
/// [`refine`]; only the op profile changes. Pinned by
/// `tests/perf_counters.rs`.
///
/// # Errors
///
/// As [`refine`].
pub fn refine_cached(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    options: &MapperOptions,
    initial: &MappingSolution,
    config: &AnnealConfig,
) -> Result<MappingSolution, MapError> {
    refine_impl(soc, groups, options, initial, config, true)
}

fn refine_impl(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    options: &MapperOptions,
    initial: &MappingSolution,
    config: &AnnealConfig,
    use_cache: bool,
) -> Result<MappingSolution, MapError> {
    assert!(
        config.cooling > 0.0 && config.cooling < 1.0,
        "cooling must be in (0, 1)"
    );
    let topo = initial.topology().clone();
    let spec = initial.spec();

    let reroute = |placement: Placement| {
        map_multi_usecase(
            soc,
            groups,
            &topo,
            spec,
            &MapperOptions {
                placement,
                ..options.clone()
            },
        )
    };

    // Re-route the initial placement so current/best are produced by the
    // same pipeline as every candidate (comparable costs).
    let rerouted_start = reroute(Placement::Preset(initial.core_mapping().clone()))?;
    let initial_wins = initial.comm_cost() <= rerouted_start.comm_cost();
    let start = if initial_wins {
        initial.clone()
    } else {
        rerouted_start.clone()
    };
    let nis = topo.nis().to_vec();

    // Hoisted out of the walk: the core list never changes (moves only
    // re-place existing cores), and neither does which groups a core's
    // traffic touches.
    let cores: Vec<_> = start.core_mapping().keys().copied().collect();
    let group_count = groups.group_count();
    let merged = merged_group_flows(soc, groups);
    let groups_of = |core| -> Vec<usize> {
        (0..group_count)
            .filter(|&g| merged[g].keys().any(|&(s, d)| s == core || d == core))
            .collect()
    };
    let core_groups: std::collections::BTreeMap<_, Vec<usize>> =
        cores.iter().map(|&c| (c, groups_of(c))).collect();

    let run_chain = |chain: usize| -> MappingSolution {
        let span = noc_obs::span("anneal-chain");
        span.attr("chain", chain);
        span.attr("iterations", config.iterations as u64);
        let mut moves: u64 = 0;
        let mut accepts: u64 = 0;
        let mut rng = SmallRng::seed_from_u64(chain_seed(config.seed, chain));
        // Per-chain cache (schedule-independent hit/miss counts), seeded
        // with the preset-pure start so moves revisiting the starting
        // signature of a group hit immediately.
        let mut cache = use_cache.then(|| {
            let mut cache = RouteCache::new(&merged);
            cache.seed(&rerouted_start);
            cache
        });
        let mut current = start.clone();
        // The splice base for delta re-routes must be a solution whose
        // per-group configs equal a full preset re-route of its own
        // placement. `current` qualifies — except when it starts as
        // `initial` (whose configs the unified placement pass produced),
        // in which case `shadow` carries the preset-pure twin until the
        // first accepted move makes `current` preset-pure itself.
        let mut shadow: Option<MappingSolution> = initial_wins.then(|| rerouted_start.clone());
        let mut best = current.clone();
        let mut mapping = current.core_mapping().clone();
        let mut temperature = config.initial_temperature;

        for _ in 0..config.iterations {
            if cores.is_empty() || nis.len() < 2 {
                break;
            }
            // Propose: swap two cores, or move one core to a free NI.
            let a = cores[rng.gen_range(0..cores.len())];
            let ni_a = mapping[&a];
            let target_ni = nis[rng.gen_range(0..nis.len())];
            if target_ni == ni_a {
                temperature *= config.cooling;
                continue;
            }
            perf::inc(&perf::ANNEAL_MOVES);
            moves += 1;
            let b = cores.iter().copied().find(|c| mapping[c] == target_ni);
            if let Some(b) = b {
                mapping.insert(b, ni_a);
            }
            mapping.insert(a, target_ni);
            let mut affected = vec![false; group_count];
            for &g in core_groups[&a]
                .iter()
                .chain(b.iter().flat_map(|b| &core_groups[b]))
            {
                affected[g] = true;
            }

            let mut accepted = false;
            let base = shadow.as_ref().unwrap_or(&current);
            let candidate = match cache.as_mut() {
                Some(cache) => reroute_preset_groups_cached(
                    soc, groups, base, options, &mapping, &affected, &merged, cache,
                ),
                None => {
                    reroute_preset_groups(soc, groups, base, options, &mapping, &affected, &merged)
                }
            };
            if let Ok(candidate) = candidate {
                let delta = candidate.comm_cost() - current.comm_cost();
                let accept = delta <= 0.0
                    || rng.gen_bool((-delta / temperature.max(1e-9)).exp().clamp(0.0, 1.0));
                if accept {
                    perf::inc(&perf::ANNEAL_ACCEPTS);
                    accepts += 1;
                    accepted = true;
                    shadow = None;
                    current = candidate;
                    if current.comm_cost() < best.comm_cost() {
                        best = current.clone();
                    }
                }
            }
            if !accepted {
                // Roll the rejected move back in place.
                mapping.insert(a, ni_a);
                if let Some(b) = b {
                    mapping.insert(b, target_ni);
                }
            }
            temperature *= config.cooling;
        }
        // Per-chain RNG seeding makes these deterministic at any width.
        span.attr("moves", moves);
        span.attr("accepts", accepts);
        span.attr("temperature", temperature);
        best
    };

    // Independent chains; the winner is picked by (exact integer cost,
    // chain index), so ties always resolve to the earliest chain and the
    // result is identical at any thread count.
    let chains = config.chains.max(1);
    let bests = noc_par::par_map((0..chains).collect(), |_, chain| run_chain(chain));
    Ok(bests
        .into_iter()
        .min_by_key(MappingSolution::comm_cost_bytes_hops)
        .expect("at least one chain"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::Placement;
    use noc_tdma::TdmaSpec;
    use noc_topology::units::{Bandwidth, Latency};
    use noc_topology::MeshBuilder;
    use noc_usecase::spec::{CoreId, UseCaseBuilder};

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    fn chatty_soc() -> SocSpec {
        // Pairs (0,1) and (2,3) are hot; a placement that separates them
        // pays extra hops.
        let mut soc = SocSpec::new("chatty");
        soc.add_use_case(
            UseCaseBuilder::new("u")
                .flow(
                    c(0),
                    c(1),
                    Bandwidth::from_mbps(500),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .flow(
                    c(2),
                    c(3),
                    Bandwidth::from_mbps(500),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .flow(c(0), c(2), Bandwidth::from_mbps(5), Latency::UNCONSTRAINED)
                .unwrap()
                .build(),
        );
        soc
    }

    #[test]
    fn refine_never_worsens() {
        let soc = chatty_soc();
        let groups = UseCaseGroups::singletons(1);
        let opts = MapperOptions::default();
        let mesh = MeshBuilder::new(2, 2).nis_per_switch(1).build().unwrap();
        let initial = map_multi_usecase(
            &soc,
            &groups,
            mesh.topology(),
            TdmaSpec::paper_default(),
            &opts,
        )
        .unwrap();
        let refined = refine(&soc, &groups, &opts, &initial, &AnnealConfig::default()).unwrap();
        assert!(refined.comm_cost() <= initial.comm_cost());
        refined.verify(&soc, &groups).unwrap();
    }

    #[test]
    fn refine_fixes_bad_round_robin_placement() {
        let soc = chatty_soc();
        let groups = UseCaseGroups::singletons(1);
        let mesh = MeshBuilder::new(2, 2).nis_per_switch(1).build().unwrap();
        // Deliberately poor start: round-robin ignores affinity.
        let rr_opts = MapperOptions {
            placement: Placement::RoundRobin,
            ..Default::default()
        };
        let initial = map_multi_usecase(
            &soc,
            &groups,
            mesh.topology(),
            TdmaSpec::paper_default(),
            &rr_opts,
        )
        .unwrap();
        let opts = MapperOptions::default();
        let cfg = AnnealConfig {
            iterations: 300,
            ..Default::default()
        };
        let refined = refine(&soc, &groups, &opts, &initial, &cfg).unwrap();
        assert!(
            refined.comm_cost() <= initial.comm_cost(),
            "refined {} vs initial {}",
            refined.comm_cost(),
            initial.comm_cost()
        );
        refined.verify(&soc, &groups).unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let soc = chatty_soc();
        let groups = UseCaseGroups::singletons(1);
        let opts = MapperOptions::default();
        let mesh = MeshBuilder::new(2, 2).nis_per_switch(1).build().unwrap();
        let initial = map_multi_usecase(
            &soc,
            &groups,
            mesh.topology(),
            TdmaSpec::paper_default(),
            &opts,
        )
        .unwrap();
        let cfg = AnnealConfig {
            iterations: 50,
            seed: 9,
            ..Default::default()
        };
        let a = refine(&soc, &groups, &opts, &initial, &cfg).unwrap();
        let b = refine(&soc, &groups, &opts, &initial, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cooling")]
    fn cooling_validated() {
        let soc = chatty_soc();
        let groups = UseCaseGroups::singletons(1);
        let opts = MapperOptions::default();
        let mesh = MeshBuilder::new(2, 2).nis_per_switch(1).build().unwrap();
        let initial = map_multi_usecase(
            &soc,
            &groups,
            mesh.topology(),
            TdmaSpec::paper_default(),
            &opts,
        )
        .unwrap();
        let cfg = AnnealConfig {
            cooling: 1.5,
            ..Default::default()
        };
        let _ = refine(&soc, &groups, &opts, &initial, &cfg);
    }
}
