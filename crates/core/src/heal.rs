//! Self-healing remap: repair a running mapping around failed links
//! and NIs without re-solving from scratch.
//!
//! The paper's configurations are computed once and reused across
//! use-cases; a deployed NoC additionally has to survive the hardware
//! under it failing. [`heal`] is the repair entry point behind the
//! online service's `fault` verb: given a verified solution and the
//! fault set carried in `MapperOptions::faults`, it
//!
//! 1. **re-places stranded cores** — cores seated on failed NIs are
//!    moved to free surviving NIs (each to the NI minimizing its merged
//!    `bandwidth × surviving-hop-distance` to placed partners), up to
//!    the [`RemapConfig`] move budget;
//! 2. **re-routes only the affected groups** — groups whose configured
//!    routes cross a failed resource, or whose traffic touches a moved
//!    core, go through [`reroute_preset_groups_cached`]; every other
//!    group's configuration is spliced verbatim, so a heal costs a few
//!    group routes, never a full map;
//! 3. **degrades instead of failing** — a group that cannot be
//!    re-routed (or whose core cannot be re-seated within budget) is
//!    torn down to an empty configuration and reported in
//!    [`HealOutcome::Degraded`], leaving every other group serviced.
//!
//! Everything is a pure function of its inputs (sorted candidate
//! orders, no RNG, no wall clock), so heal decisions are byte-identical
//! at any `noc-par` width — the `resilience` suite goldens pin this.

use std::collections::BTreeSet;

use noc_topology::NodeId;
use noc_usecase::spec::{CoreId, SocSpec};
use noc_usecase::UseCaseGroups;

use crate::error::MapError;
use crate::mapper::{reroute_preset_groups_cached, MapperOptions, RouteCache};
use crate::merge::merged_group_flows;
use crate::perf;
use crate::remap::RemapConfig;
use crate::result::{GroupConfig, MappingSolution};

/// The result of a [`heal`] pass. `Healed` and `Degraded` both carry a
/// usable solution; `Degraded` additionally names the groups whose
/// configurations were torn down (their use-cases stay admitted but
/// unserviced until a later heal or re-admission revives them).
#[derive(Debug, Clone)]
pub enum HealOutcome {
    /// Every group is serviced on the degraded topology.
    Healed {
        /// The repaired solution (no route crosses a failed resource).
        solution: MappingSolution,
        /// Groups re-routed around the faults.
        rerouted: u64,
        /// Stranded cores re-seated on surviving NIs (sorted).
        moved: Vec<CoreId>,
    },
    /// The repair completed, but some groups could not be serviced.
    Degraded {
        /// The repaired solution; degraded groups have empty configs
        /// and their stranded cores are unplaced.
        solution: MappingSolution,
        /// Groups torn down (ascending).
        groups: Vec<usize>,
        /// Groups re-routed around the faults.
        rerouted: u64,
        /// Stranded cores re-seated on surviving NIs (sorted).
        moved: Vec<CoreId>,
    },
    /// No repaired solution exists at all (malformed inputs or a
    /// capacity error no placement change can fix).
    Infeasible {
        /// The unrecoverable mapper error.
        error: MapError,
    },
}

impl HealOutcome {
    /// The repaired solution, when one exists.
    pub fn solution(&self) -> Option<&MappingSolution> {
        match self {
            HealOutcome::Healed { solution, .. } | HealOutcome::Degraded { solution, .. } => {
                Some(solution)
            }
            HealOutcome::Infeasible { .. } => None,
        }
    }

    /// `true` when every group is serviced.
    pub fn is_healed(&self) -> bool {
        matches!(self, HealOutcome::Healed { .. })
    }
}

/// Repairs `base` around the faults in `options.faults`.
///
/// `base` must be preset-pure (produced by the mapper or an earlier
/// heal/admission) for `groups`, and `remap.max_moved_cores` bounds how
/// many stranded cores may be re-seated. With an empty fault set the
/// base solution is returned unchanged as `Healed`.
///
/// Increments the `heals_attempted` / `heal_reroutes` /
/// `heal_evictions` counters in [`crate::perf`].
pub fn heal(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    base: &MappingSolution,
    options: &MapperOptions,
    remap: &RemapConfig,
) -> HealOutcome {
    perf::record_heal_attempt();
    let topo = base.topology();
    let faults = &options.faults;
    if faults.is_empty() {
        return HealOutcome::Healed {
            solution: base.clone(),
            rerouted: 0,
            moved: Vec::new(),
        };
    }
    let merged = merged_group_flows(soc, groups);
    let banned = faults.banned_links(topo);
    let degraded_view = topo.degraded(faults);

    // Phase 1: displacement re-placement of stranded cores. Iteration
    // is in core order (BTreeMap), the target is the free surviving NI
    // minimizing merged bandwidth × surviving-hop-distance to placed
    // partners — all deterministic.
    let mut placement = base.core_mapping().clone();
    let stranded: Vec<CoreId> = placement
        .iter()
        .filter(|&(_, &ni)| faults.ni_failed(ni))
        .map(|(&c, _)| c)
        .collect();
    let mut moved: Vec<CoreId> = Vec::new();
    if !stranded.is_empty() {
        let occupied: BTreeSet<NodeId> = placement.values().copied().collect();
        let mut free: Vec<NodeId> = topo
            .nis()
            .iter()
            .copied()
            .filter(|&ni| !occupied.contains(&ni) && !faults.ni_failed(ni))
            .collect();
        for &core in &stranded {
            if moved.len() >= remap.max_moved_cores || free.is_empty() {
                placement.remove(&core);
                continue;
            }
            let mut best: Option<(u128, usize)> = None;
            for (i, &ni) in free.iter().enumerate() {
                let mut cost: u128 = 0;
                for flows in &merged {
                    for (&(s, d), flow) in flows {
                        let partner = if s == core {
                            d
                        } else if d == core {
                            s
                        } else {
                            continue;
                        };
                        if let Some(&pni) = placement.get(&partner) {
                            let hops =
                                degraded_view.hop_distance(ni, pni).unwrap_or(usize::MAX) as u128;
                            cost = cost.saturating_add(
                                (flow.bandwidth.as_bytes_per_sec() as u128).saturating_mul(hops),
                            );
                        }
                    }
                }
                if best.is_none_or(|(bc, _)| cost < bc) {
                    best = Some((cost, i));
                }
            }
            let (_, i) = best.expect("free list is non-empty");
            placement.insert(core, free.remove(i));
            moved.push(core);
        }
    }

    // Groups with an unplaced flow endpoint are degraded outright:
    // cores that could not be re-seated above (removed from the
    // placement), and cores that were already unplaced in the base —
    // e.g. a use-case parked by an earlier degrade and not yet
    // re-admitted. Neither can be routed.
    let mut degraded_groups: BTreeSet<usize> = merged
        .iter()
        .enumerate()
        .filter(|(_, flows)| {
            flows
                .keys()
                .any(|&(s, d)| !placement.contains_key(&s) || !placement.contains_key(&d))
        })
        .map(|(g, _)| g)
        .collect();

    // Phase 2: delta re-route of the groups the faults actually touch.
    let moved_set: BTreeSet<CoreId> = moved.iter().copied().collect();
    let mut active: Vec<bool> = (0..merged.len())
        .map(|g| {
            if degraded_groups.contains(&g) {
                return false;
            }
            merged[g]
                .keys()
                .any(|&(s, d)| moved_set.contains(&s) || moved_set.contains(&d))
                || base.group_configs()[g]
                    .iter()
                    .any(|(_, route)| route.path.iter().any(|l| banned.contains(l)))
        })
        .collect();

    let solution = if active.iter().any(|&a| a) {
        // An unroutable group degrades just that group; the retry loop
        // is deterministic because `try_par_map` reports the
        // smallest-index error, and bounded by the group count. The
        // cache keeps groups routed in an earlier iteration from being
        // re-routed in the next.
        let mut cache = RouteCache::new(&merged);
        loop {
            match reroute_preset_groups_cached(
                soc, groups, base, options, &placement, &active, &merged, &mut cache,
            ) {
                Ok(sol) => break sol,
                Err(MapError::Unroutable { group, .. }) if active[group] => {
                    active[group] = false;
                    degraded_groups.insert(group);
                }
                Err(error) => return HealOutcome::Infeasible { error },
            }
        }
    } else {
        MappingSolution::new(
            topo.clone(),
            base.label(),
            base.spec(),
            placement.clone(),
            base.group_configs().to_vec(),
        )
    };
    let rerouted = active.iter().filter(|&&a| a).count() as u64;
    perf::record_heal_reroutes(rerouted);
    perf::record_heal_evictions(moved.len() as u64);

    if degraded_groups.is_empty() {
        return HealOutcome::Healed {
            solution,
            rerouted,
            moved,
        };
    }
    // Tear degraded groups down to empty configs so no surviving route
    // references a failed resource.
    let mut configs = solution.group_configs().to_vec();
    for &g in &degraded_groups {
        configs[g] = GroupConfig::new();
    }
    let solution = MappingSolution::new(
        solution.topology().clone(),
        solution.label(),
        solution.spec(),
        solution.core_mapping().clone(),
        configs,
    );
    HealOutcome::Degraded {
        solution,
        groups: degraded_groups.into_iter().collect(),
        rerouted,
        moved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{map_multi_usecase, Placement};
    use noc_tdma::TdmaSpec;
    use noc_topology::units::{Bandwidth, Latency};
    use noc_topology::{FaultSet, MeshBuilder, Topology};
    use noc_usecase::spec::UseCaseBuilder;

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    fn uc(name: &str, flows: &[(u32, u32, u64)]) -> noc_usecase::spec::UseCase {
        let mut b = UseCaseBuilder::new(name);
        for &(s, d, bw) in flows {
            b = b
                .flow(c(s), c(d), Bandwidth::from_mbps(bw), Latency::UNCONSTRAINED)
                .unwrap();
        }
        b.build()
    }

    /// A preset-pure base solution on the given topology.
    fn preset_base(
        soc: &SocSpec,
        groups: &UseCaseGroups,
        topo: &Topology,
    ) -> (MappingSolution, MapperOptions) {
        let options = MapperOptions::default();
        let greedy =
            map_multi_usecase(soc, groups, topo, TdmaSpec::paper_default(), &options).unwrap();
        let preset = map_multi_usecase(
            soc,
            groups,
            topo,
            TdmaSpec::paper_default(),
            &MapperOptions {
                placement: Placement::Preset(greedy.core_mapping().clone()),
                ..options.clone()
            },
        )
        .unwrap();
        (preset, options)
    }

    #[test]
    fn empty_fault_set_returns_base_unchanged() {
        let topo = MeshBuilder::new(2, 2)
            .nis_per_switch(1)
            .build()
            .unwrap()
            .into_topology();
        let mut soc = SocSpec::new("h");
        soc.add_use_case(uc("u0", &[(0, 1, 200)]));
        let groups = UseCaseGroups::singletons(1);
        let (base, options) = preset_base(&soc, &groups, &topo);
        match heal(&soc, &groups, &base, &options, &RemapConfig::default()) {
            HealOutcome::Healed {
                solution,
                rerouted,
                moved,
            } => {
                assert_eq!(solution, base);
                assert_eq!(rerouted, 0);
                assert!(moved.is_empty());
            }
            other => panic!("expected healed, got {other:?}"),
        }
    }

    #[test]
    fn failed_link_reroutes_only_crossing_groups() {
        let topo = MeshBuilder::new(2, 2)
            .nis_per_switch(1)
            .build()
            .unwrap()
            .into_topology();
        let mut soc = SocSpec::new("h");
        soc.add_use_case(uc("u0", &[(0, 1, 200)]));
        soc.add_use_case(uc("u1", &[(2, 3, 150)]));
        let groups = UseCaseGroups::singletons(2);
        let (base, options) = preset_base(&soc, &groups, &topo);

        // Fail a switch-to-switch link of u0's route (the NI attach
        // links have no alternative); u1's config must be untouched.
        let failed = base.group_configs()[0]
            .route(c(0), c(1))
            .unwrap()
            .path
            .iter()
            .copied()
            .find(|&l| {
                let link = topo.link(l);
                topo.node(link.src()).is_switch() && topo.node(link.dst()).is_switch()
            })
            .expect("route crosses switches");
        let mut faults = FaultSet::default();
        faults.fail_link(failed);
        let options = MapperOptions { faults, ..options };
        match heal(&soc, &groups, &base, &options, &RemapConfig::default()) {
            HealOutcome::Healed {
                solution,
                rerouted,
                moved,
            } => {
                assert_eq!(rerouted, 1);
                assert!(moved.is_empty());
                solution.verify(&soc, &groups).unwrap();
                // The failed link is gone from every route.
                for config in solution.group_configs() {
                    for (_, route) in config.iter() {
                        assert!(!route.path.contains(&failed));
                    }
                }
                // u1's config spliced verbatim.
                assert_eq!(solution.group_configs()[1], base.group_configs()[1]);
            }
            other => panic!("expected healed, got {other:?}"),
        }
    }

    #[test]
    fn stranded_core_is_moved_within_budget_and_degraded_without() {
        // 2x2 mesh with 2 NIs per switch: 4 cores leave free NIs to
        // re-seat a stranded core.
        let topo = MeshBuilder::new(2, 2)
            .nis_per_switch(2)
            .build()
            .unwrap()
            .into_topology();
        let mut soc = SocSpec::new("h");
        soc.add_use_case(uc("u0", &[(0, 1, 200)]));
        soc.add_use_case(uc("u1", &[(2, 3, 150)]));
        let groups = UseCaseGroups::singletons(2);
        let (base, options) = preset_base(&soc, &groups, &topo);

        let victim_ni = base.ni_of(c(0)).unwrap();
        let mut faults = FaultSet::default();
        faults.fail_ni(victim_ni);
        let options = MapperOptions { faults, ..options };

        // Budget 0: the stranded core cannot move; only its groups die.
        let zero = RemapConfig {
            max_moved_cores: 0,
            ..Default::default()
        };
        match heal(&soc, &groups, &base, &options, &zero) {
            HealOutcome::Degraded {
                solution,
                groups: dead,
                moved,
                ..
            } => {
                assert_eq!(dead, vec![0]);
                assert!(moved.is_empty());
                assert!(solution.group_configs()[0].is_empty());
                assert!(solution.ni_of(c(0)).is_none());
                // u1 still fully serviced.
                assert_eq!(solution.group_configs()[1], base.group_configs()[1]);
            }
            other => panic!("expected degraded, got {other:?}"),
        }

        // With budget: the core is re-seated and everything heals.
        match heal(&soc, &groups, &base, &options, &RemapConfig::default()) {
            HealOutcome::Healed {
                solution, moved, ..
            } => {
                assert_eq!(moved, vec![c(0)]);
                let new_ni = solution.ni_of(c(0)).unwrap();
                assert_ne!(new_ni, victim_ni);
                assert!(!options.faults.ni_failed(new_ni));
                solution.verify(&soc, &groups).unwrap();
            }
            other => panic!("expected healed, got {other:?}"),
        }
    }

    #[test]
    fn unroutable_group_degrades_instead_of_failing_the_heal() {
        // 1x2 mesh: exactly one link each way between the switches. Two
        // light groups survive a failed inter-switch link only if heal
        // degrades per group rather than failing outright: after the
        // failure there is no s0 -> s1 path at all.
        let topo = MeshBuilder::new(1, 2)
            .nis_per_switch(1)
            .build()
            .unwrap()
            .into_topology();
        let mut soc = SocSpec::new("h");
        soc.add_use_case(uc("u0", &[(0, 1, 100)]));
        let groups = UseCaseGroups::singletons(1);
        let (base, options) = preset_base(&soc, &groups, &topo);

        // Fail every link the configured route uses *and* its reverse
        // companions, so no alternative s->d path survives.
        let mut faults = FaultSet::default();
        for (_, route) in base.group_configs()[0].iter() {
            for &l in &route.path {
                faults.fail_link(l);
                let link = topo.link(l);
                if let Some(rev) = topo.link_between(link.dst(), link.src()) {
                    faults.fail_link(rev);
                }
            }
        }
        let options = MapperOptions { faults, ..options };
        match heal(&soc, &groups, &base, &options, &RemapConfig::default()) {
            HealOutcome::Degraded {
                solution,
                groups: dead,
                ..
            } => {
                assert_eq!(dead, vec![0]);
                assert!(solution.group_configs()[0].is_empty());
            }
            other => panic!("expected degraded, got {other:?}"),
        }
    }
}
