//! Incremental use-case admission: place one new (or re-specified)
//! group into an existing mapping without re-solving from scratch.
//!
//! This is the core entry point behind the online mapping service
//! (`noc-service`, ROADMAP item 1). A batch flow maps all groups at
//! once; a long-running daemon instead receives use-cases one at a time
//! and must keep the network mapped with **bounded reconfiguration
//! cost**. [`admit_group`] does exactly that:
//!
//! 1. **Greedy fast path** — place the group's unplaced cores on free
//!    NIs (each core on the NI minimizing its merged
//!    `bandwidth × hop-distance` to already-placed partners), then
//!    route only the new group via [`reroute_preset_groups_cached`] —
//!    every other group's configuration is spliced verbatim from the
//!    running solution, so an uncontended admission costs one group
//!    route, not a full map.
//! 2. **Displacement on conflict** — when routing fails, blocking
//!    placements are displaced and re-placed instead of re-solving: the
//!    failing flow's endpoint is moved to another NI (swapping with the
//!    occupant, who is evicted onto the vacated NI), and only the groups
//!    touching a moved core are re-routed. Each *pre-existing* core
//!    moved counts against the caller's eviction budget — the
//!    [`RemapConfig`](crate::remap::RemapConfig) move bound — so a
//!    stream of admissions can never silently degenerate into a global
//!    re-map.
//! 3. **Reject** — NI exhaustion, a flow exceeding whole-table link
//!    capacity, or budget/candidate exhaustion reject the request and
//!    leave the running solution untouched.
//!
//! Everything here is a pure function of its inputs — candidate orders
//! are sorted, no RNG, no wall clock — so admission decisions are
//! byte-identical at any `noc-par` width (the service replay goldens
//! pin this at 1/2/8 workers).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use noc_topology::NodeId;
use noc_usecase::spec::{CoreId, SocSpec};
use noc_usecase::UseCaseGroups;

use crate::error::MapError;
use crate::mapper::{reroute_preset_groups_cached, MapperOptions, RouteCache};
use crate::merge::MergedFlow;
use crate::perf;
use crate::result::MappingSolution;

/// Deterministic cap on displacement repair iterations per admission
/// (each iteration routes one candidate placement). The eviction budget
/// bounds *pre-existing* cores moved; this bounds total work when the
/// repair only shuffles the new group's own (free-to-move) cores.
pub const ADMIT_REPAIR_ATTEMPTS: usize = 24;

/// A successful admission: the updated solution plus its
/// reconfiguration accounting.
#[derive(Debug, Clone)]
pub struct Admission {
    /// The running solution with the group admitted.
    pub solution: MappingSolution,
    /// Cores newly placed for this group (sorted; cores the group shares
    /// with already-admitted use-cases are not re-placed and not listed).
    pub placed: Vec<CoreId>,
    /// Pre-existing cores displaced onto a different NI (sorted). The
    /// admission's reconfiguration cost is `moved.len()`.
    pub moved: Vec<CoreId>,
    /// `moved.len()` as the budgeted eviction count — always `<=` the
    /// budget passed to [`admit_group`].
    pub evictions: u64,
}

/// Why an admission was rejected. The running solution is untouched.
#[derive(Debug, Clone)]
pub enum RejectReason {
    /// More unplaced cores than free NIs — no placement exists.
    NisExhausted {
        /// Unplaced cores the group needs to seat.
        needed: usize,
        /// Free NIs available.
        free: usize,
    },
    /// No feasible routing found within the eviction budget and repair
    /// attempt cap; carries the last mapper error seen.
    Unroutable(MapError),
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::NisExhausted { needed, free } => {
                write!(f, "nis-exhausted needed={needed} free={free}")
            }
            RejectReason::Unroutable(e) => write!(f, "unroutable: {e}"),
        }
    }
}

/// Total merged demand per core of one group (bytes/s over every pair it
/// touches) — the deterministic weight ordering displacement uses.
fn group_core_weights(flows: &BTreeMap<(CoreId, CoreId), MergedFlow>) -> BTreeMap<CoreId, u128> {
    let mut weights: BTreeMap<CoreId, u128> = BTreeMap::new();
    for (&(src, dst), flow) in flows {
        let bw = flow.bandwidth.as_bytes_per_sec() as u128;
        *weights.entry(src).or_default() += bw;
        *weights.entry(dst).or_default() += bw;
    }
    weights
}

/// The groups (other than `group`) whose merged traffic touches any core
/// in `relocated` — exactly the set a candidate placement must re-route.
fn affected_groups(
    merged: &[BTreeMap<(CoreId, CoreId), MergedFlow>],
    group: usize,
    relocated: &BTreeSet<CoreId>,
) -> Vec<bool> {
    merged
        .iter()
        .enumerate()
        .map(|(g, flows)| {
            g == group
                || flows
                    .keys()
                    .any(|&(s, d)| relocated.contains(&s) || relocated.contains(&d))
        })
        .collect()
}

/// Admits group `group` into the running solution `base`.
///
/// `base` must carry one (preset-pure) config per group of `groups`,
/// with a placeholder (e.g. empty) config at index `group` — the
/// admitted group is always re-routed, so the placeholder is never
/// spliced. `base.core_mapping()` must place every core of every *other*
/// group; cores of the admitted group that already appear there (shared
/// with admitted use-cases, or a modify keeping its placement) are kept,
/// the rest are placed greedily. `merged` must be
/// `merged_group_flows(soc, groups)` and `cache` a [`RouteCache`] built
/// for the same partition — hits from earlier admissions are spliced
/// instead of re-routed.
///
/// `budget` bounds the pre-existing cores the displacement repair may
/// move; the returned [`Admission::evictions`] never exceeds it.
///
/// Increments the `admissions` / `rejections` /
/// `displacement_evictions` counters in [`crate::perf`].
///
/// # Errors
///
/// [`RejectReason`] when no feasible admission exists within the budget;
/// `base` and the caller's running state are unaffected.
///
/// # Panics
///
/// When `group` is out of range, or `base`/`merged`/`cache` disagree
/// with `groups` on the group count (as
/// [`reroute_preset_groups`](crate::reroute_preset_groups)).
#[allow(clippy::too_many_arguments)]
pub fn admit_group(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    base: &MappingSolution,
    options: &MapperOptions,
    group: usize,
    budget: u64,
    merged: &[BTreeMap<(CoreId, CoreId), MergedFlow>],
    cache: &mut RouteCache,
) -> Result<Admission, RejectReason> {
    assert!(group < groups.group_count(), "admitted group in range");
    let topo = base.topology();
    let flows = &merged[group];
    let weights = group_core_weights(flows);
    let group_cores: BTreeSet<CoreId> = flows.keys().flat_map(|&(s, d)| [s, d]).collect();

    // Unplaced cores, heaviest first (deterministic tie-break on id).
    let mut new_cores: Vec<CoreId> = group_cores
        .iter()
        .copied()
        .filter(|c| !base.core_mapping().contains_key(c))
        .collect();
    new_cores.sort_by_key(|&c| (Reverse(weights.get(&c).copied().unwrap_or(0)), c));

    // Failed NIs are never placement targets, and partner distances are
    // measured over the surviving links only (with an empty fault set
    // both reduce to the plain topology).
    let degraded = topo.degraded(&options.faults);
    let occupied: BTreeSet<NodeId> = base.core_mapping().values().copied().collect();
    let mut free: Vec<NodeId> = topo
        .nis()
        .iter()
        .copied()
        .filter(|&ni| !occupied.contains(&ni) && !options.faults.ni_failed(ni))
        .collect();
    if new_cores.len() > free.len() {
        perf::record_rejection();
        return Err(RejectReason::NisExhausted {
            needed: new_cores.len(),
            free: free.len(),
        });
    }

    // Greedy fast path: seat each unplaced core on the free NI minimizing
    // its merged bandwidth × hop-distance to already-placed partners
    // (first free NI when no partner is placed yet — `nis()` order).
    let mut placement = base.core_mapping().clone();
    for &core in &new_cores {
        let mut best: Option<(u128, usize)> = None;
        for (i, &ni) in free.iter().enumerate() {
            let mut cost: u128 = 0;
            for (&(s, d), flow) in flows {
                let partner = if s == core {
                    d
                } else if d == core {
                    s
                } else {
                    continue;
                };
                if let Some(&pni) = placement.get(&partner) {
                    let hops = degraded.hop_distance(ni, pni).unwrap_or(usize::MAX) as u128;
                    cost += flow.bandwidth.as_bytes_per_sec() as u128 * hops;
                }
            }
            if best.is_none_or(|(bc, _)| cost < bc) {
                best = Some((cost, i));
            }
        }
        let (_, i) = best.expect("free NIs checked above");
        placement.insert(core, free.remove(i));
    }

    let route = |placement: &BTreeMap<CoreId, NodeId>,
                 relocated: &BTreeSet<CoreId>,
                 cache: &mut RouteCache| {
        let affected = affected_groups(merged, group, relocated);
        reroute_preset_groups_cached(
            soc, groups, base, options, placement, &affected, merged, cache,
        )
    };

    // Displacement repair: on an unroutable pair, move one of its cores
    // to another NI (swapping with the occupant, evicted onto the
    // vacated NI) and retry. Moves are kept across iterations — the
    // repair displaces its way out of a conflict rather than restarting
    // — and every accepted sequence stays within the eviction budget.
    let mut relocated: BTreeSet<CoreId> = new_cores.iter().copied().collect();
    let mut tried: BTreeSet<(CoreId, NodeId)> = BTreeSet::new();
    let mut last_err = None;
    for _ in 0..ADMIT_REPAIR_ATTEMPTS {
        match route(&placement, &relocated, cache) {
            Ok(solution) => {
                let moved: Vec<CoreId> = relocated
                    .iter()
                    .copied()
                    .filter(|c| {
                        base.core_mapping()
                            .get(c)
                            .is_some_and(|&ni| placement[c] != ni)
                    })
                    .collect();
                let evictions = moved.len() as u64;
                perf::record_admission();
                perf::record_displacement_evictions(evictions);
                return Ok(Admission {
                    solution,
                    placed: {
                        let mut placed = new_cores.clone();
                        placed.sort();
                        placed
                    },
                    moved,
                    evictions,
                });
            }
            Err(e @ MapError::Unroutable { .. }) => {
                let (src, dst) = match e {
                    MapError::Unroutable { src, dst, .. } => (src, dst),
                    _ => unreachable!(),
                };
                last_err = Some(e);
                // Move the blocked flow's heavier endpoint first; only
                // cores of the admitted group are candidate movers.
                let mut movers: Vec<CoreId> = [src, dst]
                    .into_iter()
                    .filter(|c| group_cores.contains(c))
                    .collect();
                movers.sort_by_key(|&c| (Reverse(weights.get(&c).copied().unwrap_or(0)), c));
                let Some(step) = displacement_step(
                    topo,
                    &options.faults,
                    base,
                    &placement,
                    &relocated,
                    &tried,
                    &movers,
                    budget,
                ) else {
                    break;
                };
                let (mover, target) = step;
                tried.insert((mover, target));
                let vacated = placement[&mover];
                if let Some(occupant) = placement
                    .iter()
                    .find(|&(_, &ni)| ni == target)
                    .map(|(&c, _)| c)
                {
                    placement.insert(occupant, vacated);
                    relocated.insert(occupant);
                }
                placement.insert(mover, target);
                relocated.insert(mover);
            }
            Err(e) => {
                // Capacity/size errors: no placement change can help.
                last_err = Some(e);
                break;
            }
        }
    }
    perf::record_rejection();
    Err(RejectReason::Unroutable(
        last_err.expect("repair loop only exits through a recorded error"),
    ))
}

/// Picks the next untried `(mover, target NI)` displacement within the
/// eviction budget: movers in the given order, targets by (surviving)
/// hop distance from the mover's current NI (nearer re-seats first),
/// then NI index. Failed NIs are never targets.
#[allow(clippy::too_many_arguments)]
fn displacement_step(
    topo: &noc_topology::Topology,
    faults: &noc_topology::FaultSet,
    base: &MappingSolution,
    placement: &BTreeMap<CoreId, NodeId>,
    relocated: &BTreeSet<CoreId>,
    tried: &BTreeSet<(CoreId, NodeId)>,
    movers: &[CoreId],
    budget: u64,
) -> Option<(CoreId, NodeId)> {
    let degraded = topo.degraded(faults);
    let ni_of_core = |ni: NodeId| placement.iter().find(|&(_, &n)| n == ni).map(|(&c, _)| c);
    // Evictions already spent: pre-existing cores whose NI has changed.
    let spent = relocated
        .iter()
        .filter(|c| {
            base.core_mapping()
                .get(c)
                .is_some_and(|&ni| placement[*c] != ni)
        })
        .count() as u64;
    for &mover in movers {
        let from = placement[&mover];
        let mut targets: Vec<NodeId> = topo
            .nis()
            .iter()
            .copied()
            .filter(|&ni| ni != from && !faults.ni_failed(ni))
            .collect();
        targets.sort_by_key(|&ni| (degraded.hop_distance(from, ni).unwrap_or(usize::MAX), ni));
        for target in targets {
            if tried.contains(&(mover, target)) {
                continue;
            }
            // Cost of this step: the mover (if pre-existing and not yet
            // displaced) plus the evicted occupant (same rule).
            let mut cost = 0u64;
            for c in [Some(mover), ni_of_core(target)].into_iter().flatten() {
                let pre_existing = base.core_mapping().contains_key(&c);
                let already_counted = pre_existing
                    && relocated.contains(&c)
                    && base.core_mapping()[&c] != placement[&c];
                if pre_existing && !already_counted {
                    cost += 1;
                }
            }
            if spent + cost <= budget {
                return Some((mover, target));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{map_multi_usecase, Placement};
    use crate::merge::merged_group_flows;
    use crate::result::GroupConfig;
    use crate::strategy::displacement_eviction_budget;
    use noc_tdma::TdmaSpec;
    use noc_topology::units::{Bandwidth, Latency};
    use noc_topology::MeshBuilder;
    use noc_usecase::spec::UseCaseBuilder;

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    fn uc(name: &str, flows: &[(u32, u32, u64)]) -> noc_usecase::spec::UseCase {
        let mut b = UseCaseBuilder::new(name);
        for &(s, d, bw) in flows {
            b = b
                .flow(c(s), c(d), Bandwidth::from_mbps(bw), Latency::UNCONSTRAINED)
                .unwrap();
        }
        b.build()
    }

    /// Maps `soc` fully (preset-pure), then returns the pieces an
    /// admission of one more use-case needs.
    fn running_state(
        soc: &SocSpec,
        topo: &noc_topology::Topology,
    ) -> (MappingSolution, MapperOptions) {
        let groups = UseCaseGroups::singletons(soc.use_case_count());
        let options = MapperOptions::default();
        let greedy =
            map_multi_usecase(soc, &groups, topo, TdmaSpec::paper_default(), &options).unwrap();
        let preset = map_multi_usecase(
            soc,
            &groups,
            topo,
            TdmaSpec::paper_default(),
            &MapperOptions {
                placement: Placement::Preset(greedy.core_mapping().clone()),
                ..options.clone()
            },
        )
        .unwrap();
        (preset, options)
    }

    /// Extends a preset-pure base solution with a placeholder config for
    /// the group being admitted.
    fn with_placeholder(base: &MappingSolution) -> MappingSolution {
        let mut configs = base.group_configs().to_vec();
        configs.push(GroupConfig::new());
        MappingSolution::new(
            base.topology().clone(),
            base.label(),
            base.spec(),
            base.core_mapping().clone(),
            configs,
        )
    }

    #[test]
    fn greedy_fast_path_admits_without_moving_existing_cores() {
        let topo = MeshBuilder::new(2, 2)
            .nis_per_switch(2)
            .build()
            .unwrap()
            .into_topology();
        let mut soc = SocSpec::new("svc");
        soc.add_use_case(uc("u0", &[(0, 1, 200)]));
        let (base, options) = running_state(&soc, &topo);

        soc.add_use_case(uc("u1", &[(2, 3, 100)]));
        let groups = UseCaseGroups::singletons(2);
        let merged = merged_group_flows(&soc, &groups);
        let mut cache = RouteCache::new(&merged);
        let base = with_placeholder(&base);
        let adm = admit_group(&soc, &groups, &base, &options, 1, 6, &merged, &mut cache).unwrap();
        assert_eq!(adm.placed, vec![c(2), c(3)]);
        assert!(adm.moved.is_empty());
        assert_eq!(adm.evictions, 0);
        // Existing cores kept their NIs.
        for (core, ni) in base.core_mapping() {
            assert_eq!(adm.solution.core_mapping()[core], *ni);
        }
        adm.solution.verify(&soc, &groups).unwrap();
    }

    #[test]
    fn exhausted_nis_reject_without_touching_state() {
        let topo = MeshBuilder::new(1, 1)
            .nis_per_switch(2)
            .build()
            .unwrap()
            .into_topology();
        let mut soc = SocSpec::new("svc");
        soc.add_use_case(uc("u0", &[(0, 1, 100)]));
        let (base, options) = running_state(&soc, &topo);

        soc.add_use_case(uc("u1", &[(2, 3, 100)]));
        let groups = UseCaseGroups::singletons(2);
        let merged = merged_group_flows(&soc, &groups);
        let mut cache = RouteCache::new(&merged);
        let base = with_placeholder(&base);
        let err =
            admit_group(&soc, &groups, &base, &options, 1, 6, &merged, &mut cache).unwrap_err();
        match err {
            RejectReason::NisExhausted { needed, free } => {
                assert_eq!((needed, free), (2, 0));
            }
            other => panic!("expected NI exhaustion, got {other}"),
        }
    }

    #[test]
    fn over_capacity_flow_rejects_via_unroutable() {
        let topo = MeshBuilder::new(2, 2)
            .nis_per_switch(1)
            .build()
            .unwrap()
            .into_topology();
        let mut soc = SocSpec::new("svc");
        soc.add_use_case(uc("u0", &[(0, 1, 100)]));
        let (base, options) = running_state(&soc, &topo);

        // paper_default link capacity is 2000 MB/s; 5000 cannot fit.
        soc.add_use_case(uc("u1", &[(2, 3, 5000)]));
        let groups = UseCaseGroups::singletons(2);
        let merged = merged_group_flows(&soc, &groups);
        let mut cache = RouteCache::new(&merged);
        let base = with_placeholder(&base);
        let err =
            admit_group(&soc, &groups, &base, &options, 1, 6, &merged, &mut cache).unwrap_err();
        assert!(
            matches!(
                err,
                RejectReason::Unroutable(MapError::FlowExceedsLinkCapacity { .. })
            ),
            "expected capacity rejection, got {err}"
        );
    }

    #[test]
    fn shared_core_admission_routes_against_existing_placement() {
        let topo = MeshBuilder::new(2, 2)
            .nis_per_switch(2)
            .build()
            .unwrap()
            .into_topology();
        let mut soc = SocSpec::new("svc");
        soc.add_use_case(uc("u0", &[(0, 1, 300)]));
        let (base, options) = running_state(&soc, &topo);

        // The new use-case reuses core 0, already placed by u0.
        soc.add_use_case(uc("u1", &[(0, 4, 150)]));
        let groups = UseCaseGroups::singletons(2);
        let merged = merged_group_flows(&soc, &groups);
        let mut cache = RouteCache::new(&merged);
        let base = with_placeholder(&base);
        let adm = admit_group(&soc, &groups, &base, &options, 1, 6, &merged, &mut cache).unwrap();
        // Only the genuinely new core is placed.
        assert_eq!(adm.placed, vec![c(4)]);
        assert_eq!(
            adm.solution.core_mapping()[&c(0)],
            base.core_mapping()[&c(0)]
        );
        adm.solution.verify(&soc, &groups).unwrap();
    }

    #[test]
    fn evictions_never_exceed_the_budget() {
        // Saturate a tiny torus so the admitted group must displace, then
        // pin that a zero budget rejects while a positive one may admit.
        let topo = MeshBuilder::new(2, 1)
            .nis_per_switch(2)
            .build()
            .unwrap()
            .into_topology();
        let mut soc = SocSpec::new("svc");
        // Three heavy pairs nearly fill both links.
        soc.add_use_case(uc("u0", &[(0, 1, 1800)]));
        soc.add_use_case(uc("u1", &[(2, 3, 1800)]));
        let (base, options) = running_state(&soc, &topo);

        soc.add_use_case(uc("u2", &[(0, 2, 1800)]));
        let groups = UseCaseGroups::singletons(3);
        let merged = merged_group_flows(&soc, &groups);
        let base = with_placeholder(&base);
        for budget in [0u64, 6] {
            let mut cache = RouteCache::new(&merged);
            match admit_group(
                &soc, &groups, &base, &options, 2, budget, &merged, &mut cache,
            ) {
                Ok(adm) => {
                    assert!(adm.evictions <= budget, "budget overrun: {}", adm.evictions);
                    adm.solution.verify(&soc, &groups).unwrap();
                }
                Err(RejectReason::Unroutable(_)) => {}
                Err(other) => panic!("unexpected rejection {other}"),
            }
        }
    }

    #[test]
    fn displacement_relocates_a_blocking_core_within_budget() {
        // Two switches, three NIs each. Pre-existing cores occupy all of
        // switch A plus one NI on switch B, so the two new cores of the
        // admitted group must land on switch B — but its heavy flows
        // target cores 0 and 1 on switch A, overcommitting the single
        // B->A link (2 x 1100 MB/s > 2000 MB/s). The only fix is to
        // relocate one destination core to switch B, which displacement
        // finds within the budget; a zero budget must reject.
        let topo = MeshBuilder::new(2, 1)
            .nis_per_switch(3)
            .build()
            .unwrap()
            .into_topology();
        let nis = topo.nis();
        // Partition NIs by switch: `a` holds nis[0]'s co-located NIs
        // (same-switch NIs are two hops apart), `b` the rest.
        let (a, b): (Vec<_>, Vec<_>) = nis
            .iter()
            .copied()
            .partition(|&n| topo.hop_distance(nis[0], n) <= Some(2));
        assert_eq!((a.len(), b.len()), (3, 3));

        let mut soc = SocSpec::new("svc");
        soc.add_use_case(uc("u0", &[(0, 1, 100)]));
        soc.add_use_case(uc("u1", &[(5, 6, 100)]));
        let crafted = BTreeMap::from([(c(0), a[0]), (c(1), a[1]), (c(5), a[2]), (c(6), b[0])]);
        let groups2 = UseCaseGroups::singletons(2);
        let options = MapperOptions::default();
        let base = map_multi_usecase(
            &soc,
            &groups2,
            &topo,
            TdmaSpec::paper_default(),
            &MapperOptions {
                placement: Placement::Preset(crafted),
                ..options.clone()
            },
        )
        .unwrap();

        soc.add_use_case(uc("u2", &[(2, 0, 1100), (3, 1, 1100)]));
        let groups = UseCaseGroups::singletons(3);
        let merged = merged_group_flows(&soc, &groups);
        let base = with_placeholder(&base);

        let mut cache = RouteCache::new(&merged);
        let rejected = admit_group(&soc, &groups, &base, &options, 2, 0, &merged, &mut cache);
        assert!(
            matches!(rejected, Err(RejectReason::Unroutable(_))),
            "zero budget must reject: {rejected:?}"
        );

        let mut cache = RouteCache::new(&merged);
        let budget = displacement_eviction_budget();
        let adm = admit_group(
            &soc, &groups, &base, &options, 2, budget, &merged, &mut cache,
        )
        .expect("displacement should rescue the admission");
        assert!(!adm.moved.is_empty(), "no core was displaced");
        assert!((1..=budget).contains(&adm.evictions), "{}", adm.evictions);
        adm.solution.verify(&soc, &groups).unwrap();
    }
}
