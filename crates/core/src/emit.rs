//! Configuration artifact emission — the reproduction's substitute for
//! the paper's phase 4 ("SystemC & RTL VHDL NoC" generation).
//!
//! The RTL flow programs two kinds of state: NI route tables (the path
//! each connection's packets take) and per-link TDMA slot tables. This
//! module renders exactly that state as a deterministic, diffable text
//! artifact — what a downstream RTL generator would consume — plus a
//! [`config_diff`] helper quantifying how much state a use-case switch
//! between two groups must rewrite (the dynamic-reconfiguration cost the
//! paper's companion work charges for).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use noc_usecase::spec::SocSpec;
use noc_usecase::UseCaseGroups;

use crate::result::{GroupConfig, MappingSolution};

/// How two group configurations differ — the work a reconfiguration
/// between their use-cases must perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfigDiff {
    /// Connections present in both with identical path and slots (no
    /// reprogramming needed).
    pub unchanged: usize,
    /// Connections present in both whose path or slot set differs (route
    /// table and/or slot tables must be rewritten).
    pub changed: usize,
    /// Connections only in the first configuration (torn down).
    pub removed: usize,
    /// Connections only in the second configuration (set up).
    pub added: usize,
}

impl ConfigDiff {
    /// Total number of connection updates a switch must apply.
    pub fn reprogrammed(&self) -> usize {
        self.changed + self.removed + self.added
    }

    /// `true` when switching needs no NoC reprogramming at all — the
    /// smooth-switching guarantee inside one group.
    pub fn is_smooth(&self) -> bool {
        self.reprogrammed() == 0
    }
}

/// Compares two group configurations connection by connection.
pub fn config_diff(a: &GroupConfig, b: &GroupConfig) -> ConfigDiff {
    let mut diff = ConfigDiff::default();
    for (pair, route_a) in a.iter() {
        match b.route(pair.0, pair.1) {
            None => diff.removed += 1,
            Some(route_b) if route_b == route_a => diff.unchanged += 1,
            Some(_) => diff.changed += 1,
        }
    }
    diff.added = b
        .iter()
        .filter(|(p, _)| a.route(p.0, p.1).is_none())
        .count();
    diff
}

/// Renders the complete programmable state of a solution as text: the
/// core placement, then per group the NI route tables and per-link slot
/// tables. Deterministic for a given solution.
///
/// ```
/// use noc_tdma::TdmaSpec;
/// use noc_topology::units::{Bandwidth, Latency};
/// use noc_usecase::{spec::{CoreId, SocSpec, UseCaseBuilder}, UseCaseGroups};
/// use nocmap::{design::design_smallest_mesh, emit::emit_text, MapperOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut soc = SocSpec::new("demo");
/// soc.add_use_case(UseCaseBuilder::new("u")
///     .flow(CoreId::new(0), CoreId::new(1), Bandwidth::from_mbps(100), Latency::UNCONSTRAINED)?
///     .build());
/// let groups = UseCaseGroups::singletons(1);
/// let sol = design_smallest_mesh(&soc, &groups, TdmaSpec::paper_default(),
///                                &MapperOptions::default(), 16)?;
/// let text = emit_text(&sol, &soc, &groups);
/// assert!(text.contains("core placement"));
/// assert!(text.contains("slot tables"));
/// # Ok(())
/// # }
/// ```
pub fn emit_text(solution: &MappingSolution, soc: &SocSpec, groups: &UseCaseGroups) -> String {
    let mut out = String::new();
    let spec = solution.spec();
    let _ = writeln!(out, "# NoC configuration for '{}'", soc.name());
    let _ = writeln!(
        out,
        "# mesh {} | {} | {} slots/table | link width {}",
        solution.label(),
        spec.frequency(),
        spec.slots(),
        spec.width()
    );

    let _ = writeln!(out, "\n[core placement]");
    for (core, ni) in solution.core_mapping() {
        let _ = writeln!(out, "{core} -> {ni}");
    }

    for (g, config) in solution.group_configs().iter().enumerate() {
        let members: Vec<&str> = groups
            .members(g)
            .iter()
            .map(|&u| soc.use_case(u).name())
            .collect();
        let _ = writeln!(out, "\n[group {g}: {}]", members.join(", "));

        let _ = writeln!(out, "routes:");
        for (&(src, dst), route) in config.iter() {
            let hops: Vec<String> = route.path.iter().map(|l| l.to_string()).collect();
            let slots: Vec<String> = route.base_slots.iter().map(|s| s.to_string()).collect();
            let _ = writeln!(
                out,
                "  {src} -> {dst}: path [{}] slots [{}] bw {} wc {}",
                hops.join(" "),
                slots.join(" "),
                route.bandwidth,
                route.worst_case_latency
            );
        }

        // Per-link slot tables, reconstructed from the routes.
        let mut tables: BTreeMap<
            usize,
            Vec<Option<(noc_usecase::spec::CoreId, noc_usecase::spec::CoreId)>>,
        > = BTreeMap::new();
        for (&pair, route) in config.iter() {
            for &base in &route.base_slots {
                for (i, link) in route.path.iter().enumerate() {
                    let table = tables
                        .entry(link.index())
                        .or_insert_with(|| vec![None; spec.slots()]);
                    table[(base + i) % spec.slots()] = Some(pair);
                }
            }
        }
        let _ = writeln!(out, "slot tables:");
        for (link, table) in tables {
            let cells: Vec<String> = table
                .iter()
                .map(|c| match c {
                    Some((s, d)) => format!("{}>{}", s.raw(), d.raw()),
                    None => "-".to_string(),
                })
                .collect();
            let _ = writeln!(out, "  l{link}: {}", cells.join(","));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::design_smallest_mesh;
    use crate::mapper::MapperOptions;
    use crate::result::Route;
    use noc_tdma::TdmaSpec;
    use noc_topology::units::{Bandwidth, Latency};
    use noc_usecase::spec::{CoreId, UseCaseBuilder};

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    fn demo() -> (SocSpec, UseCaseGroups, MappingSolution) {
        let mut soc = SocSpec::new("emit-demo");
        soc.add_use_case(
            UseCaseBuilder::new("u0")
                .flow(
                    c(0),
                    c(1),
                    Bandwidth::from_mbps(300),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .flow(c(1), c(2), Bandwidth::from_mbps(125), Latency::from_us(1))
                .unwrap()
                .build(),
        );
        soc.add_use_case(
            UseCaseBuilder::new("u1")
                .flow(c(0), c(1), Bandwidth::from_mbps(50), Latency::UNCONSTRAINED)
                .unwrap()
                .build(),
        );
        let groups = UseCaseGroups::singletons(2);
        let sol = design_smallest_mesh(
            &soc,
            &groups,
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
            16,
        )
        .unwrap();
        (soc, groups, sol)
    }

    #[test]
    fn emit_contains_all_sections() {
        let (soc, groups, sol) = demo();
        let text = emit_text(&sol, &soc, &groups);
        assert!(text.contains("[core placement]"));
        assert!(text.contains("[group 0: u0]"));
        assert!(text.contains("[group 1: u1]"));
        assert!(text.contains("core0 ->"));
        assert!(text.contains("routes:"));
        assert!(text.contains("slot tables:"));
        // Every flow appears as a route line.
        assert!(text.contains("core0 -> core1"));
        assert!(text.contains("core1 -> core2"));
    }

    #[test]
    fn emit_is_deterministic() {
        let (soc, groups, sol) = demo();
        assert_eq!(
            emit_text(&sol, &soc, &groups),
            emit_text(&sol, &soc, &groups)
        );
    }

    #[test]
    fn slot_tables_have_no_conflict_markers() {
        // Reconstructing tables from routes must never overwrite a cell
        // with a different pair (the verifier guarantees it; emission
        // relies on it). Spot-check: total reserved cells equals the sum
        // of route slots x hops.
        let (soc, groups, sol) = demo();
        let text = emit_text(&sol, &soc, &groups);
        let reserved_cells = text
            .lines()
            .filter(|l| l.trim_start().starts_with('l'))
            .map(|l| l.matches('>').count())
            .sum::<usize>();
        let expected: usize = sol
            .group_configs()
            .iter()
            .flat_map(|g| g.iter())
            .map(|(_, r)| r.slot_count() * r.hops())
            .sum();
        assert_eq!(reserved_cells, expected);
    }

    #[test]
    fn diff_identical_configs_is_smooth() {
        let (_, _, sol) = demo();
        let d = config_diff(sol.group_config(0), sol.group_config(0));
        assert!(d.is_smooth());
        assert_eq!(d.unchanged, sol.group_config(0).len());
    }

    #[test]
    fn diff_counts_changes_additions_removals() {
        let (_, _, sol) = demo();
        let a = sol.group_config(0).clone(); // pairs (0,1) and (1,2)
        let b = sol.group_config(1).clone(); // pair (0,1) only, other route
        let d = config_diff(&a, &b);
        assert_eq!(d.removed, 1, "(1,2) torn down");
        assert_eq!(d.added, 0);
        assert_eq!(d.changed + d.unchanged, 1, "(0,1) either kept or rerouted");
        let rev = config_diff(&b, &a);
        assert_eq!(rev.added, 1);
        assert_eq!(rev.removed, 0);
        assert_eq!(d.reprogrammed() > 0, !d.is_smooth());
    }

    #[test]
    fn diff_detects_slot_changes() {
        let (_, _, sol) = demo();
        let a = sol.group_config(0).clone();
        let mut b = a.clone();
        let (&(s, d0), route) = a.iter().next().unwrap();
        let mut tampered: Route = route.clone();
        tampered.base_slots = vec![(tampered.base_slots[0] + 1) % 128];
        b.insert(s, d0, tampered);
        let d = config_diff(&a, &b);
        assert_eq!(d.changed, 1);
    }
}
