//! Mapping solutions: core placement plus one NoC configuration per
//! use-case group.

use std::collections::BTreeMap;

use noc_tdma::TdmaSpec;
use noc_topology::units::{Bandwidth, Latency};
use noc_topology::{AreaModel, LinkId, NodeId, Topology};
use noc_usecase::spec::{CoreId, SocSpec, UseCaseId};
use noc_usecase::UseCaseGroups;

use crate::verify::{self, VerifyError};

/// One configured GT connection: the path and TDMA reservation serving a
/// `(src, dst)` core pair inside one group's NoC configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Links from the source core's NI to the destination core's NI.
    pub path: Vec<LinkId>,
    /// Reserved base slots (slot `s + i` is held on the `i`-th link).
    pub base_slots: Vec<usize>,
    /// Bandwidth the reservation is sized for (the group's largest
    /// same-pair flow).
    pub bandwidth: Bandwidth,
    /// Worst-case latency of the connection as configured.
    pub worst_case_latency: Latency,
}

impl Route {
    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.path.len()
    }

    /// Number of reserved base slots.
    pub fn slot_count(&self) -> usize {
        self.base_slots.len()
    }
}

/// The NoC configuration of one use-case group: a route per communicating
/// core pair. Loaded into the NIs/switches whenever the SoC switches into
/// a use-case of this group.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GroupConfig {
    routes: BTreeMap<(CoreId, CoreId), Route>,
}

impl GroupConfig {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        GroupConfig::default()
    }

    /// Adds (or replaces) the route for a pair.
    pub fn insert(&mut self, src: CoreId, dst: CoreId, route: Route) -> Option<Route> {
        self.routes.insert((src, dst), route)
    }

    /// The route serving `(src, dst)`, if configured.
    pub fn route(&self, src: CoreId, dst: CoreId) -> Option<&Route> {
        self.routes.get(&(src, dst))
    }

    /// All `(pair, route)` entries, sorted by pair.
    pub fn iter(&self) -> impl Iterator<Item = (&(CoreId, CoreId), &Route)> {
        self.routes.iter()
    }

    /// Number of configured connections.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no connection is configured.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

/// A complete multi-use-case mapping: the outcome of Algorithm 2.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingSolution {
    topology: Topology,
    label: String,
    spec: TdmaSpec,
    core_to_ni: BTreeMap<CoreId, NodeId>,
    group_configs: Vec<GroupConfig>,
}

impl MappingSolution {
    /// Assembles a solution (used by the mapper; most users obtain
    /// solutions from [`crate::map_multi_usecase`] or
    /// [`crate::design::design_smallest_mesh`]).
    pub fn new(
        topology: Topology,
        label: impl Into<String>,
        spec: TdmaSpec,
        core_to_ni: BTreeMap<CoreId, NodeId>,
        group_configs: Vec<GroupConfig>,
    ) -> Self {
        MappingSolution {
            topology,
            label: label.into(),
            spec,
            core_to_ni,
            group_configs,
        }
    }

    /// The topology the solution is mapped onto (a mesh in the paper's
    /// evaluation, but any strongly-connected NoC graph works).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Human-readable topology label (`"2x3"` for meshes, caller-chosen
    /// for custom fabrics).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Renames the topology label (used by the design flow to stamp mesh
    /// dimensions).
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = label.into();
    }

    /// The TDMA parameters the solution was configured for.
    pub fn spec(&self) -> TdmaSpec {
        self.spec
    }

    /// Number of switches used — the paper's primary quality metric.
    pub fn switch_count(&self) -> usize {
        self.topology.switch_count()
    }

    /// The NI hosting `core`, if mapped.
    pub fn ni_of(&self, core: CoreId) -> Option<NodeId> {
        self.core_to_ni.get(&core).copied()
    }

    /// The full core → NI assignment.
    pub fn core_mapping(&self) -> &BTreeMap<CoreId, NodeId> {
        &self.core_to_ni
    }

    /// Per-group NoC configurations, indexed by group id.
    pub fn group_configs(&self) -> &[GroupConfig] {
        &self.group_configs
    }

    /// The configuration of one group.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn group_config(&self, group: usize) -> &GroupConfig {
        &self.group_configs[group]
    }

    /// The route serving use-case `uc`'s flow `(src, dst)` under the
    /// partition `groups`.
    pub fn route_for(
        &self,
        groups: &UseCaseGroups,
        uc: UseCaseId,
        src: CoreId,
        dst: CoreId,
    ) -> Option<&Route> {
        self.group_configs
            .get(groups.group_of(uc))
            .and_then(|cfg| cfg.route(src, dst))
    }

    /// Total switch area under `model` at the configured frequency.
    pub fn area_mm2(&self, model: &AreaModel) -> f64 {
        model.topology_area_mm2(&self.topology, self.spec.frequency())
    }

    /// Total configured connections over all groups.
    pub fn connection_count(&self) -> usize {
        self.group_configs.iter().map(GroupConfig::len).sum()
    }

    /// Mean hop count over all configured routes (0 for empty solutions).
    pub fn mean_hops(&self) -> f64 {
        let (sum, n) = self
            .group_configs
            .iter()
            .flat_map(|g| g.iter())
            .fold((0usize, 0usize), |(s, n), (_, r)| (s + r.hops(), n + 1));
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Communication-cost proxy used by the annealing refinement and the
    /// ablation benches: `Σ bandwidth × hops` over all routes, in
    /// MB/s·hops. Lower is better (shorter paths for bigger flows ⇒ lower
    /// power, per Section 5's sorting rationale).
    ///
    /// Accumulated exactly in integer bytes/s·hops and converted to MB/s
    /// once at the end, so the value cannot depend on summation order —
    /// parallel or re-ordered evaluation yields bit-identical costs (see
    /// `tests/determinism.rs` and `tests/parallel_determinism.rs`).
    pub fn comm_cost(&self) -> f64 {
        self.comm_cost_bytes_hops() as f64 / 1e6
    }

    /// The exact integer form of [`Self::comm_cost`]: `Σ bandwidth ×
    /// hops` in bytes/s·hops. Order-insensitive by construction; prefer
    /// this for equality comparisons between solutions.
    pub fn comm_cost_bytes_hops(&self) -> u128 {
        self.group_configs
            .iter()
            .flat_map(|g| g.iter())
            .map(|(_, r)| r.bandwidth.as_bytes_per_sec() as u128 * r.hops() as u128)
            .sum()
    }

    /// Re-validates the whole solution against the spec and partition.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found; see [`crate::verify`] for
    /// the full list of checks.
    pub fn verify(&self, soc: &SocSpec, groups: &UseCaseGroups) -> Result<(), VerifyError> {
        verify::verify_solution(self, soc, groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_config_crud() {
        let mut cfg = GroupConfig::new();
        assert!(cfg.is_empty());
        let route = Route {
            path: vec![],
            base_slots: vec![0],
            bandwidth: Bandwidth::from_mbps(10),
            worst_case_latency: Latency::from_ns(100),
        };
        assert!(cfg
            .insert(CoreId::new(0), CoreId::new(1), route.clone())
            .is_none());
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.route(CoreId::new(0), CoreId::new(1)), Some(&route));
        assert!(cfg.route(CoreId::new(1), CoreId::new(0)).is_none());
        let replaced = cfg.insert(CoreId::new(0), CoreId::new(1), route.clone());
        assert_eq!(replaced, Some(route));
    }

    #[test]
    fn route_stats() {
        let r = Route {
            path: vec![],
            base_slots: vec![0, 4, 8],
            bandwidth: Bandwidth::from_mbps(10),
            worst_case_latency: Latency::from_ns(100),
        };
        assert_eq!(r.hops(), 0);
        assert_eq!(r.slot_count(), 3);
    }
}
