//! Solution analytics: the numbers a NoC architect reads off a finished
//! design — per-group link utilization, hop and latency statistics, and
//! the reconfiguration cost matrix between groups.

use std::fmt;

use noc_topology::units::Latency;
use noc_topology::LinkId;

use crate::emit::{config_diff, ConfigDiff};
use crate::result::MappingSolution;

/// Per-group summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStats {
    /// Group index.
    pub group: usize,
    /// Configured connections.
    pub connections: usize,
    /// Mean path length in links.
    pub mean_hops: f64,
    /// Longest path in links.
    pub max_hops: usize,
    /// Largest worst-case latency of any connection.
    pub max_worst_case: Latency,
    /// Fraction of all (link, slot) cells this group's configuration
    /// reserves.
    pub slot_utilization: f64,
    /// The most loaded link and its reserved-slot count.
    pub hottest_link: Option<(LinkId, usize)>,
}

/// A full analytic report over a [`MappingSolution`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolutionReport {
    /// Topology label.
    pub label: String,
    /// Switch count.
    pub switches: usize,
    /// Per-group statistics, indexed by group.
    pub groups: Vec<GroupStats>,
    /// `reconfiguration[a][b]` is the cost of switching from group `a`'s
    /// configuration to group `b`'s.
    pub reconfiguration: Vec<Vec<ConfigDiff>>,
}

impl SolutionReport {
    /// Builds the report from a solution.
    pub fn analyze(solution: &MappingSolution) -> Self {
        let spec = solution.spec();
        let link_count = solution.topology().link_count();
        let total_cells = link_count * spec.slots();

        let groups = solution
            .group_configs()
            .iter()
            .enumerate()
            .map(|(g, config)| {
                let mut per_link = vec![0usize; link_count];
                let mut hops_sum = 0usize;
                let mut max_hops = 0usize;
                let mut max_wc = Latency::ZERO;
                let mut cells = 0usize;
                for (_, route) in config.iter() {
                    hops_sum += route.hops();
                    max_hops = max_hops.max(route.hops());
                    max_wc = max_wc.max(route.worst_case_latency);
                    cells += route.hops() * route.slot_count();
                    for &l in &route.path {
                        per_link[l.index()] += route.slot_count();
                    }
                }
                let hottest_link = per_link
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &c)| c)
                    .filter(|&(_, &c)| c > 0)
                    .map(|(i, &c)| (solution.topology().links()[i].id(), c));
                GroupStats {
                    group: g,
                    connections: config.len(),
                    mean_hops: if config.is_empty() {
                        0.0
                    } else {
                        hops_sum as f64 / config.len() as f64
                    },
                    max_hops,
                    max_worst_case: max_wc,
                    slot_utilization: if total_cells == 0 {
                        0.0
                    } else {
                        cells as f64 / total_cells as f64
                    },
                    hottest_link,
                }
            })
            .collect();

        let n = solution.group_configs().len();
        let reconfiguration = (0..n)
            .map(|a| {
                (0..n)
                    .map(|b| config_diff(solution.group_config(a), solution.group_config(b)))
                    .collect()
            })
            .collect();

        SolutionReport {
            label: solution.label().to_string(),
            switches: solution.switch_count(),
            groups,
            reconfiguration,
        }
    }

    /// The heaviest reconfiguration any use-case switch can trigger.
    pub fn max_reconfiguration(&self) -> usize {
        self.reconfiguration
            .iter()
            .flatten()
            .map(ConfigDiff::reprogrammed)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for SolutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "solution on {} ({} switches)", self.label, self.switches)?;
        writeln!(
            f,
            "{:>5} {:>6} {:>9} {:>8} {:>12} {:>10}",
            "group", "conns", "mean hops", "max hops", "max wc lat", "slot util"
        )?;
        for g in &self.groups {
            writeln!(
                f,
                "{:>5} {:>6} {:>9.2} {:>8} {:>12} {:>9.1}%",
                g.group,
                g.connections,
                g.mean_hops,
                g.max_hops,
                g.max_worst_case.to_string(),
                100.0 * g.slot_utilization
            )?;
        }
        writeln!(f, "reconfiguration cost (connections reprogrammed):")?;
        for (a, row) in self.reconfiguration.iter().enumerate() {
            let cells: Vec<String> = row
                .iter()
                .map(|d| format!("{:>4}", d.reprogrammed()))
                .collect();
            writeln!(f, "  from {a}: [{}]", cells.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::design_smallest_mesh;
    use crate::mapper::MapperOptions;
    use noc_tdma::TdmaSpec;
    use noc_topology::units::Bandwidth;
    use noc_usecase::spec::{CoreId, SocSpec, UseCaseBuilder};
    use noc_usecase::UseCaseGroups;

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    fn solved() -> (MappingSolution, usize) {
        let mut soc = SocSpec::new("report");
        soc.add_use_case(
            UseCaseBuilder::new("u0")
                .flow(
                    c(0),
                    c(1),
                    Bandwidth::from_mbps(500),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .flow(c(1), c(2), Bandwidth::from_mbps(200), Latency::from_us(2))
                .unwrap()
                .build(),
        );
        soc.add_use_case(
            UseCaseBuilder::new("u1")
                .flow(
                    c(0),
                    c(2),
                    Bandwidth::from_mbps(100),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .build(),
        );
        let groups = UseCaseGroups::singletons(2);
        let sol = design_smallest_mesh(
            &soc,
            &groups,
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
            16,
        )
        .unwrap();
        (sol, 2)
    }

    #[test]
    fn analyze_produces_per_group_stats() {
        let (sol, n) = solved();
        let report = SolutionReport::analyze(&sol);
        assert_eq!(report.groups.len(), n);
        assert_eq!(report.groups[0].connections, 2);
        assert_eq!(report.groups[1].connections, 1);
        for g in &report.groups {
            assert!(g.mean_hops >= 2.0, "NI-to-NI paths have >= 2 links");
            assert!(g.max_hops >= g.mean_hops as usize);
            assert!(g.slot_utilization > 0.0 && g.slot_utilization < 1.0);
            assert!(g.hottest_link.is_some());
            assert!(g.max_worst_case > Latency::ZERO);
        }
    }

    #[test]
    fn reconfiguration_matrix_shape() {
        let (sol, n) = solved();
        let report = SolutionReport::analyze(&sol);
        assert_eq!(report.reconfiguration.len(), n);
        for (a, row) in report.reconfiguration.iter().enumerate() {
            assert_eq!(row.len(), n);
            assert!(row[a].is_smooth(), "self-switch is free");
        }
        // Switching between the two singleton groups reprograms something.
        assert!(report.max_reconfiguration() > 0);
    }

    #[test]
    fn display_renders_tables() {
        let (sol, _) = solved();
        let text = SolutionReport::analyze(&sol).to_string();
        assert!(text.contains("switches"));
        assert!(text.contains("slot util"));
        assert!(text.contains("reconfiguration cost"));
        assert!(text.contains("from 0:"));
    }

    #[test]
    fn empty_group_is_harmless() {
        let (sol, _) = solved();
        // Fabricate a solution with an extra empty group.
        let mut configs = sol.group_configs().to_vec();
        configs.push(crate::result::GroupConfig::new());
        let padded = MappingSolution::new(
            sol.topology().clone(),
            sol.label(),
            sol.spec(),
            sol.core_mapping().clone(),
            configs,
        );
        let report = SolutionReport::analyze(&padded);
        let empty = report.groups.last().unwrap();
        assert_eq!(empty.connections, 0);
        assert_eq!(empty.mean_hops, 0.0);
        assert!(empty.hottest_link.is_none());
    }
}
