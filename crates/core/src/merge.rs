//! Per-group flow merging.
//!
//! Use-cases in one switching-graph group share a single NoC
//! configuration, so a `(src, dst)` pair that appears in several members
//! is configured once, sized for the member with the largest bandwidth
//! and bounded by the member with the tightest latency (Section 5: "the
//! path and slot reservation are chosen for the flow that has the maximum
//! bandwidth value across the different use-cases in the group").
//!
//! Note the relationship to the worst-case baseline: merging over a
//! *group* is a scoped version of what the WC method of [ASPDAC'06] does
//! over *all* use-cases — [`crate::wc`] reuses this module with a
//! single-group partition.

use std::collections::BTreeMap;

use noc_topology::units::{Bandwidth, Latency};
use noc_usecase::spec::{CoreId, SocSpec};
use noc_usecase::UseCaseGroups;

/// The merged constraint of one `(src, dst)` pair within a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergedFlow {
    /// Largest bandwidth any group member requires on this pair.
    pub bandwidth: Bandwidth,
    /// Tightest latency bound any group member imposes on this pair.
    pub latency: Latency,
}

/// Merged pair constraints for every group: `result[g]` maps each
/// `(src, dst)` pair used by group `g` to its sizing constraint.
///
/// ```
/// use noc_topology::units::{Bandwidth, Latency};
/// use noc_usecase::{spec::{CoreId, SocSpec, UseCaseBuilder}, UseCaseGroups};
/// use nocmap::merged_group_flows;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut soc = SocSpec::new("s");
/// let c = |i| CoreId::new(i);
/// soc.add_use_case(UseCaseBuilder::new("a")
///     .flow(c(0), c(1), Bandwidth::from_mbps(100), Latency::from_us(4))?.build());
/// soc.add_use_case(UseCaseBuilder::new("b")
///     .flow(c(0), c(1), Bandwidth::from_mbps(250), Latency::from_us(9))?.build());
///
/// // Same group: the pair is sized max(100, 250), bounded min(4us, 9us).
/// let merged = merged_group_flows(&soc, &UseCaseGroups::single_group(2));
/// let f = &merged[0][&(c(0), c(1))];
/// assert_eq!(f.bandwidth, Bandwidth::from_mbps(250));
/// assert_eq!(f.latency, Latency::from_us(4));
///
/// // Separate groups: each keeps its own constraint.
/// let split = merged_group_flows(&soc, &UseCaseGroups::singletons(2));
/// assert_eq!(split[0][&(c(0), c(1))].bandwidth, Bandwidth::from_mbps(100));
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if the partition does not cover exactly the spec's use-cases.
pub fn merged_group_flows(
    soc: &SocSpec,
    groups: &UseCaseGroups,
) -> Vec<BTreeMap<(CoreId, CoreId), MergedFlow>> {
    assert_eq!(
        groups.use_case_count(),
        soc.use_case_count(),
        "group partition must cover the spec's use-cases"
    );
    let mut merged: Vec<BTreeMap<(CoreId, CoreId), MergedFlow>> =
        vec![BTreeMap::new(); groups.group_count()];
    for uc_id in soc.use_case_ids() {
        let g = groups.group_of(uc_id);
        for flow in soc.use_case(uc_id).flows() {
            let entry = merged[g].entry(flow.endpoints()).or_insert(MergedFlow {
                bandwidth: Bandwidth::ZERO,
                latency: Latency::UNCONSTRAINED,
            });
            entry.bandwidth = entry.bandwidth.max(flow.bandwidth());
            entry.latency = entry.latency.min(flow.latency());
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_usecase::spec::UseCaseBuilder;

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    fn bw(m: u64) -> Bandwidth {
        Bandwidth::from_mbps(m)
    }

    fn sample_soc() -> SocSpec {
        let mut soc = SocSpec::new("s");
        soc.add_use_case(
            UseCaseBuilder::new("u0")
                .flow(c(0), c(1), bw(100), Latency::from_us(4))
                .unwrap()
                .flow(c(1), c(2), bw(50), Latency::UNCONSTRAINED)
                .unwrap()
                .build(),
        );
        soc.add_use_case(
            UseCaseBuilder::new("u1")
                .flow(c(0), c(1), bw(250), Latency::from_us(9))
                .unwrap()
                .flow(c(2), c(3), bw(75), Latency::UNCONSTRAINED)
                .unwrap()
                .build(),
        );
        soc
    }

    #[test]
    fn singletons_keep_per_use_case_constraints() {
        let soc = sample_soc();
        let merged = merged_group_flows(&soc, &UseCaseGroups::singletons(2));
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].len(), 2);
        assert_eq!(merged[1].len(), 2);
        assert_eq!(merged[0][&(c(0), c(1))].bandwidth, bw(100));
        assert_eq!(merged[1][&(c(0), c(1))].bandwidth, bw(250));
    }

    #[test]
    fn single_group_takes_worst_case() {
        let soc = sample_soc();
        let merged = merged_group_flows(&soc, &UseCaseGroups::single_group(2));
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].len(), 3);
        let f01 = merged[0][&(c(0), c(1))];
        assert_eq!(f01.bandwidth, bw(250));
        assert_eq!(f01.latency, Latency::from_us(4));
        // Pair unique to one member carries over unchanged.
        assert_eq!(merged[0][&(c(2), c(3))].bandwidth, bw(75));
    }

    #[test]
    #[should_panic(expected = "must cover")]
    fn mismatched_partition_panics() {
        let soc = sample_soc();
        let _ = merged_group_flows(&soc, &UseCaseGroups::singletons(3));
    }

    #[test]
    fn empty_spec_yields_empty_groups() {
        let soc = SocSpec::new("empty");
        let merged = merged_group_flows(&soc, &UseCaseGroups::singletons(0));
        assert!(merged.is_empty());
    }
}
