//! Least-cost constrained path search (step 4 of Algorithm 2).
//!
//! The cost of a path combines hop count and link load — "path cost is a
//! combination of hop delay and residual bandwidth/slots" (Section 5,
//! citing the single-use-case objective of Hansson et al., ISSS 2005).
//! Each link costs a fixed hop price plus a congestion penalty that grows
//! with the fraction of its slot table already reserved **in the use-case
//! (group) being routed**, steering large flows onto short, lightly-loaded
//! routes.
//!
//! The search is a Dijkstra run over the NoC graph where:
//!
//! * links with fewer free slots than the flow needs are unusable,
//! * NIs never appear in the interior of a path (they are sources and
//!   targets only),
//! * paths longer than a latency-derived hop budget are pruned,
//! * sources may be a set (an unmapped core can enter at any free NI) and
//!   targets may be a predicate (an unmapped core may land on any free NI).

use std::cmp::Reverse;
use std::collections::BTreeSet;
use std::collections::BinaryHeap;

use noc_tdma::NetworkSlots;
use noc_topology::{LinkId, NodeId, Topology};

use crate::perf;

/// Fixed-point cost of traversing one unloaded link (1 hop = 1000 millis).
pub const HOP_COST_MILLIS: u64 = 1000;

/// A path found by [`PathQuery::shortest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoundPath {
    /// Links from source NI to target NI, in traversal order.
    pub links: Vec<LinkId>,
    /// The NI the path starts at.
    pub src_ni: NodeId,
    /// The NI the path ends at.
    pub dst_ni: NodeId,
    /// Total fixed-point cost.
    pub cost_millis: u64,
}

impl FoundPath {
    /// Number of links (hops) in the path.
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// Where a search may end.
#[derive(Debug, Clone, Copy)]
pub enum Target<'a> {
    /// The flow's destination core is already mapped to this NI.
    Ni(NodeId),
    /// The destination core is unmapped: any NI with `occupied[ni] ==
    /// false` is acceptable.
    AnyFreeNi {
        /// Occupancy flags indexed by node id.
        occupied: &'a [bool],
    },
}

/// A Dijkstra label: one of up to two origin-distinct shortest-path
/// records a node keeps. `pred` is the incoming link and the label slot
/// of the predecessor node it extends.
#[derive(Debug, Clone, Copy)]
struct Label {
    origin: NodeId,
    pred: Option<(LinkId, u8)>,
}

/// Heap entries: `(dist, node index, origin, hops, pred)`.
type Entry = (u64, usize, NodeId, u32, Option<(LinkId, u8)>);

/// Caller-held scratch for [`PathQuery::shortest`]: the Dijkstra label
/// table and the priority queue, re-used across queries so the hot
/// mapping loops stop allocating `O(nodes)` per path search.
///
/// Label validity is tracked by a per-query epoch stamp: starting a query
/// bumps the epoch instead of clearing the table, so reuse costs O(1)
/// regardless of topology size. The mapper holds one scratch per
/// use-case group (inside the group's routing state, so parallel group
/// routing never shares a buffer); standalone callers can just
/// `PathScratch::new()` once and keep it across queries.
#[derive(Debug)]
pub struct PathScratch {
    labels: Vec<[Option<Label>; 2]>,
    stamps: Vec<u64>,
    epoch: u64,
    heap: BinaryHeap<Reverse<Entry>>,
}

impl PathScratch {
    /// An empty scratch; buffers grow to the queried topology's size on
    /// first use and are retained afterwards.
    pub fn new() -> Self {
        perf::inc(&perf::SCRATCH_ALLOCS);
        PathScratch {
            labels: Vec::new(),
            stamps: Vec::new(),
            epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Starts a new query over `nodes` nodes: bumps the epoch (lazily
    /// invalidating every stored label) and clears the heap.
    fn begin(&mut self, nodes: usize) {
        if self.labels.len() < nodes {
            self.labels.resize(nodes, [None, None]);
            self.stamps.resize(nodes, 0);
        }
        self.epoch += 1;
        self.heap.clear();
    }

    /// The labels of `node` as of this query ( `[None, None]` when the
    /// slot was last written by an earlier query).
    fn labels(&self, node: usize) -> [Option<Label>; 2] {
        if self.stamps[node] == self.epoch {
            self.labels[node]
        } else {
            [None, None]
        }
    }

    fn labels_mut(&mut self, node: usize) -> &mut [Option<Label>; 2] {
        if self.stamps[node] != self.epoch {
            self.labels[node] = [None, None];
            self.stamps[node] = self.epoch;
        }
        &mut self.labels[node]
    }
}

impl Default for PathScratch {
    fn default() -> Self {
        PathScratch::new()
    }
}

/// One constrained shortest-path query.
#[derive(Debug)]
pub struct PathQuery<'a> {
    topo: &'a Topology,
    state: &'a NetworkSlots,
    needed_slots: usize,
    max_hops: usize,
    load_penalty_millis: u64,
    banned: &'a BTreeSet<LinkId>,
}

impl<'a> PathQuery<'a> {
    /// Builds a query against one group's slot state.
    ///
    /// `needed_slots` is the flow's slot demand (links with fewer free
    /// slots are unusable), `max_hops` the inclusive hop budget derived
    /// from the flow's latency bound, `load_penalty_millis` the congestion
    /// weight (the penalty of a fully-loaded link, in thousandths of a
    /// hop), and `banned` a set of links excluded from this attempt (used
    /// by the slot-allocation retry loop).
    pub fn new(
        topo: &'a Topology,
        state: &'a NetworkSlots,
        needed_slots: usize,
        max_hops: usize,
        load_penalty_millis: u64,
        banned: &'a BTreeSet<LinkId>,
    ) -> Self {
        PathQuery {
            topo,
            state,
            needed_slots,
            max_hops,
            load_penalty_millis,
            banned,
        }
    }

    fn link_usable(&self, l: LinkId) -> bool {
        !self.banned.contains(&l) && self.state.free_slot_count(l) >= self.needed_slots
    }

    fn link_cost(&self, l: LinkId) -> u64 {
        let s = self.state.slots_per_table();
        let used = (s - self.state.free_slot_count(l)) as u64;
        HOP_COST_MILLIS + self.load_penalty_millis * used / s as u64
    }

    /// [`PathQuery::shortest_with`] against a throwaway scratch buffer.
    ///
    /// Convenience for one-off queries and tests; the hot loops hold a
    /// [`PathScratch`] and call [`PathQuery::shortest_with`] so repeated
    /// searches stop allocating.
    pub fn shortest(&self, sources: &[NodeId], target: Target<'_>) -> Option<FoundPath> {
        self.shortest_with(&mut PathScratch::new(), sources, target)
    }

    /// Runs Dijkstra from `sources` (NIs, cost 0 each) to the cheapest
    /// acceptable target, using (and retaining) `scratch`'s buffers.
    /// Returns `None` when no feasible path exists within the hop budget.
    ///
    /// When both endpoints of a flow are unmapped, every free NI is both a
    /// potential source and a potential target. A plain Dijkstra cannot
    /// handle that (all targets start at distance 0), so each node keeps
    /// up to **two** best labels with *distinct origin NIs*: a target NI
    /// is then reachable via whichever of its labels descends from a
    /// different NI.
    pub fn shortest_with(
        &self,
        scratch: &mut PathScratch,
        sources: &[NodeId],
        target: Target<'_>,
    ) -> Option<FoundPath> {
        perf::inc(&perf::PATH_QUERIES);
        let n = self.topo.node_count();
        scratch.begin(n);
        let mut pops: u64 = 0;

        for &s in sources {
            debug_assert!(self.topo.node(s).is_ni(), "sources must be NIs");
            scratch.heap.push(Reverse((0, s.index(), s, 0, None)));
        }

        let is_target = |node: NodeId, origin: NodeId| -> bool {
            if node == origin {
                return false; // a source cannot double as its own target
            }
            match target {
                Target::Ni(t) => node == t,
                Target::AnyFreeNi { occupied } => {
                    self.topo.node(node).is_ni() && !occupied[node.index()]
                }
            }
        };

        while let Some(Reverse((d, u_idx, origin, hop, pred))) = scratch.heap.pop() {
            pops += 1;
            // Settle into one of the node's two origin-distinct slots.
            let slot = {
                let ls = scratch.labels_mut(u_idx);
                match (&ls[0], &ls[1]) {
                    (None, _) => {
                        ls[0] = Some(Label { origin, pred });
                        0u8
                    }
                    (Some(l0), None) if l0.origin != origin => {
                        ls[1] = Some(Label { origin, pred });
                        1u8
                    }
                    _ => continue, // dominated: same origin or both slots set
                }
            };
            let u = self.topo.nodes()[u_idx].id();
            if is_target(u, origin) {
                // Labels settle in cost order: the first acceptable target
                // label is optimal.
                perf::add(&perf::DIJKSTRA_POPS, pops);
                return Some(self.reconstruct(u, slot, d, scratch));
            }
            // NIs are endpoints only: never expand out of an NI unless it
            // is a source of this label (hop count 0).
            if self.topo.node(u).is_ni() && hop != 0 {
                continue;
            }
            if hop as usize >= self.max_hops {
                continue;
            }
            for &l in self.topo.outgoing(u) {
                if !self.link_usable(l) {
                    continue;
                }
                let v = self.topo.link(l).dst();
                // Interior NIs are not allowed: an NI may only be entered
                // if it can terminate a path from this origin.
                if self.topo.node(v).is_ni() && !is_target(v, origin) {
                    continue;
                }
                // Skip if v already holds a better-or-equal label of this
                // origin, or two labels of other origins.
                let dominated = match scratch.labels(v.index()) {
                    [Some(l0), _] if l0.origin == origin => true,
                    [_, Some(_)] => true,
                    _ => false,
                };
                if dominated {
                    continue;
                }
                scratch.heap.push(Reverse((
                    d + self.link_cost(l),
                    v.index(),
                    origin,
                    hop + 1,
                    Some((l, slot)),
                )));
            }
        }
        perf::add(&perf::DIJKSTRA_POPS, pops);
        None
    }

    fn reconstruct(
        &self,
        dst: NodeId,
        dst_slot: u8,
        cost: u64,
        scratch: &PathScratch,
    ) -> FoundPath {
        let mut links = Vec::new();
        let mut node = dst;
        let mut slot = dst_slot;
        while let Some((l, pred_slot)) = scratch.labels(node.index())[slot as usize]
            .as_ref()
            .and_then(|lb| lb.pred)
        {
            links.push(l);
            node = self.topo.link(l).src();
            slot = pred_slot;
        }
        links.reverse();
        FoundPath {
            links,
            src_ni: node,
            dst_ni: dst,
            cost_millis: cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_tdma::{ConnId, TdmaSpec};
    use noc_topology::units::{Frequency, LinkWidth};
    use noc_topology::MeshBuilder;

    fn spec() -> TdmaSpec {
        TdmaSpec::new(8, Frequency::from_mhz(500), LinkWidth::BITS_32)
    }

    /// 2x2 mesh, 1 NI per switch.
    fn mesh2x2() -> (Topology, Vec<NodeId>) {
        let mesh = MeshBuilder::new(2, 2).nis_per_switch(1).build().unwrap();
        let topo = mesh.into_topology();
        let nis = topo.nis().to_vec();
        (topo, nis)
    }

    #[test]
    fn direct_route_between_mapped_nis() {
        let (topo, nis) = mesh2x2();
        let state = NetworkSlots::new(&topo, &spec());
        let banned = BTreeSet::new();
        let q = PathQuery::new(&topo, &state, 1, 100, 500, &banned);
        let p = q.shortest(&[nis[0]], Target::Ni(nis[3])).unwrap();
        // ni0 -> sw0 -> (sw1|sw2) -> sw3 -> ni3: 4 links.
        assert_eq!(p.hops(), 4);
        assert_eq!(p.src_ni, nis[0]);
        assert_eq!(p.dst_ni, nis[3]);
        // Path is contiguous.
        for w in p.links.windows(2) {
            assert_eq!(topo.link(w[0]).dst(), topo.link(w[1]).src());
        }
    }

    #[test]
    fn avoids_loaded_links() {
        let (topo, nis) = mesh2x2();
        let mut state = NetworkSlots::new(&topo, &spec());
        // Load the sw0 -> sw1 link heavily (6 of 8 slots).
        let sw0 = topo.ni_switch(nis[0]).unwrap();
        let sw1 = topo.ni_switch(nis[1]).unwrap();
        let l01 = topo.link_between(sw0, sw1).unwrap();
        state
            .reserve(&[l01], &[0, 1, 2, 3, 4, 5], ConnId::new(42))
            .unwrap();
        let banned = BTreeSet::new();
        let q = PathQuery::new(&topo, &state, 1, 100, 2000, &banned);
        let p = q.shortest(&[nis[0]], Target::Ni(nis[1])).unwrap();
        // The loaded direct link costs 1000 + 2000*6/8 = 2500; the detour
        // via sw2/sw3 costs 3 unloaded hops = 3000... direct still wins at
        // equal hop counts, so check the chosen route's cost accounting
        // instead of the route itself.
        assert_eq!(p.links.len(), 3);
        assert_eq!(p.cost_millis, 1000 + 2500 + 1000);
        // Saturate the link completely: now it is unusable and the detour
        // must be taken.
        state.reserve(&[l01], &[6, 7], ConnId::new(43)).unwrap();
        let q = PathQuery::new(&topo, &state, 1, 100, 2000, &banned);
        let p = q.shortest(&[nis[0]], Target::Ni(nis[1])).unwrap();
        assert_eq!(p.hops(), 5, "must detour around the full link");
        assert!(!p.links.contains(&l01));
    }

    #[test]
    fn capacity_filter_blocks_paths() {
        let (topo, nis) = mesh2x2();
        let state = NetworkSlots::new(&topo, &spec());
        let banned = BTreeSet::new();
        // Demand more slots than any link has.
        let q = PathQuery::new(&topo, &state, 9, 100, 500, &banned);
        assert!(q.shortest(&[nis[0]], Target::Ni(nis[3])).is_none());
    }

    #[test]
    fn hop_budget_prunes() {
        let (topo, nis) = mesh2x2();
        let state = NetworkSlots::new(&topo, &spec());
        let banned = BTreeSet::new();
        // ni0 -> ni3 needs 4 hops; a budget of 3 makes it unreachable.
        let q = PathQuery::new(&topo, &state, 1, 3, 500, &banned);
        assert!(q.shortest(&[nis[0]], Target::Ni(nis[3])).is_none());
        let q = PathQuery::new(&topo, &state, 1, 4, 500, &banned);
        assert!(q.shortest(&[nis[0]], Target::Ni(nis[3])).is_some());
    }

    #[test]
    fn banned_links_are_avoided() {
        let (topo, nis) = mesh2x2();
        let state = NetworkSlots::new(&topo, &spec());
        let sw0 = topo.ni_switch(nis[0]).unwrap();
        let sw1 = topo.ni_switch(nis[1]).unwrap();
        let mut banned = BTreeSet::new();
        banned.insert(topo.link_between(sw0, sw1).unwrap());
        let q = PathQuery::new(&topo, &state, 1, 100, 500, &banned);
        let p = q.shortest(&[nis[0]], Target::Ni(nis[1])).unwrap();
        assert_eq!(p.hops(), 5, "banned direct link forces the detour");
    }

    #[test]
    fn any_free_ni_picks_nearest() {
        let (topo, nis) = mesh2x2();
        let state = NetworkSlots::new(&topo, &spec());
        let banned = BTreeSet::new();
        let mut occupied = vec![false; topo.node_count()];
        occupied[nis[0].index()] = true;
        // Source is ni0 (occupied by the src core itself); nearest free NI
        // is one mesh hop away (ni1 or ni2).
        let q = PathQuery::new(&topo, &state, 1, 100, 500, &banned);
        let p = q
            .shortest(
                &[nis[0]],
                Target::AnyFreeNi {
                    occupied: &occupied,
                },
            )
            .unwrap();
        assert_eq!(p.hops(), 3);
        assert!(p.dst_ni == nis[1] || p.dst_ni == nis[2]);
    }

    #[test]
    fn source_never_doubles_as_target() {
        let (topo, nis) = mesh2x2();
        let state = NetworkSlots::new(&topo, &spec());
        let banned = BTreeSet::new();
        let occupied = vec![false; topo.node_count()];
        // All NIs free, source ni0 free too: the target must still be a
        // different NI.
        let q = PathQuery::new(&topo, &state, 1, 100, 500, &banned);
        let p = q
            .shortest(
                &[nis[0]],
                Target::AnyFreeNi {
                    occupied: &occupied,
                },
            )
            .unwrap();
        assert_ne!(p.dst_ni, nis[0]);
        assert!(p.hops() >= 2);
    }

    #[test]
    fn multi_source_uses_cheapest_entry() {
        let (topo, nis) = mesh2x2();
        let state = NetworkSlots::new(&topo, &spec());
        let banned = BTreeSet::new();
        // Sources ni0 and ni2; target ni3. ni2 is closer (same column).
        let q = PathQuery::new(&topo, &state, 1, 100, 500, &banned);
        let p = q.shortest(&[nis[0], nis[2]], Target::Ni(nis[3])).unwrap();
        assert_eq!(p.src_ni, nis[2]);
        assert_eq!(p.hops(), 3);
    }

    #[test]
    fn no_interior_nis() {
        // 1x3 mesh: a path from ni0 to ni2 passes sw1 which has ni1 — the
        // path must not dip into ni1.
        let mesh = MeshBuilder::new(1, 3).nis_per_switch(1).build().unwrap();
        let topo = mesh.into_topology();
        let nis = topo.nis().to_vec();
        let state = NetworkSlots::new(&topo, &spec());
        let banned = BTreeSet::new();
        let q = PathQuery::new(&topo, &state, 1, 100, 500, &banned);
        let p = q.shortest(&[nis[0]], Target::Ni(nis[2])).unwrap();
        for &l in &p.links {
            let mid = topo.link(l).dst();
            if mid != p.dst_ni {
                assert!(!topo.node(mid).is_ni(), "interior node {mid} is an NI");
            }
        }
    }
}
