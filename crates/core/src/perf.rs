//! Deterministic operation counters for the mapping hot paths.
//!
//! The bench trajectory (`BENCH_nocmap.json`, see `docs/PERFORMANCE.md`)
//! needs numbers that are stable across machines and thread counts —
//! wall-clock is neither. These counters are: every increment is tied to
//! a unit of *algorithmic* work (a path query, a Dijkstra settle, a
//! group re-route) that the determinism contract already guarantees is
//! identical at any `noc-par` width, so the totals are too. They double
//! as regression oracles: `tests/perf_counters.rs` asserts the annealer
//! no longer performs one full re-route per proposed move and that path
//! queries stop allocating per call.
//!
//! Counters are process-global relaxed atomics — cheap enough to stay
//! always-on. Most live in this module; the slot-conflict pair
//! (`conflict_word_tests` / `legacy_slot_probes`) lives below us in the
//! crate DAG, in [`noc_tdma::stats`], and is folded into every
//! [`snapshot`] here so consumers see one struct, as is the span count
//! from [`noc_obs`].
//!
//! # Snapshot reads are not atomic
//!
//! [`snapshot`] loads each counter with a separate relaxed read: the
//! returned struct is **not** a consistent cut of concurrently mutating
//! counters. A snapshot taken while mapping work runs on other threads
//! can pair a `path_queries` value from before one of those queries with
//! a `dijkstra_pops` value from inside it. Exact per-section deltas
//! therefore require that no unrelated mapping work runs concurrently —
//! the perf harness runs in its own process, and counter-based tests
//! keep to one test function per binary. Quiesced reads (after all
//! regions joined) are exact: `noc-par` regions synchronise through
//! locks and condvars, which order the workers' relaxed increments
//! before the reader's loads.
//!
//! Every increment also advances the calling thread's [`noc_obs`]
//! op-clock (when a trace collector is installed), which is what gives
//! trace spans their schedule-independent cost field.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    (
        local { $($(#[$doc:meta])* $name:ident => $static_name:ident),* $(,)? }
        external {
            resets { $($ereset:path),* $(,)? }
            $($(#[$edoc:meta])* $ename:ident => $eread:path),* $(,)?
        }
    ) => {
        $(pub(crate) static $static_name: AtomicU64 = AtomicU64::new(0);)*

        /// A point-in-time copy of every hot-path counter.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct PerfSnapshot {
            $($(#[$doc])* pub $name: u64,)*
            $($(#[$edoc])* pub $ename: u64,)*
        }

        /// Reads every counter at once (including the externally sourced
        /// ones from lower crates). Not an atomic cut — see the module
        /// docs.
        pub fn snapshot() -> PerfSnapshot {
            PerfSnapshot {
                $($name: $static_name.load(Ordering::Relaxed),)*
                $($ename: $eread(),)*
            }
        }

        /// Resets every counter to zero (test harnesses only; concurrent
        /// mapping work observes the reset mid-flight). External source
        /// crates declare one reset each in the `resets` block — not one
        /// per counter, since a source typically clears all its counters
        /// in one call.
        pub fn reset() {
            $($static_name.store(0, Ordering::Relaxed);)*
            $($ereset();)*
        }

        impl PerfSnapshot {
            /// The per-field difference `self - earlier` (saturating, so
            /// a reset between snapshots cannot underflow).
            #[must_use]
            pub fn since(&self, earlier: &PerfSnapshot) -> PerfSnapshot {
                PerfSnapshot {
                    $($name: self.$name.saturating_sub(earlier.$name),)*
                    $($ename: self.$ename.saturating_sub(earlier.$ename),)*
                }
            }
        }
    };
}

counters! {
    local {
        /// Constrained shortest-path queries ([`crate::path::PathQuery`]).
        path_queries => PATH_QUERIES,
        /// Dijkstra heap pops across all path queries.
        dijkstra_pops => DIJKSTRA_POPS,
        /// Label-table scratch buffers allocated
        /// ([`crate::path::PathScratch::new`]); flat while queries climb
        /// proves the reuse convention holds.
        scratch_allocs => SCRATCH_ALLOCS,
        /// Single `(pair, group)` routing attempts inside the mapper.
        group_routes => GROUP_ROUTES,
        /// Full `map_multi_usecase` runs (every group routed).
        full_maps => FULL_MAPS,
        /// Groups actually re-routed by a delta re-route
        /// ([`crate::mapper::reroute_preset_groups`]).
        groups_rerouted => GROUPS_REROUTED,
        /// Groups a delta re-route reused verbatim from the base solution.
        groups_reused => GROUPS_REUSED,
        /// Annealing moves proposed (self-moves excluded).
        anneal_moves => ANNEAL_MOVES,
        /// Annealing moves accepted.
        anneal_accepts => ANNEAL_ACCEPTS,
        /// Per-group configs served from a [`crate::mapper::RouteCache`]
        /// instead of being re-routed.
        route_cache_hits => ROUTE_CACHE_HITS,
        /// Per-group configs routed and inserted into a
        /// [`crate::mapper::RouteCache`].
        route_cache_misses => ROUTE_CACHE_MISSES,
        /// Use-case admissions accepted by [`crate::admit::admit_group`]
        /// or an online-service resolve baseline.
        admissions => ADMISSIONS,
        /// Use-case admissions rejected (NI exhaustion or unroutable
        /// after displacement).
        rejections => REJECTIONS,
        /// Pre-existing cores displaced (evicted onto another NI) during
        /// admission-time displacement search.
        displacement_evictions => DISPLACEMENT_EVICTIONS,
        /// Non-empty request batches flushed at a reconfiguration point
        /// by the online mapping service.
        batch_flushes => BATCH_FLUSHES,
        /// Link/NI failures injected into a running mapping (the online
        /// service's `fault` verb and the resilience sweeps).
        faults_injected => FAULTS_INJECTED,
        /// [`crate::heal()`] invocations (initial auto-heals plus explicit
        /// re-heal attempts).
        heals_attempted => HEALS_ATTEMPTED,
        /// Groups re-routed by heal around failed resources — the
        /// incremental repair unit; stays ≪ `full_maps` would be.
        heal_reroutes => HEAL_REROUTES,
        /// Stranded cores re-placed off failed NIs by heal, charged
        /// against the `RemapConfig` move budget.
        heal_evictions => HEAL_EVICTIONS,
    }
    external {
        resets { noc_tdma::stats::reset, noc_obs::reset_span_count }
        /// `u64`-word operations in slot-conflict folds
        /// ([`noc_tdma::stats::conflict_word_tests`]).
        conflict_word_tests => noc_tdma::stats::conflict_word_tests,
        /// Per-slot probes the pre-mask slot tables would have needed for
        /// the same conflict answers
        /// ([`noc_tdma::stats::legacy_slot_probes`]).
        legacy_slot_probes => noc_tdma::stats::legacy_slot_probes,
        /// Trace spans recorded by [`noc_obs`]; stays 0 when no collector
        /// is installed — the pay-for-use proof for the tracing layer.
        trace_spans => noc_obs::span_count,
    }
}

#[inline]
pub(crate) fn add(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
    noc_obs::tick(n);
}

#[inline]
pub(crate) fn inc(counter: &AtomicU64) {
    add(counter, 1);
}

/// Records one accepted admission (for admission engines living outside
/// this crate, e.g. the online service's resolve baseline; the
/// incremental path in [`crate::admit`] records its own).
pub fn record_admission() {
    inc(&ADMISSIONS);
}

/// Records one rejected admission.
pub fn record_rejection() {
    inc(&REJECTIONS);
}

/// Records `n` displaced-core evictions performed while admitting.
pub fn record_displacement_evictions(n: u64) {
    if n > 0 {
        add(&DISPLACEMENT_EVICTIONS, n);
    }
}

/// Records one non-empty batch flushed at a reconfiguration point.
pub fn record_batch_flush() {
    inc(&BATCH_FLUSHES);
}

/// Records `n` injected resource failures (the service's `fault` verb
/// applies a whole request's links/NIs in one reconfiguration step).
pub fn record_fault_injections(n: u64) {
    if n > 0 {
        add(&FAULTS_INJECTED, n);
    }
}

/// Records one heal attempt ([`crate::heal::heal`], or the service
/// re-attempting a degraded use-case on an explicit `heal` request).
pub fn record_heal_attempt() {
    inc(&HEALS_ATTEMPTED);
}

/// Records `n` groups re-routed around failed resources by a heal.
pub fn record_heal_reroutes(n: u64) {
    if n > 0 {
        add(&HEAL_REROUTES, n);
    }
}

/// Records `n` stranded cores re-seated off failed NIs by a heal.
pub fn record_heal_evictions(n: u64) {
    if n > 0 {
        add(&HEAL_EVICTIONS, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas_are_per_field() {
        let a = snapshot();
        inc(&PATH_QUERIES);
        add(&DIJKSTRA_POPS, 5);
        let d = snapshot().since(&a);
        assert!(d.path_queries >= 1);
        assert!(d.dijkstra_pops >= 5);
    }
}
