//! `nocmap` — the primary contribution of Murali et al., DATE 2006: a
//! unified mapping, path-selection and TDMA-configuration flow for NoCs
//! that must support **multiple use-cases**, including compound modes
//! (use-cases running in parallel) and dynamic reconfiguration between
//! use-case groups.
//!
//! # The algorithm (paper Algorithm 2)
//!
//! 1. Start from the smallest mesh (one switch) and grow until a valid
//!    mapping exists ([`design::design_smallest_mesh`]).
//! 2. Sort all flows of all use-cases by decreasing bandwidth; repeatedly
//!    pick the largest unmapped flow, preferring flows whose endpoints are
//!    already placed.
//! 3. Select a least-cost path that satisfies the flow's bandwidth and
//!    latency constraints; if the endpoints are unmapped, place them on
//!    the NIs at the ends of the chosen path; reserve TDMA slots.
//! 4. Route the same source/destination pair in every other use-case,
//!    each in its **own** resource state — this is the key difference from
//!    the worst-case method of [ASPDAC'06], which merges all use-cases
//!    into one over-specified spec ([`wc`] implements that baseline).
//! 5. Use-cases grouped by the switching graph (phase 2) share one
//!    configuration; the reservation is sized for the group's largest
//!    same-pair flow.
//!
//! # Quick example
//!
//! ```
//! use noc_tdma::TdmaSpec;
//! use noc_topology::units::{Bandwidth, Latency};
//! use noc_usecase::{spec::{CoreId, SocSpec, UseCaseBuilder}, UseCaseGroups};
//! use nocmap::{design::design_smallest_mesh, MapperOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut soc = SocSpec::new("demo");
//! soc.add_use_case(
//!     UseCaseBuilder::new("u0")
//!         .flow(CoreId::new(0), CoreId::new(1), Bandwidth::from_mbps(100), Latency::UNCONSTRAINED)?
//!         .build(),
//! );
//! let groups = UseCaseGroups::singletons(1);
//! let solution = design_smallest_mesh(
//!     &soc,
//!     &groups,
//!     TdmaSpec::paper_default(),
//!     &MapperOptions::default(),
//!     64,
//! )?;
//! assert_eq!(solution.switch_count(), 1);
//! solution.verify(&soc, &groups)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admit;
pub mod anneal;
pub mod design;
pub mod dvs;
pub mod emit;
pub mod heal;
pub mod mapper;
pub mod merge;
pub mod path;
pub mod perf;
pub mod remap;
pub mod report;
pub mod result;
pub mod strategy;
pub mod verify;
pub mod wc;

mod error;

pub use admit::{admit_group, Admission, RejectReason};
pub use error::MapError;
pub use heal::{heal, HealOutcome};
pub use mapper::{
    map_multi_usecase, reroute_preset_groups, reroute_preset_groups_cached, MapperOptions,
    Placement, RouteCache,
};
pub use merge::merged_group_flows;
pub use result::{GroupConfig, MappingSolution, Route};
pub use strategy::{design_with_strategy, StrategyKind, StrategyOutcome};
pub use verify::VerifyError;
