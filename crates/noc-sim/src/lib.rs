//! Cycle-level TDMA NoC simulator.
//!
//! The paper's last phase generates SystemC/VHDL for the configured NoC
//! and simulates it to verify the guaranteed-throughput connections
//! (Figure 3, phase "SystemC & RTL VHDL NoC Simulation"). The RTL flow is
//! proprietary; this crate substitutes a slot-table-accurate simulator in
//! Rust that replays a [`nocmap::MappingSolution`] cycle by cycle and
//! checks the same properties the RTL simulation would:
//!
//! * **contention-freedom** — no two GT connections ever use one link in
//!   the same cycle,
//! * **throughput** — every flow injecting at its configured bandwidth is
//!   fully delivered,
//! * **latency** — no word exceeds its connection's analytical worst-case
//!   bound (plus bounded queueing slack).
//!
//! # Model
//!
//! Time advances in NoC clock cycles; the slot counter is `cycle mod S`.
//! A connection owning base slots `B` may inject one link word at every
//! cycle `t` with `t mod S ∈ B`; the word then pipelines one link per
//! cycle (slot `s + i` on the `i`-th link — exactly the reservation rule
//! of `noc-tdma`). Traffic sources default to smooth rate generators
//! (credit accumulators), matching the paper's constant-rate streaming
//! loads; the [`TrafficModel`] enum adds periodic and seeded-random
//! burst sources plus trace replay, for both GT connections and
//! best-effort flows. `docs/SIMULATION.md` at the repository root
//! documents the full simulation model.
//!
//! # Example
//!
//! ```
//! use noc_sim::{simulate_use_case, SimConfig};
//! use noc_tdma::TdmaSpec;
//! use noc_topology::units::{Bandwidth, Latency};
//! use noc_usecase::{spec::{CoreId, SocSpec, UseCaseBuilder}, UseCaseGroups};
//! use nocmap::{design::design_smallest_mesh, MapperOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut soc = SocSpec::new("demo");
//! soc.add_use_case(
//!     UseCaseBuilder::new("u0")
//!         .flow(CoreId::new(0), CoreId::new(1), Bandwidth::from_mbps(500), Latency::UNCONSTRAINED)?
//!         .build(),
//! );
//! let groups = UseCaseGroups::singletons(1);
//! let sol = design_smallest_mesh(&soc, &groups, TdmaSpec::paper_default(),
//!                                &MapperOptions::default(), 16)?;
//! let report = simulate_use_case(&sol, &soc, &groups, 0, &SimConfig::default());
//! assert_eq!(report.contention_violations, 0);
//! assert!(report.all_flows_delivered());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod best_effort;
mod engine;
mod report;
pub mod traffic;

pub use best_effort::{simulate_mixed, BestEffortFlow, MixedReport};
pub use engine::{
    simulate_connections, simulate_group, simulate_solution, simulate_use_case, Connection,
    SimConfig,
};
pub use report::{FlowStats, SimReport};
pub use traffic::{TrafficModel, TrafficSource};
