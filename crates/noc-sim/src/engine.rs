//! The cycle-driven simulation engine.

use std::collections::VecDeque;

use noc_tdma::{SlotMask, TdmaSpec};
use noc_topology::units::Bandwidth;
use noc_topology::LinkId;
use noc_usecase::spec::{CoreId, SocSpec, UseCaseId};
use noc_usecase::UseCaseGroups;
use nocmap::MappingSolution;

use crate::report::{FlowStats, SimReport};
use crate::traffic::{TrafficModel, TrafficSource};

/// Simulation window and checking knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of NoC clock cycles to simulate.
    pub cycles: u64,
    /// Extra latency slack, in slot-table periods, tolerated on top of
    /// each connection's analytical worst case before a delivered word
    /// counts as a violation.
    ///
    /// Word latency is measured from the cycle the source *generates*
    /// the word (it enters the source queue), while the analytical bound
    /// assumes an empty queue — so the slack is exactly the tolerated
    /// source-queueing delay. With the default [`TrafficModel::Constant`]
    /// sources the queue only builds during the start-up transient, and
    /// one table period (the default) covers it.
    ///
    /// Bursty models change the picture, by design: a connection owning
    /// `k` slots per table drains a burst of `b` words in `⌈b/k⌉` table
    /// periods, so words deeper than `queueing_slack_tables × k` in a
    /// burst exceed the allowance and are counted in
    /// [`SimReport::latency_violations`]. That is the intended
    /// semantics — a GT reservation guarantees bandwidth and a per-word
    /// network bound, not absorption of arbitrarily deep bursts. Size
    /// the slack to the deepest burst a source is specified to emit
    /// (`tests` assert both directions of this convention).
    pub queueing_slack_tables: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cycles: 8192,
            queueing_slack_tables: 1,
        }
    }
}

impl SimConfig {
    /// The latency allowance in cycles that [`SimConfig::queueing_slack_tables`]
    /// grants on a table of `slots_per_table` slots.
    ///
    /// ```
    /// use noc_sim::SimConfig;
    ///
    /// assert_eq!(SimConfig::default().slack_cycles(128), 128);
    /// ```
    pub fn slack_cycles(&self, slots_per_table: usize) -> u64 {
        u64::from(self.queueing_slack_tables) * slots_per_table as u64
    }
}

/// One GT connection to simulate: a configured route plus the rate its
/// source injects at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    /// Flow identity, reported in [`SimReport::flows`].
    pub key: (CoreId, CoreId),
    /// Links from source NI to destination NI.
    pub path: Vec<LinkId>,
    /// Reserved base slots.
    pub base_slots: Vec<usize>,
    /// Average injection rate of the traffic source.
    pub inject_bandwidth: Bandwidth,
    /// Timing of the source's word generation; the default
    /// [`TrafficModel::Constant`] reproduces the engine's original
    /// smooth sources bit-for-bit.
    pub traffic: TrafficModel,
    /// Analytical worst-case latency bound in cycles (checked against
    /// observed word latencies), if any.
    pub latency_bound_cycles: Option<u64>,
}

/// Simulates an arbitrary set of connections against `spec`'s slot
/// timing. This is the core engine; [`simulate_group`] and
/// [`simulate_use_case`] build the connection list from a mapping
/// solution.
///
/// # Panics
///
/// Panics if a connection has an empty path or a base slot out of range.
pub fn simulate_connections(
    spec: &TdmaSpec,
    connections: &[Connection],
    config: &SimConfig,
) -> SimReport {
    // Op-clock cost of the engine: one unit per (cycle, connection) step
    // of the main loop — a deterministic function of the inputs.
    noc_obs::tick(config.cycles.saturating_mul(connections.len() as u64));
    let slots = spec.slots();
    let slack = config.slack_cycles(slots);

    // Per-connection state.
    struct ConnState {
        in_slot: SlotMask,     // bit-packed base-slot membership
        queue: VecDeque<u64>,  // enqueue cycle per queued word
        source: TrafficSource, // word generator (integer credit state)
        stats: FlowStats,
        bound: Option<u64>,
    }
    let mut states: Vec<ConnState> = connections
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            assert!(
                !c.path.is_empty(),
                "connection {:?} has an empty path",
                c.key
            );
            let mut in_slot = SlotMask::new(slots);
            for &s in &c.base_slots {
                assert!(s < slots, "base slot {s} out of range for {:?}", c.key);
                in_slot.set(s);
            }
            ConnState {
                in_slot,
                queue: VecDeque::new(),
                source: c.traffic.source(
                    c.inject_bandwidth,
                    spec.width().bytes(),
                    spec.frequency().as_hz(),
                    ci,
                ),
                stats: FlowStats::default(),
                bound: c.latency_bound_cycles,
            }
        })
        .collect();

    // Static claims table: (link, slot) -> connection index. The slot
    // pattern is periodic, so any contention shows up as two connections
    // claiming one (link, slot) cell.
    let max_link = connections
        .iter()
        .flat_map(|c| c.path.iter())
        .map(|l| l.index())
        .max()
        .unwrap_or(0);
    let mut claims: Vec<Vec<Option<usize>>> = vec![vec![None; slots]; max_link + 1];
    let mut contention_violations = 0u64;
    let mut latency_violations = 0u64;

    // Delivery ring buffer: arrivals[cycle % ring] = (conn, enqueue_cycle).
    let max_hops = connections.iter().map(|c| c.path.len()).max().unwrap_or(0);
    let ring = max_hops + 2;
    let mut arrivals: Vec<Vec<(usize, u64)>> = vec![Vec::new(); ring];

    for t in 0..config.cycles {
        // Deliveries first: words scheduled to arrive this cycle.
        let bucket = std::mem::take(&mut arrivals[(t as usize) % ring]);
        for (ci, enq) in bucket {
            let latency = t - enq;
            let st = &mut states[ci];
            st.stats.delivered_words += 1;
            st.stats.total_latency_cycles += latency;
            st.stats.max_latency_cycles = st.stats.max_latency_cycles.max(latency);
            if let Some(bound) = st.bound {
                if latency > bound + slack {
                    latency_violations += 1;
                }
            }
        }

        let slot = (t % slots as u64) as usize;
        for (ci, conn) in connections.iter().enumerate() {
            let st = &mut states[ci];
            // Traffic generation: the source model decides how many
            // whole words enter the queue this cycle.
            for _ in 0..st.source.words_at(t) {
                st.queue.push_back(t);
                st.stats.injected_words += 1;
            }
            st.stats.peak_backlog_words = st
                .stats
                .peak_backlog_words
                .max(st.stats.injected_words - st.stats.delivered_words);
            // Injection: one word if this cycle's slot is owned.
            if st.in_slot.test(slot) {
                if let Some(enq) = st.queue.pop_front() {
                    // Claim every (link, slot) cell of the pipeline and
                    // check for contention.
                    for (i, &l) in conn.path.iter().enumerate() {
                        let cell = &mut claims[l.index()][(slot + i) % slots];
                        match *cell {
                            None => *cell = Some(ci),
                            Some(owner) if owner == ci => {}
                            Some(_) => contention_violations += 1,
                        }
                    }
                    // Schedule delivery after the pipeline traversal.
                    let arrive = t + conn.path.len() as u64;
                    arrivals[(arrive as usize) % ring].push((ci, enq));
                }
            }
        }
    }

    let mut flows = std::collections::BTreeMap::new();
    for (ci, conn) in connections.iter().enumerate() {
        let st = &mut states[ci];
        st.stats.backlog_words = st.stats.injected_words - st.stats.delivered_words;
        flows.insert(conn.key, st.stats.clone());
    }
    SimReport {
        cycles: config.cycles,
        slots_per_table: slots,
        flows,
        contention_violations,
        latency_violations,
    }
}

fn bound_cycles(spec: &TdmaSpec, route: &nocmap::Route) -> u64 {
    spec.worst_case_latency_cycles(&route.base_slots, route.hops())
}

/// Simulates one group's full NoC configuration, each connection
/// injecting at its **provisioned** bandwidth (the group's worst same-pair
/// demand) — the heaviest load the configuration must sustain.
///
/// # Panics
///
/// Panics if `group` is out of range for the solution.
pub fn simulate_group(solution: &MappingSolution, group: usize, config: &SimConfig) -> SimReport {
    let spec = solution.spec();
    let conns: Vec<Connection> = solution
        .group_config(group)
        .iter()
        .map(|(&key, route)| Connection {
            key,
            path: route.path.clone(),
            base_slots: route.base_slots.clone(),
            inject_bandwidth: route.bandwidth,
            traffic: TrafficModel::Constant,
            latency_bound_cycles: Some(bound_cycles(&spec, route)),
        })
        .collect();
    simulate_connections(&spec, &conns, config)
}

/// Simulates one **use-case** running on its group's configuration: each
/// flow injects at the use-case's own bandwidth (which may be below the
/// provisioned maximum when a group-mate demanded more).
///
/// # Panics
///
/// Panics if the use-case index is out of range, or if the solution lacks
/// a route for one of its flows (i.e. the solution does not belong to
/// this spec — run [`MappingSolution::verify`] first).
pub fn simulate_use_case(
    solution: &MappingSolution,
    soc: &SocSpec,
    groups: &UseCaseGroups,
    use_case: usize,
    config: &SimConfig,
) -> SimReport {
    let span = noc_obs::span("simulate-use-case");
    span.attr("use_case", use_case);
    let uc_id = UseCaseId::new(use_case as u32);
    let spec = solution.spec();
    let g = groups.group_of(uc_id);
    let conns: Vec<Connection> = soc
        .use_case(uc_id)
        .flows()
        .iter()
        .map(|flow| {
            let route = solution
                .group_config(g)
                .route(flow.src(), flow.dst())
                .expect("solution must cover every flow of the spec");
            Connection {
                key: flow.endpoints(),
                path: route.path.clone(),
                base_slots: route.base_slots.clone(),
                inject_bandwidth: flow.bandwidth(),
                traffic: TrafficModel::Constant,
                latency_bound_cycles: Some(bound_cycles(&spec, route)),
            }
        })
        .collect();
    simulate_connections(&spec, &conns, config)
}

/// Replays **every** use-case of a mapped design — the sim-stage adapter
/// the design-flow pipeline (`noc-flow`'s simulate stage) and the
/// phase-4 verification sweep share.
///
/// Use-cases run in parallel via [`noc_par::par_map`] with ordered
/// reduction, so the returned `Vec` is indexed by use-case and
/// byte-identical at any thread count.
///
/// # Panics
///
/// Panics if the solution lacks a route for one of the spec's flows —
/// run [`MappingSolution::verify`] first (see [`simulate_use_case`]).
pub fn simulate_solution(
    solution: &MappingSolution,
    soc: &SocSpec,
    groups: &UseCaseGroups,
    config: &SimConfig,
) -> Vec<SimReport> {
    noc_par::par_map((0..soc.use_case_count()).collect(), |_, uc| {
        simulate_use_case(solution, soc, groups, uc, config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_tdma::TdmaSpec;
    use noc_topology::units::{Frequency, Latency, LinkWidth};
    use noc_topology::MeshBuilder;
    use noc_usecase::spec::UseCaseBuilder;
    use nocmap::design::design_smallest_mesh;
    use nocmap::MapperOptions;

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    fn spec8() -> TdmaSpec {
        TdmaSpec::new(8, Frequency::from_mhz(500), LinkWidth::BITS_32)
    }

    /// A hand-built 3-link path on a 1x2 mesh.
    fn hand_path() -> (TdmaSpec, Vec<LinkId>) {
        let mesh = MeshBuilder::new(1, 2).nis_per_switch(1).build().unwrap();
        let topo = mesh.into_topology();
        let ni0 = topo.nis()[0];
        let ni1 = topo.nis()[1];
        let s0 = topo.ni_switch(ni0).unwrap();
        let s1 = topo.ni_switch(ni1).unwrap();
        let path = vec![
            topo.link_between(ni0, s0).unwrap(),
            topo.link_between(s0, s1).unwrap(),
            topo.link_between(s1, ni1).unwrap(),
        ];
        (spec8(), path)
    }

    #[test]
    fn full_rate_connection_saturates_its_slots() {
        let (spec, path) = hand_path();
        // 2 of 8 slots at 2000 MB/s link = 500 MB/s; inject exactly that.
        let conn = Connection {
            key: (c(0), c(1)),
            path,
            base_slots: vec![0, 4],
            inject_bandwidth: Bandwidth::from_mbps(500),
            traffic: TrafficModel::Constant,
            latency_bound_cycles: Some(spec.worst_case_latency_cycles(&[0, 4], 3)),
        };
        let report = simulate_connections(&spec, &[conn], &SimConfig::default());
        assert_eq!(report.contention_violations, 0);
        assert_eq!(report.latency_violations, 0);
        let stats = &report.flows[&(c(0), c(1))];
        // 500 MB/s at 500 MHz x 4B = 0.25 words/cycle over 8192 cycles.
        assert_eq!(stats.injected_words, 8192 / 4);
        assert!(report.all_flows_delivered());
        let bw = report
            .delivered_bandwidth((c(0), c(1)), 4, 500_000_000)
            .unwrap();
        assert!(
            bw >= Bandwidth::from_mbps(495),
            "delivered {bw} should be ~500 MB/s"
        );
    }

    #[test]
    fn latency_stays_within_analytical_bound() {
        let (spec, path) = hand_path();
        let bound = spec.worst_case_latency_cycles(&[0], 3); // 8 + 3
        let conn = Connection {
            key: (c(0), c(1)),
            path,
            base_slots: vec![0],
            inject_bandwidth: Bandwidth::from_mbps(200), // below the 250 slot rate
            traffic: TrafficModel::Constant,
            latency_bound_cycles: Some(bound),
        };
        let report = simulate_connections(&spec, &[conn], &SimConfig::default());
        assert_eq!(report.latency_violations, 0);
        let stats = &report.flows[&(c(0), c(1))];
        assert!(
            stats.max_latency_cycles <= bound + 8,
            "observed {} vs bound {bound} (+8 slack)",
            stats.max_latency_cycles
        );
    }

    #[test]
    fn overlapping_reservations_detected_as_contention() {
        let (spec, path) = hand_path();
        // Two connections deliberately share base slot 0 on one path —
        // an invalid configuration the simulator must flag.
        let mk = |key| Connection {
            key,
            path: path.clone(),
            base_slots: vec![0],
            inject_bandwidth: Bandwidth::from_mbps(250),
            traffic: TrafficModel::Constant,
            latency_bound_cycles: None,
        };
        let report = simulate_connections(
            &spec,
            &[mk((c(0), c(1))), mk((c(2), c(3)))],
            &SimConfig::default(),
        );
        assert!(report.contention_violations > 0);
    }

    #[test]
    fn disjoint_slots_no_contention() {
        let (spec, path) = hand_path();
        let mk = |key, slot| Connection {
            key,
            path: path.clone(),
            base_slots: vec![slot],
            inject_bandwidth: Bandwidth::from_mbps(250),
            traffic: TrafficModel::Constant,
            latency_bound_cycles: None,
        };
        let report = simulate_connections(
            &spec,
            &[mk((c(0), c(1)), 0), mk((c(2), c(3)), 5)],
            &SimConfig::default(),
        );
        assert_eq!(report.contention_violations, 0);
        assert!(report.all_flows_delivered());
    }

    /// The queueing-slack convention under bursts, both directions: a
    /// burst deeper than `queueing_slack_tables × owned slots` words
    /// counts latency violations (the analytical bound assumes an empty
    /// source queue), while a slack sized to the burst depth absorbs it
    /// — and the constant-rate source at the same average rate never
    /// violates with the default slack.
    #[test]
    fn burst_depth_vs_queueing_slack_convention() {
        let (spec, path) = hand_path();
        let bound = spec.worst_case_latency_cycles(&[0], 3);
        // 1 of 8 slots = 250 MB/s capacity; 125 MB/s average compressed
        // into 32-cycle bursts at the 2000 MB/s link rate: each burst
        // queues 32 words that drain at one word per table turn.
        let run = |traffic: TrafficModel, slack: u32| {
            let conn = Connection {
                key: (c(0), c(1)),
                path: path.clone(),
                base_slots: vec![0],
                inject_bandwidth: Bandwidth::from_mbps(125),
                traffic,
                latency_bound_cycles: Some(bound),
            };
            simulate_connections(
                &spec,
                &[conn],
                &SimConfig {
                    cycles: 4096,
                    queueing_slack_tables: slack,
                },
            )
        };
        let bursts = TrafficModel::OnOff {
            period: 512,
            on: 32,
            phase: 0,
        };
        let tight = run(bursts.clone(), 1);
        assert_eq!(tight.contention_violations, 0);
        assert!(
            tight.latency_violations > 0,
            "a 32-word burst on a 1-slot connection must overflow one table of slack"
        );
        let stats = &tight.flows[&(c(0), c(1))];
        // 32 words arrive during the burst window while 4 table turns
        // drain one word each: the queue peaks at 28.
        assert_eq!(
            stats.peak_backlog_words, 28,
            "peak backlog should reflect the burst depth minus the drain"
        );
        // 33 tables of slack cover the full drain of a 32-word burst.
        let sized = run(bursts, 33);
        assert_eq!(sized.latency_violations, 0, "sized slack absorbs the burst");
        // The same average rate spread smoothly never queues deeper than
        // start-up: the default slack suffices.
        let smooth = run(TrafficModel::Constant, 1);
        assert_eq!(smooth.latency_violations, 0);
        assert_eq!(
            smooth.flows[&(c(0), c(1))].injected_words,
            sized.flows[&(c(0), c(1))].injected_words,
            "whole periods inject the same word count at equal average rate"
        );
    }

    #[test]
    fn seeded_bursty_connection_replays_identically() {
        let (spec, path) = hand_path();
        let run = || {
            let conn = Connection {
                key: (c(0), c(1)),
                path: path.clone(),
                base_slots: vec![0, 4],
                inject_bandwidth: Bandwidth::from_mbps(250),
                traffic: TrafficModel::RandomBursts {
                    mean_on: 16,
                    mean_off: 48,
                    seed: 2006,
                },
                latency_bound_cycles: None,
            };
            simulate_connections(&spec, &[conn], &SimConfig::default())
        };
        assert_eq!(run(), run(), "seeded burst schedule must be pure");
    }

    #[test]
    fn zero_bandwidth_source_stays_idle() {
        let (spec, path) = hand_path();
        let conn = Connection {
            key: (c(0), c(1)),
            path,
            base_slots: vec![0],
            inject_bandwidth: Bandwidth::ZERO,
            traffic: TrafficModel::Constant,
            latency_bound_cycles: None,
        };
        let report = simulate_connections(&spec, &[conn], &SimConfig::default());
        let stats = &report.flows[&(c(0), c(1))];
        assert_eq!(stats.injected_words, 0);
        assert_eq!(stats.delivered_words, 0);
        assert_eq!(stats.delivery_ratio(), 1.0);
    }

    #[test]
    fn end_to_end_mapped_solution_simulates_clean() {
        let mut soc = SocSpec::new("sim-e2e");
        soc.add_use_case(
            UseCaseBuilder::new("u0")
                .flow(
                    c(0),
                    c(1),
                    Bandwidth::from_mbps(400),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .flow(c(1), c(2), Bandwidth::from_mbps(250), Latency::from_us(1))
                .unwrap()
                .flow(
                    c(2),
                    c(3),
                    Bandwidth::from_mbps(125),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .build(),
        );
        soc.add_use_case(
            UseCaseBuilder::new("u1")
                .flow(
                    c(0),
                    c(1),
                    Bandwidth::from_mbps(100),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .flow(
                    c(3),
                    c(0),
                    Bandwidth::from_mbps(600),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .build(),
        );
        let groups = UseCaseGroups::singletons(2);
        let sol = design_smallest_mesh(
            &soc,
            &groups,
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
            64,
        )
        .unwrap();
        sol.verify(&soc, &groups).unwrap();
        for g in 0..2 {
            let report = simulate_group(&sol, g, &SimConfig::default());
            assert_eq!(report.contention_violations, 0, "group {g} contended");
            assert_eq!(report.latency_violations, 0, "group {g} late");
            assert!(report.all_flows_delivered(), "group {g} dropped words");
        }
        for uc in 0..2 {
            let report = simulate_use_case(&sol, &soc, &groups, uc, &SimConfig::default());
            assert_eq!(report.contention_violations, 0);
            assert_eq!(report.latency_violations, 0);
            assert!(report.all_flows_delivered());
        }
    }
}
